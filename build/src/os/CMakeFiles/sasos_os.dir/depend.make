# Empty dependencies file for sasos_os.
# This may be replaced when dependencies are built.
