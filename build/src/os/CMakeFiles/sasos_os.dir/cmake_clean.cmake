file(REMOVE_RECURSE
  "CMakeFiles/sasos_os.dir/kernel.cc.o"
  "CMakeFiles/sasos_os.dir/kernel.cc.o.d"
  "CMakeFiles/sasos_os.dir/page_group_manager.cc.o"
  "CMakeFiles/sasos_os.dir/page_group_manager.cc.o.d"
  "CMakeFiles/sasos_os.dir/pager.cc.o"
  "CMakeFiles/sasos_os.dir/pager.cc.o.d"
  "CMakeFiles/sasos_os.dir/protection_model.cc.o"
  "CMakeFiles/sasos_os.dir/protection_model.cc.o.d"
  "CMakeFiles/sasos_os.dir/vm_state.cc.o"
  "CMakeFiles/sasos_os.dir/vm_state.cc.o.d"
  "libsasos_os.a"
  "libsasos_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sasos_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
