file(REMOVE_RECURSE
  "libsasos_os.a"
)
