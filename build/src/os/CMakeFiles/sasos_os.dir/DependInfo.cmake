
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/sasos_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/sasos_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/page_group_manager.cc" "src/os/CMakeFiles/sasos_os.dir/page_group_manager.cc.o" "gcc" "src/os/CMakeFiles/sasos_os.dir/page_group_manager.cc.o.d"
  "/root/repo/src/os/pager.cc" "src/os/CMakeFiles/sasos_os.dir/pager.cc.o" "gcc" "src/os/CMakeFiles/sasos_os.dir/pager.cc.o.d"
  "/root/repo/src/os/protection_model.cc" "src/os/CMakeFiles/sasos_os.dir/protection_model.cc.o" "gcc" "src/os/CMakeFiles/sasos_os.dir/protection_model.cc.o.d"
  "/root/repo/src/os/vm_state.cc" "src/os/CMakeFiles/sasos_os.dir/vm_state.cc.o" "gcc" "src/os/CMakeFiles/sasos_os.dir/vm_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/sasos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sasos_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sasos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
