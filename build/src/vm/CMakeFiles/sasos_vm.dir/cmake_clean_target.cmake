file(REMOVE_RECURSE
  "libsasos_vm.a"
)
