# Empty compiler generated dependencies file for sasos_vm.
# This may be replaced when dependencies are built.
