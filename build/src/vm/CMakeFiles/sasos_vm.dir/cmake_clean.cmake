file(REMOVE_RECURSE
  "CMakeFiles/sasos_vm.dir/linear_page_table.cc.o"
  "CMakeFiles/sasos_vm.dir/linear_page_table.cc.o.d"
  "CMakeFiles/sasos_vm.dir/page_table.cc.o"
  "CMakeFiles/sasos_vm.dir/page_table.cc.o.d"
  "CMakeFiles/sasos_vm.dir/phys_mem.cc.o"
  "CMakeFiles/sasos_vm.dir/phys_mem.cc.o.d"
  "CMakeFiles/sasos_vm.dir/prot_table.cc.o"
  "CMakeFiles/sasos_vm.dir/prot_table.cc.o.d"
  "CMakeFiles/sasos_vm.dir/segment.cc.o"
  "CMakeFiles/sasos_vm.dir/segment.cc.o.d"
  "libsasos_vm.a"
  "libsasos_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sasos_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
