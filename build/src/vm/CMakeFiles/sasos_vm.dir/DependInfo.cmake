
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/linear_page_table.cc" "src/vm/CMakeFiles/sasos_vm.dir/linear_page_table.cc.o" "gcc" "src/vm/CMakeFiles/sasos_vm.dir/linear_page_table.cc.o.d"
  "/root/repo/src/vm/page_table.cc" "src/vm/CMakeFiles/sasos_vm.dir/page_table.cc.o" "gcc" "src/vm/CMakeFiles/sasos_vm.dir/page_table.cc.o.d"
  "/root/repo/src/vm/phys_mem.cc" "src/vm/CMakeFiles/sasos_vm.dir/phys_mem.cc.o" "gcc" "src/vm/CMakeFiles/sasos_vm.dir/phys_mem.cc.o.d"
  "/root/repo/src/vm/prot_table.cc" "src/vm/CMakeFiles/sasos_vm.dir/prot_table.cc.o" "gcc" "src/vm/CMakeFiles/sasos_vm.dir/prot_table.cc.o.d"
  "/root/repo/src/vm/segment.cc" "src/vm/CMakeFiles/sasos_vm.dir/segment.cc.o" "gcc" "src/vm/CMakeFiles/sasos_vm.dir/segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sasos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
