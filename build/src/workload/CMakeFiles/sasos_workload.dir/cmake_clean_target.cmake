file(REMOVE_RECURSE
  "libsasos_workload.a"
)
