# Empty compiler generated dependencies file for sasos_workload.
# This may be replaced when dependencies are built.
