
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/address_stream.cc" "src/workload/CMakeFiles/sasos_workload.dir/address_stream.cc.o" "gcc" "src/workload/CMakeFiles/sasos_workload.dir/address_stream.cc.o.d"
  "/root/repo/src/workload/attach_churn.cc" "src/workload/CMakeFiles/sasos_workload.dir/attach_churn.cc.o" "gcc" "src/workload/CMakeFiles/sasos_workload.dir/attach_churn.cc.o.d"
  "/root/repo/src/workload/checkpoint.cc" "src/workload/CMakeFiles/sasos_workload.dir/checkpoint.cc.o" "gcc" "src/workload/CMakeFiles/sasos_workload.dir/checkpoint.cc.o.d"
  "/root/repo/src/workload/comppage.cc" "src/workload/CMakeFiles/sasos_workload.dir/comppage.cc.o" "gcc" "src/workload/CMakeFiles/sasos_workload.dir/comppage.cc.o.d"
  "/root/repo/src/workload/dvm.cc" "src/workload/CMakeFiles/sasos_workload.dir/dvm.cc.o" "gcc" "src/workload/CMakeFiles/sasos_workload.dir/dvm.cc.o.d"
  "/root/repo/src/workload/gc.cc" "src/workload/CMakeFiles/sasos_workload.dir/gc.cc.o" "gcc" "src/workload/CMakeFiles/sasos_workload.dir/gc.cc.o.d"
  "/root/repo/src/workload/rpc.cc" "src/workload/CMakeFiles/sasos_workload.dir/rpc.cc.o" "gcc" "src/workload/CMakeFiles/sasos_workload.dir/rpc.cc.o.d"
  "/root/repo/src/workload/sharing.cc" "src/workload/CMakeFiles/sasos_workload.dir/sharing.cc.o" "gcc" "src/workload/CMakeFiles/sasos_workload.dir/sharing.cc.o.d"
  "/root/repo/src/workload/txvm.cc" "src/workload/CMakeFiles/sasos_workload.dir/txvm.cc.o" "gcc" "src/workload/CMakeFiles/sasos_workload.dir/txvm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sasos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/sasos_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/sasos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sasos_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sasos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
