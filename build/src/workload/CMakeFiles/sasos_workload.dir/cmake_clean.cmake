file(REMOVE_RECURSE
  "CMakeFiles/sasos_workload.dir/address_stream.cc.o"
  "CMakeFiles/sasos_workload.dir/address_stream.cc.o.d"
  "CMakeFiles/sasos_workload.dir/attach_churn.cc.o"
  "CMakeFiles/sasos_workload.dir/attach_churn.cc.o.d"
  "CMakeFiles/sasos_workload.dir/checkpoint.cc.o"
  "CMakeFiles/sasos_workload.dir/checkpoint.cc.o.d"
  "CMakeFiles/sasos_workload.dir/comppage.cc.o"
  "CMakeFiles/sasos_workload.dir/comppage.cc.o.d"
  "CMakeFiles/sasos_workload.dir/dvm.cc.o"
  "CMakeFiles/sasos_workload.dir/dvm.cc.o.d"
  "CMakeFiles/sasos_workload.dir/gc.cc.o"
  "CMakeFiles/sasos_workload.dir/gc.cc.o.d"
  "CMakeFiles/sasos_workload.dir/rpc.cc.o"
  "CMakeFiles/sasos_workload.dir/rpc.cc.o.d"
  "CMakeFiles/sasos_workload.dir/sharing.cc.o"
  "CMakeFiles/sasos_workload.dir/sharing.cc.o.d"
  "CMakeFiles/sasos_workload.dir/txvm.cc.o"
  "CMakeFiles/sasos_workload.dir/txvm.cc.o.d"
  "libsasos_workload.a"
  "libsasos_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sasos_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
