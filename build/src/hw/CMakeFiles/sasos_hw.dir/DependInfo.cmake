
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/data_cache.cc" "src/hw/CMakeFiles/sasos_hw.dir/data_cache.cc.o" "gcc" "src/hw/CMakeFiles/sasos_hw.dir/data_cache.cc.o.d"
  "/root/repo/src/hw/pagegroup_cache.cc" "src/hw/CMakeFiles/sasos_hw.dir/pagegroup_cache.cc.o" "gcc" "src/hw/CMakeFiles/sasos_hw.dir/pagegroup_cache.cc.o.d"
  "/root/repo/src/hw/plb.cc" "src/hw/CMakeFiles/sasos_hw.dir/plb.cc.o" "gcc" "src/hw/CMakeFiles/sasos_hw.dir/plb.cc.o.d"
  "/root/repo/src/hw/replacement.cc" "src/hw/CMakeFiles/sasos_hw.dir/replacement.cc.o" "gcc" "src/hw/CMakeFiles/sasos_hw.dir/replacement.cc.o.d"
  "/root/repo/src/hw/tag_sizing.cc" "src/hw/CMakeFiles/sasos_hw.dir/tag_sizing.cc.o" "gcc" "src/hw/CMakeFiles/sasos_hw.dir/tag_sizing.cc.o.d"
  "/root/repo/src/hw/tlb.cc" "src/hw/CMakeFiles/sasos_hw.dir/tlb.cc.o" "gcc" "src/hw/CMakeFiles/sasos_hw.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/sasos_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sasos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
