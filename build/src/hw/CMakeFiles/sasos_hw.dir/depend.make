# Empty dependencies file for sasos_hw.
# This may be replaced when dependencies are built.
