file(REMOVE_RECURSE
  "libsasos_hw.a"
)
