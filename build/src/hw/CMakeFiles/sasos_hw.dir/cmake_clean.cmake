file(REMOVE_RECURSE
  "CMakeFiles/sasos_hw.dir/data_cache.cc.o"
  "CMakeFiles/sasos_hw.dir/data_cache.cc.o.d"
  "CMakeFiles/sasos_hw.dir/pagegroup_cache.cc.o"
  "CMakeFiles/sasos_hw.dir/pagegroup_cache.cc.o.d"
  "CMakeFiles/sasos_hw.dir/plb.cc.o"
  "CMakeFiles/sasos_hw.dir/plb.cc.o.d"
  "CMakeFiles/sasos_hw.dir/replacement.cc.o"
  "CMakeFiles/sasos_hw.dir/replacement.cc.o.d"
  "CMakeFiles/sasos_hw.dir/tag_sizing.cc.o"
  "CMakeFiles/sasos_hw.dir/tag_sizing.cc.o.d"
  "CMakeFiles/sasos_hw.dir/tlb.cc.o"
  "CMakeFiles/sasos_hw.dir/tlb.cc.o.d"
  "libsasos_hw.a"
  "libsasos_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sasos_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
