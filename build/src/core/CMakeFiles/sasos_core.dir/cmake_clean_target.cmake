file(REMOVE_RECURSE
  "libsasos_core.a"
)
