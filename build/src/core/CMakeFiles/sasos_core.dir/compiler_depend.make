# Empty compiler generated dependencies file for sasos_core.
# This may be replaced when dependencies are built.
