
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/conventional_system.cc" "src/core/CMakeFiles/sasos_core.dir/conventional_system.cc.o" "gcc" "src/core/CMakeFiles/sasos_core.dir/conventional_system.cc.o.d"
  "/root/repo/src/core/mem_path.cc" "src/core/CMakeFiles/sasos_core.dir/mem_path.cc.o" "gcc" "src/core/CMakeFiles/sasos_core.dir/mem_path.cc.o.d"
  "/root/repo/src/core/pagegroup_system.cc" "src/core/CMakeFiles/sasos_core.dir/pagegroup_system.cc.o" "gcc" "src/core/CMakeFiles/sasos_core.dir/pagegroup_system.cc.o.d"
  "/root/repo/src/core/plb_system.cc" "src/core/CMakeFiles/sasos_core.dir/plb_system.cc.o" "gcc" "src/core/CMakeFiles/sasos_core.dir/plb_system.cc.o.d"
  "/root/repo/src/core/smp.cc" "src/core/CMakeFiles/sasos_core.dir/smp.cc.o" "gcc" "src/core/CMakeFiles/sasos_core.dir/smp.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/sasos_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/sasos_core.dir/system.cc.o.d"
  "/root/repo/src/core/system_config.cc" "src/core/CMakeFiles/sasos_core.dir/system_config.cc.o" "gcc" "src/core/CMakeFiles/sasos_core.dir/system_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/sasos_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/sasos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sasos_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sasos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
