file(REMOVE_RECURSE
  "CMakeFiles/sasos_core.dir/conventional_system.cc.o"
  "CMakeFiles/sasos_core.dir/conventional_system.cc.o.d"
  "CMakeFiles/sasos_core.dir/mem_path.cc.o"
  "CMakeFiles/sasos_core.dir/mem_path.cc.o.d"
  "CMakeFiles/sasos_core.dir/pagegroup_system.cc.o"
  "CMakeFiles/sasos_core.dir/pagegroup_system.cc.o.d"
  "CMakeFiles/sasos_core.dir/plb_system.cc.o"
  "CMakeFiles/sasos_core.dir/plb_system.cc.o.d"
  "CMakeFiles/sasos_core.dir/smp.cc.o"
  "CMakeFiles/sasos_core.dir/smp.cc.o.d"
  "CMakeFiles/sasos_core.dir/system.cc.o"
  "CMakeFiles/sasos_core.dir/system.cc.o.d"
  "CMakeFiles/sasos_core.dir/system_config.cc.o"
  "CMakeFiles/sasos_core.dir/system_config.cc.o.d"
  "libsasos_core.a"
  "libsasos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sasos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
