file(REMOVE_RECURSE
  "libsasos_sim.a"
)
