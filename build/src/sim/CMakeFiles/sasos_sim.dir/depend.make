# Empty dependencies file for sasos_sim.
# This may be replaced when dependencies are built.
