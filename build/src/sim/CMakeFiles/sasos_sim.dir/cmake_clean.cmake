file(REMOVE_RECURSE
  "CMakeFiles/sasos_sim.dir/cost_model.cc.o"
  "CMakeFiles/sasos_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/sasos_sim.dir/cycle_account.cc.o"
  "CMakeFiles/sasos_sim.dir/cycle_account.cc.o.d"
  "CMakeFiles/sasos_sim.dir/logging.cc.o"
  "CMakeFiles/sasos_sim.dir/logging.cc.o.d"
  "CMakeFiles/sasos_sim.dir/options.cc.o"
  "CMakeFiles/sasos_sim.dir/options.cc.o.d"
  "CMakeFiles/sasos_sim.dir/random.cc.o"
  "CMakeFiles/sasos_sim.dir/random.cc.o.d"
  "CMakeFiles/sasos_sim.dir/stats.cc.o"
  "CMakeFiles/sasos_sim.dir/stats.cc.o.d"
  "CMakeFiles/sasos_sim.dir/table.cc.o"
  "CMakeFiles/sasos_sim.dir/table.cc.o.d"
  "libsasos_sim.a"
  "libsasos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sasos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
