file(REMOVE_RECURSE
  "libsasos_trace.a"
)
