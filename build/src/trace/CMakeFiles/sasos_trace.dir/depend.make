# Empty dependencies file for sasos_trace.
# This may be replaced when dependencies are built.
