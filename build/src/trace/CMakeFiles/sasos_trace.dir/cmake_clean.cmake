file(REMOVE_RECURSE
  "CMakeFiles/sasos_trace.dir/trace.cc.o"
  "CMakeFiles/sasos_trace.dir/trace.cc.o.d"
  "libsasos_trace.a"
  "libsasos_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sasos_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
