# Empty dependencies file for bench_table1_txvm.
# This may be replaced when dependencies are built.
