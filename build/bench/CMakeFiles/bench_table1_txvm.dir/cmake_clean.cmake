file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_txvm.dir/bench_table1_txvm.cc.o"
  "CMakeFiles/bench_table1_txvm.dir/bench_table1_txvm.cc.o.d"
  "bench_table1_txvm"
  "bench_table1_txvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_txvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
