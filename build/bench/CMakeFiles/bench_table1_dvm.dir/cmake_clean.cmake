file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_dvm.dir/bench_table1_dvm.cc.o"
  "CMakeFiles/bench_table1_dvm.dir/bench_table1_dvm.cc.o.d"
  "bench_table1_dvm"
  "bench_table1_dvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
