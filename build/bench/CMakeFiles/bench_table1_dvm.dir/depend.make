# Empty dependencies file for bench_table1_dvm.
# This may be replaced when dependencies are built.
