file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_checkpoint.dir/bench_table1_checkpoint.cc.o"
  "CMakeFiles/bench_table1_checkpoint.dir/bench_table1_checkpoint.cc.o.d"
  "bench_table1_checkpoint"
  "bench_table1_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
