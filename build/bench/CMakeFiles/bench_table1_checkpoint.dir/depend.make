# Empty dependencies file for bench_table1_checkpoint.
# This may be replaced when dependencies are built.
