file(REMOVE_RECURSE
  "CMakeFiles/bench_smp_shootdown.dir/bench_smp_shootdown.cc.o"
  "CMakeFiles/bench_smp_shootdown.dir/bench_smp_shootdown.cc.o.d"
  "bench_smp_shootdown"
  "bench_smp_shootdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smp_shootdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
