file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gc.dir/bench_table1_gc.cc.o"
  "CMakeFiles/bench_table1_gc.dir/bench_table1_gc.cc.o.d"
  "bench_table1_gc"
  "bench_table1_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
