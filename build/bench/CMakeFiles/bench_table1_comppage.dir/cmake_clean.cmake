file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_comppage.dir/bench_table1_comppage.cc.o"
  "CMakeFiles/bench_table1_comppage.dir/bench_table1_comppage.cc.o.d"
  "bench_table1_comppage"
  "bench_table1_comppage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_comppage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
