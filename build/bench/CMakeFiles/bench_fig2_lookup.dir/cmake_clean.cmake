file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_lookup.dir/bench_fig2_lookup.cc.o"
  "CMakeFiles/bench_fig2_lookup.dir/bench_fig2_lookup.cc.o.d"
  "bench_fig2_lookup"
  "bench_fig2_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
