file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_attach.dir/bench_table1_attach.cc.o"
  "CMakeFiles/bench_table1_attach.dir/bench_table1_attach.cc.o.d"
  "bench_table1_attach"
  "bench_table1_attach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_attach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
