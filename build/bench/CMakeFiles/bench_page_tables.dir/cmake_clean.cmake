file(REMOVE_RECURSE
  "CMakeFiles/bench_page_tables.dir/bench_page_tables.cc.o"
  "CMakeFiles/bench_page_tables.dir/bench_page_tables.cc.o.d"
  "bench_page_tables"
  "bench_page_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_page_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
