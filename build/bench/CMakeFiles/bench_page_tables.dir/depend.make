# Empty dependencies file for bench_page_tables.
# This may be replaced when dependencies are built.
