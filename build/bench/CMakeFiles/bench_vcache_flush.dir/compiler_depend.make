# Empty compiler generated dependencies file for bench_vcache_flush.
# This may be replaced when dependencies are built.
