file(REMOVE_RECURSE
  "CMakeFiles/bench_vcache_flush.dir/bench_vcache_flush.cc.o"
  "CMakeFiles/bench_vcache_flush.dir/bench_vcache_flush.cc.o.d"
  "bench_vcache_flush"
  "bench_vcache_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vcache_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
