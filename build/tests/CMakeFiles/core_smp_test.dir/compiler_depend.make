# Empty compiler generated dependencies file for core_smp_test.
# This may be replaced when dependencies are built.
