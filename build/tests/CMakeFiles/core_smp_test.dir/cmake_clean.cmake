file(REMOVE_RECURSE
  "CMakeFiles/core_smp_test.dir/core_smp_test.cc.o"
  "CMakeFiles/core_smp_test.dir/core_smp_test.cc.o.d"
  "core_smp_test"
  "core_smp_test.pdb"
  "core_smp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_smp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
