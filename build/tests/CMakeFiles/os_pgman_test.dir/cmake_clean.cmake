file(REMOVE_RECURSE
  "CMakeFiles/os_pgman_test.dir/os_pgman_test.cc.o"
  "CMakeFiles/os_pgman_test.dir/os_pgman_test.cc.o.d"
  "os_pgman_test"
  "os_pgman_test.pdb"
  "os_pgman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_pgman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
