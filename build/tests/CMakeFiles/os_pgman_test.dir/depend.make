# Empty dependencies file for os_pgman_test.
# This may be replaced when dependencies are built.
