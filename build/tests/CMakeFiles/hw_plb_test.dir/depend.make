# Empty dependencies file for hw_plb_test.
# This may be replaced when dependencies are built.
