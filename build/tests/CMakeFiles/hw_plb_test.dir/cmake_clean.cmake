file(REMOVE_RECURSE
  "CMakeFiles/hw_plb_test.dir/hw_plb_test.cc.o"
  "CMakeFiles/hw_plb_test.dir/hw_plb_test.cc.o.d"
  "hw_plb_test"
  "hw_plb_test.pdb"
  "hw_plb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_plb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
