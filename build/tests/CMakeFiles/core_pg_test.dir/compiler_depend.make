# Empty compiler generated dependencies file for core_pg_test.
# This may be replaced when dependencies are built.
