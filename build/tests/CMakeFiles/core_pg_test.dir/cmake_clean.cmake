file(REMOVE_RECURSE
  "CMakeFiles/core_pg_test.dir/core_pg_test.cc.o"
  "CMakeFiles/core_pg_test.dir/core_pg_test.cc.o.d"
  "core_pg_test"
  "core_pg_test.pdb"
  "core_pg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
