file(REMOVE_RECURSE
  "CMakeFiles/core_mem_test.dir/core_mem_test.cc.o"
  "CMakeFiles/core_mem_test.dir/core_mem_test.cc.o.d"
  "core_mem_test"
  "core_mem_test.pdb"
  "core_mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
