# Empty dependencies file for core_mem_test.
# This may be replaced when dependencies are built.
