# Empty dependencies file for core_conv_test.
# This may be replaced when dependencies are built.
