file(REMOVE_RECURSE
  "CMakeFiles/core_conv_test.dir/core_conv_test.cc.o"
  "CMakeFiles/core_conv_test.dir/core_conv_test.cc.o.d"
  "core_conv_test"
  "core_conv_test.pdb"
  "core_conv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_conv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
