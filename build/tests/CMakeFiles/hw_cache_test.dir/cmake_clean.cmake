file(REMOVE_RECURSE
  "CMakeFiles/hw_cache_test.dir/hw_cache_test.cc.o"
  "CMakeFiles/hw_cache_test.dir/hw_cache_test.cc.o.d"
  "hw_cache_test"
  "hw_cache_test.pdb"
  "hw_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
