file(REMOVE_RECURSE
  "CMakeFiles/os_state_test.dir/os_state_test.cc.o"
  "CMakeFiles/os_state_test.dir/os_state_test.cc.o.d"
  "os_state_test"
  "os_state_test.pdb"
  "os_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
