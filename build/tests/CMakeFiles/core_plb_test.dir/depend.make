# Empty dependencies file for core_plb_test.
# This may be replaced when dependencies are built.
