file(REMOVE_RECURSE
  "CMakeFiles/core_plb_test.dir/core_plb_test.cc.o"
  "CMakeFiles/core_plb_test.dir/core_plb_test.cc.o.d"
  "core_plb_test"
  "core_plb_test.pdb"
  "core_plb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_plb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
