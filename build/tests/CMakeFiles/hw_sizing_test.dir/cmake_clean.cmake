file(REMOVE_RECURSE
  "CMakeFiles/hw_sizing_test.dir/hw_sizing_test.cc.o"
  "CMakeFiles/hw_sizing_test.dir/hw_sizing_test.cc.o.d"
  "hw_sizing_test"
  "hw_sizing_test.pdb"
  "hw_sizing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_sizing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
