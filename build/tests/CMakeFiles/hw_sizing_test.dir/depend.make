# Empty dependencies file for hw_sizing_test.
# This may be replaced when dependencies are built.
