# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/hw_cache_test[1]_include.cmake")
include("/root/repo/build/tests/hw_tlb_test[1]_include.cmake")
include("/root/repo/build/tests/hw_plb_test[1]_include.cmake")
include("/root/repo/build/tests/hw_sizing_test[1]_include.cmake")
include("/root/repo/build/tests/os_state_test[1]_include.cmake")
include("/root/repo/build/tests/os_pgman_test[1]_include.cmake")
include("/root/repo/build/tests/os_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/core_plb_test[1]_include.cmake")
include("/root/repo/build/tests/core_pg_test[1]_include.cmake")
include("/root/repo/build/tests/core_conv_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/core_mem_test[1]_include.cmake")
include("/root/repo/build/tests/core_smp_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/accounting_test[1]_include.cmake")
