# Empty compiler generated dependencies file for rpc_ping_pong.
# This may be replaced when dependencies are built.
