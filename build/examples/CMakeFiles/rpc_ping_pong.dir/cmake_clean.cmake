file(REMOVE_RECURSE
  "CMakeFiles/rpc_ping_pong.dir/rpc_ping_pong.cc.o"
  "CMakeFiles/rpc_ping_pong.dir/rpc_ping_pong.cc.o.d"
  "rpc_ping_pong"
  "rpc_ping_pong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_ping_pong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
