file(REMOVE_RECURSE
  "CMakeFiles/dsm_node.dir/dsm_node.cc.o"
  "CMakeFiles/dsm_node.dir/dsm_node.cc.o.d"
  "dsm_node"
  "dsm_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
