# Empty dependencies file for dsm_node.
# This may be replaced when dependencies are built.
