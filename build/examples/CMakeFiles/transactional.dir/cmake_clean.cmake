file(REMOVE_RECURSE
  "CMakeFiles/transactional.dir/transactional.cc.o"
  "CMakeFiles/transactional.dir/transactional.cc.o.d"
  "transactional"
  "transactional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transactional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
