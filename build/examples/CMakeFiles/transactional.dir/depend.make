# Empty dependencies file for transactional.
# This may be replaced when dependencies are built.
