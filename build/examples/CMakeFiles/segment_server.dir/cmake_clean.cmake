file(REMOVE_RECURSE
  "CMakeFiles/segment_server.dir/segment_server.cc.o"
  "CMakeFiles/segment_server.dir/segment_server.cc.o.d"
  "segment_server"
  "segment_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
