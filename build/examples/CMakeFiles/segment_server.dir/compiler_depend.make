# Empty compiler generated dependencies file for segment_server.
# This may be replaced when dependencies are built.
