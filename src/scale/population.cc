#include "scale/population.hh"

#include <algorithm>
#include <string>

#include "sim/logging.hh"

namespace sasos::scale
{

namespace
{

/** Per-domain stream seed: SplitMix64-style mix so domain d's draws
 * are independent of every other domain's and of the layout stream,
 * and any single domain can be regenerated in isolation. */
u64
domainSeed(u64 seed, u64 domain)
{
    u64 z = seed + 0x9E3779B97F4A7C15ULL * (domain + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace

Population::Population(const PopulationConfig &config) : config_(config)
{
    SASOS_ASSERT(config.domains > 0, "population needs domains");
    SASOS_ASSERT(config.segments > 0, "population needs segments");
    SASOS_ASSERT(config.minAttach >= 1 &&
                     config.minAttach <= config.maxAttach,
                 "bad attach range");
    SASOS_ASSERT(config.maxAttach <= config.segments,
                 "cannot attach more segments than exist");
    SASOS_ASSERT(config.minSegPages >= 1 &&
                     config.minSegPages <= config.maxSegPages,
                 "bad segment size range");
    SASOS_ASSERT(config.overridePerMille <= 1000,
                 "overridePerMille is a per-mille probability");

    // Segment layout: bump allocation with random dead gaps, the
    // scattered sparsity a long-lived single address space accretes.
    Rng layout(config.seed);
    segFirstPage_.reserve(config.segments);
    segPages_.reserve(config.segments);
    u64 next = 0x100; // page 0 region reserved, as in the allocator
    for (u64 s = 0; s < config.segments; ++s) {
        const u64 pages =
            config.minSegPages +
            layout.nextBelow(config.maxSegPages - config.minSegPages + 1);
        next += config.maxGapPages ? layout.nextBelow(config.maxGapPages)
                                   : 0;
        segFirstPage_.push_back(next);
        segPages_.push_back(pages);
        next += pages;
    }

    // Per-domain attachment sets: Zipf-skewed popularity, deduped and
    // sorted (ascending index == ascending base). Duplicates from the
    // skewed draw shrink a domain's set below its nominal count --
    // hot segments are hot -- which is fine for a population model.
    const ZipfDistribution zipf(static_cast<std::size_t>(config.segments),
                                config.segZipfTheta);
    offsets_.reserve(config.domains + 1);
    offsets_.push_back(0);
    std::vector<u32> picks;
    for (u64 d = 0; d < config.domains; ++d) {
        Rng rng(domainSeed(config.seed, d));
        const u64 nominal =
            config.minAttach +
            rng.nextBelow(config.maxAttach - config.minAttach + 1);
        picks.clear();
        for (u64 j = 0; j < nominal; ++j)
            picks.push_back(static_cast<u32>(zipf(rng)));
        std::sort(picks.begin(), picks.end());
        picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
        for (u32 seg : picks) {
            segIdx_.push_back(seg);
            overrideFlag_.push_back(
                rng.nextBelow(1000) < config.overridePerMille ? 1 : 0);
        }
        offsets_.push_back(segIdx_.size());
    }
}

void
Population::materialize(u64 domain, vm::ProtectionTable &table) const
{
    SASOS_ASSERT(domain < config_.domains, "no domain ", domain);
    const u64 n = attachmentCount(domain);
    for (u64 j = 0; j < n; ++j) {
        const u64 seg = attachmentSeg(domain, j);
        // Segment ids are creation-order (1-based) when the caller
        // builds the population's segments in index order.
        table.attachSegment(static_cast<vm::SegmentId>(seg + 1),
                            vm::Access::ReadWrite);
        if (attachmentHasOverride(domain, j))
            table.setPageRights(segmentFirstPage(seg), vm::Access::Read);
    }
}

SpaceReport
Population::spaceReport(u64 pte_bytes, u64 prot_entry_bytes) const
{
    SASOS_ASSERT(pte_bytes > 0, "zero PTE size");
    SpaceReport report;
    report.domains = config_.domains;
    report.segments = segments();
    for (u64 pages : segPages_)
        report.totalMappedPages += pages;
    report.totalAttachments = segIdx_.size();
    for (u8 flag : overrideFlag_)
        report.totalOverrides += flag;

    // The single-address-space side: one global table holds every
    // mapped page exactly once, however many domains share it; each
    // domain adds only its sparse protection entries.
    report.globalPageTableBytes = report.totalMappedPages * pte_bytes;
    report.protectionTableBytes =
        (report.totalAttachments + report.totalOverrides) *
        prot_entry_bytes;
    report.sasBytes =
        report.globalPageTableBytes + report.protectionTableBytes;

    // The per-domain linear side, computed analytically with exactly
    // the vm::LinearPageTableModel formulas (the scale tests pin this
    // equivalence at small N). Attachments are sorted by base, so the
    // span ends and the leaf intervals come out in order.
    const u64 page_bytes = u64{1} << vm::kPageShift;
    const u64 ptes_per_leaf = page_bytes / pte_bytes;
    for (u64 d = 0; d < config_.domains; ++d) {
        const u64 n = attachmentCount(d);
        if (n == 0)
            continue;
        const u64 first_seg = attachmentSeg(d, 0);
        const u64 last_seg = attachmentSeg(d, n - 1);
        const u64 min_page = segFirstPage_[first_seg];
        const u64 max_page =
            segFirstPage_[last_seg] + segPages_[last_seg] - 1;
        report.linearFlatBytes += (max_page - min_page + 1) * pte_bytes;

        // Touched leaves: merge the attachments' leaf intervals.
        u64 leaves = 0;
        u64 cur_first = 0;
        u64 cur_last = 0;
        bool open = false;
        for (u64 j = 0; j < n; ++j) {
            const u64 seg = attachmentSeg(d, j);
            const u64 leaf_first = segFirstPage_[seg] / ptes_per_leaf;
            const u64 leaf_last =
                (segFirstPage_[seg] + segPages_[seg] - 1) / ptes_per_leaf;
            if (open && leaf_first <= cur_last) {
                cur_last = std::max(cur_last, leaf_last);
                continue;
            }
            if (open)
                leaves += cur_last - cur_first + 1;
            cur_first = leaf_first;
            cur_last = leaf_last;
            open = true;
        }
        leaves += cur_last - cur_first + 1;
        const u64 min_leaf = min_page / ptes_per_leaf;
        const u64 max_leaf = max_page / ptes_per_leaf;
        report.linearTwoLevelBytes +=
            leaves * page_bytes + (max_leaf - min_leaf + 1) * pte_bytes;
    }
    return report;
}

SegmentStressReport
stressSegmentAllocator(u64 seed, u64 ops, u64 max_pages)
{
    SASOS_ASSERT(max_pages >= 1, "stress needs nonzero segment sizes");
    Rng rng(seed);
    vm::SegmentTable table;
    SegmentStressReport report;
    std::vector<vm::SegmentId> live;
    u64 high_water = 0; // highest page ever handed out + 1
    for (u64 i = 0; i < ops; ++i) {
        // 60/40 create/destroy keeps the table growing while churning
        // enough that destroyed ranges would get reused if the
        // allocator ever recycled.
        const bool create = live.empty() || rng.nextBelow(10) < 6;
        if (create) {
            const u64 pages = 1 + rng.nextBelow(max_pages);
            const bool aligned = rng.nextBelow(4) == 0;
            const vm::SegmentId id = table.create(
                "stress" + std::to_string(i), pages, aligned);
            const vm::Segment *seg = table.find(id);
            SASOS_ASSERT(seg != nullptr, "created segment not found");
            ++report.creates;
            report.pagesAllocated += pages;
            if (seg->firstPage.number() < high_water)
                ++report.reuseFailures;
            high_water = seg->lastPage().number() + 1;
            live.push_back(id);
        } else {
            const std::size_t victim =
                static_cast<std::size_t>(rng.nextBelow(live.size()));
            table.destroy(live[victim]);
            live[victim] = live.back();
            live.pop_back();
            ++report.destroys;
        }
        report.maxLive = std::max<u64>(report.maxLive, live.size());
        // Spot-check the range lookup invariant on a random live
        // segment: its first and last pages resolve back to it.
        if (!live.empty()) {
            const vm::Segment *seg = table.find(
                live[static_cast<std::size_t>(rng.nextBelow(live.size()))]);
            const vm::Segment *by_first = table.findByPage(seg->firstPage);
            const vm::Segment *by_last = table.findByPage(seg->lastPage());
            if (by_first == nullptr || by_first->id != seg->id ||
                by_last == nullptr || by_last->id != seg->id)
                ++report.overlapFailures;
        }
    }
    report.liveAtEnd = live.size();
    return report;
}

} // namespace sasos::scale
