/**
 * @file
 * Sparse million-domain populations for the page-table space argument.
 *
 * The paper's Section 3.1 case against per-domain linear page tables
 * is quantitative: a domain references small, widely scattered pieces
 * of the 64-bit space, so a linear table must span from its lowest to
 * its highest mapped page, and translations for shared segments are
 * replicated in every sharing domain's table. The existing
 * bench_page_tables makes that argument at workstation scale; this
 * layer makes it at datacenter scale -- 10^6 protection domains over
 * thousands of scattered segments -- where enumerating real
 * per-domain page tables would be absurd, which is precisely the
 * point.
 *
 * Population generates a seeded, Zipf-skewed synthetic population:
 * segment sizes and gaps from one stream, each domain's attachment
 * set from a per-domain stream (so any single domain can be
 * re-materialized into the real vm::ProtectionTable /
 * vm::LinearPageTableModel structures and cross-checked against the
 * analytic accounting -- the scale tests do exactly that at small N).
 * The space report then compares, over the whole population:
 *
 *  - the single-address-space organization: ONE global page table
 *    (every mapped page once) plus a sparse per-domain protection
 *    table (one entry per segment grant + per page override);
 *  - per-domain linear tables, flat (span-sized) and two-level (only
 *    touched leaves allocated, directory spans the leaf range).
 */

#ifndef SASOS_SCALE_POPULATION_HH
#define SASOS_SCALE_POPULATION_HH

#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"
#include "vm/address.hh"
#include "vm/prot_table.hh"
#include "vm/segment.hh"

namespace sasos::scale
{

/** Shape of a synthetic domain/segment population. */
struct PopulationConfig
{
    /** Protection domains (the paper's axis; 10^6 at full scale). */
    u64 domains = 1'000'000;
    /** Distinct shared segments the domains attach. */
    u64 segments = 4096;
    /** Zipf skew of segment popularity: a few hot shared segments
     * (code, libraries), a long cold tail. */
    double segZipfTheta = 0.8;
    /** Segments a domain attaches: uniform in [minAttach, maxAttach]. */
    u64 minAttach = 1;
    u64 maxAttach = 8;
    /** Segment length in pages: uniform in [minSegPages, maxSegPages]. */
    u64 minSegPages = 1;
    u64 maxSegPages = 2048;
    /** Max pages of dead gap between consecutive segments (sparsity). */
    u64 maxGapPages = 1u << 14;
    /** Per-mille probability an attachment carries one page override. */
    u64 overridePerMille = 50;
    u64 seed = 1;
};

/** Population-wide table-space accounting (bytes). */
struct SpaceReport
{
    u64 domains = 0;
    u64 segments = 0;
    u64 totalMappedPages = 0;
    u64 totalAttachments = 0;
    u64 totalOverrides = 0;
    /** Single global page table: every mapped page exactly once. */
    u64 globalPageTableBytes = 0;
    /** All per-domain sparse protection tables together. */
    u64 protectionTableBytes = 0;
    /** SAS total: global table + protection tables. */
    u64 sasBytes = 0;
    /** All per-domain flat linear tables (lowest..highest span). */
    u64 linearFlatBytes = 0;
    /** All per-domain two-level tables (touched leaves + directory). */
    u64 linearTwoLevelBytes = 0;

    double
    flatDuplicationFactor() const
    {
        return sasBytes ? static_cast<double>(linearFlatBytes) / sasBytes
                        : 0.0;
    }
    double
    twoLevelDuplicationFactor() const
    {
        return sasBytes
                   ? static_cast<double>(linearTwoLevelBytes) / sasBytes
                   : 0.0;
    }
};

/** A seeded sparse domain/segment population. */
class Population
{
  public:
    explicit Population(const PopulationConfig &config);

    const PopulationConfig &config() const { return config_; }
    u64 domains() const { return config_.domains; }
    u64 segments() const { return segFirstPage_.size(); }

    /** @name Segment layout (index order == ascending base) */
    /// @{
    vm::Vpn segmentFirstPage(u64 seg) const
    {
        return vm::Vpn(segFirstPage_[seg]);
    }
    u64 segmentPages(u64 seg) const { return segPages_[seg]; }
    /// @}

    /** @name One domain's attachment set (CSR; indices ascending) */
    /// @{
    u64 attachmentCount(u64 domain) const
    {
        return offsets_[domain + 1] - offsets_[domain];
    }
    u64 attachmentSeg(u64 domain, u64 j) const
    {
        return segIdx_[offsets_[domain] + j];
    }
    /** Whether attachment j carries a page override (placed on the
     * segment's first page, so materialization is deterministic). */
    bool attachmentHasOverride(u64 domain, u64 j) const
    {
        return overrideFlag_[offsets_[domain] + j] != 0;
    }
    /// @}

    /**
     * Rebuild one domain's real protection table, entry for entry, so
     * tests can cross-check the analytic report against
     * vm::ProtectionTable::spaceBytes(). `segments` must contain the
     * population's segments created in index order (ids 1..N).
     */
    void materialize(u64 domain, vm::ProtectionTable &table) const;

    /** Compute the population-wide space accounting. */
    SpaceReport spaceReport(u64 pte_bytes = 8,
                            u64 prot_entry_bytes = 16) const;

  private:
    PopulationConfig config_;
    std::vector<u64> segFirstPage_;
    std::vector<u64> segPages_;
    /** CSR: domain d's attachments are segIdx_[offsets_[d]..d+1). */
    std::vector<u64> offsets_;
    std::vector<u32> segIdx_;
    std::vector<u8> overrideFlag_;
};

/** What stressSegmentAllocator() observed. */
struct SegmentStressReport
{
    u64 creates = 0;
    u64 destroys = 0;
    u64 liveAtEnd = 0;
    u64 maxLive = 0;
    u64 pagesAllocated = 0;
    /** Live segments whose page-range lookup disagreed (must be 0). */
    u64 overlapFailures = 0;
    /** Segment bases that reused retired address space (must be 0). */
    u64 reuseFailures = 0;

    bool passed() const { return !overlapFailures && !reuseFailures; }
};

/**
 * Hammer a real vm::SegmentTable with a seeded create/destroy mix and
 * check the single-address-space allocation invariants hold under
 * churn: every live page range resolves back to its own segment, and
 * addresses are never reused (bases strictly increase for the
 * lifetime of the table, destroyed or not).
 */
SegmentStressReport stressSegmentAllocator(u64 seed, u64 ops,
                                           u64 max_pages = 512);

} // namespace sasos::scale

#endif // SASOS_SCALE_POPULATION_HH
