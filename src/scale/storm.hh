/**
 * @file
 * The shootdown-storm scenario: McConfig factories for the scale
 * oracles.
 *
 * A "storm" is a many-core run tuned so kernel protection churn (and
 * with it IPI broadcast traffic) dominates: high churn probability,
 * hot Zipf-skewed shared references, a long IPI flight window and a
 * short quantum, so at 64+ cores most references execute inside some
 * core's stale-rights window. bench_scale and the scale tests run
 * these configs under the explorer invariants (no grant outside a
 * stale window, hardware subset of canonical at quiescence) -- the
 * exit-code oracle for the clustered-PLB + coalesced-IPI machinery.
 */

#ifndef SASOS_SCALE_STORM_HH
#define SASOS_SCALE_STORM_HH

#include "core/mc/mc_system.hh"

namespace sasos::scale
{

/**
 * A churn-heavy multi-core configuration at `cores` cores.
 * Deterministic in (cores, refs_per_core, seed); invariant checking
 * is on. Callers layer the engine knobs under test on top
 * (plb_clusters via .system.plb, mc_coalesce via .coalesceWindow).
 */
core::mc::McConfig stormConfig(unsigned cores, u64 refs_per_core,
                               u64 seed);

/**
 * `stormConfig` with the clustered PLB enabled: `clusters` banks,
 * range shift 4 (small ranges, so bank routing actually spreads).
 */
core::mc::McConfig clusteredStormConfig(unsigned cores, u64 refs_per_core,
                                        u64 seed, unsigned clusters);

} // namespace sasos::scale

#endif // SASOS_SCALE_STORM_HH
