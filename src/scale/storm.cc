#include "scale/storm.hh"

namespace sasos::scale
{

core::mc::McConfig
stormConfig(unsigned cores, u64 refs_per_core, u64 seed)
{
    core::mc::McConfig config;
    config.system = core::SystemConfig::plbSystem();
    config.system.seed = seed;
    config.system.plb.seed = seed + 2;
    config.cores = cores;
    config.scheduleSeed = seed;
    // Short quanta and a long IPI flight window: many interleavings,
    // wide stale-rights windows (Section 4.1.3's race, at scale).
    config.quantum = 4;
    config.ipiDelaySteps = 12;
    config.checkInvariants = true;
    config.workload.seed = seed;
    config.workload.stepsPerCore = refs_per_core;
    config.workload.sharedPages = 32;
    config.workload.privatePages = 8;
    config.workload.sharedProb = 0.8;
    config.workload.storeProb = 0.4;
    // Churn-heavy: one step in four is a kernel protection op, so the
    // shootdown rate -- not the reference stream -- dominates.
    config.workload.churnProb = 0.25;
    config.workload.zipfTheta = 0.9;
    return config;
}

core::mc::McConfig
clusteredStormConfig(unsigned cores, u64 refs_per_core, u64 seed,
                     unsigned clusters)
{
    core::mc::McConfig config = stormConfig(cores, refs_per_core, seed);
    config.system.plb.clusters = clusters;
    config.system.plb.rangeShift = 4;
    return config;
}

} // namespace sasos::scale
