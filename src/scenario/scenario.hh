/**
 * @file
 * The application-scenario layer: seeded, reproducible scripts that
 * drive the simulated kernel the way real single-address-space
 * applications would.
 *
 * Three scenario families (ROADMAP "scenario diversity"):
 *
 *  - **CoW fork tree** (μFork-style): a root task populates a private
 *    segment, then a tree of children is forked copy-on-write; every
 *    task mutates its copy, exercising refcounted frames, shared
 *    mappings and the CoW fault path; the tree is then reaped.
 *  - **Portal RPC chains** (Opal-style): client domains write a
 *    request into a server's portal segment, traverse into the server
 *    domain, which may call the next server in the chain, and return
 *    -- protection-domain switches plus cross-domain shared segments.
 *  - **Server mix** (web-server-shaped): waves of short-lived client
 *    domains hammer a few long-lived shared-segment services under
 *    Zipf traffic with domain create/destroy churn.
 *
 * A script is a flat list of concrete operations (real domain and
 * segment ids, real addresses), a pure function of its config: the
 * builder replays the kernel operations against a probe System as it
 * generates, recording the ids the real runs must reproduce. That
 * makes replay trivially position-resumable (snapshot mid-script) and
 * lets the differential oracle run the identical stream on all three
 * protection models, clean and fault-injected.
 */

#ifndef SASOS_SCENARIO_SCENARIO_HH
#define SASOS_SCENARIO_SCENARIO_HH

#include <string>
#include <vector>

#include "os/vm_state.hh" // DomainId
#include "vm/rights.hh"
#include "vm/segment.hh"

namespace sasos::scn
{

/** What one scripted operation does. */
enum class OpKind : u8
{
    /** Issue a memory reference at `addr` (current domain). */
    Ref,
    /** kernel.switchTo(domain). */
    Switch,
    /** kernel.createDomain(...); must yield id `domain`. */
    CreateDomain,
    /** kernel.destroyDomain(domain). */
    DestroyDomain,
    /** kernel.createSegment(..., pages); must yield id `seg`. */
    CreateSegment,
    /** kernel.destroySegment(seg). */
    DestroySegment,
    /** kernel.attach(domain, seg, rights). */
    Attach,
    /** kernel.detach(domain, seg). */
    Detach,
    /** kernel.forkSegmentCow(seg, domain, rights); must yield `seg2`. */
    ForkCow,
    /** kernel.setPageRights(domain, pageOf(addr), rights). */
    SetPageRights,
    /** kernel.restrictPage(pageOf(addr), rights). */
    RestrictPage,
    /** kernel.unrestrictPage(pageOf(addr)). */
    UnrestrictPage,
};

/** One concrete operation; unused fields stay at their defaults. */
struct Op
{
    OpKind kind = OpKind::Ref;
    vm::AccessType type = vm::AccessType::Load;
    os::DomainId domain = 0;
    vm::SegmentId seg = vm::kInvalidSegment;
    /** ForkCow: the child segment id the fork must produce. */
    vm::SegmentId seg2 = vm::kInvalidSegment;
    vm::Access rights = vm::Access::None;
    /** Ref: the virtual address; page ops: any address in the page. */
    u64 addr = 0;
    /** CreateSegment: size in pages. */
    u64 pages = 0;

    bool operator==(const Op &) const = default;
};

/** A complete scenario: a replayable operation stream. */
struct Script
{
    std::string name;
    std::vector<Op> ops;
    /** Number of Ref ops (the decision-vector length). */
    u64 refs = 0;
};

/** μFork-style copy-on-write fork tree. */
struct ForkConfig
{
    u64 seed = 1;
    /** Fork-tree depth below the root (0 = root only). */
    u32 depth = 3;
    /** Children forked from each node. */
    u32 fanout = 2;
    /** Pages per task segment. */
    u64 pages = 12;
    /** References each task issues over its segment after forking. */
    u64 refsPerTask = 160;
    double storeFraction = 0.45;
    /** Upper bound on segments the tree may create (budget). */
    u32 maxSegments = 96;
    /** Destroy the non-root tasks at the end (leak check). */
    bool reap = true;
};

/** Opal-style portal RPC chains. */
struct PortalConfig
{
    u64 seed = 1;
    u32 clients = 4;
    u32 servers = 2;
    /** Servers traversed per call (client -> s0 -> s1 -> ...). */
    u32 chainLen = 2;
    u64 callsPerClient = 24;
    /** Pages per portal segment. */
    u64 portalPages = 4;
    /** References per hop (request writes + reply reads). */
    u64 refsPerHop = 6;
    /** Test hook: detach this hop's portal from its server before the
     * chains run; building then fatals ("portal into a detached
     * segment"). Leave at ~0u for a valid scenario. */
    u32 dropPortalHop = ~0u;
};

/** Web-server-shaped mix with domain churn. */
struct ServerMixConfig
{
    u64 seed = 1;
    /** Long-lived service domains, one shared segment each. */
    u32 services = 3;
    u64 servicePages = 48;
    /** Client-churn waves; each wave creates, runs and destroys
     * `clientsPerWave` short-lived client domains. */
    u32 waves = 6;
    u32 clientsPerWave = 12;
    u64 refsPerClient = 30;
    double storeFraction = 0.25;
    /** Zipf skew of the per-client page stream. */
    double zipfTheta = 0.8;
    /** Paging-style restrict/unrestrict churn per wave. */
    u32 restrictsPerWave = 2;
};

/** @name Builders
 * Each is a pure function of its config (invalid configs are clean
 * fatals, rerouteable via setFatalHandler for death tests).
 */
/// @{
Script buildForkScript(const ForkConfig &config);
Script buildPortalScript(const PortalConfig &config);
Script buildServerMixScript(const ServerMixConfig &config);

/** The standard three scenarios at default shapes, seeded. */
std::vector<Script> standardScripts(u64 seed);
/// @}

} // namespace sasos::scn

#endif // SASOS_SCENARIO_SCENARIO_HH
