#include "scenario/scenario.hh"

#include <algorithm>
#include <utility>

#include "core/system.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "vm/address.hh"

namespace sasos::scn
{

namespace
{

/**
 * Generates a script while replaying its kernel operations against a
 * probe System, so every recorded id and address is the one a real
 * replay must reproduce (domain ids, segment ids and bump-allocator
 * bases depend only on creation order). References are recorded but
 * not probed -- they cannot influence ids.
 */
class ScriptBuilder
{
  public:
    explicit ScriptBuilder(std::string name)
        : probe_(core::SystemConfig::forModel(core::ModelKind::Conventional))
    {
        script_.name = std::move(name);
    }

    os::DomainId
    createDomain()
    {
        const os::DomainId id = probe_.kernel().createDomain(
            "d" + std::to_string(script_.ops.size()));
        Op op;
        op.kind = OpKind::CreateDomain;
        op.domain = id;
        script_.ops.push_back(op);
        return id;
    }

    void
    destroyDomain(os::DomainId domain)
    {
        probe_.kernel().destroyDomain(domain);
        Op op;
        op.kind = OpKind::DestroyDomain;
        op.domain = domain;
        script_.ops.push_back(op);
    }

    vm::SegmentId
    createSegment(u64 pages)
    {
        const vm::SegmentId id = probe_.kernel().createSegment(
            "s" + std::to_string(script_.ops.size()), pages);
        Op op;
        op.kind = OpKind::CreateSegment;
        op.seg = id;
        op.pages = pages;
        script_.ops.push_back(op);
        return id;
    }

    void
    destroySegment(vm::SegmentId seg)
    {
        probe_.kernel().destroySegment(seg);
        Op op;
        op.kind = OpKind::DestroySegment;
        op.seg = seg;
        script_.ops.push_back(op);
    }

    void
    attach(os::DomainId domain, vm::SegmentId seg, vm::Access rights)
    {
        probe_.kernel().attach(domain, seg, rights);
        Op op;
        op.kind = OpKind::Attach;
        op.domain = domain;
        op.seg = seg;
        op.rights = rights;
        script_.ops.push_back(op);
    }

    void
    detach(os::DomainId domain, vm::SegmentId seg)
    {
        probe_.kernel().detach(domain, seg);
        Op op;
        op.kind = OpKind::Detach;
        op.domain = domain;
        op.seg = seg;
        script_.ops.push_back(op);
    }

    vm::SegmentId
    forkCow(vm::SegmentId src, os::DomainId child, vm::Access rights)
    {
        const vm::SegmentId id = probe_.kernel().forkSegmentCow(
            src, child, rights, "f" + std::to_string(script_.ops.size()));
        Op op;
        op.kind = OpKind::ForkCow;
        op.domain = child;
        op.seg = src;
        op.seg2 = id;
        op.rights = rights;
        script_.ops.push_back(op);
        return id;
    }

    void
    switchTo(os::DomainId domain)
    {
        if (domain == probe_.kernel().currentDomain())
            return;
        probe_.kernel().switchTo(domain);
        Op op;
        op.kind = OpKind::Switch;
        op.domain = domain;
        script_.ops.push_back(op);
    }

    /** A reference by `domain` (switching if needed). */
    void
    refAs(os::DomainId domain, u64 addr, vm::AccessType type)
    {
        switchTo(domain);
        Op op;
        op.kind = OpKind::Ref;
        op.type = type;
        op.addr = addr;
        script_.ops.push_back(op);
        ++script_.refs;
    }

    void
    restrictPage(u64 addr, vm::Access mask)
    {
        probe_.kernel().restrictPage(vm::pageOf(vm::VAddr(addr)), mask);
        Op op;
        op.kind = OpKind::RestrictPage;
        op.addr = addr;
        op.rights = mask;
        script_.ops.push_back(op);
    }

    void
    unrestrictPage(u64 addr)
    {
        probe_.kernel().unrestrictPage(vm::pageOf(vm::VAddr(addr)));
        Op op;
        op.kind = OpKind::UnrestrictPage;
        op.addr = addr;
        script_.ops.push_back(op);
    }

    bool
    isAttached(os::DomainId domain, vm::SegmentId seg)
    {
        const os::Domain *d = probe_.state().findDomain(domain);
        return d != nullptr && d->prot.isAttached(seg);
    }

    /** Base address of a probe-created segment. */
    u64
    base(vm::SegmentId seg)
    {
        const vm::Segment *segment = probe_.state().segments.find(seg);
        SASOS_ASSERT(segment != nullptr, "builder lost segment ", seg);
        return segment->base().raw();
    }

    Script
    take()
    {
        return std::move(script_);
    }

  private:
    core::System probe_;
    Script script_;
};

/** A word-aligned address inside page `page` of a segment. */
u64
pageAddr(u64 seg_base, u64 page, Rng &rng)
{
    return seg_base + page * vm::kPageBytes +
           rng.nextBelow(vm::kPageBytes / 8) * 8;
}

} // namespace

Script
buildForkScript(const ForkConfig &config)
{
    SASOS_ASSERT(config.pages > 0, "fork scenario needs a nonempty segment");
    SASOS_ASSERT(config.fanout > 0, "fork scenario needs fanout >= 1");
    // Size the tree up front and hold it against the segment budget.
    u64 nodes = 1;
    u64 level_width = 1;
    for (u32 d = 0; d < config.depth; ++d) {
        level_width *= config.fanout;
        nodes += level_width;
    }
    if (nodes > config.maxSegments)
        SASOS_FATAL("fork tree of ", nodes,
                    " segments exceeds the segment budget of ",
                    config.maxSegments, " (depth ", config.depth,
                    ", fanout ", config.fanout, ")");

    ScriptBuilder b("fork");
    Rng rng(config.seed);

    struct Task
    {
        os::DomainId domain;
        vm::SegmentId seg;
    };

    const os::DomainId root = b.createDomain();
    const vm::SegmentId root_seg = b.createSegment(config.pages);
    b.attach(root, root_seg, vm::Access::ReadWrite);
    // Populate every page so the forks below have frames to share.
    for (u64 p = 0; p < config.pages; ++p)
        b.refAs(root, pageAddr(b.base(root_seg), p, rng),
                vm::AccessType::Store);

    std::vector<Task> all{{root, root_seg}};
    std::vector<Task> level{{root, root_seg}};
    const u64 burst = std::max<u64>(1, config.refsPerTask /
                                           (u64{config.depth} + 1));
    for (u32 d = 0; d < config.depth; ++d) {
        std::vector<Task> next;
        for (const Task &parent : level) {
            for (u32 c = 0; c < config.fanout; ++c) {
                const os::DomainId child = b.createDomain();
                const vm::SegmentId child_seg =
                    b.forkCow(parent.seg, child, vm::Access::ReadWrite);
                next.push_back({child, child_seg});
            }
        }
        all.insert(all.end(), next.begin(), next.end());
        // Every live task mutates its copy: stores take CoW faults,
        // loads ride the shared frames.
        for (const Task &task : all) {
            for (u64 r = 0; r < burst; ++r) {
                const u64 page = rng.nextBelow(config.pages);
                const vm::AccessType type =
                    rng.bernoulli(config.storeFraction)
                        ? vm::AccessType::Store
                        : vm::AccessType::Load;
                b.refAs(task.domain,
                        pageAddr(b.base(task.seg), page, rng), type);
            }
        }
        level = std::move(next);
    }

    if (config.reap) {
        b.switchTo(root);
        // Reverse creation order; refcounted frames make any order
        // legal, this one just retires leaves first.
        for (std::size_t i = all.size(); i > 1; --i) {
            b.destroySegment(all[i - 1].seg);
            b.destroyDomain(all[i - 1].domain);
        }
    }
    return b.take();
}

Script
buildPortalScript(const PortalConfig &config)
{
    if (config.clients == 0)
        SASOS_FATAL("portal scenario needs at least one client domain");
    SASOS_ASSERT(config.servers > 0, "portal scenario needs servers");
    SASOS_ASSERT(config.portalPages > 0, "portal segments need pages");
    if (config.chainLen == 0 || config.chainLen > config.servers)
        SASOS_FATAL("portal chain of length ", config.chainLen,
                    " needs between 1 and ", config.servers,
                    " exported portal segments");

    ScriptBuilder b("portal");
    Rng rng(config.seed);

    std::vector<os::DomainId> server;
    std::vector<vm::SegmentId> portal;
    for (u32 k = 0; k < config.servers; ++k) {
        server.push_back(b.createDomain());
        portal.push_back(b.createSegment(config.portalPages));
        b.attach(server[k], portal[k], vm::Access::ReadWrite);
    }
    // Chain wiring: each hop writes the next hop's request.
    for (u32 k = 0; k + 1 < config.chainLen; ++k)
        b.attach(server[k], portal[k + 1], vm::Access::ReadWrite);

    std::vector<os::DomainId> client;
    for (u32 i = 0; i < config.clients; ++i) {
        client.push_back(b.createDomain());
        b.attach(client[i], portal[0], vm::Access::ReadWrite);
    }

    if (config.dropPortalHop < config.chainLen)
        b.detach(server[config.dropPortalHop],
                 portal[config.dropPortalHop]);
    // A portal is only traversable while its server exports it.
    for (u32 k = 0; k < config.chainLen; ++k) {
        if (!b.isAttached(server[k], portal[k]))
            SASOS_FATAL("portal into a detached segment: hop ", k,
                        " (segment ", portal[k],
                        ") is no longer attached to its server domain");
    }

    const u64 half = std::max<u64>(1, config.refsPerHop / 2);
    for (u64 call = 0; call < config.callsPerClient; ++call) {
        for (u32 i = 0; i < config.clients; ++i) {
            // Request: the client writes into the entry portal.
            for (u64 r = 0; r < half; ++r)
                b.refAs(client[i],
                        pageAddr(b.base(portal[0]),
                                 rng.nextBelow(config.portalPages), rng),
                        vm::AccessType::Store);
            // Occasionally a client snoops a later hop's portal it was
            // never attached to -- a denied cross-domain reference.
            if (config.chainLen > 1 && rng.bernoulli(0.05))
                b.refAs(client[i],
                        pageAddr(b.base(portal[1]),
                                 rng.nextBelow(config.portalPages), rng),
                        vm::AccessType::Load);
            // Traverse the chain: each server reads its request and
            // writes its reply (and the next hop's request).
            for (u32 k = 0; k < config.chainLen; ++k) {
                for (u64 r = 0; r < half; ++r) {
                    const vm::AccessType type =
                        rng.bernoulli(0.5) ? vm::AccessType::Load
                                           : vm::AccessType::Store;
                    b.refAs(server[k],
                            pageAddr(b.base(portal[k]),
                                     rng.nextBelow(config.portalPages),
                                     rng),
                            type);
                }
                if (k + 1 < config.chainLen) {
                    b.refAs(server[k],
                            pageAddr(b.base(portal[k + 1]),
                                     rng.nextBelow(config.portalPages),
                                     rng),
                            vm::AccessType::Store);
                }
            }
            // Return: the client reads the reply.
            for (u64 r = 0; r < half; ++r)
                b.refAs(client[i],
                        pageAddr(b.base(portal[0]),
                                 rng.nextBelow(config.portalPages), rng),
                        vm::AccessType::Load);
        }
    }
    return b.take();
}

Script
buildServerMixScript(const ServerMixConfig &config)
{
    if (config.clientsPerWave == 0)
        SASOS_FATAL("server mix needs client domains (clientsPerWave > 0)");
    SASOS_ASSERT(config.services > 0, "server mix needs service domains");
    SASOS_ASSERT(config.servicePages > 0, "service segments need pages");
    const u64 total_domains = u64{config.services} +
                              u64{config.waves} * config.clientsPerWave + 1;
    if (total_domains > 60000)
        SASOS_FATAL("server mix would create ", total_domains,
                    " domains; the 16-bit domain id space allows 60000");

    ScriptBuilder b("server-mix");
    Rng rng(config.seed);
    const ZipfDistribution zipf(config.servicePages, config.zipfTheta);

    std::vector<os::DomainId> service;
    std::vector<vm::SegmentId> sseg;
    for (u32 k = 0; k < config.services; ++k) {
        service.push_back(b.createDomain());
        sseg.push_back(b.createSegment(config.servicePages));
        b.attach(service[k], sseg[k], vm::Access::ReadWrite);
        // Warm the service working set so client traffic hits mapped
        // pages rather than a demand-zero storm.
        for (u64 p = 0; p < config.servicePages; ++p)
            b.refAs(service[k], pageAddr(b.base(sseg[k]), p, rng),
                    vm::AccessType::Store);
    }

    constexpr u64 kScratchPages = 2;
    for (u32 w = 0; w < config.waves; ++w) {
        struct Client
        {
            os::DomainId domain;
            vm::SegmentId scratch;
            u32 svc;
            bool writer;
        };
        std::vector<Client> wave;
        for (u32 i = 0; i < config.clientsPerWave; ++i) {
            Client c;
            c.domain = b.createDomain();
            c.scratch = b.createSegment(kScratchPages);
            c.svc = static_cast<u32>(rng.nextBelow(config.services));
            c.writer = rng.bernoulli(0.3);
            b.attach(c.domain, c.scratch, vm::Access::ReadWrite);
            b.attach(c.domain, sseg[c.svc],
                     c.writer ? vm::Access::ReadWrite : vm::Access::Read);
            wave.push_back(c);
        }
        // Paging-style exclusion on a few hot service pages while the
        // wave runs: some client refs are denied mid-flight.
        std::vector<u64> restricted;
        for (u32 m = 0; m < config.restrictsPerWave; ++m) {
            const u32 k = static_cast<u32>(rng.nextBelow(config.services));
            const u64 addr =
                pageAddr(b.base(sseg[k]), zipf(rng), rng);
            b.restrictPage(addr, vm::Access::Read);
            restricted.push_back(addr);
        }
        for (const Client &c : wave) {
            for (u64 r = 0; r < config.refsPerClient; ++r) {
                // Mostly service traffic (Zipf page), some scratch.
                if (rng.bernoulli(0.85)) {
                    const vm::AccessType type =
                        rng.bernoulli(config.storeFraction)
                            ? vm::AccessType::Store
                            : vm::AccessType::Load;
                    b.refAs(c.domain,
                            pageAddr(b.base(sseg[c.svc]), zipf(rng), rng),
                            type);
                } else {
                    b.refAs(c.domain,
                            pageAddr(b.base(c.scratch),
                                     rng.nextBelow(kScratchPages), rng),
                            vm::AccessType::Store);
                }
            }
        }
        for (u64 addr : restricted)
            b.unrestrictPage(addr);
        // Reap the wave: short-lived clients die, services persist.
        b.switchTo(service[0]);
        for (const Client &c : wave) {
            b.destroySegment(c.scratch);
            b.destroyDomain(c.domain);
        }
    }
    return b.take();
}

std::vector<Script>
standardScripts(u64 seed)
{
    ForkConfig fork;
    fork.seed = seed;
    PortalConfig portal;
    portal.seed = seed + 1;
    ServerMixConfig mix;
    mix.seed = seed + 2;
    return {buildForkScript(fork), buildPortalScript(portal),
            buildServerMixScript(mix)};
}

} // namespace sasos::scn
