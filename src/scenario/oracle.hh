/**
 * @file
 * Differential oracle over application scenarios.
 *
 * Same contract as the fault campaign oracle (fault/oracle.hh), but
 * the operation stream is a scenario Script instead of a synthetic
 * trace: the identical script is replayed on all three protection
 * models, clean and fault-injected, and the oracle asserts that
 * per-reference allow/deny decisions and the final canonical rights
 * state are bit-identical across all six runs, and that no model's
 * hardware view ever exceeds the canonical rights. Because scenarios
 * fork copy-on-write, share frames and churn domains, this locks the
 * new kernel paths under the same equivalence claim as plain
 * references. Cycle costs legitimately differ and are reported, not
 * compared.
 */

#ifndef SASOS_SCENARIO_ORACLE_HH
#define SASOS_SCENARIO_ORACLE_HH

#include <string>
#include <vector>

#include "fault/fault.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"

namespace sasos::scn
{

/** What one (model, injected?) scenario replay produced. */
struct ScenarioRun
{
    std::string model;
    bool injected = false;
    RunStats stats;
    u64 simCycles = 0;
    u64 protectionFaults = 0;
    u64 translationFaults = 0;
    u64 staleFaults = 0;
    u64 faultRetries = 0;
    u64 domainSwitches = 0;
    u64 forks = 0;
    u64 cowFaults = 0;
    u64 cowCopies = 0;
    u64 cowReuses = 0;
    /** Injector totals (0 in clean runs). */
    u64 injectedEvents = 0;
    u64 transients = 0;
    /** Per-reference allow/deny decisions, in script order. */
    std::vector<u8> decisions;
    /** Canonical rights of every surviving (domain, page) pair. */
    std::string rightsSnapshot;
    /** Hardware rights never exceeded canonical rights. */
    bool hwWithinCanonical = true;
};

/** Verdict for one scenario across all six runs. */
struct ScenarioVerdict
{
    std::string scenario;
    bool passed = false;
    /** Human-readable invariant violations (empty when passed). */
    std::vector<std::string> violations;
    /** Six runs: {plb, page-group, conventional} x {clean, injected}. */
    std::vector<ScenarioRun> runs;
    u64 references = 0;

    const ScenarioRun *find(const std::string &model, bool injected) const;
};

/**
 * Replay `script` on all three models, clean and injected under
 * `faults` (enabled is forced on/off per run), and compare.
 */
ScenarioVerdict runScenarioOracle(const Script &script,
                                  const fault::FaultConfig &faults);

/** The standard three scenarios through the oracle. */
std::vector<ScenarioVerdict>
runStandardOracle(u64 seed, const fault::FaultConfig &faults);

} // namespace sasos::scn

#endif // SASOS_SCENARIO_ORACLE_HH
