#include "scenario/runner.hh"

#include <algorithm>

#include "core/system.hh"
#include "sim/logging.hh"

namespace sasos::scn
{

std::optional<bool>
applyOp(core::System &sys, const Op &op, std::size_t index)
{
    os::Kernel &kernel = sys.kernel();
    switch (op.kind) {
      case OpKind::Ref:
        return sys.access(vm::VAddr(op.addr), op.type);
      case OpKind::Switch:
        kernel.switchTo(op.domain);
        return std::nullopt;
      case OpKind::CreateDomain: {
        const os::DomainId id =
            kernel.createDomain("d" + std::to_string(index));
        SASOS_ASSERT(id == op.domain, "scenario op ", index,
                     ": created domain ", id, ", script recorded ",
                     op.domain);
        return std::nullopt;
      }
      case OpKind::DestroyDomain:
        kernel.destroyDomain(op.domain);
        return std::nullopt;
      case OpKind::CreateSegment: {
        const vm::SegmentId id =
            kernel.createSegment("s" + std::to_string(index), op.pages);
        SASOS_ASSERT(id == op.seg, "scenario op ", index,
                     ": created segment ", id, ", script recorded ",
                     op.seg);
        return std::nullopt;
      }
      case OpKind::DestroySegment:
        kernel.destroySegment(op.seg);
        return std::nullopt;
      case OpKind::Attach:
        kernel.attach(op.domain, op.seg, op.rights);
        return std::nullopt;
      case OpKind::Detach:
        kernel.detach(op.domain, op.seg);
        return std::nullopt;
      case OpKind::ForkCow: {
        const vm::SegmentId id = kernel.forkSegmentCow(
            op.seg, op.domain, op.rights, "f" + std::to_string(index));
        SASOS_ASSERT(id == op.seg2, "scenario op ", index,
                     ": fork produced segment ", id,
                     ", script recorded ", op.seg2);
        return std::nullopt;
      }
      case OpKind::SetPageRights:
        kernel.setPageRights(op.domain, vm::pageOf(vm::VAddr(op.addr)),
                             op.rights);
        return std::nullopt;
      case OpKind::RestrictPage:
        kernel.restrictPage(vm::pageOf(vm::VAddr(op.addr)), op.rights);
        return std::nullopt;
      case OpKind::UnrestrictPage:
        kernel.unrestrictPage(vm::pageOf(vm::VAddr(op.addr)));
        return std::nullopt;
    }
    SASOS_PANIC("unreachable");
}

RunStats
runScript(core::System &sys, const Script &script, std::size_t first,
          std::size_t last, std::vector<u8> *decisions)
{
    RunStats stats;
    const std::size_t end = std::min(last, script.ops.size());
    for (std::size_t i = first; i < end; ++i) {
        const std::optional<bool> decision =
            applyOp(sys, script.ops[i], i);
        if (!decision)
            continue;
        ++stats.refs;
        ++(*decision ? stats.allowed : stats.denied);
        if (decisions != nullptr)
            decisions->push_back(*decision ? 1 : 0);
    }
    return stats;
}

} // namespace sasos::scn
