#include "scenario/oracle.hh"

#include <algorithm>
#include <sstream>

#include "core/system.hh"
#include "vm/address.hh"

namespace sasos::scn
{

namespace
{

ScenarioRun
runOne(const Script &script, core::ModelKind kind, bool injected,
       const fault::FaultConfig &faults)
{
    core::SystemConfig sc = core::SystemConfig::forModel(kind);
    sc.faults = faults;
    sc.faults.enabled = injected;
    core::System sys(sc);

    ScenarioRun run;
    run.model = core::toString(kind);
    run.injected = injected;
    run.decisions.reserve(script.refs);
    run.stats = runScript(sys, script, 0, script.ops.size(),
                          &run.decisions);

    run.simCycles = sys.cycles().count();
    run.protectionFaults = sys.kernel().protectionFaults.value();
    run.translationFaults = sys.kernel().translationFaults.value();
    run.staleFaults = sys.kernel().staleFaults.value();
    run.faultRetries = sys.kernel().faultRetries.value();
    run.domainSwitches = sys.kernel().domainSwitches.value();
    run.forks = sys.kernel().forks.value();
    run.cowFaults = sys.kernel().cowFaults.value();
    run.cowCopies = sys.kernel().cowCopies.value();
    run.cowReuses = sys.kernel().cowReuses.value();
    if (sys.injector() != nullptr) {
        run.injectedEvents = sys.injector()->injected.value();
        run.transients = sys.injector()->transients.value();
    }

    // Final architectural state over whatever the scenario left alive:
    // canonical rights of every surviving domain on every surviving
    // page, plus hardware-never-exceeds-canonical.
    std::ostringstream snapshot;
    const std::vector<vm::SegmentId> segs = sys.state().segments.liveIds();
    for (const auto &[id, domain] : sys.state().domains()) {
        for (vm::SegmentId seg_id : segs) {
            const vm::Segment *seg = sys.state().segments.find(seg_id);
            for (u64 page = 0; page < seg->pages; ++page) {
                const vm::Vpn vpn(seg->firstPage.number() + page);
                const vm::Access canonical =
                    sys.kernel().canonicalRights(id, vpn);
                snapshot << static_cast<char>(
                    '0' + static_cast<u8>(canonical));
                const vm::Access hw = sys.model().effectiveRights(id, vpn);
                if (!vm::includes(canonical, hw))
                    run.hwWithinCanonical = false;
            }
        }
    }
    run.rightsSnapshot = snapshot.str();
    return run;
}

std::string
runName(const ScenarioRun &run)
{
    return run.model + (run.injected ? "+faults" : "+clean");
}

} // namespace

const ScenarioRun *
ScenarioVerdict::find(const std::string &model, bool injected) const
{
    for (const ScenarioRun &run : runs) {
        if (run.model == model && run.injected == injected)
            return &run;
    }
    return nullptr;
}

ScenarioVerdict
runScenarioOracle(const Script &script, const fault::FaultConfig &faults)
{
    ScenarioVerdict verdict;
    verdict.scenario = script.name;
    verdict.references = script.refs;

    const core::ModelKind kinds[] = {core::ModelKind::Plb,
                                     core::ModelKind::PageGroup,
                                     core::ModelKind::Conventional,
                                     core::ModelKind::Pkey};
    for (core::ModelKind kind : kinds) {
        for (bool injected : {false, true})
            verdict.runs.push_back(runOne(script, kind, injected, faults));
    }

    const ScenarioRun &baseline = verdict.runs.front();
    for (const ScenarioRun &run : verdict.runs) {
        if (run.decisions.size() != script.refs) {
            verdict.violations.push_back(
                script.name + "/" + runName(run) + ": replayed " +
                std::to_string(run.decisions.size()) + " references, " +
                "script has " + std::to_string(script.refs));
        }
        if (!run.hwWithinCanonical) {
            verdict.violations.push_back(
                script.name + "/" + runName(run) +
                ": hardware rights exceed canonical rights");
        }
        if (run.decisions != baseline.decisions) {
            std::size_t at = 0;
            const std::size_t limit =
                std::min(run.decisions.size(), baseline.decisions.size());
            while (at < limit && run.decisions[at] == baseline.decisions[at])
                ++at;
            verdict.violations.push_back(
                script.name + "/" + runName(run) +
                ": allow/deny diverges from " + runName(baseline) +
                " at reference " + std::to_string(at));
        }
        if (run.rightsSnapshot != baseline.rightsSnapshot) {
            verdict.violations.push_back(
                script.name + "/" + runName(run) +
                ": final canonical rights diverge from " +
                runName(baseline));
        }
    }
    verdict.passed = verdict.violations.empty();
    return verdict;
}

std::vector<ScenarioVerdict>
runStandardOracle(u64 seed, const fault::FaultConfig &faults)
{
    std::vector<ScenarioVerdict> verdicts;
    for (const Script &script : standardScripts(seed))
        verdicts.push_back(runScenarioOracle(script, faults));
    return verdicts;
}

} // namespace sasos::scn
