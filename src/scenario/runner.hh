/**
 * @file
 * Scenario replay: apply a Script's operations to a core::System.
 *
 * The runner holds no state of its own -- a script position plus the
 * System is the whole execution state -- so a run can be cut at any
 * op index, snapshotted and resumed (the snap tests' mid-scenario
 * round trip relies on this). Ref decisions are surfaced per
 * reference for the differential oracle and the lockstep equivalence
 * tests.
 */

#ifndef SASOS_SCENARIO_RUNNER_HH
#define SASOS_SCENARIO_RUNNER_HH

#include <cstddef>
#include <optional>
#include <vector>

#include "scenario/scenario.hh"

namespace sasos::core
{
class System;
}

namespace sasos::scn
{

/** Tally of one (partial) script replay. */
struct RunStats
{
    u64 refs = 0;
    u64 allowed = 0;
    u64 denied = 0;
};

/**
 * Apply one operation. Creation ops assert that the ids the system
 * hands out match the ids the builder recorded (any divergence means
 * the replayed machine is not the machine the script was built for).
 * @return the allow/deny decision for Ref ops, nullopt otherwise.
 */
std::optional<bool> applyOp(core::System &sys, const Op &op,
                            std::size_t index);

/**
 * Replay ops[first, last) (clamped to the script), appending per-Ref
 * decisions to `decisions` when given.
 */
RunStats runScript(core::System &sys, const Script &script,
                   std::size_t first = 0,
                   std::size_t last = static_cast<std::size_t>(-1),
                   std::vector<u8> *decisions = nullptr);

} // namespace sasos::scn

#endif // SASOS_SCENARIO_RUNNER_HH
