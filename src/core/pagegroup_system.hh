/**
 * @file
 * The page-group model machine: PA-RISC-style protection (Figure 2)
 * with the Wilkes & Sears LRU page-group cache.
 *
 * On every reference the on-chip TLB supplies the translation, the
 * page's access identifier (AID) and the group-wide Rights field; the
 * page-group cache then decides whether the executing domain may use
 * that group (with the per-domain write-disable bit). The two lookups
 * are sequential -- the second depends on the first -- which is the
 * cycle-time concern of Section 4.2 (bench_fig2).
 *
 * The grouping itself is policy, supplied by os::PageGroupManager:
 * segment = default group (attach/detach are O(1)), diverging pages
 * split into vector-keyed groups, inexpressible vectors alternate
 * between groups on faults.
 */

#ifndef SASOS_CORE_PAGEGROUP_SYSTEM_HH
#define SASOS_CORE_PAGEGROUP_SYSTEM_HH

#include <map>

#include "core/mem_path.hh"
#include "core/system_config.hh"
#include "hw/data_cache.hh"
#include "hw/pagegroup_cache.hh"
#include "hw/tlb.hh"
#include "os/page_group_manager.hh"
#include "os/protection_model.hh"
#include "sim/cycle_account.hh"
#include "sim/stats.hh"

namespace sasos::core
{

/** The page-group protection system. */
class PageGroupSystem : public os::ProtectionModel
{
  public:
    PageGroupSystem(const SystemConfig &config, os::VmState &state,
                    CycleAccount &account, stats::Group *parent);

    const char *name() const override { return "page-group"; }

    os::AccessResult access(os::DomainId domain, vm::VAddr va,
                            vm::AccessType type) override;

    os::BatchOutcome accessBatch(os::DomainId domain, const vm::VAddr *vas,
                                 u64 n, vm::AccessType type) override;

    /** @name Batched fast path (core::driveBatch)
     * accessFast() is access() with the hit path's Scalar bumps and
     * charge() calls deferred into a batch-local accumulator, plus a
     * one-entry memo that lets consecutive references to the same
     * (domain, page) replay the previous TLB + page-group resolution
     * -- stats deltas and replacement touches included -- without
     * re-probing either structure. flushBatch() folds the accumulator
     * into the real stats; the driver calls it once per chunk and
     * before every faulting return.
     */
    /// @{
    struct BatchAccum
    {
        Cycles refCycles{};
        u64 tlbLookups = 0;
        u64 tlbHits = 0;
        u64 pgLookups = 0;
        u64 pgHits = 0;
        u64 pgGlobalHits = 0;
    };

    os::AccessResult accessFast(os::DomainId domain, vm::VAddr va,
                                vm::AccessType type, BatchAccum &acc);
    void flushBatch(BatchAccum &acc);
    void invalidateBatchMemo() override { memo_.valid = false; }
    /// @}

    void onAttach(os::DomainId domain, const vm::Segment &seg,
                  vm::Access rights) override;
    void onDetach(os::DomainId domain, const vm::Segment &seg) override;
    void onSetPageRights(os::DomainId domain, vm::Vpn vpn,
                         vm::Access rights) override;
    void onSetPageRightsAllDomains(vm::Vpn vpn, vm::Access rights) override;
    void onClearPageRightsAllDomains(vm::Vpn vpn) override;
    void onSetSegmentRights(os::DomainId domain, const vm::Segment &seg,
                            vm::Access rights) override;
    void onDomainSwitch(os::DomainId from, os::DomainId to) override;
    void onPageMapped(vm::Vpn vpn, vm::Pfn pfn) override;
    void onPageUnmapped(vm::Vpn vpn, vm::Pfn pfn) override;
    void onDomainDestroyed(os::DomainId domain) override;
    void onSegmentDestroyed(const vm::Segment &seg) override;
    bool refreshAfterFault(os::DomainId domain, vm::Vpn vpn) override;
    vm::Access effectiveRights(os::DomainId domain, vm::Vpn vpn) override;

    void save(snap::SnapWriter &w) const override;
    void load(snap::SnapReader &r) override;

    /** @name Structure access for tests and benches */
    /// @{
    hw::Tlb &tlb() { return tlb_; }
    hw::PageGroupCache &pageGroupCache() { return pgCache_; }
    hw::DataCache &cache() { return mem_.l1(); }
    MemoryPath &memory() { return mem_; }
    os::PageGroupManager &manager() { return manager_; }
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar protectionDenies;
    stats::Scalar translationFaultsSeen;
    stats::Scalar pgCacheRefills;
    stats::Scalar groupMoves;
    stats::Scalar eagerReloads;
    stats::Scalar unionPurges;
    /// @}

  private:
    void charge(CostCategory category, Cycles cycles);

    /** Apply one injected perturbation to this machine's structures.
     * @return true if the reference must raise a transient fault. */
    bool applyPerturbation(const fault::Perturbation &p);

    /** Current domain, tracked from switch hooks for membership. */
    os::DomainId current_ = 0;

    /** Update (or drop) the TLB entry after a page regroups. */
    void syncTlbEntry(vm::Vpn vpn, const os::PageGroupState &st);

    /** Purge segment TLB entries when the default union changes. */
    void checkUnionChanged(const vm::Segment &seg);

    /** Pages of a segment that a segment-wide rights change must
     * individually regroup. */
    std::vector<vm::Vpn> regroupCandidates(const vm::Segment &seg) const;

    /**
     * The previous fast-path reference's TLB + page-group resolution.
     * Valid only between two consecutive accessFast() calls: every
     * full-path resolution overwrites or clears it, every maintenance
     * hook and per-call access() clears it, so a match guarantees
     * `entry` and both replacement locations are still live. The TLB
     * entry pointer is stable because the backing payload vector never
     * reallocates and slot reuse only happens on inserts, which clear
     * the memo first.
     */
    struct BatchMemo
    {
        bool valid = false;
        os::DomainId domain = 0;
        u64 vpn = 0;
        hw::TlbEntry *entry = nullptr;
        hw::AssocLoc tlbLoc{};
        /** Group 0: the check never probes the page-group array. */
        bool aidGlobal = false;
        hw::AssocLoc pgLoc{};
        bool writeDisable = false;
    };

    SystemConfig config_;
    os::VmState &state_;
    CycleAccount &account_;
    os::PageGroupManager manager_;
    hw::Tlb tlb_;
    hw::PageGroupCache pgCache_;
    MemoryPath mem_;
    BatchMemo memo_;
    /** Last Rights-field union seen per segment's default group. */
    std::map<vm::SegmentId, vm::Access> lastUnion_;
};

} // namespace sasos::core

#endif // SASOS_CORE_PAGEGROUP_SYSTEM_HH
