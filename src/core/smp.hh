/**
 * @file
 * Multiprocessor extension: per-CPU protection hardware over shared
 * kernel state.
 *
 * Section 4.1.3 notes that unmapping "is done with a small number of
 * instructions on each processor": on a multiprocessor, every CPU has
 * its own PLB / TLB / page-group cache / caches, and any protection
 * or translation change must be *shot down* on all of them, paying an
 * inter-processor interrupt per remote CPU plus that CPU's own
 * structure maintenance.
 *
 * BroadcastModel implements the ProtectionModel contract by fanning
 * kernel maintenance hooks out to one concrete model per CPU; the
 * reference path and per-CPU operations (domain switch, fault repair)
 * go only to the issuing CPU. SmpSystem is the multiprocessor
 * counterpart of System: one kernel, one canonical VmState, N CPUs,
 * with `runOn(cpu)` selecting the issuing processor.
 */

#ifndef SASOS_CORE_SMP_HH
#define SASOS_CORE_SMP_HH

#include <memory>
#include <vector>

#include "core/conventional_system.hh"
#include "core/pagegroup_system.hh"
#include "core/pkey_system.hh"
#include "core/plb_system.hh"
#include "core/system_config.hh"
#include "os/kernel.hh"

namespace sasos::core
{

/** Fans maintenance hooks out to one protection model per CPU. */
class BroadcastModel : public os::ProtectionModel
{
  public:
    BroadcastModel(const SystemConfig &config, unsigned cpus,
                   os::VmState &state, CycleAccount &account,
                   stats::Group *parent);
    ~BroadcastModel() override;

    const char *name() const override { return "smp-broadcast"; }

    /** Select the CPU that issues references and local operations. */
    void setCurrentCpu(unsigned cpu);
    unsigned currentCpu() const { return current_; }
    unsigned cpuCount() const { return static_cast<unsigned>(cpus_.size()); }

    /** The concrete model of one CPU (for stats and tests). */
    os::ProtectionModel &cpu(unsigned index);

    os::AccessResult access(os::DomainId domain, vm::VAddr va,
                            vm::AccessType type) override;

    void onAttach(os::DomainId domain, const vm::Segment &seg,
                  vm::Access rights) override;
    void onDetach(os::DomainId domain, const vm::Segment &seg) override;
    void onSetPageRights(os::DomainId domain, vm::Vpn vpn,
                         vm::Access rights) override;
    void onSetPageRightsAllDomains(vm::Vpn vpn, vm::Access rights) override;
    void onClearPageRightsAllDomains(vm::Vpn vpn) override;
    void onSetSegmentRights(os::DomainId domain, const vm::Segment &seg,
                            vm::Access rights) override;
    void onDomainSwitch(os::DomainId from, os::DomainId to) override;
    void onPageMapped(vm::Vpn vpn, vm::Pfn pfn) override;
    void onPageUnmapped(vm::Vpn vpn, vm::Pfn pfn) override;
    void onDomainDestroyed(os::DomainId domain) override;
    void onSegmentDestroyed(const vm::Segment &seg) override;
    bool refreshAfterFault(os::DomainId domain, vm::Vpn vpn) override;
    vm::Access effectiveRights(os::DomainId domain, vm::Vpn vpn) override;

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar shootdowns;
    stats::Scalar ipisSent;
    /// @}

  private:
    /** Charge the IPIs for interrupting every remote CPU. */
    void chargeShootdown();

    template <typename Fn>
    void
    broadcast(Fn fn)
    {
        chargeShootdown();
        for (auto &model : cpus_)
            fn(*model);
    }

    const SystemConfig &config_;
    CycleAccount &account_;
    /** Groups outlive the models that register stats into them. */
    std::vector<std::unique_ptr<stats::Group>> cpuGroups_;
    std::vector<std::unique_ptr<os::ProtectionModel>> cpus_;
    unsigned current_ = 0;
};

/** A shared-memory multiprocessor running the SASOS kernel. */
class SmpSystem
{
  public:
    SmpSystem(const SystemConfig &config, unsigned cpus);

    SmpSystem(const SmpSystem &) = delete;
    SmpSystem &operator=(const SmpSystem &) = delete;

    unsigned cpuCount() const { return broadcast_->cpuCount(); }

    /**
     * Make `cpu` the issuing processor and schedule `domain` on it.
     * (Domains are typically pinned one per CPU, e.g. DSM nodes.)
     */
    void runOn(unsigned cpu, os::DomainId domain);

    /** Issue a reference from the current CPU's current domain. */
    bool access(vm::VAddr va, vm::AccessType type);
    bool load(vm::VAddr va) { return access(va, vm::AccessType::Load); }
    bool store(vm::VAddr va) { return access(va, vm::AccessType::Store); }

    os::Kernel &kernel() { return *kernel_; }
    os::VmState &state() { return state_; }
    BroadcastModel &broadcast() { return *broadcast_; }
    CycleAccount &account() { return account_; }
    const CostModel &costs() const { return config_.costs; }
    Cycles cycles() const { return account_.total(); }
    stats::Group &statsRoot() { return statsRoot_; }

  private:
    SystemConfig config_;
    stats::Group statsRoot_;
    CycleAccount account_;
    os::VmState state_;
    std::unique_ptr<BroadcastModel> broadcast_;
    std::unique_ptr<os::Kernel> kernel_;
};

} // namespace sasos::core

#endif // SASOS_CORE_SMP_HH
