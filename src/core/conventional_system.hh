/**
 * @file
 * The conventional multiple-address-space baseline (Section 3.1).
 *
 * An ASID-tagged, software-loaded TLB (MIPS/Alpha style) whose entries
 * carry per-domain access rights alongside the translation. Running a
 * single address space OS on it works, but:
 *
 *  - sharing a page across N domains replicates its entry N times,
 *    shrinking the effective TLB;
 *  - rights changes affecting several domains must find and purge all
 *    replicas;
 *  - with ASIDs disabled (purgeTlbOnSwitch), every domain switch
 *    discards both protection *and* translation state, even though
 *    the translations are identical for all domains -- the paper's
 *    core criticism.
 */

#ifndef SASOS_CORE_CONVENTIONAL_SYSTEM_HH
#define SASOS_CORE_CONVENTIONAL_SYSTEM_HH

#include "core/mem_path.hh"
#include "core/system_config.hh"
#include "hw/data_cache.hh"
#include "hw/tlb.hh"
#include "os/protection_model.hh"
#include "os/vm_state.hh"
#include "sim/cycle_account.hh"
#include "sim/stats.hh"

namespace sasos::core
{

/** ASID-tagged-TLB baseline. */
class ConventionalSystem : public os::ProtectionModel
{
  public:
    ConventionalSystem(const SystemConfig &config, os::VmState &state,
                       CycleAccount &account, stats::Group *parent);

    const char *
    name() const override
    {
        return config_.purgeTlbOnSwitch ? "conventional-purge"
                                        : "conventional";
    }

    os::AccessResult access(os::DomainId domain, vm::VAddr va,
                            vm::AccessType type) override;

    os::BatchOutcome accessBatch(os::DomainId domain, const vm::VAddr *vas,
                                 u64 n, vm::AccessType type) override;

    /** @name Batched fast path (core::driveBatch)
     * accessFast() is access() with the hit path's Scalar bumps and
     * charge() calls deferred into a batch-local accumulator, plus a
     * one-entry memo that lets consecutive references to the same
     * (domain, page) replay the previous TLB resolution -- stats
     * deltas and replacement touch included -- without re-probing.
     * flushBatch() folds the accumulator into the real stats; the
     * driver calls it once per chunk and before every faulting return.
     */
    /// @{
    struct BatchAccum
    {
        Cycles refCycles{};
        u64 tlbLookups = 0;
        u64 tlbHits = 0;
    };

    os::AccessResult accessFast(os::DomainId domain, vm::VAddr va,
                                vm::AccessType type, BatchAccum &acc);
    void flushBatch(BatchAccum &acc);
    void invalidateBatchMemo() override { memo_.valid = false; }
    /// @}

    void onAttach(os::DomainId domain, const vm::Segment &seg,
                  vm::Access rights) override;
    void onDetach(os::DomainId domain, const vm::Segment &seg) override;
    void onSetPageRights(os::DomainId domain, vm::Vpn vpn,
                         vm::Access rights) override;
    void onSetPageRightsAllDomains(vm::Vpn vpn, vm::Access rights) override;
    void onClearPageRightsAllDomains(vm::Vpn vpn) override;
    void onSetSegmentRights(os::DomainId domain, const vm::Segment &seg,
                            vm::Access rights) override;
    void onDomainSwitch(os::DomainId from, os::DomainId to) override;
    void onPageMapped(vm::Vpn vpn, vm::Pfn pfn) override;
    void onPageUnmapped(vm::Vpn vpn, vm::Pfn pfn) override;
    void onDomainDestroyed(os::DomainId domain) override;
    void onSegmentDestroyed(const vm::Segment &seg) override;
    bool refreshAfterFault(os::DomainId domain, vm::Vpn vpn) override;
    vm::Access effectiveRights(os::DomainId domain, vm::Vpn vpn) override;

    void save(snap::SnapWriter &w) const override;
    void load(snap::SnapReader &r) override;

    /** @name Structure access for tests and benches */
    /// @{
    hw::Tlb &tlb() { return tlb_; }
    hw::DataCache &cache() { return mem_.l1(); }
    MemoryPath &memory() { return mem_; }
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar protectionDenies;
    stats::Scalar translationFaultsSeen;
    stats::Scalar switchPurges;
    stats::Scalar switchCacheFlushes;
    /// @}

  private:
    void charge(CostCategory category, Cycles cycles);

    /** Apply one injected perturbation to this machine's structures.
     * @return true if the reference must raise a transient fault. */
    bool applyPerturbation(const fault::Perturbation &p);

    /** The ASID used to tag entries (0 in purge-on-switch mode). */
    hw::DomainId tagOf(os::DomainId domain) const;

    /**
     * The previous fast-path reference's TLB resolution. Valid only
     * between two consecutive accessFast() calls: every full-path
     * resolution overwrites or clears it, every maintenance hook and
     * per-call access() clears it, so a match guarantees `entry` is
     * still the live entry that resolved this (domain, page).
     */
    struct BatchMemo
    {
        bool valid = false;
        os::DomainId domain = 0;
        u64 vpn = 0;
        hw::TlbEntry *entry = nullptr;
        hw::AssocLoc loc{};
    };

    SystemConfig config_;
    os::VmState &state_;
    CycleAccount &account_;
    hw::Tlb tlb_;
    MemoryPath mem_;
    BatchMemo memo_;
};

} // namespace sasos::core

#endif // SASOS_CORE_CONVENTIONAL_SYSTEM_HH
