/**
 * @file
 * Configuration for a simulated machine + kernel (a "system").
 *
 * Presets exist for the paper's three architectures; every knob can
 * be overridden individually or through Options key=value pairs (see
 * fromOptions), which is how the benches expose parameter sweeps.
 */

#ifndef SASOS_CORE_SYSTEM_CONFIG_HH
#define SASOS_CORE_SYSTEM_CONFIG_HH

#include <string>

#include "fault/fault.hh"
#include "hw/data_cache.hh"
#include "hw/key_cache.hh"
#include "hw/pagegroup_cache.hh"
#include "hw/plb.hh"
#include "hw/tlb.hh"
#include "sim/cost_model.hh"
#include "sim/options.hh"

namespace sasos::core
{

/** Which protection architecture the system implements. */
enum class ModelKind
{
    /** Domain-page model: PLB + VIVT cache + off-chip TLB. */
    Plb,
    /** Page-group model: combined on-chip TLB + page-group cache. */
    PageGroup,
    /** Multiple-address-space baseline: ASID-tagged TLB. */
    Conventional,
    /** Protection-key model: untagged TLB carrying key ids + a
     * per-domain key-permission register file (MPK style). */
    Pkey,
};

const char *toString(ModelKind kind);
ModelKind parseModelKind(const std::string &name);

/** Full machine + kernel configuration. */
struct SystemConfig
{
    ModelKind model = ModelKind::Plb;

    hw::DataCacheConfig cache;
    /** Optional second-level cache (physically indexed and tagged).
     * The PLB system's off-chip translation TLB sits alongside its
     * controller (Section 3.2.1). */
    bool l2Enabled = true;
    hw::DataCacheConfig l2;
    hw::TlbConfig tlb;
    hw::PlbConfig plb;
    hw::PageGroupCacheConfig pgCache;
    hw::KeyCacheConfig keyCache;

    /** Pkey model: size of the protection-key id space the kernel
     * assigns from; exhausting it forces key recycling. */
    u64 pkeys = 16;

    /** Page-group model: eagerly reload the page-group cache on a
     * domain switch instead of faulting entries in (Section 4.1.4). */
    bool eagerPgReload = false;
    /** Conventional model: no ASID tags; purge the TLB on switches. */
    bool purgeTlbOnSwitch = false;
    /** Conventional model with a virtually indexed cache: flush the
     * data cache on domain switches to avoid homonyms, as multiple
     * address space systems must (Section 2.2, e.g. the i860). A
     * single address space system never needs this. */
    bool flushCacheOnSwitch = false;
    /** PLB model: allow one super-page entry to cover an aligned
     * segment (Section 4.3). */
    bool superPagePlb = true;

    /** Physical memory size in frames. */
    u64 frames = u64{1} << 18; // 1 GB of 4 KB frames
    u64 seed = 42;

    /** Deterministic fault-injection schedule (off by default). */
    fault::FaultConfig faults;

    CostModel costs;

    /** Preset for the paper's PLB system (Figure 1). */
    static SystemConfig plbSystem();
    /** Preset for the page-group system (Figure 2 + LRU PID cache). */
    static SystemConfig pageGroupSystem();
    /** Preset for the original PA-RISC with four PID registers. */
    static SystemConfig pidRegisterSystem();
    /** Preset for the conventional ASID-tagged baseline. */
    static SystemConfig conventionalSystem();
    /** Preset for a conventional machine that purges on switches. */
    static SystemConfig purgingConventionalSystem();
    /** Preset for a multiple-address-space machine with a virtually
     * indexed, virtually tagged cache: it must flush the cache and
     * purge the untagged TLB on every process switch to avoid
     * homonyms (Section 2.2; the i860's requirement). */
    static SystemConfig flushingVcacheSystem();
    /** Preset for the protection-key (MPK-style) system. */
    static SystemConfig pkeySystem();

    /** Preset chosen by ModelKind. */
    static SystemConfig forModel(ModelKind kind);

    /**
     * Apply option overrides (model=, cacheKB=, lineBytes=,
     * cacheWays=, cacheOrg=, tlbEntries=, tlbWays=, plbEntries=,
     * pgEntries=, kprEntries=, pkeys=, eagerPg=, purgeOnSwitch=,
     * superPage=, frames=, seed=, faults=, fault_seed=, fault_rate=,
     * cost.* ...). Starts from the preset for `model=` if given, else
     * from *this.
     */
    static SystemConfig fromOptions(const Options &options,
                                    const SystemConfig &base);
};

} // namespace sasos::core

#endif // SASOS_CORE_SYSTEM_CONFIG_HH
