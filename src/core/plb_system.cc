#include "core/plb_system.hh"

#include <bit>

#include "core/system.hh" // driveBatch
#include "obs/tracer.hh"
#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::core
{

PlbSystem::PlbSystem(const SystemConfig &config, os::VmState &state,
                     CycleAccount &account, stats::Group *parent)
    : statsGroup(parent, "plbSystem"),
      protectionDenies(&statsGroup, "protectionDenies",
                       "references denied by the PLB"),
      translationFaultsSeen(&statsGroup, "translationFaults",
                            "references that found no translation"),
      superPageFills(&statsGroup, "superPageFills",
                     "PLB refills using a super-page entry"),
      pageFills(&statsGroup, "pageFills",
                "PLB refills using a page-size entry"),
      writebackTranslations(&statsGroup, "writebackTranslations",
                            "victim translations for VIVT writebacks"),
      config_(config), state_(state), account_(account),
      plb_(config.plb.clusters > 1
               ? nullptr
               : std::make_unique<hw::Plb>(config.plb, &statsGroup)),
      clplb_(config.plb.clusters > 1
                 ? std::make_unique<hw::ClusterPlb>(config.plb, &statsGroup)
                 : nullptr),
      tlb_(config.tlb, &statsGroup, "tlb2"),
      mem_(config_, &statsGroup, account)
{
    SASOS_ASSERT(config.tlb.kind == hw::TlbKind::TranslationOnly,
                 "the PLB system uses a translation-only TLB");
    plbPageUniform_ =
        withEngine([](const auto &engine) { return engine.pageUniform(); });
}

void
PlbSystem::charge(CostCategory category, Cycles cycles)
{
    account_.charge(category, cycles);
}

int
PlbSystem::refillShift(os::DomainId domain, vm::Vpn vpn,
                       const vm::Segment *seg) const
{
    (void)domain;
    // The clustered engine shards by VPN range, so a super-page entry
    // could straddle a bank boundary: refills stay page-grain.
    if (clplb_ != nullptr)
        return vm::kPageShift;
    if (!config_.superPagePlb || seg == nullptr ||
        !seg->isPowerOfTwoAligned()) {
        return vm::kPageShift;
    }
    const int shift =
        vm::kPageShift + std::countr_zero(seg->pages);
    const auto &shifts = config_.plb.sizeShifts;
    if (std::find(shifts.begin(), shifts.end(), shift) == shifts.end())
        return vm::kPageShift;
    // A super-page entry carries one rights value for the whole
    // segment, so it is only usable while no page in the segment has
    // per-page state (overrides or masks) for any domain.
    if (!state_.pagesWithStateIn(seg->firstPage, seg->pages).empty())
        return vm::kPageShift;
    // And the domain's own rights must be uniform: the segment grant
    // with no page override (checked above globally).
    (void)vpn;
    return shift;
}

bool
PlbSystem::applyPerturbation(const fault::Perturbation &p)
{
    Rng &rng = injector_->rng();
    if (p.evictProtection) {
        withEngine([&](auto &engine) { return engine.evictOne(rng); });
        SASOS_OBS_EVENT(obs::EventKind::PlbEvict, account_.total().count(),
                        0, 1);
    }
    if (p.evictTranslation) {
        tlb_.evictOne(rng);
        SASOS_OBS_EVENT(obs::EventKind::TlbEvict, account_.total().count(),
                        0, 1);
    }
    if (p.evictData) {
        // A displaced dirty line is written back; the data survives,
        // only its cache residency is lost.
        if (auto victim = mem_.l1().evictRandomLine(rng); victim &&
            victim->dirty) {
            charge(CostCategory::Reference, config_.costs.writeback);
        }
        SASOS_OBS_EVENT(obs::EventKind::DCacheEvict,
                        account_.total().count(), 0, 1);
    }
    if (p.flushProtection) {
        withEngine([](auto &engine) { return engine.purgeAll(); });
        SASOS_OBS_EVENT(obs::EventKind::ProtectionFlush,
                        account_.total().count(), 0, 0);
    }
    if (p.delayFill)
        charge(CostCategory::Refill, config_.costs.faultDelay);
    return p.transientFault;
}

os::AccessResult
PlbSystem::access(os::DomainId domain, vm::VAddr va, vm::AccessType type)
{
    // A per-call access (kernel fault-retry excursions included) may
    // insert or evict behind the coalescing memo; drop it.
    memo_.valid = false;

    if (injector_ != nullptr) {
        const fault::Perturbation p = injector_->tick();
        if (p.any() && applyPerturbation(p)) {
            // Transient protection fault: resolved by the kernel like
            // any stale-entry deny, so the retried reference reaches
            // the clean run's outcome.
            return {false, os::FaultKind::Protection};
        }
    }

    const vm::Vpn vpn = vm::pageOf(va);
    const bool store = type == vm::AccessType::Store;

    // One base cycle covers the parallel PLB + VIVT cache probe.
    charge(CostCategory::Reference, config_.costs.l1Hit);

    // --- Protection side: PLB, refilled from the protection tables.
    vm::Access rights;
    if (auto match = withEngine(
            [&](auto &engine) { return engine.lookup(domain, va); })) {
        rights = match->rights;
        SASOS_OBS_EVENT(obs::EventKind::PlbHit, account_.total().count(),
                        va.raw(), domain);
    } else {
        SASOS_OBS_EVENT(obs::EventKind::PlbMiss, account_.total().count(),
                        va.raw(), domain);
        charge(CostCategory::Refill, config_.costs.plbRefill);
        rights = state_.effectiveRights(domain, vpn);
        const vm::Segment *seg = state_.segments.findByPage(vpn);
        const int shift = refillShift(domain, vpn, seg);
        if (shift > vm::kPageShift)
            ++superPageFills;
        else
            ++pageFills;
        withEngine([&](auto &engine) {
            engine.insert(domain, va, shift, rights);
            return 0;
        });
        SASOS_OBS_EVENT(obs::EventKind::PlbFill, account_.total().count(),
                        va.raw(), static_cast<u64>(shift));
    }

    // --- Data side: the cache is probed in parallel.
    const bool cache_hit = mem_.l1Access(va, std::nullopt, store);
    SASOS_OBS_EVENT(cache_hit ? obs::EventKind::DCacheHit
                              : obs::EventKind::DCacheMiss,
                    account_.total().count(), va.raw(), store);

    if (!vm::includes(rights, vm::requiredRight(type))) {
        ++protectionDenies;
        return {false, os::FaultKind::Protection};
    }

    if (cache_hit) {
        state_.pageTable.markReferenced(vpn);
        if (store)
            state_.pageTable.markDirty(vpn);
        return {true, os::FaultKind::None};
    }

    // Cache miss: translation is needed, from the off-chip TLB.
    const auto pfn = translateOffChip(vpn);
    if (!pfn) {
        ++translationFaultsSeen;
        return {false, os::FaultKind::Translation};
    }

    const vm::PAddr pa = vm::translate(va, *pfn);
    if (auto victim = mem_.fillFromBeyond(va, pa, store)) {
        SASOS_OBS_EVENT(obs::EventKind::DCacheEvict,
                        account_.total().count(), va.raw(),
                        victim->dirty);
        if (victim->dirty) {
            // A VIVT writeback needs the victim's translation.
            ++writebackTranslations;
            const vm::Vpn victim_vpn(victim->vline * config_.cache.lineBytes
                                     >> vm::kPageShift);
            (void)translateOffChip(victim_vpn);
            charge(CostCategory::Reference, config_.costs.writeback);
        }
    }

    state_.pageTable.markReferenced(vpn);
    if (store)
        state_.pageTable.markDirty(vpn);
    return {true, os::FaultKind::None};
}

os::BatchOutcome
PlbSystem::accessBatch(os::DomainId domain, const vm::VAddr *vas, u64 n,
                      vm::AccessType type)
{
    return driveBatch(*this, domain, vas, n, type);
}

os::AccessResult
PlbSystem::accessFast(os::DomainId domain, vm::VAddr va,
                      vm::AccessType type, BatchAccum &acc)
{
    const vm::Vpn vpn = vm::pageOf(va);
    const bool store = type == vm::AccessType::Store;

    // One base cycle covers the parallel PLB + VIVT cache probe.
    acc.refCycles += config_.costs.l1Hit;

    // --- Protection side: memo for same-page runs, else the PLB.
    vm::Access rights;
    if (memo_.valid && memo_.domain == domain &&
        memo_.vpn == vpn.number()) {
        // The previous reference resolved this page: replay exactly
        // what its PLB hit would do again -- the stats deltas and the
        // replacement touch -- without re-scanning the set.
        ++acc.plbLookups;
        ++acc.plbHits;
        if (clplb_ != nullptr)
            clplb_->touchHit(memo_.vpn, memo_.loc);
        else
            plb_->touchHit(memo_.loc);
        rights = memo_.rights;
    } else {
        // From here on the memo describes a stale reference, and the
        // refill below may evict the entry it points at.
        memo_.valid = false;
        hw::AssocLoc loc;
        if (auto match = withEngine([&](auto &engine) {
                return engine.lookup(domain, va, &loc);
            })) {
            rights = match->rights;
            if (plbPageUniform_) {
                memo_.valid = true;
                memo_.domain = domain;
                memo_.vpn = vpn.number();
                memo_.rights = rights;
                memo_.loc = loc;
            }
        } else {
            charge(CostCategory::Refill, config_.costs.plbRefill);
            rights = state_.effectiveRights(domain, vpn);
            const vm::Segment *seg = state_.segments.findByPage(vpn);
            const int shift = refillShift(domain, vpn, seg);
            if (shift > vm::kPageShift)
                ++superPageFills;
            else
                ++pageFills;
            // The filled way is unknown without re-probing, so a fill
            // does not memoize; the next same-page reference's hit
            // establishes the memo.
            withEngine([&](auto &engine) {
                engine.insert(domain, va, shift, rights);
                return 0;
            });
        }
    }

    // --- Data side: the cache is probed in parallel.
    const bool cache_hit = mem_.l1Access(va, std::nullopt, store);

    if (!vm::includes(rights, vm::requiredRight(type))) {
        ++protectionDenies;
        return {false, os::FaultKind::Protection};
    }

    if (cache_hit) {
        state_.pageTable.markReferenced(vpn);
        if (store)
            state_.pageTable.markDirty(vpn);
        return {true, os::FaultKind::None};
    }

    // Cache miss: translation is needed, from the off-chip TLB.
    const auto pfn = translateOffChip(vpn);
    if (!pfn) {
        ++translationFaultsSeen;
        return {false, os::FaultKind::Translation};
    }

    const vm::PAddr pa = vm::translate(va, *pfn);
    if (auto victim = mem_.fillFromBeyond(va, pa, store)) {
        if (victim->dirty) {
            ++writebackTranslations;
            const vm::Vpn victim_vpn(victim->vline * config_.cache.lineBytes
                                     >> vm::kPageShift);
            (void)translateOffChip(victim_vpn);
            charge(CostCategory::Reference, config_.costs.writeback);
        }
    }

    state_.pageTable.markReferenced(vpn);
    if (store)
        state_.pageTable.markDirty(vpn);
    return {true, os::FaultKind::None};
}

void
PlbSystem::flushBatch(BatchAccum &acc)
{
    account_.charge(CostCategory::Reference, acc.refCycles);
    // Memo replays never reach a bank, so in clustered mode they fold
    // into the cluster-level scalars (documented to exceed bank sums).
    if (clplb_ != nullptr) {
        clplb_->lookups += acc.plbLookups;
        clplb_->hits += acc.plbHits;
    } else {
        plb_->lookups += acc.plbLookups;
        plb_->hits += acc.plbHits;
    }
    acc = {};
}

std::optional<vm::Pfn>
PlbSystem::translateOffChip(vm::Vpn vpn)
{
    charge(CostCategory::Reference, config_.costs.offChipTlb);
    if (hw::TlbEntry *entry = tlb_.lookup(vpn)) {
        SASOS_OBS_EVENT(obs::EventKind::TlbHit, account_.total().count(),
                        vm::baseOf(vpn).raw(), 0);
        return entry->pfn;
    }
    SASOS_OBS_EVENT(obs::EventKind::TlbMiss, account_.total().count(),
                    vm::baseOf(vpn).raw(), 0);
    charge(CostCategory::Refill, config_.costs.tlbRefill);
    const vm::Translation *translation = state_.pageTable.lookup(vpn);
    if (translation == nullptr)
        return std::nullopt;
    hw::TlbEntry entry;
    entry.pfn = translation->pfn;
    tlb_.insert(vpn, entry);
    SASOS_OBS_EVENT(obs::EventKind::TlbFill, account_.total().count(),
                    vm::baseOf(vpn).raw(), translation->pfn.number());
    return translation->pfn;
}

void
PlbSystem::onAttach(os::DomainId domain, const vm::Segment &seg,
                    vm::Access rights)
{
    // Nothing: rights are faulted into the PLB lazily, page (or
    // segment) at a time. This is the Table 1 "Attach Segment" row.
    (void)domain;
    (void)seg;
    (void)rights;
    memo_.valid = false;
}

void
PlbSystem::onDetach(os::DomainId domain, const vm::Segment &seg)
{
    // Worst case from the paper: inspect every PLB entry and drop
    // those for the (segment, domain) pair.
    memo_.valid = false;
    const auto result = protPurgeRange(domain, seg.firstPage, seg.pages);
    charge(CostCategory::KernelWork,
           result.scanned * config_.costs.purgeScanEntry +
               result.invalidated * config_.costs.invalidateEntry);
}

void
PlbSystem::onSetPageRights(os::DomainId domain, vm::Vpn vpn,
                           vm::Access rights)
{
    // "Changing a domain's access rights to a page simply requires
    // updating a PLB entry." A covering super-page entry no longer
    // has uniform rights and must be shattered first. The hardware
    // carries the *effective* rights (a global mask may narrow the
    // new grant).
    (void)rights;
    memo_.valid = false;
    const vm::VAddr va = vm::baseOf(vpn);
    const vm::Access effective = state_.effectiveRights(domain, vpn);
    if (auto match = protPeek(domain, va)) {
        withEngine([&](auto &engine) {
            if (match->sizeShift != vm::kPageShift) {
                engine.invalidateCovering(domain, va);
                engine.insert(domain, va, vm::kPageShift, effective);
            } else {
                engine.updateRights(domain, va, effective);
            }
            return 0;
        });
        charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
    }
}

void
PlbSystem::onSetPageRightsAllDomains(vm::Vpn vpn, vm::Access rights)
{
    // Restricting every domain: intersect any cached entry for the
    // page, whatever domain it belongs to. The cost scales with the
    // PLB size (a scan), as the paper notes for such operations.
    memo_.valid = false;
    const auto result = withEngine([&](auto &engine) {
        return engine.intersectRightsRange(vpn, 1, rights);
    });
    charge(CostCategory::KernelWork,
           result.scanned * config_.costs.purgeScanEntry);
}

void
PlbSystem::onClearPageRightsAllDomains(vm::Vpn vpn)
{
    // Per-domain rights apply again; entries were narrowed, so purge
    // and let refills read the canonical tables.
    memo_.valid = false;
    const auto result = protPurgeRange(std::nullopt, vpn, 1);
    charge(CostCategory::KernelWork,
           result.scanned * config_.costs.purgeScanEntry +
               result.invalidated * config_.costs.invalidateEntry);
}

void
PlbSystem::onSetSegmentRights(os::DomainId domain, const vm::Segment &seg,
                              vm::Access rights)
{
    // Inspect each entry, dropping this domain's entries for the
    // segment; refills pick up the new grant (and respect any page
    // overrides, which an in-place blanket update could not).
    (void)rights;
    memo_.valid = false;
    const auto result = protPurgeRange(domain, seg.firstPage, seg.pages);
    charge(CostCategory::KernelWork,
           result.scanned * config_.costs.purgeScanEntry +
               result.invalidated * config_.costs.invalidateEntry);
}

void
PlbSystem::onDomainSwitch(os::DomainId from, os::DomainId to)
{
    // The whole point: a switch writes the PD-ID register, nothing
    // else. Neither the PLB nor the TLB is purged. The memo is keyed
    // by domain, but drop it anyway: one uniform rule for every hook.
    (void)from;
    (void)to;
    memo_.valid = false;
    charge(CostCategory::DomainSwitch, config_.costs.registerWrite);
}

void
PlbSystem::onPageMapped(vm::Vpn vpn, vm::Pfn pfn)
{
    // Translations are loaded lazily by the off-chip TLB.
    (void)vpn;
    (void)pfn;
    memo_.valid = false;
}

void
PlbSystem::onPageUnmapped(vm::Vpn vpn, vm::Pfn pfn)
{
    // Purge the translation and flush the page's lines. The PLB is
    // deliberately left alone: a stale entry may still allow the
    // access, but the missing translation faults it (Section 4.1.3).
    memo_.valid = false;
    tlb_.purgePage(vpn);
    charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
    mem_.flushPage(vpn, pfn);
}

void
PlbSystem::onDomainDestroyed(os::DomainId domain)
{
    memo_.valid = false;
    const auto result = withEngine(
        [&](auto &engine) { return engine.purgeDomain(domain); });
    charge(CostCategory::KernelWork,
           result.scanned * config_.costs.purgeScanEntry +
               result.invalidated * config_.costs.invalidateEntry);
}

void
PlbSystem::onSegmentDestroyed(const vm::Segment &seg)
{
    memo_.valid = false;
    const auto result =
        protPurgeRange(std::nullopt, seg.firstPage, seg.pages);
    charge(CostCategory::KernelWork,
           result.scanned * config_.costs.purgeScanEntry +
               result.invalidated * config_.costs.invalidateEntry);
}

bool
PlbSystem::refreshAfterFault(os::DomainId domain, vm::Vpn vpn)
{
    // The canonical tables allow the access, so the PLB holds a stale
    // deny; replace it with a fresh page-grain entry.
    memo_.valid = false;
    const vm::VAddr va = vm::baseOf(vpn);
    withEngine([&](auto &engine) {
        engine.invalidateCovering(domain, va);
        engine.insert(domain, va, vm::kPageShift,
                      state_.effectiveRights(domain, vpn));
        return 0;
    });
    charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
    return true;
}

vm::Access
PlbSystem::effectiveRights(os::DomainId domain, vm::Vpn vpn)
{
    // The domain-page model expresses the canonical state exactly.
    return state_.effectiveRights(domain, vpn);
}

void
PlbSystem::save(snap::SnapWriter &w) const
{
    // Distinct section tags per organization: a flat image refuses to
    // load into a clustered run (and vice versa) at the tag check,
    // and golden flat images keep their original byte layout.
    if (clplb_ != nullptr) {
        w.putTag("clplbmodel");
        clplb_->save(w);
    } else {
        w.putTag("plbmodel");
        plb_->save(w);
    }
    tlb_.save(w);
    mem_.save(w);
}

void
PlbSystem::load(snap::SnapReader &r)
{
    memo_.valid = false;
    if (clplb_ != nullptr) {
        r.expectTag("clplbmodel");
        clplb_->load(r);
    } else {
        r.expectTag("plbmodel");
        plb_->load(r);
    }
    tlb_.load(r);
    mem_.load(r);
}

hw::PurgeResult
PlbSystem::protPurgeRange(std::optional<hw::DomainId> domain, vm::Vpn first,
                          u64 pages)
{
    memo_.valid = false;
    return withEngine([&](auto &engine) {
        return engine.purgeRange(domain, first, pages);
    });
}

std::optional<hw::PlbMatch>
PlbSystem::protPeek(os::DomainId domain, vm::VAddr va) const
{
    return withEngine(
        [&](const auto &engine) { return engine.peek(domain, va); });
}

std::size_t
PlbSystem::protOccupancy() const
{
    return withEngine(
        [](const auto &engine) { return engine.occupancy(); });
}

u64
PlbSystem::protMisses() const
{
    return withEngine(
        [](const auto &engine) { return engine.misses.value(); });
}

u64
PlbSystem::protPurgeScans() const
{
    if (clplb_ == nullptr)
        return plb_->purgeScans.value();
    u64 scans = 0;
    for (unsigned i = 0; i < clplb_->clusters(); ++i)
        scans += clplb_->bank(i).purgeScans.value();
    return scans;
}


} // namespace sasos::core
