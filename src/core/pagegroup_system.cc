#include "core/pagegroup_system.hh"

#include <algorithm>

#include "core/system.hh" // driveBatch
#include "obs/tracer.hh"
#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::core
{

PageGroupSystem::PageGroupSystem(const SystemConfig &config,
                                 os::VmState &state, CycleAccount &account,
                                 stats::Group *parent)
    : statsGroup(parent, "pgSystem"),
      protectionDenies(&statsGroup, "protectionDenies",
                       "references denied by the protection check"),
      translationFaultsSeen(&statsGroup, "translationFaults",
                            "references that found no translation"),
      pgCacheRefills(&statsGroup, "pgCacheRefills",
                     "page-group cache misses refilled by the kernel"),
      groupMoves(&statsGroup, "groupMoves",
                 "TLB entries rewritten because a page changed group"),
      eagerReloads(&statsGroup, "eagerReloads",
                   "page-group cache entries loaded eagerly on switch"),
      unionPurges(&statsGroup, "unionPurges",
                  "TLB range purges from default-rights changes"),
      config_(config), state_(state), account_(account),
      manager_(state, &statsGroup),
      tlb_(config.tlb, &statsGroup, "tlb"),
      pgCache_(config.pgCache, &statsGroup),
      mem_(config_, &statsGroup, account)
{
    SASOS_ASSERT(config.tlb.kind == hw::TlbKind::PageGroup,
                 "the page-group system uses a page-group TLB");
    // A freed AID may be recycled for a group with different members;
    // any PID still cached for it must go (and with it any coalescing
    // memo that could be replaying the stale group).
    manager_.onGroupFreed = [this](os::GroupId aid) {
        memo_.valid = false;
        pgCache_.remove(aid);
    };
}

void
PageGroupSystem::charge(CostCategory category, Cycles cycles)
{
    account_.charge(category, cycles);
}

bool
PageGroupSystem::applyPerturbation(const fault::Perturbation &p)
{
    Rng &rng = injector_->rng();
    if (p.evictProtection) {
        pgCache_.evictOne(rng);
        SASOS_OBS_EVENT(obs::EventKind::PgCacheEvict,
                        account_.total().count(), 0, 1);
    }
    if (p.evictTranslation) {
        tlb_.evictOne(rng);
        SASOS_OBS_EVENT(obs::EventKind::TlbEvict, account_.total().count(),
                        0, 1);
    }
    if (p.evictData) {
        if (auto victim = mem_.l1().evictRandomLine(rng); victim &&
            victim->dirty) {
            charge(CostCategory::Reference, config_.costs.writeback);
        }
        SASOS_OBS_EVENT(obs::EventKind::DCacheEvict,
                        account_.total().count(), 0, 1);
    }
    if (p.flushProtection) {
        pgCache_.purgeAll();
        SASOS_OBS_EVENT(obs::EventKind::ProtectionFlush,
                        account_.total().count(), 0, 0);
    }
    if (p.delayFill)
        charge(CostCategory::Refill, config_.costs.faultDelay);
    return p.transientFault;
}

os::AccessResult
PageGroupSystem::access(os::DomainId domain, vm::VAddr va,
                        vm::AccessType type)
{
    // A per-call access (kernel fault-retry excursions included) may
    // insert or evict behind the coalescing memo; drop it.
    memo_.valid = false;

    if (injector_ != nullptr) {
        const fault::Perturbation p = injector_->tick();
        if (p.any() && applyPerturbation(p)) {
            current_ = domain;
            return {false, os::FaultKind::Protection};
        }
    }

    const vm::Vpn vpn = vm::pageOf(va);
    const bool store = type == vm::AccessType::Store;
    current_ = domain;

    // Base cycle; the TLB lookup is on the critical path but costs no
    // extra cycles when it hits (tlbLookup defaults to 0; the cycle-
    // time consequence of the *sequential* page-group check is modeled
    // analytically in bench_fig2).
    charge(CostCategory::Reference, config_.costs.l1Hit);
    charge(CostCategory::Reference, config_.costs.tlbLookup);

    // --- Combined TLB: translation + AID + group rights.
    hw::TlbEntry *entry = tlb_.lookup(vpn);
    if (entry == nullptr) {
        SASOS_OBS_EVENT(obs::EventKind::TlbMiss, account_.total().count(),
                        va.raw(), domain);
        charge(CostCategory::Refill, config_.costs.tlbRefill);
        const vm::Translation *translation = state_.pageTable.lookup(vpn);
        if (translation == nullptr) {
            ++translationFaultsSeen;
            return {false, os::FaultKind::Translation};
        }
        const os::PageGroupState st = manager_.pageState(vpn);
        hw::TlbEntry fresh;
        fresh.pfn = translation->pfn;
        fresh.aid = st.aid;
        fresh.rights = st.rights;
        tlb_.insert(vpn, fresh);
        entry = tlb_.find(vpn);
        SASOS_ASSERT(entry != nullptr, "TLB lost a fresh entry");
        SASOS_OBS_EVENT(obs::EventKind::TlbFill, account_.total().count(),
                        va.raw(), st.aid);
    } else {
        SASOS_OBS_EVENT(obs::EventKind::TlbHit, account_.total().count(),
                        va.raw(), entry->aid);
    }

    // --- Page-group check, dependent on the TLB output.
    bool write_disable = false;
    if (auto pid = pgCache_.lookup(entry->aid)) {
        write_disable = pid->writeDisable;
        SASOS_OBS_EVENT(obs::EventKind::PgCacheHit,
                        account_.total().count(), va.raw(), entry->aid);
    } else if (manager_.domainHasGroup(domain, entry->aid)) {
        // Lightweight kernel refill of the page-group cache.
        SASOS_OBS_EVENT(obs::EventKind::PgCacheMiss,
                        account_.total().count(), va.raw(), entry->aid);
        ++pgCacheRefills;
        charge(CostCategory::Refill, config_.costs.pgCacheRefill);
        write_disable = manager_.writeDisabled(domain, entry->aid);
        pgCache_.insert(entry->aid, write_disable);
        SASOS_OBS_EVENT(obs::EventKind::PgCacheFill,
                        account_.total().count(), va.raw(), entry->aid);
    } else {
        SASOS_OBS_EVENT(obs::EventKind::PgCacheMiss,
                        account_.total().count(), va.raw(), entry->aid);
        ++protectionDenies;
        return {false, os::FaultKind::Protection};
    }

    vm::Access rights = entry->rights;
    if (write_disable)
        rights = rights & ~vm::Access::Write;
    if (!vm::includes(rights, vm::requiredRight(type))) {
        ++protectionDenies;
        return {false, os::FaultKind::Protection};
    }

    // --- Data cache (physical tag from the TLB's translation).
    const vm::PAddr pa = vm::translate(va, entry->pfn);
    if (mem_.l1Access(va, pa, store)) {
        SASOS_OBS_EVENT(obs::EventKind::DCacheHit,
                        account_.total().count(), va.raw(), store);
    } else {
        SASOS_OBS_EVENT(obs::EventKind::DCacheMiss,
                        account_.total().count(), va.raw(), store);
        if (auto victim = mem_.fillFromBeyond(va, pa, store)) {
            SASOS_OBS_EVENT(obs::EventKind::DCacheEvict,
                            account_.total().count(), va.raw(),
                            victim->dirty);
            if (victim->dirty)
                charge(CostCategory::Reference, config_.costs.writeback);
        }
    }

    entry->referenced = true;
    if (store)
        entry->dirty = true;
    state_.pageTable.markReferenced(vpn);
    if (store)
        state_.pageTable.markDirty(vpn);
    return {true, os::FaultKind::None};
}

os::BatchOutcome
PageGroupSystem::accessBatch(os::DomainId domain, const vm::VAddr *vas,
                             u64 n, vm::AccessType type)
{
    return driveBatch(*this, domain, vas, n, type);
}

os::AccessResult
PageGroupSystem::accessFast(os::DomainId domain, vm::VAddr va,
                            vm::AccessType type, BatchAccum &acc)
{
    const vm::Vpn vpn = vm::pageOf(va);
    const bool store = type == vm::AccessType::Store;
    current_ = domain;

    acc.refCycles += config_.costs.l1Hit;
    acc.refCycles += config_.costs.tlbLookup;

    hw::TlbEntry *entry;
    bool write_disable;
    if (memo_.valid && memo_.domain == domain &&
        memo_.vpn == vpn.number()) {
        // The previous reference resolved this page: replay exactly
        // what its TLB hit and page-group check would do again -- the
        // stats deltas and both replacement touches -- without
        // re-probing either structure.
        entry = memo_.entry;
        ++acc.tlbLookups;
        ++acc.tlbHits;
        tlb_.touchHit(memo_.tlbLoc);
        ++acc.pgLookups;
        if (memo_.aidGlobal) {
            ++acc.pgGlobalHits;
        } else {
            ++acc.pgHits;
            pgCache_.touchHit(memo_.pgLoc);
        }
        write_disable = memo_.writeDisable;
    } else {
        // From here on the memo describes a stale reference, and the
        // refills below may evict the entries it points at.
        memo_.valid = false;

        // --- Combined TLB: translation + AID + group rights.
        hw::AssocLoc tlb_loc;
        bool tlb_hit = true;
        entry = tlb_.lookup(vpn, 0, &tlb_loc);
        if (entry == nullptr) {
            tlb_hit = false;
            charge(CostCategory::Refill, config_.costs.tlbRefill);
            const vm::Translation *translation =
                state_.pageTable.lookup(vpn);
            if (translation == nullptr) {
                ++translationFaultsSeen;
                return {false, os::FaultKind::Translation};
            }
            const os::PageGroupState st = manager_.pageState(vpn);
            hw::TlbEntry fresh;
            fresh.pfn = translation->pfn;
            fresh.aid = st.aid;
            fresh.rights = st.rights;
            tlb_.insert(vpn, fresh);
            entry = tlb_.find(vpn);
            SASOS_ASSERT(entry != nullptr, "TLB lost a fresh entry");
        }

        // --- Page-group check, dependent on the TLB output.
        hw::AssocLoc pg_loc;
        bool pg_memoizable = false;
        if (auto pid = pgCache_.lookup(entry->aid, &pg_loc)) {
            write_disable = pid->writeDisable;
            pg_memoizable = true;
        } else if (manager_.domainHasGroup(domain, entry->aid)) {
            ++pgCacheRefills;
            charge(CostCategory::Refill, config_.costs.pgCacheRefill);
            write_disable = manager_.writeDisabled(domain, entry->aid);
            // A fill's way is unknown without re-probing, so this
            // reference does not memoize; the next same-page one does.
            pgCache_.insert(entry->aid, write_disable);
        } else {
            ++protectionDenies;
            return {false, os::FaultKind::Protection};
        }

        if (tlb_hit && pg_memoizable) {
            memo_.valid = true;
            memo_.domain = domain;
            memo_.vpn = vpn.number();
            memo_.entry = entry;
            memo_.tlbLoc = tlb_loc;
            memo_.aidGlobal = entry->aid == hw::kGlobalGroup;
            memo_.pgLoc = pg_loc;
            memo_.writeDisable = write_disable;
        }
    }

    vm::Access rights = entry->rights;
    if (write_disable)
        rights = rights & ~vm::Access::Write;
    if (!vm::includes(rights, vm::requiredRight(type))) {
        ++protectionDenies;
        return {false, os::FaultKind::Protection};
    }

    // --- Data cache (physical tag from the TLB's translation).
    const vm::PAddr pa = vm::translate(va, entry->pfn);
    if (!mem_.l1Access(va, pa, store)) {
        if (auto victim = mem_.fillFromBeyond(va, pa, store)) {
            if (victim->dirty)
                charge(CostCategory::Reference, config_.costs.writeback);
        }
    }

    entry->referenced = true;
    if (store)
        entry->dirty = true;
    state_.pageTable.markReferenced(vpn);
    if (store)
        state_.pageTable.markDirty(vpn);
    return {true, os::FaultKind::None};
}

void
PageGroupSystem::flushBatch(BatchAccum &acc)
{
    account_.charge(CostCategory::Reference, acc.refCycles);
    tlb_.lookups += acc.tlbLookups;
    tlb_.hits += acc.tlbHits;
    pgCache_.lookups += acc.pgLookups;
    pgCache_.hits += acc.pgHits;
    pgCache_.globalHits += acc.pgGlobalHits;
    acc = {};
}

void
PageGroupSystem::syncTlbEntry(vm::Vpn vpn, const os::PageGroupState &st)
{
    // The rewritten entry may be the one the coalescing memo replays.
    memo_.valid = false;
    if (tlb_.setGroup(vpn, st.aid, st.rights)) {
        ++groupMoves;
        charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
    }
}

void
PageGroupSystem::checkUnionChanged(const vm::Segment &seg)
{
    memo_.valid = false;
    const vm::Access now = manager_.defaultRightsOf(seg.id);
    auto it = lastUnion_.find(seg.id);
    if (it != lastUnion_.end() && it->second == now)
        return;
    const bool had = it != lastUnion_.end();
    lastUnion_[seg.id] = now;
    if (!had)
        return; // first observation; no stale entries yet
    // The Rights field cached in TLB entries of the default group is
    // stale; purge the segment's range so refills pick up the new
    // union. (Pages in split groups repurge via their own hooks.)
    ++unionPurges;
    const auto result =
        tlb_.purgeRange(std::nullopt, seg.firstPage, seg.pages);
    charge(CostCategory::KernelWork,
           result.scanned * config_.costs.purgeScanEntry +
               result.invalidated * config_.costs.invalidateEntry);
    // The current domain's write-disable bit for the default group is
    // derived from (its grant vs the union), so a union change can
    // flip it; drop the cached PID and let it refill.
    if (pgCache_.remove(manager_.defaultGroupOf(seg.id)))
        charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
}

void
PageGroupSystem::onAttach(os::DomainId domain, const vm::Segment &seg,
                          vm::Access rights)
{
    (void)rights;
    // Table 1: "add the page-group identifier for the segment to the
    // page-group cache" -- O(1), the model's headline advantage.
    memo_.valid = false;
    const os::GroupId aid = manager_.defaultGroupOf(seg.id);
    manager_.invalidateSegmentDefaults(seg.id);
    if (domain == current_ && current_ != 0 &&
        manager_.domainHasGroup(domain, aid)) {
        pgCache_.insert(aid, manager_.writeDisabled(domain, aid));
        charge(CostCategory::KernelWork, config_.costs.pgCacheLoadEntry);
    }
    checkUnionChanged(seg);
}

void
PageGroupSystem::onDetach(os::DomainId domain, const vm::Segment &seg)
{
    // Table 1: "remove the appropriate page-group identifier from the
    // page-group cache".
    memo_.valid = false;
    for (os::GroupId aid : manager_.groupsOfSegment(seg.id)) {
        if (domain == current_ && pgCache_.remove(aid))
            charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
    }
    // Pages with per-page state -- or parked in fault-driven split
    // groups -- may regroup now that this domain's rights are gone.
    for (vm::Vpn vpn : regroupCandidates(seg))
        syncTlbEntry(vpn, manager_.regroupPage(vpn));
    checkUnionChanged(seg);
}

void
PageGroupSystem::onSetPageRights(os::DomainId domain, vm::Vpn vpn,
                                 vm::Access rights)
{
    (void)domain;
    (void)rights;
    // Section 4.1.2: a per-domain change on a shared page may move
    // the page between groups (a split); the manager decides.
    memo_.valid = false;
    const os::PageGroupState st = manager_.regroupPage(vpn);
    syncTlbEntry(vpn, st);
    // If the current domain gained a new group, it will fault it into
    // the page-group cache lazily (pgCacheRefill).
}

void
PageGroupSystem::onSetPageRightsAllDomains(vm::Vpn vpn, vm::Access rights)
{
    (void)rights;
    // Table 1 paging rows: the page moves to the pager-private (or
    // null) group -- a single TLB entry update.
    memo_.valid = false;
    syncTlbEntry(vpn, manager_.regroupPage(vpn));
}

void
PageGroupSystem::onClearPageRightsAllDomains(vm::Vpn vpn)
{
    memo_.valid = false;
    syncTlbEntry(vpn, manager_.regroupPage(vpn));
}

void
PageGroupSystem::onSetSegmentRights(os::DomainId domain,
                                    const vm::Segment &seg,
                                    vm::Access rights)
{
    (void)domain;
    (void)rights;
    memo_.valid = false;
    manager_.invalidateSegmentDefaults(seg.id);
    // Membership and D bits are derived, so a grant change that keeps
    // the union intact (e.g. dropping one domain to read-only via its
    // D bit) costs nothing here; a union change purges the range.
    checkUnionChanged(seg);
    if (domain == current_) {
        // The current domain's D bit for the default group may have
        // changed; drop the cached PID so it refills correctly.
        const os::GroupId aid = manager_.defaultGroupOf(seg.id);
        if (pgCache_.remove(aid))
            charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
    }
    // Pages in split groups whose vectors include this domain change
    // too; regroup them.
    for (vm::Vpn vpn : regroupCandidates(seg))
        syncTlbEntry(vpn, manager_.regroupPage(vpn));
}

std::vector<vm::Vpn>
PageGroupSystem::regroupCandidates(const vm::Segment &seg) const
{
    std::vector<vm::Vpn> pages =
        state_.pagesWithStateIn(seg.firstPage, seg.pages);
    for (vm::Vpn vpn :
         manager_.assignedPagesIn(seg.firstPage, seg.pages)) {
        pages.push_back(vpn);
    }
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    return pages;
}

void
PageGroupSystem::onDomainSwitch(os::DomainId from, os::DomainId to)
{
    (void)from;
    current_ = to;
    // Section 4.1.4: purge the page-group cache; reload eagerly or
    // let protection faults reload it lazily.
    memo_.valid = false;
    pgCache_.purgeAll();
    charge(CostCategory::DomainSwitch, config_.costs.registerWrite);
    if (config_.eagerPgReload) {
        const auto groups = manager_.groupsOf(to);
        std::vector<os::GroupId> with_bits;
        with_bits.reserve(groups.size());
        for (os::GroupId aid : groups)
            with_bits.push_back(aid);
        u64 loaded = 0;
        for (os::GroupId aid : with_bits) {
            if (loaded >= pgCache_.capacity())
                break;
            pgCache_.insert(aid, manager_.writeDisabled(to, aid));
            ++loaded;
        }
        eagerReloads += loaded;
        charge(CostCategory::DomainSwitch,
               loaded * config_.costs.pgCacheLoadEntry);
    }
}

void
PageGroupSystem::onPageMapped(vm::Vpn vpn, vm::Pfn pfn)
{
    (void)vpn;
    (void)pfn;
    memo_.valid = false;
}

void
PageGroupSystem::onPageUnmapped(vm::Vpn vpn, vm::Pfn pfn)
{
    memo_.valid = false;
    if (tlb_.purgePage(vpn))
        charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
    mem_.flushPage(vpn, pfn);
}

void
PageGroupSystem::onDomainDestroyed(os::DomainId domain)
{
    (void)domain;
    // Memberships are derived from canonical state, which the kernel
    // has already cleared; cached PIDs belong to the current domain,
    // which cannot be the one destroyed.
    memo_.valid = false;
}

void
PageGroupSystem::onSegmentDestroyed(const vm::Segment &seg)
{
    memo_.valid = false;
    for (os::GroupId aid : manager_.groupsOfSegment(seg.id))
        pgCache_.remove(aid);
    manager_.releaseSegment(seg.id);
    lastUnion_.erase(seg.id);
    const auto result =
        tlb_.purgeRange(std::nullopt, seg.firstPage, seg.pages);
    charge(CostCategory::KernelWork,
           result.scanned * config_.costs.purgeScanEntry +
               result.invalidated * config_.costs.invalidateEntry);
}

bool
PageGroupSystem::refreshAfterFault(os::DomainId domain, vm::Vpn vpn)
{
    // The canonical tables allow the access but the hardware said no:
    // the page's group does not serve this domain (stale Rights
    // field, or an inexpressible vector grouped toward another
    // domain). Regroup toward the faulting domain and refresh the
    // TLB and page-group cache.
    memo_.valid = false;
    const os::PageGroupState st = manager_.regroupPageFor(vpn, domain);
    syncTlbEntry(vpn, st);
    if (tlb_.peek(vpn) == nullptr) {
        // Not cached; the next access refills from the manager.
    }
    if (!manager_.domainHasGroup(domain, st.aid))
        return false;
    pgCache_.insert(st.aid, manager_.writeDisabled(domain, st.aid));
    charge(CostCategory::KernelWork, config_.costs.pgCacheLoadEntry);
    return true;
}

vm::Access
PageGroupSystem::effectiveRights(os::DomainId domain, vm::Vpn vpn)
{
    return manager_.hwRights(domain, vpn);
}

void
PageGroupSystem::save(snap::SnapWriter &w) const
{
    w.putTag("pgmodel");
    manager_.save(w);
    tlb_.save(w);
    pgCache_.save(w);
    mem_.save(w);
    w.put16(current_);
    w.put64(lastUnion_.size());
    for (const auto &[seg, rights] : lastUnion_) {
        w.put32(seg);
        w.put8(static_cast<u8>(rights));
    }
}

void
PageGroupSystem::load(snap::SnapReader &r)
{
    r.expectTag("pgmodel");
    memo_.valid = false;
    manager_.load(r);
    tlb_.load(r);
    pgCache_.load(r);
    mem_.load(r);
    current_ = static_cast<os::DomainId>(r.get16());
    lastUnion_.clear();
    const u32 union_count = r.getCount(5);
    for (u32 i = 0; i < union_count; ++i) {
        const vm::SegmentId seg = r.get32();
        const u8 raw = r.get8();
        if (raw > static_cast<u8>(vm::Access::All))
            SASOS_FATAL("corrupt snapshot: invalid rights byte ", u32(raw));
        if (!lastUnion_.emplace(seg, static_cast<vm::Access>(raw)).second)
            SASOS_FATAL("corrupt snapshot: segment ", seg,
                        " has two recorded unions");
    }
}


} // namespace sasos::core
