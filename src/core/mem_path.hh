/**
 * @file
 * The data-side memory hierarchy shared by all three machines: the
 * first-level cache (whose indexing/tagging varies by model) backed
 * by an optional physically indexed second-level cache.
 *
 * The models keep ownership of the protection and translation logic;
 * this helper only walks a reference down the hierarchy, charging the
 * cost model at each level, and performs page flushes across both
 * levels on unmap.
 */

#ifndef SASOS_CORE_MEM_PATH_HH
#define SASOS_CORE_MEM_PATH_HH

#include <memory>
#include <optional>

#include "core/system_config.hh"
#include "hw/data_cache.hh"
#include "sim/cycle_account.hh"
#include "sim/stats.hh"

namespace sasos::core
{

/** L1 (+ optional L2) data path. */
class MemoryPath
{
  public:
    MemoryPath(const SystemConfig &config, stats::Group *parent,
               CycleAccount &account);

    hw::DataCache &l1() { return l1_; }
    /** Null when the system is configured without an L2. */
    hw::DataCache *l2() { return l2_.get(); }

    /**
     * L1 probe (no charge; the base pipeline cycle covers it).
     * @param pa required unless the L1 is virtually tagged.
     */
    bool
    l1Access(vm::VAddr va, std::optional<vm::PAddr> pa, bool store)
    {
        return l1_.access(va, pa, store);
    }

    /**
     * Complete an L1 miss once the translation is known: read the
     * line from the L2 (charging l2Hit) or memory (charging memory;
     * the L2 is filled on the way). @return the evicted dirty L1
     * victim, if any -- the caller charges its writeback (and, for a
     * virtually tagged L1, the victim's translation).
     */
    std::optional<hw::CacheVictim> fillFromBeyond(vm::VAddr va,
                                                  vm::PAddr pa,
                                                  bool store);

    /** Flush one page from both levels (unmap); charges flush costs. */
    void flushPage(vm::Vpn vpn, std::optional<vm::Pfn> pfn);

    /** Flush the whole L1 (multiple-address-space homonym avoidance
     * on a virtually indexed cache); charges flush costs. @return
     * lines invalidated. */
    u64 flushAllL1();

    /** @name Snapshot hooks (both cache levels) */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

  private:
    void charge(CostCategory category, Cycles cycles);

    const SystemConfig &config_;
    CycleAccount &account_;
    hw::DataCache l1_;
    std::unique_ptr<hw::DataCache> l2_;
};

} // namespace sasos::core

#endif // SASOS_CORE_MEM_PATH_HH
