#include "core/mc/explorer.hh"

#include "core/system_config.hh"
#include "obs/tracer.hh"
#include "sim/parallel.hh"

namespace sasos::core::mc
{

namespace
{

/** Tids are partitioned per cell so traces merge deterministically:
 * cell i's cores use [i * kTidStride + 1, ...). */
constexpr u32 kTidStride = 64;

RunSummary
runOne(const McConfig &config)
{
    McSystem system(config);
    const McResult result = system.run();
    RunSummary summary;
    summary.scheduleSeed = config.scheduleSeed;
    summary.completed = result.completed;
    summary.failed = result.failed;
    summary.shootdowns = result.shootdowns;
    summary.staleWindowRefs = result.staleWindowRefs;
    summary.staleGrants = result.staleGrants;
    summary.invariantViolations = result.invariantViolations;
    summary.hwViolations = result.hwViolations;
    summary.cycles = result.cycles;
    summary.firstViolation = result.firstViolation;
    summary.quiescentOutcomes = result.quiescentOutcomes;
    summary.coreOutcomes = result.coreOutcomes;
    return summary;
}

} // namespace

ExplorerResult
explore(const ExplorerConfig &config)
{
    ExplorerResult result;
    result.runs.resize(config.seeds);
    ThreadPool pool(config.threads);
    parallelFor(pool, config.seeds, [&](u64 i) {
        McConfig cell = config.base;
        cell.scheduleSeed = config.firstSeed + i;
        cell.tidBase = static_cast<u32>(i) * kTidStride + 1;
        result.runs[i] = runOne(cell);
        obs::setThreadId(0);
    });
    for (const RunSummary &run : result.runs) {
        result.totalShootdowns += run.shootdowns;
        result.totalStaleGrants += run.staleGrants;
        result.totalViolations +=
            run.invariantViolations + run.hwViolations;
        if (result.firstViolation.empty() && !run.firstViolation.empty())
            result.firstViolation = run.firstViolation;
    }
    return result;
}

CrossModelResult
exploreCrossModel(const ExplorerConfig &config)
{
    constexpr ModelKind kModels[] = {ModelKind::Plb, ModelKind::PageGroup,
                                     ModelKind::Conventional,
                                     ModelKind::Pkey};
    constexpr unsigned kModelCount = 4;
    CrossModelResult result;
    result.runs.resize(config.seeds);
    ThreadPool pool(config.threads);
    parallelFor(pool, config.seeds, [&](u64 i) {
        CrossModelRun &run = result.runs[i];
        run.scheduleSeed = config.firstSeed + i;
        // The four models of one seed run serially in this cell so
        // their interleavings (and tids) stay directly comparable.
        for (unsigned m = 0; m < kModelCount; ++m) {
            McConfig cell = config.base;
            const SystemConfig preset = SystemConfig::forModel(kModels[m]);
            cell.system = preset;
            cell.system.frames = config.base.system.frames;
            cell.system.seed = config.base.system.seed;
            cell.scheduleSeed = run.scheduleSeed;
            cell.tidBase = static_cast<u32>(i) * kTidStride + m * 16 + 1;
            run.byModel.push_back(runOne(cell));
        }
        obs::setThreadId(0);
        run.outcomesAgree = true;
        for (unsigned m = 1; m < kModelCount; ++m) {
            run.outcomesAgree =
                run.outcomesAgree &&
                run.byModel[m - 1].quiescentOutcomes ==
                    run.byModel[m].quiescentOutcomes;
        }
    });
    for (const CrossModelRun &run : result.runs) {
        if (!run.outcomesAgree)
            ++result.disagreements;
        for (const RunSummary &model : run.byModel) {
            result.totalViolations +=
                model.invariantViolations + model.hwViolations;
            if (result.firstViolation.empty() &&
                !model.firstViolation.empty()) {
                result.firstViolation = model.firstViolation;
            }
        }
    }
    return result;
}

} // namespace sasos::core::mc
