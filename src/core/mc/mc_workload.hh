/**
 * @file
 * Deterministic per-core step scripts for the multi-core engine.
 *
 * Each core runs one CoreScript: a seeded generator producing a fixed
 * number of steps, where a step is either a memory reference (drawn
 * from the shared workload stream generators: Zipf over the shared
 * segment, uniform over the core's private segment) or a kernel
 * protection operation (the attach/revoke churn that triggers
 * shootdowns). A script is a pure function of (seed, core index,
 * segment layout), so tests can replay the identical step sequence
 * against a plain single-core System to check that a core's outcomes
 * project onto its sequential run.
 */

#ifndef SASOS_CORE_MC_MC_WORKLOAD_HH
#define SASOS_CORE_MC_MC_WORKLOAD_HH

#include <memory>

#include "os/kernel.hh"
#include "sim/random.hh"
#include "vm/address.hh"
#include "vm/rights.hh"
#include "vm/segment.hh"
#include "workload/address_stream.hh"

namespace sasos::core::mc
{

/** Per-core workload shape. */
struct McWorkloadConfig
{
    /** Steps per core (references plus kernel operations). */
    u64 stepsPerCore = 2000;
    u64 sharedPages = 64;
    /** Pages of each core's private segment (0 = no private segs). */
    u64 privatePages = 16;
    /** Probability a reference targets the shared segment. */
    double sharedProb = 0.7;
    double storeProb = 0.3;
    /** Probability a step is a kernel protection op, not a reference. */
    double churnProb = 0.0;
    /** Probability a step copy-on-write-forks the core's private
     * segment (needs privatePages > 0). Each fork re-shares the
     * private frames and write-protects them, so subsequent private
     * stores exercise the CoW fault path under deferred shootdowns. */
    double forkProb = 0.0;
    /** Churn the core's own private segment instead of the shared one
     * (core-local rights traffic: shootdowns still fire, but cores'
     * outcomes stay independent -- the projection-test workload). */
    bool privateChurn = false;
    /** Zipf skew of the shared reference stream. */
    double zipfTheta = 0.6;
    u64 seed = 1;
};

/** What one script step does. */
enum class StepKind : u8
{
    /** Issue a memory reference at `va` of kind `type`. */
    Ref,
    /** kernel.setPageRights(domain, vpn, rights). */
    SetPageRights,
    /** kernel.clearPageRights(domain, vpn). */
    ClearPageRights,
    /** kernel.restrictPage(vpn, rights). */
    RestrictPage,
    /** kernel.unrestrictPage(vpn). */
    UnrestrictPage,
    /** kernel.setSegmentRights(domain, seg, rights). */
    SetSegmentRights,
    /** kernel.detach(domain, seg). */
    Detach,
    /** kernel.attach(domain, seg, rights). */
    Attach,
    /** kernel.forkSegmentCow(seg, domain, rights, ...). */
    ForkCow,
};

/** One decoded step; unused fields stay at their defaults. */
struct Step
{
    StepKind kind = StepKind::Ref;
    vm::VAddr va;
    vm::AccessType type = vm::AccessType::Load;
    vm::Vpn vpn;
    vm::SegmentId seg = vm::kInvalidSegment;
    vm::Access rights = vm::Access::None;
};

/** The segment layout a script generates addresses for. */
struct McLayout
{
    vm::SegmentId sharedSeg = vm::kInvalidSegment;
    vm::VAddr sharedBase;
    u64 sharedPages = 0;
    vm::SegmentId privateSeg = vm::kInvalidSegment;
    vm::VAddr privateBase;
    u64 privatePages = 0;
};

/** Deterministic step generator for one core. */
class CoreScript
{
  public:
    CoreScript(const McWorkloadConfig &config, unsigned core,
               os::DomainId domain, const McLayout &layout);
    ~CoreScript();

    CoreScript(const CoreScript &) = delete;
    CoreScript &operator=(const CoreScript &) = delete;

    os::DomainId domain() const { return domain_; }
    u64 stepsLeft() const { return stepsLeft_; }
    bool done() const { return stepsLeft_ == 0; }

    /** Generate the next step; must not be called when done(). */
    Step next();

    /** @name Snapshot hooks (mid-script position: rng, steps left,
     * tracked protection state, stream positions) */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

  private:
    Step makeRef();
    Step makeChurnOp();

    McWorkloadConfig config_;
    os::DomainId domain_;
    McLayout layout_;
    Rng rng_;
    u64 stepsLeft_;
    std::unique_ptr<wl::AddressStream> sharedStream_;
    std::unique_ptr<wl::AddressStream> privateStream_;
    /** Script-tracked protection state, so ops stay well-formed
     * (detach only while attached, unrestrict only after restrict...). */
    bool attached_ = true;
    bool segmentRestricted_ = false;
    std::vector<vm::Vpn> overriddenPages_;
    std::vector<vm::Vpn> maskedPages_;
};

/** Apply a non-reference step through the kernel on behalf of
 * `domain`. Shared by the engine and the tests' sequential replays. */
void applyKernelStep(os::Kernel &kernel, os::DomainId domain,
                     const Step &step);

} // namespace sasos::core::mc

#endif // SASOS_CORE_MC_MC_WORKLOAD_HH
