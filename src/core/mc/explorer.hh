/**
 * @file
 * The shootdown schedule explorer: replay one multi-core workload
 * under K different deterministic interleavings and check the safety
 * invariants on every one.
 *
 * Each schedule seed is one self-contained McSystem (own hardware,
 * kernel, canonical state), so seeds parallelize across a ThreadPool
 * exactly like sweep cells: results land in slot `i`, tids are
 * partitioned per cell, and the output is bit-identical at any host
 * thread count. The invariants each run is checked against:
 *
 *  - no reference is granted beyond canonical rights unless the core
 *    had an unacked shootdown pending (stale-rights invariant);
 *  - at every shootdown quiescence point and at the end of the run,
 *    each core's hardware grants a subset of canonical rights,
 *    probed from the real structures (PLB / TLB / group manager);
 *  - across protection models, references issued at local quiescence
 *    agree on allow/deny (the schedule is model-independent, so the
 *    quiescent outcome vectors are directly comparable).
 */

#ifndef SASOS_CORE_MC_EXPLORER_HH
#define SASOS_CORE_MC_EXPLORER_HH

#include <string>
#include <vector>

#include "core/mc/mc_system.hh"

namespace sasos::core::mc
{

/** Explorer configuration. */
struct ExplorerConfig
{
    /** The run every seed replays (scheduleSeed is overridden). */
    McConfig base;
    /** Number of schedule seeds to explore. */
    u64 seeds = 64;
    u64 firstSeed = 1;
    /** Host worker threads (1 = inline; results are identical). */
    unsigned threads = 1;
};

/** Per-seed summary, slot-indexed by (scheduleSeed - firstSeed). */
struct RunSummary
{
    u64 scheduleSeed = 0;
    u64 completed = 0;
    u64 failed = 0;
    u64 shootdowns = 0;
    u64 staleWindowRefs = 0;
    u64 staleGrants = 0;
    u64 invariantViolations = 0;
    u64 hwViolations = 0;
    u64 cycles = 0;
    std::string firstViolation;
    std::vector<u8> quiescentOutcomes;
    std::vector<std::vector<u8>> coreOutcomes;
};

/** Aggregate verdict over all explored schedules. */
struct ExplorerResult
{
    std::vector<RunSummary> runs;
    u64 totalShootdowns = 0;
    u64 totalStaleGrants = 0;
    u64 totalViolations = 0; // invariant + hw-subset, summed
    /** First violation across runs ("" when every schedule passed). */
    std::string firstViolation;

    bool passed() const { return totalViolations == 0; }
};

/** Explore K interleavings of `config.base` for one model. */
ExplorerResult explore(const ExplorerConfig &config);

/** One schedule seed compared across the three protection models:
 * quiescent outcome vectors must be identical. */
struct CrossModelRun
{
    u64 scheduleSeed = 0;
    /** plb, page-group, conventional, in that order. */
    std::vector<RunSummary> byModel;
    bool outcomesAgree = false;
};

struct CrossModelResult
{
    std::vector<CrossModelRun> runs;
    u64 disagreements = 0;
    u64 totalViolations = 0;
    std::string firstViolation;

    bool passed() const
    {
        return disagreements == 0 && totalViolations == 0;
    }
};

/**
 * Explore K interleavings, running each against all three protection
 * models (base.system's structure sizes are replaced by each model's
 * preset) and comparing their quiescent allow/deny vectors.
 */
CrossModelResult exploreCrossModel(const ExplorerConfig &config);

} // namespace sasos::core::mc

#endif // SASOS_CORE_MC_EXPLORER_HH
