#include "core/mc/mc_workload.hh"

#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::core::mc
{

namespace
{

/** Decorrelate per-core rng streams from the base seed. */
u64
coreSeed(u64 seed, unsigned core)
{
    return seed * 1000003u + core;
}

} // namespace

CoreScript::CoreScript(const McWorkloadConfig &config, unsigned core,
                       os::DomainId domain, const McLayout &layout)
    : config_(config), domain_(domain), layout_(layout),
      rng_(coreSeed(config.seed, core)), stepsLeft_(config.stepsPerCore)
{
    SASOS_ASSERT(layout_.sharedPages > 0, "scripts need a shared segment");
    sharedStream_ = std::make_unique<wl::ZipfPageStream>(
        layout_.sharedBase, layout_.sharedPages, config_.zipfTheta,
        coreSeed(config_.seed, core) ^ 0x5a5a5a5a);
    if (layout_.privatePages > 0) {
        privateStream_ = std::make_unique<wl::UniformStream>(
            layout_.privateBase, layout_.privatePages * vm::kPageBytes);
    }
}

CoreScript::~CoreScript() = default;

Step
CoreScript::next()
{
    SASOS_ASSERT(stepsLeft_ > 0, "script exhausted");
    --stepsLeft_;
    if (config_.forkProb > 0.0 &&
        layout_.privateSeg != vm::kInvalidSegment &&
        rng_.bernoulli(config_.forkProb)) {
        Step step;
        step.kind = StepKind::ForkCow;
        step.seg = layout_.privateSeg;
        step.rights = vm::Access::ReadWrite;
        return step;
    }
    if (config_.churnProb > 0.0 && rng_.bernoulli(config_.churnProb))
        return makeChurnOp();
    return makeRef();
}

Step
CoreScript::makeRef()
{
    Step step;
    step.kind = StepKind::Ref;
    const bool shared =
        privateStream_ == nullptr || rng_.bernoulli(config_.sharedProb);
    step.va = shared ? sharedStream_->next(rng_)
                     : privateStream_->next(rng_);
    step.type = rng_.bernoulli(config_.storeProb) ? vm::AccessType::Store
                                                  : vm::AccessType::Load;
    return step;
}

Step
CoreScript::makeChurnOp()
{
    const bool priv =
        config_.privateChurn && layout_.privateSeg != vm::kInvalidSegment;
    const vm::SegmentId seg = priv ? layout_.privateSeg : layout_.sharedSeg;
    const vm::Vpn first = vm::pageOf(priv ? layout_.privateBase
                                          : layout_.sharedBase);
    const u64 pages = priv ? layout_.privatePages : layout_.sharedPages;

    Step step;
    // Undo operations run first with even odds, so override and mask
    // state stays bounded and rights keep churning both ways.
    if (!overriddenPages_.empty() && rng_.bernoulli(0.5)) {
        const std::size_t i = static_cast<std::size_t>(
            rng_.nextBelow(overriddenPages_.size()));
        step.kind = StepKind::ClearPageRights;
        step.vpn = overriddenPages_[i];
        overriddenPages_.erase(overriddenPages_.begin() +
                               static_cast<std::ptrdiff_t>(i));
        return step;
    }
    if (!maskedPages_.empty() && rng_.bernoulli(0.5)) {
        const std::size_t i = static_cast<std::size_t>(
            rng_.nextBelow(maskedPages_.size()));
        step.kind = StepKind::UnrestrictPage;
        step.vpn = maskedPages_[i];
        maskedPages_.erase(maskedPages_.begin() +
                           static_cast<std::ptrdiff_t>(i));
        return step;
    }
    if (!attached_) {
        // Re-attach before anything else touches the segment.
        step.kind = StepKind::Attach;
        step.seg = seg;
        step.rights = vm::Access::ReadWrite;
        attached_ = true;
        segmentRestricted_ = false;
        return step;
    }
    const vm::Vpn vpn(first.number() + rng_.nextBelow(pages));
    switch (rng_.nextBelow(4)) {
      case 0: {
        step.kind = StepKind::SetPageRights;
        step.vpn = vpn;
        step.rights = vm::Access::Read;
        bool tracked = false;
        for (vm::Vpn p : overriddenPages_)
            tracked = tracked || p == vpn;
        if (!tracked)
            overriddenPages_.push_back(vpn);
        return step;
      }
      case 1: {
        step.kind = StepKind::RestrictPage;
        step.vpn = vpn;
        step.rights = vm::Access::Read;
        bool tracked = false;
        for (vm::Vpn p : maskedPages_)
            tracked = tracked || p == vpn;
        if (!tracked)
            maskedPages_.push_back(vpn);
        return step;
      }
      case 2:
        step.kind = StepKind::SetSegmentRights;
        step.seg = seg;
        step.rights = segmentRestricted_ ? vm::Access::ReadWrite
                                         : vm::Access::Read;
        segmentRestricted_ = !segmentRestricted_;
        return step;
      default:
        step.kind = StepKind::Detach;
        step.seg = seg;
        attached_ = false;
        segmentRestricted_ = false;
        // Detach forgets this domain's page overrides in the segment.
        overriddenPages_.clear();
        return step;
    }
}

namespace
{

void
savePageList(snap::SnapWriter &w, const std::vector<vm::Vpn> &pages)
{
    w.put64(pages.size());
    for (vm::Vpn vpn : pages)
        w.put64(vpn.number());
}

void
loadPageList(snap::SnapReader &r, std::vector<vm::Vpn> &pages)
{
    pages.clear();
    const u32 count = r.getCount(8);
    pages.reserve(count);
    for (u32 i = 0; i < count; ++i)
        pages.emplace_back(r.get64());
}

} // namespace

void
CoreScript::save(snap::SnapWriter &w) const
{
    w.putTag("script");
    rng_.save(w);
    w.put64(stepsLeft_);
    w.putBool(attached_);
    w.putBool(segmentRestricted_);
    savePageList(w, overriddenPages_);
    savePageList(w, maskedPages_);
    sharedStream_->save(w);
    w.putBool(privateStream_ != nullptr);
    if (privateStream_)
        privateStream_->save(w);
}

void
CoreScript::load(snap::SnapReader &r)
{
    r.expectTag("script");
    rng_.load(r);
    const u64 steps_left = r.get64();
    if (steps_left > config_.stepsPerCore)
        SASOS_FATAL("corrupt snapshot: ", steps_left,
                    " steps left of a ", config_.stepsPerCore,
                    "-step script");
    stepsLeft_ = steps_left;
    attached_ = r.getBool();
    segmentRestricted_ = r.getBool();
    loadPageList(r, overriddenPages_);
    loadPageList(r, maskedPages_);
    sharedStream_->load(r);
    const bool has_private = r.getBool();
    if (has_private != (privateStream_ != nullptr))
        SASOS_FATAL("snapshot mismatch: private stream ",
                    has_private ? "present" : "absent",
                    " in the image but ",
                    privateStream_ ? "present" : "absent", " here");
    if (privateStream_)
        privateStream_->load(r);
}

void
applyKernelStep(os::Kernel &kernel, os::DomainId domain, const Step &step)
{
    switch (step.kind) {
      case StepKind::Ref:
        SASOS_PANIC("references are issued by the engine, not the kernel");
      case StepKind::SetPageRights:
        kernel.setPageRights(domain, step.vpn, step.rights);
        return;
      case StepKind::ClearPageRights:
        kernel.clearPageRights(domain, step.vpn);
        return;
      case StepKind::RestrictPage:
        kernel.restrictPage(step.vpn, step.rights);
        return;
      case StepKind::UnrestrictPage:
        kernel.unrestrictPage(step.vpn);
        return;
      case StepKind::SetSegmentRights:
        kernel.setSegmentRights(domain, step.seg, step.rights);
        return;
      case StepKind::Detach:
        kernel.detach(domain, step.seg);
        return;
      case StepKind::Attach:
        kernel.attach(domain, step.seg, step.rights);
        return;
      case StepKind::ForkCow:
        // The forked segment belongs to the issuing domain; scripts
        // never reference it again (its id depends on the schedule),
        // the point is the CoW write protection it leaves behind.
        kernel.forkSegmentCow(step.seg, domain, step.rights, "cow");
        return;
    }
    SASOS_PANIC("unreachable");
}

} // namespace sasos::core::mc
