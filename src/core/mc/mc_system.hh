/**
 * @file
 * The concurrent multi-core engine: N cores, each with its own
 * protection hardware and reference stream, over one shared kernel
 * and canonical VmState, interleaved by a deterministic schedule.
 *
 * Where SmpSystem broadcasts maintenance hooks to every CPU
 * synchronously (runOn() issues from one CPU at a time), McSystem
 * models the shootdown the way Section 4.1.3 describes it happening
 * on a real multiprocessor: the issuing core updates its own
 * structures, sends an IPI per remote core, and *stalls* on the
 * completion barrier; each remote core keeps executing its own stream
 * for a bounded number of steps (the IPI flight / interrupt-masking
 * window) before it takes the interrupt, probes and repairs its stale
 * entries, and acks. During that window a remote core can still
 * complete references from rights the kernel has already revoked --
 * exactly the stale-rights window the schedule explorer (explorer.hh)
 * checks invariants over.
 *
 * Everything is simulated on the calling host thread: the seeded
 * McSchedule alone decides which core steps next, so one
 * (workload seed, schedule seed, cores) triple is bit-identical on
 * any host; host thread pools (sim/parallel.hh) only ever execute
 * *different* pre-decided schedules concurrently (see explorer.hh).
 */

#ifndef SASOS_CORE_MC_MC_SYSTEM_HH
#define SASOS_CORE_MC_MC_SYSTEM_HH

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "core/mc/mc_workload.hh"
#include "core/mc/schedule.hh"
#include "core/system_config.hh"
#include "os/kernel.hh"
#include "os/vm_state.hh"
#include "sim/cycle_account.hh"
#include "sim/stats.hh"

namespace sasos::core
{
class PlbSystem;
class PageGroupSystem;
class ConventionalSystem;
class PkeySystem;
} // namespace sasos::core

namespace sasos::core::mc
{

class DeferredModel;

/** Multi-core engine configuration. */
struct McConfig
{
    /** Per-core machine (model preset, structures, costs). */
    SystemConfig system;
    unsigned cores = 4;
    /** Seed of the interleaving schedule (schedule_seed=). */
    u64 scheduleSeed = 1;
    /** Steps one scheduled core runs per turn (mc_quantum=). */
    u64 quantum = 8;
    /** Steps a remote core executes before taking a pending IPI --
     * the stale-rights window (mc_ipi_delay=; 0 acks immediately). */
    u64 ipiDelaySteps = 6;
    /**
     * IPI coalescing window in steps (mc_coalesce=; 0 disables).
     * When a core takes one due IPI, every further inbox entry due
     * within the next `coalesceWindow` steps is delivered in the same
     * interrupt: each op still purges/applies/acks individually (the
     * delivered-purge set is exactly the uncoalesced one), but the
     * piggy-backed ops skip the per-IPI dispatch trap charge. This is
     * what keeps 64-1024-core shootdown storms tractable.
     */
    u64 coalesceWindow = 0;
    McWorkloadConfig workload;
    /** Map every segment page up front so no demand maps occur and
     * frame assignment is schedule-independent. */
    bool premap = false;
    /** Check the stale-rights and hw-subset-of-canonical invariants
     * while running. */
    bool checkInvariants = true;
    /** Record each core's per-reference allow/deny vector (the
     * sequential-projection oracle input). */
    bool recordOutcomes = false;
    /** Logical obs tid of core 0 (cores use tidBase..tidBase+N-1). */
    u32 tidBase = 1;

    /** Build from cores=/schedule_seed=/mc_quantum=/mc_ipi_delay=/
     * mc_coalesce=/refs=/churn= plus the usual SystemConfig keys.
     * Bounds are validated fatally: cores in [1, 1024], mc_quantum in
     * [1, 2^20], mc_ipi_delay and mc_coalesce at most 2^20. */
    static McConfig fromOptions(const Options &options);
};

/** Tally of one McSystem::run(). */
struct McResult
{
    u64 slots = 0;
    u64 completed = 0;
    u64 failed = 0;
    u64 kernelOps = 0;
    u64 shootdowns = 0;
    u64 acks = 0;
    /** Acks delivered piggy-backed inside another IPI's dispatch. */
    u64 coalescedAcks = 0;
    /** References issued by a core with an unacked IPI pending. */
    u64 staleWindowRefs = 0;
    /** Stale-window references granted beyond canonical rights. */
    u64 staleGrants = 0;
    /** Grants beyond canonical *outside* any stale window (must be 0). */
    u64 invariantViolations = 0;
    /** Hardware state found beyond canonical at a quiescence check. */
    u64 hwViolations = 0;
    u64 quiescentChecks = 0;
    u64 cycles = 0;
    double shootdownLatencyMean = 0.0;
    u64 shootdownLatencyMax = 0;
    double staleRefsPerShootdownMean = 0.0;
    /** First violation, for test diagnostics ("" when none). */
    std::string firstViolation;
    std::vector<u64> coreCycles;
    std::vector<u64> coreCompleted;
    std::vector<u64> coreFailed;
    /** Allow/deny of references issued at quiescence (empty inbox),
     * in global issue order: model-independent by construction. */
    std::vector<u8> quiescentOutcomes;
    /** Per-core allow/deny vectors (when recordOutcomes). */
    std::vector<std::vector<u8>> coreOutcomes;
};

/** A deferred broadcast maintenance operation. */
struct RemoteOp
{
    u64 shootdownId = 0;
    /** Value-capturing closure applying the maintenance hook. */
    std::function<void(os::ProtectionModel &)> apply;
    /** Page range the op affects (the ack's stale-entry probe). */
    vm::Vpn first;
    u64 pages = 0;
    /** Probe filter: one domain, or all when nullopt. */
    std::optional<os::DomainId> domain;
};

/** The multi-core machine. */
class McSystem
{
  public:
    explicit McSystem(const McConfig &config);
    ~McSystem();

    McSystem(const McSystem &) = delete;
    McSystem &operator=(const McSystem &) = delete;

    /**
     * Run the machine: schedule turns until every core's script is
     * exhausted, or -- when `max_slots` is given -- until at least
     * that many further turns have executed *and* the machine reaches
     * a quiescent point (no shootdown in flight, every IPI acked).
     * Re-entrant: call again to continue; calling after completion is
     * an error. The returned tally is cumulative over all calls.
     */
    McResult run(u64 max_slots = ~u64{0});

    /** Every script exhausted and every shootdown acked. */
    bool done() const { return done_; }

    /** @name Snapshot hooks
     * Valid only at the quiescent points run() stops at; the image
     * carries the engine's own fingerprint (cores, seeds, workload)
     * ahead of the per-core machines. */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    const McConfig &config() const { return config_; }
    unsigned coreCount() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    os::Kernel &kernel() { return *kernel_; }
    os::VmState &state() { return state_; }
    CycleAccount &account() { return account_; }
    os::DomainId domainOf(unsigned core) const;
    const McLayout &layoutOf(unsigned core) const;
    /** One core's concrete protection model (stats, tests). */
    os::ProtectionModel &coreModel(unsigned core);
    vm::SegmentId sharedSegment() const { return sharedSeg_; }

    stats::Group &statsRoot() { return statsRoot_; }
    void dumpStats(std::ostream &os);
    void dumpStatsJson(std::ostream &os);

  private:
    /** Plumbing shared with the deferred-broadcast router. */
    friend class DeferredModel;

    /** One simulated core. */
    struct Core
    {
        std::unique_ptr<stats::Group> group;
        std::unique_ptr<os::ProtectionModel> model;
        PlbSystem *plb = nullptr;
        PageGroupSystem *pg = nullptr;
        ConventionalSystem *conv = nullptr;
        PkeySystem *pkey = nullptr;
        os::DomainId domain = 0;
        McLayout layout;
        std::unique_ptr<CoreScript> script;
        /** IPIs sent to this core, FIFO; deliverAtStep gates each. */
        std::deque<std::pair<std::shared_ptr<const RemoteOp>, u64>> inbox;
        /** Completion barriers this core is blocked on (one per
         * shootdown it issued that has not fully acked). */
        u64 barriers = 0;
        u64 stepsExecuted = 0;
        u64 completed = 0;
        u64 failed = 0;
        u64 cycles = 0;
        std::vector<u8> outcomes;
        /** Exported per-core tallies, set once at the end of run(). */
        std::unique_ptr<stats::Scalar> completedStat;
        std::unique_ptr<stats::Scalar> failedStat;
        std::unique_ptr<stats::Scalar> cyclesStat;
    };

    /** One shootdown between IPI issue and the last ack. */
    struct Shootdown
    {
        u64 id = 0;
        unsigned issuer = 0;
        u64 pendingAcks = 0;
        u64 issueCycle = 0;
        u64 staleRefs = 0;
    };

    void setupWorkload();
    /** Assemble the cumulative McResult from the live counters. */
    McResult buildResult();
    os::ProtectionModel &currentModel();
    /** Apply a maintenance hook: issuer now, remotes at their acks. */
    void broadcastOp(std::function<void(os::ProtectionModel &)> apply,
                     vm::Vpn first, u64 pages,
                     std::optional<os::DomainId> domain);
    void runTurn(unsigned ci);
    /** Ack every pending IPI whose delivery step has been reached,
     * plus -- under a nonzero coalesce window -- those due within the
     * window of a taken interrupt. */
    void deliverDue(Core &c);
    /** @param charge_dispatch false for a coalesced (piggy-backed)
     * delivery, which skips the per-IPI dispatch trap charge. */
    void processAck(Core &c, const RemoteOp &op, bool charge_dispatch);
    /** Re-derive core `ci`'s membership in the runnable set. Called
     * at every transition of the inputs (inbox, barriers, script), so
     * run() never rescans all cores: bookkeeping is O(active). */
    void refreshRunnable(unsigned ci);
    bool issueRef(Core &c, vm::VAddr va, vm::AccessType type);
    bool resolveAndRetry(Core &c, vm::VAddr va, vm::AccessType type,
                         os::AccessResult result);
    /** Drop the entries a core still holds for an op's page range
     * (the IPI handler's conservative invalidation); @return how
     * many were stale. */
    u64 purgeStale(Core &c, const RemoteOp &op);
    /** Rights the core's hardware would grant right now, hw-probed. */
    vm::Access hwRights(Core &c, os::DomainId domain, vm::Vpn vpn);
    /** hw ⊆ canonical over every (core, its domain, page) triple;
     * valid only at global quiescence (no shootdown in flight). */
    void checkHwSubset();
    void noteViolation(const std::string &what);

    McConfig config_;
    stats::Group statsRoot_;

  public:
    /** @name Statistics */
    /// @{
    stats::Scalar references;
    stats::Scalar failedReferences;
    stats::Group mcGroup;
    stats::Scalar slots;
    stats::Scalar kernelOps;
    stats::Scalar shootdowns;
    stats::Scalar ipisSent;
    stats::Scalar acks;
    stats::Scalar coalescedAcks;
    stats::Scalar staleWindowRefs;
    stats::Scalar staleGrants;
    stats::Scalar quiescentRefs;
    stats::Scalar staleEntriesPurged;
    stats::Scalar invariantViolations;
    stats::Scalar hwSubsetViolations;
    stats::Scalar quiescentChecks;
    stats::Histogram shootdownLatency;
    stats::Histogram shootdownStaleRefs;
    stats::Histogram ackStaleEntries;
    /// @}

  private:
    CycleAccount account_;
    os::VmState state_;
    std::unique_ptr<DeferredModel> model_;
    std::unique_ptr<os::Kernel> kernel_;
    std::vector<Core> cores_;
    /** Page ranges of every created segment (quiescence checks). */
    std::vector<std::pair<vm::Vpn, u64>> segments_;
    vm::SegmentId sharedSeg_ = vm::kInvalidSegment;
    std::vector<Shootdown> inflight_;
    McSchedule schedule_;
    u64 shootdownIds_ = 0;
    unsigned current_ = 0;
    /** Setup mode: broadcasts apply to every core immediately. */
    bool synchronous_ = true;
    bool done_ = false;
    /** Cores eligible for the next turn, maintained incrementally by
     * refreshRunnable(). Ordered so the schedule draws over the same
     * ascending core list the per-slot rescan used to build. */
    std::set<unsigned> runnable_;
    /** Per-slot scratch image of runnable_ handed to the schedule. */
    std::vector<unsigned> runnableScratch_;
    std::vector<u8> quiescentOutcomes_;
    std::string firstViolation_;
};

} // namespace sasos::core::mc

#endif // SASOS_CORE_MC_MC_SYSTEM_HH
