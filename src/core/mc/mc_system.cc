#include "core/mc/mc_system.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "core/conventional_system.hh"
#include "core/pagegroup_system.hh"
#include "core/pkey_system.hh"
#include "core/plb_system.hh"
#include "core/system.hh" // saveConfigSignature/checkConfigSignature
#include "obs/export.hh"
#include "obs/tracer.hh"
#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::core::mc
{

namespace
{

/** Page range covering every segment the allocator can hand out;
 * used to probe ops with no natural range (domain destruction). */
constexpr u64 kFullRangePages = u64{1} << 40;

} // namespace

/**
 * The deferred-broadcast protection model the shared kernel drives.
 *
 * Local hooks and the reference path go straight to the scheduled
 * core's concrete model. Hooks BroadcastModel would broadcast
 * synchronously instead go through McSystem::broadcastOp: the issuing
 * core's model is updated immediately, every other core gets the hook
 * as a value-capturing closure it applies when it takes the IPI.
 */
class DeferredModel : public os::ProtectionModel
{
  public:
    explicit DeferredModel(McSystem &sys) : sys_(sys) {}

    const char *name() const override { return "mc-deferred"; }

    os::AccessResult
    access(os::DomainId domain, vm::VAddr va, vm::AccessType type) override
    {
        return sys_.currentModel().access(domain, va, type);
    }

    void
    onAttach(os::DomainId domain, const vm::Segment &seg,
             vm::Access rights) override
    {
        // An attach that leaves the segment's rights union unchanged
        // is a pure grant: remote hardware holds nothing for the new
        // domain, so only the issuing core's structures see it. When
        // the grant *raises* the union, the page-group model's
        // default group changes protections (its Rights field and
        // every other member's derived D bit), which -- like any
        // group protection change (Section 4.1.2) -- must reach every
        // remote PID cache and TLB. The kernel's shootdown protocol
        // is model-independent (the condition derives from canonical
        // state only), so the interleaving, and with it the quiescence
        // points the cross-model oracle compares, stay identical
        // across models; PLB and ASID handlers just have less to drop.
        vm::Access union_before = vm::Access::None;
        for (const auto &[d, r] :
             sys_.state().segmentDefaultVector(seg.id)) {
            if (d != domain)
                union_before = union_before | r;
        }
        if (!vm::includes(union_before, rights)) {
            vm::Segment copy = seg;
            sys_.broadcastOp(
                [domain, copy, rights](os::ProtectionModel &m) {
                    m.onAttach(domain, copy, rights);
                },
                seg.firstPage, seg.pages, std::nullopt);
            return;
        }
        sys_.currentModel().onAttach(domain, seg, rights);
    }

    void
    onDetach(os::DomainId domain, const vm::Segment &seg) override
    {
        vm::Segment copy = seg;
        sys_.broadcastOp(
            [domain, copy](os::ProtectionModel &m) {
                m.onDetach(domain, copy);
            },
            seg.firstPage, seg.pages, domain);
    }

    void
    onSetPageRights(os::DomainId domain, vm::Vpn vpn,
                    vm::Access rights) override
    {
        sys_.broadcastOp(
            [domain, vpn, rights](os::ProtectionModel &m) {
                m.onSetPageRights(domain, vpn, rights);
            },
            vpn, 1, domain);
    }

    void
    onSetPageRightsAllDomains(vm::Vpn vpn, vm::Access rights) override
    {
        sys_.broadcastOp(
            [vpn, rights](os::ProtectionModel &m) {
                m.onSetPageRightsAllDomains(vpn, rights);
            },
            vpn, 1, std::nullopt);
    }

    void
    onClearPageRightsAllDomains(vm::Vpn vpn) override
    {
        sys_.broadcastOp(
            [vpn](os::ProtectionModel &m) {
                m.onClearPageRightsAllDomains(vpn);
            },
            vpn, 1, std::nullopt);
    }

    void
    onSetSegmentRights(os::DomainId domain, const vm::Segment &seg,
                       vm::Access rights) override
    {
        vm::Segment copy = seg;
        sys_.broadcastOp(
            [domain, copy, rights](os::ProtectionModel &m) {
                m.onSetSegmentRights(domain, copy, rights);
            },
            seg.firstPage, seg.pages, domain);
    }

    void
    onDomainSwitch(os::DomainId from, os::DomainId to) override
    {
        // A switch is local to the core it happens on.
        sys_.currentModel().onDomainSwitch(from, to);
    }

    void
    onPageMapped(vm::Vpn vpn, vm::Pfn pfn) override
    {
        // Mappings load lazily per core.
        sys_.currentModel().onPageMapped(vpn, pfn);
    }

    void
    onPageUnmapped(vm::Vpn vpn, vm::Pfn pfn) override
    {
        sys_.broadcastOp(
            [vpn, pfn](os::ProtectionModel &m) {
                m.onPageUnmapped(vpn, pfn);
            },
            vpn, 1, std::nullopt);
    }

    void
    onDomainDestroyed(os::DomainId domain) override
    {
        sys_.broadcastOp(
            [domain](os::ProtectionModel &m) {
                m.onDomainDestroyed(domain);
            },
            vm::Vpn(0), kFullRangePages, domain);
    }

    void
    onSegmentDestroyed(const vm::Segment &seg) override
    {
        vm::Segment copy = seg;
        sys_.broadcastOp(
            [copy](os::ProtectionModel &m) { m.onSegmentDestroyed(copy); },
            seg.firstPage, seg.pages, std::nullopt);
    }

    bool
    refreshAfterFault(os::DomainId domain, vm::Vpn vpn) override
    {
        // Fault repair is local to the faulting core.
        return sys_.currentModel().refreshAfterFault(domain, vpn);
    }

    vm::Access
    effectiveRights(os::DomainId domain, vm::Vpn vpn) override
    {
        return sys_.currentModel().effectiveRights(domain, vpn);
    }

  private:
    McSystem &sys_;
};

McConfig
McConfig::fromOptions(const Options &options)
{
    McConfig config;
    config.system =
        SystemConfig::fromOptions(options, SystemConfig::plbSystem());
    // Bounds are fatal, not clamped: an absurd knob value is a typo,
    // and silently running something else poisons sweep results.
    constexpr u64 kMaxSteps = u64{1} << 20;
    const u64 cores = options.getU64("cores", config.cores);
    if (cores < 1 || cores > 1024)
        SASOS_FATAL("cores must be in [1, 1024], got ", cores);
    config.cores = static_cast<unsigned>(cores);
    config.scheduleSeed =
        options.getU64("schedule_seed", config.scheduleSeed);
    config.quantum = options.getU64("mc_quantum", config.quantum);
    if (config.quantum < 1 || config.quantum > kMaxSteps)
        SASOS_FATAL("mc_quantum must be in [1, ", kMaxSteps, "], got ",
                    config.quantum);
    config.ipiDelaySteps =
        options.getU64("mc_ipi_delay", config.ipiDelaySteps);
    if (config.ipiDelaySteps > kMaxSteps)
        SASOS_FATAL("mc_ipi_delay must be at most ", kMaxSteps, ", got ",
                    config.ipiDelaySteps);
    config.coalesceWindow =
        options.getU64("mc_coalesce", config.coalesceWindow);
    if (config.coalesceWindow > kMaxSteps)
        SASOS_FATAL("mc_coalesce must be at most ", kMaxSteps, ", got ",
                    config.coalesceWindow);
    config.workload.seed = config.system.seed;
    config.workload.stepsPerCore =
        options.getU64("refs", config.workload.stepsPerCore);
    // Churn defaults on for option-driven runs: without kernel ops
    // there are no shootdowns to measure.
    config.workload.churnProb = options.getDouble("churn", 0.05);
    config.workload.forkProb = options.getDouble("mc_fork", 0.0);
    return config;
}

McSystem::McSystem(const McConfig &config)
    : config_(config), statsRoot_("mc-system"),
      references(&statsRoot_, "references", "references issued"),
      failedReferences(&statsRoot_, "failedReferences",
                       "references ending in an exception"),
      mcGroup(&statsRoot_, "mc"),
      slots(&mcGroup, "slots", "scheduling turns executed"),
      kernelOps(&mcGroup, "kernelOps",
                "kernel protection operations issued by scripts"),
      shootdowns(&mcGroup, "shootdowns",
                 "broadcast maintenance operations"),
      ipisSent(&mcGroup, "ipisSent", "inter-processor interrupts sent"),
      acks(&mcGroup, "acks", "inter-processor interrupts taken"),
      coalescedAcks(&mcGroup, "coalescedAcks",
                    "IPIs delivered piggy-backed in another dispatch"),
      staleWindowRefs(&mcGroup, "staleWindowRefs",
                      "references issued with an unacked IPI pending"),
      staleGrants(&mcGroup, "staleGrants",
                  "stale-window references granted beyond canonical"),
      quiescentRefs(&mcGroup, "quiescentRefs",
                    "references issued with no IPI pending locally"),
      staleEntriesPurged(&mcGroup, "staleEntriesPurged",
                         "stale hardware entries found by ack probes"),
      invariantViolations(&mcGroup, "invariantViolations",
                          "grants beyond canonical outside stale windows"),
      hwSubsetViolations(&mcGroup, "hwSubsetViolations",
                         "hardware rights beyond canonical at quiescence"),
      quiescentChecks(&mcGroup, "quiescentChecks",
                      "hw-subset-of-canonical sweeps performed"),
      shootdownLatency(&mcGroup, "shootdownLatency",
                       "cycles from IPI issue to the last ack", 500, 32),
      shootdownStaleRefs(&mcGroup, "shootdownStaleRefs",
                         "remote references inside each stale window", 1,
                         32),
      ackStaleEntries(&mcGroup, "ackStaleEntries",
                      "stale entries found per ack probe", 1, 32),
      state_(config.system.frames), schedule_(config.scheduleSeed)
{
    SASOS_ASSERT(config_.cores >= 1, "a machine needs at least one core");
    SASOS_ASSERT(config_.quantum >= 1, "quantum must be at least one step");
    model_ = std::make_unique<DeferredModel>(*this);
    kernel_ = std::make_unique<os::Kernel>(state_, *model_,
                                           config_.system.costs, account_,
                                           &statsRoot_);
    cores_.reserve(config_.cores);
    for (unsigned i = 0; i < config_.cores; ++i) {
        Core core;
        core.group = std::make_unique<stats::Group>(
            &statsRoot_, "core" + std::to_string(i));
        switch (config_.system.model) {
          case ModelKind::Plb: {
            auto model = std::make_unique<PlbSystem>(
                config_.system, state_, account_, core.group.get());
            core.plb = model.get();
            core.model = std::move(model);
            break;
          }
          case ModelKind::PageGroup: {
            auto model = std::make_unique<PageGroupSystem>(
                config_.system, state_, account_, core.group.get());
            core.pg = model.get();
            core.model = std::move(model);
            break;
          }
          case ModelKind::Conventional: {
            auto model = std::make_unique<ConventionalSystem>(
                config_.system, state_, account_, core.group.get());
            core.conv = model.get();
            core.model = std::move(model);
            break;
          }
          case ModelKind::Pkey: {
            auto model = std::make_unique<PkeySystem>(
                config_.system, state_, account_, core.group.get());
            core.pkey = model.get();
            core.model = std::move(model);
            break;
          }
        }
        core.completedStat = std::make_unique<stats::Scalar>(
            core.group.get(), "completed",
            "references this core completed");
        core.failedStat = std::make_unique<stats::Scalar>(
            core.group.get(), "failed",
            "references this core saw end in an exception");
        core.cyclesStat = std::make_unique<stats::Scalar>(
            core.group.get(), "cycles",
            "simulated cycles attributed to this core's turns");
        cores_.push_back(std::move(core));
    }
    setupWorkload();
    synchronous_ = false;
    for (unsigned i = 0; i < cores_.size(); ++i)
        refreshRunnable(i);
}

void
McSystem::refreshRunnable(unsigned ci)
{
    const Core &c = cores_[ci];
    const bool runnable =
        !c.inbox.empty() || (c.barriers == 0 && !c.script->done());
    if (runnable)
        runnable_.insert(ci);
    else
        runnable_.erase(ci);
}

McSystem::~McSystem() = default;

/**
 * Deterministic setup, performed with broadcasts synchronous (no
 * shootdowns) and in a documented order so tests can replay it against
 * a plain System: one domain per core ("core0"...), the shared
 * segment + one ReadWrite attach per core in core order, then per
 * core (in core order) its private segment + attach, then optionally
 * premap every segment page in creation/address order.
 */
void
McSystem::setupWorkload()
{
    const McWorkloadConfig &wl = config_.workload;
    SASOS_ASSERT(wl.sharedPages > 0, "workload needs a shared segment");
    for (unsigned i = 0; i < cores_.size(); ++i)
        cores_[i].domain =
            kernel_->createDomain("core" + std::to_string(i));
    sharedSeg_ = kernel_->createSegment("shared", wl.sharedPages);
    const vm::Segment *shared = state_.segments.find(sharedSeg_);
    segments_.emplace_back(shared->firstPage, shared->pages);
    for (unsigned i = 0; i < cores_.size(); ++i) {
        current_ = i;
        kernel_->attach(cores_[i].domain, sharedSeg_,
                        vm::Access::ReadWrite);
    }
    for (unsigned i = 0; i < cores_.size(); ++i) {
        Core &core = cores_[i];
        core.layout.sharedSeg = sharedSeg_;
        core.layout.sharedBase = shared->base();
        core.layout.sharedPages = shared->pages;
        if (wl.privatePages > 0) {
            current_ = i;
            const vm::SegmentId seg = kernel_->createSegment(
                "private" + std::to_string(i), wl.privatePages);
            const vm::Segment *segment = state_.segments.find(seg);
            segments_.emplace_back(segment->firstPage, segment->pages);
            kernel_->attach(core.domain, seg, vm::Access::ReadWrite);
            core.layout.privateSeg = seg;
            core.layout.privateBase = segment->base();
            core.layout.privatePages = segment->pages;
        }
    }
    current_ = 0;
    if (config_.premap) {
        for (const auto &[first, pages] : segments_)
            for (u64 p = 0; p < pages; ++p)
                kernel_->mapPage(first + p);
    }
    for (unsigned i = 0; i < cores_.size(); ++i)
        cores_[i].script = std::make_unique<CoreScript>(
            wl, i, cores_[i].domain, cores_[i].layout);
}

os::DomainId
McSystem::domainOf(unsigned core) const
{
    SASOS_ASSERT(core < cores_.size(), "no core ", core);
    return cores_[core].domain;
}

const McLayout &
McSystem::layoutOf(unsigned core) const
{
    SASOS_ASSERT(core < cores_.size(), "no core ", core);
    return cores_[core].layout;
}

os::ProtectionModel &
McSystem::coreModel(unsigned core)
{
    SASOS_ASSERT(core < cores_.size(), "no core ", core);
    return *cores_[core].model;
}

os::ProtectionModel &
McSystem::currentModel()
{
    return *cores_[current_].model;
}

void
McSystem::broadcastOp(std::function<void(os::ProtectionModel &)> apply,
                      vm::Vpn first, u64 pages,
                      std::optional<os::DomainId> domain)
{
    apply(*cores_[current_].model);
    if (synchronous_) {
        // Setup: every core hears the hook immediately, no shootdown.
        for (unsigned i = 0; i < cores_.size(); ++i)
            if (i != current_)
                apply(*cores_[i].model);
        return;
    }
    if (cores_.size() == 1) {
        // A single core has nobody to interrupt; keeping the counters
        // quiet here is what makes cores=1 bit-identical to System.
        return;
    }
    const u64 remotes = cores_.size() - 1;
    const u64 id = ++shootdownIds_;
    ++shootdowns;
    ipisSent += remotes;
    SASOS_OBS_EVENT(obs::EventKind::Shootdown, account_.total().count(),
                    id, remotes);
    account_.charge(CostCategory::KernelWork,
                    remotes * config_.system.costs.interProcessorInterrupt);
    inflight_.push_back(
        {id, current_, remotes, account_.total().count(), 0});
    auto op = std::make_shared<const RemoteOp>(
        RemoteOp{id, std::move(apply), first, pages, domain});
    for (unsigned i = 0; i < cores_.size(); ++i) {
        if (i == current_)
            continue;
        cores_[i].inbox.emplace_back(
            op, cores_[i].stepsExecuted + config_.ipiDelaySteps);
        refreshRunnable(i);
    }
    ++cores_[current_].barriers;
    refreshRunnable(current_);
}

u64
McSystem::purgeStale(Core &c, const RemoteOp &op)
{
    if (c.plb != nullptr)
        return c.plb->protPurgeRange(op.domain, op.first, op.pages)
            .invalidated;
    if (c.conv != nullptr) {
        std::optional<os::DomainId> asid = op.domain;
        if (asid && config_.system.purgeTlbOnSwitch)
            asid = 0;
        return c.conv->tlb().purgeRange(asid, op.first, op.pages)
            .invalidated;
    }
    if (c.pkey != nullptr) {
        // Key-permission updates ride the same deferred acks, and the
        // same A->B->A collapse applies: a register refilled under a
        // transient intermediate grant is invisible to the final ack's
        // hook diff. The handler scrubs the whole register file (it is
        // small and refills from canonical state) and drops the
        // range's TLB entries so stale key tags rederive too.
        c.pkey->keyCache().purgeAll();
        return c.pkey->tlb().purgeRange(std::nullopt, op.first, op.pages)
            .invalidated;
    }
    // Page-group entries are shared by all domains; the op's domain
    // filter does not narrow which TLB entries could be stale. The
    // purge is what closes the deferred-ack collapse: acks apply
    // against *current* canonical state, so a union that bounced
    // A->B->A between two of this core's acks is invisible to the
    // hooks' lastUnion_ diff, yet a refill under the transient B may
    // have cached a PID write-disable bit that is wrong again under
    // A. The handler flash-invalidates the PID cache (it is purged on
    // every domain switch anyway) and drops the range's TLB entries;
    // refills after the final ack rederive from canonical state.
    c.pg->pageGroupCache().purgeAll();
    return c.pg->tlb().purgeRange(std::nullopt, op.first, op.pages)
        .invalidated;
}

void
McSystem::processAck(Core &c, const RemoteOp &op, bool charge_dispatch)
{
    const u64 stale = purgeStale(c, op);
    // The purge went straight at the core's structures; its batch memo
    // may now point at a dead slot.
    c.model->invalidateBatchMemo();
    staleEntriesPurged += stale;
    ackStaleEntries.sample(stale);
    if (charge_dispatch) {
        account_.charge(CostCategory::Trap,
                        config_.system.costs.ipiDispatch);
    } else {
        ++coalescedAcks;
    }
    op.apply(*c.model);
    ++acks;
    SASOS_OBS_EVENT(obs::EventKind::ShootdownAck, account_.total().count(),
                    op.shootdownId, stale);
    auto it = std::find_if(
        inflight_.begin(), inflight_.end(),
        [&](const Shootdown &s) { return s.id == op.shootdownId; });
    SASOS_ASSERT(it != inflight_.end(), "ack for unknown shootdown ",
                 op.shootdownId);
    SASOS_ASSERT(it->pendingAcks > 0, "shootdown over-acked");
    if (--it->pendingAcks == 0) {
        const unsigned issuer_index = it->issuer;
        Core &issuer = cores_[issuer_index];
        SASOS_ASSERT(issuer.barriers > 0, "issuer not at a barrier");
        --issuer.barriers;
        refreshRunnable(issuer_index);
        const u64 latency = account_.total().count() - it->issueCycle;
        shootdownLatency.sample(latency);
        shootdownStaleRefs.sample(it->staleRefs);
        SASOS_OBS_EVENT(obs::EventKind::ShootdownComplete,
                        account_.total().count(), op.shootdownId, latency);
        inflight_.erase(it);
        if (config_.checkInvariants && inflight_.empty())
            checkHwSubset();
    }
}

void
McSystem::deliverDue(Core &c)
{
    // Delivery thresholds are pushed in nondecreasing order (each is
    // the remote's step counter at issue time plus a constant), so
    // checking the front suffices.
    while (!c.inbox.empty() && c.inbox.front().second <= c.stepsExecuted) {
        const std::shared_ptr<const RemoteOp> op = c.inbox.front().first;
        c.inbox.pop_front();
        processAck(c, *op, /*charge_dispatch=*/true);
        if (config_.coalesceWindow == 0)
            continue;
        // One interrupt was just taken; ops due within the coalescing
        // window ride the same dispatch. Each still purges, applies
        // and acks individually -- the delivered-purge set is exactly
        // the uncoalesced one -- but skips the dispatch trap charge.
        // Taking them *now* shortens their remaining stale window.
        const u64 horizon = c.stepsExecuted + config_.coalesceWindow;
        while (!c.inbox.empty() && c.inbox.front().second <= horizon) {
            const std::shared_ptr<const RemoteOp> merged =
                c.inbox.front().first;
            c.inbox.pop_front();
            processAck(c, *merged, /*charge_dispatch=*/false);
        }
    }
}

bool
McSystem::resolveAndRetry(Core &c, vm::VAddr va, vm::AccessType type,
                          os::AccessResult result)
{
    SASOS_OBS_EVENT(obs::EventKind::KernelResolveBegin,
                    account_.total().count(), va.raw(), c.domain);
    for (int attempt = 1;; ++attempt) {
        bool retry = false;
        switch (result.fault) {
          case os::FaultKind::Protection:
            retry = kernel_->handleProtectionFault(c.domain, va, type);
            break;
          case os::FaultKind::Translation:
            retry = kernel_->handleTranslationFault(c.domain, va, type);
            break;
          case os::FaultKind::None:
            SASOS_PANIC("incomplete access without a fault");
        }
        if (!retry) {
            ++failedReferences;
            SASOS_OBS_EVENT(obs::EventKind::KernelResolveEnd,
                            account_.total().count(), va.raw(), 0);
            return false;
        }
        if (attempt >= 8) {
            SASOS_PANIC("livelock resolving faults at address ", va.raw(),
                        " in domain ", c.domain);
        }
        result = c.model->access(c.domain, va, type);
        if (result.completed) {
            SASOS_OBS_EVENT(obs::EventKind::KernelResolveEnd,
                            account_.total().count(), va.raw(), 1);
            return true;
        }
    }
}

bool
McSystem::issueRef(Core &c, vm::VAddr va, vm::AccessType type)
{
    ++references;
    SASOS_OBS_EVENT(obs::EventKind::AccessBegin, account_.total().count(),
                    va.raw(), c.domain);
    const bool staleWindow = !c.inbox.empty();
    if (staleWindow) {
        ++staleWindowRefs;
        // This reference ran inside the window of every shootdown this
        // core has not yet acked.
        for (const auto &[op, due] : c.inbox) {
            auto it = std::find_if(inflight_.begin(), inflight_.end(),
                                   [&](const Shootdown &s) {
                                       return s.id == op->shootdownId;
                                   });
            if (it != inflight_.end())
                ++it->staleRefs;
        }
    }
    const os::AccessResult result = c.model->access(c.domain, va, type);
    bool ok = true;
    if (!result.completed)
        ok = resolveAndRetry(c, va, type, result);
    SASOS_OBS_EVENT(obs::EventKind::AccessEnd, account_.total().count(),
                    va.raw(), ok);
    if (ok) {
        const vm::Access canonical =
            state_.effectiveRights(c.domain, vm::pageOf(va));
        if (!vm::includes(canonical, vm::requiredRight(type))) {
            if (staleWindow) {
                // The modeled race: the kernel revoked the right, this
                // core has not taken the IPI yet, its hardware still
                // granted the access (Section 4.1.3's window).
                ++staleGrants;
            } else {
                ++invariantViolations;
                std::ostringstream what;
                what << "core domain " << c.domain << " granted "
                     << vm::toString(vm::requiredRight(type)) << " at 0x"
                     << std::hex << va.raw() << std::dec
                     << " outside any stale window (canonical "
                     << vm::toString(canonical) << ")";
                noteViolation(what.str());
            }
        }
    }
    if (!staleWindow) {
        ++quiescentRefs;
        quiescentOutcomes_.push_back(ok ? 1 : 0);
    }
    if (config_.recordOutcomes)
        c.outcomes.push_back(ok ? 1 : 0);
    return ok;
}

void
McSystem::runTurn(unsigned ci)
{
    Core &c = cores_[ci];
    current_ = ci;
    obs::setThreadId(config_.tidBase + ci);
    const u64 before = account_.total().count();
    for (u64 s = 0; s < config_.quantum; ++s) {
        deliverDue(c);
        if (c.barriers > 0 || c.script->done()) {
            if (c.inbox.empty())
                break;
            // Blocked (or out of work) with IPIs still in flight:
            // idle steps advance the step clock until one is due.
            ++c.stepsExecuted;
            continue;
        }
        const Step step = c.script->next();
        ++c.stepsExecuted;
        if (step.kind == StepKind::Ref) {
            if (issueRef(c, step.va, step.type))
                ++c.completed;
            else
                ++c.failed;
        } else {
            ++kernelOps;
            applyKernelStep(*kernel_, c.domain, step);
            if (c.barriers > 0) {
                // The op shot down remote cores; the issuer blocks on
                // the completion barrier for the rest of its quantum.
                break;
            }
        }
    }
    c.cycles += account_.total().count() - before;
    // The turn consumed script steps and drained due IPIs; re-derive
    // this core's eligibility once (remote transitions were refreshed
    // at their own mutation sites).
    refreshRunnable(ci);
}

McResult
McSystem::run(u64 max_slots)
{
    SASOS_ASSERT(!done_, "the machine already ran to completion");
    u64 executed = 0;
    while (true) {
        // Partial runs stop only at quiescent points: once the slot
        // budget is spent, keep scheduling until the last shootdown
        // acks so a snapshot taken here has no RemoteOp closures to
        // serialize -- and so a restored machine resumes exactly where
        // an uninterrupted one would be.
        if (executed >= max_slots && inflight_.empty())
            break;
        // The runnable set is maintained incrementally at each
        // inbox/barrier/script transition, so a slot costs O(active)
        // rather than an O(cores) rescan -- the difference between a
        // 4-core and a 1024-core machine late in a run, when most
        // scripts are exhausted. The scratch copy preserves the exact
        // ascending-index vector the rescan used to hand the schedule,
        // so interleavings are bit-identical to the old bookkeeping.
        if (runnable_.empty()) {
            done_ = true;
            break;
        }
        runnableScratch_.assign(runnable_.begin(), runnable_.end());
        ++slots;
        ++executed;
        runTurn(schedule_.pick(runnableScratch_));
    }
    obs::setThreadId(0);
    SASOS_ASSERT(inflight_.empty(), "run ended with shootdowns in flight");
    if (done_ && config_.checkInvariants)
        checkHwSubset();
    return buildResult();
}

McResult
McSystem::buildResult()
{
    McResult result;
    result.slots = slots.value();
    result.kernelOps = kernelOps.value();
    result.shootdowns = shootdowns.value();
    result.acks = acks.value();
    result.coalescedAcks = coalescedAcks.value();
    result.staleWindowRefs = staleWindowRefs.value();
    result.staleGrants = staleGrants.value();
    result.invariantViolations = invariantViolations.value();
    result.hwViolations = hwSubsetViolations.value();
    result.quiescentChecks = quiescentChecks.value();
    result.cycles = account_.total().count();
    result.shootdownLatencyMean = shootdownLatency.mean();
    result.shootdownLatencyMax = shootdownLatency.max();
    result.staleRefsPerShootdownMean = shootdownStaleRefs.mean();
    result.firstViolation = firstViolation_;
    result.quiescentOutcomes = quiescentOutcomes_;
    for (Core &c : cores_) {
        result.completed += c.completed;
        result.failed += c.failed;
        result.coreCycles.push_back(c.cycles);
        result.coreCompleted.push_back(c.completed);
        result.coreFailed.push_back(c.failed);
        if (config_.recordOutcomes)
            result.coreOutcomes.push_back(c.outcomes);
        c.completedStat->set(c.completed);
        c.failedStat->set(c.failed);
        c.cyclesStat->set(c.cycles);
    }
    return result;
}

vm::Access
McSystem::hwRights(Core &c, os::DomainId domain, vm::Vpn vpn)
{
    if (c.plb != nullptr) {
        const auto match = c.plb->protPeek(domain, vm::baseOf(vpn));
        return match ? match->rights : vm::Access::None;
    }
    if (c.conv != nullptr) {
        const os::DomainId asid =
            config_.system.purgeTlbOnSwitch ? 0 : domain;
        const hw::TlbEntry *entry = c.conv->tlb().peek(vpn, asid);
        return entry ? entry->rights : vm::Access::None;
    }
    if (c.pkey != nullptr) {
        // The hardware grants only what a TLB-resident key tag plus a
        // live (domain, key) register jointly allow.
        const hw::TlbEntry *entry = c.pkey->tlb().peek(vpn);
        if (entry == nullptr)
            return vm::Access::None;
        const auto perm = c.pkey->keyCache().peek(domain, entry->aid);
        return perm ? *perm : vm::Access::None;
    }
    // Page-group hardware semantics live in the per-core manager (the
    // TLB entry is synced from it): group rights, D bit, membership.
    return c.pg->manager().hwRights(domain, vpn);
}

void
McSystem::checkHwSubset()
{
    SASOS_ASSERT(inflight_.empty(),
                 "hw-subset check requires global quiescence");
    ++quiescentChecks;
    for (Core &c : cores_) {
        for (const auto &[first, pages] : segments_) {
            for (u64 p = 0; p < pages; ++p) {
                const vm::Vpn vpn = first + p;
                const vm::Access hw = hwRights(c, c.domain, vpn);
                const vm::Access canonical =
                    state_.effectiveRights(c.domain, vpn);
                if (!vm::includes(canonical, hw)) {
                    ++hwSubsetViolations;
                    std::ostringstream what;
                    what << "domain " << c.domain << " hardware grants "
                         << vm::toString(hw) << " on page "
                         << vpn.number() << " but canonical is "
                         << vm::toString(canonical);
                    noteViolation(what.str());
                }
            }
        }
    }
}

void
McSystem::noteViolation(const std::string &what)
{
    if (firstViolation_.empty())
        firstViolation_ = what;
}

namespace
{

void
saveOutcomes(snap::SnapWriter &w, const std::vector<u8> &outcomes)
{
    w.put64(outcomes.size());
    for (u8 outcome : outcomes)
        w.put8(outcome);
}

void
loadOutcomes(snap::SnapReader &r, std::vector<u8> &outcomes)
{
    outcomes.clear();
    const u32 count = r.getCount(1);
    outcomes.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        const u8 outcome = r.get8();
        if (outcome > 1)
            SASOS_FATAL("corrupt snapshot: outcome byte ", u32(outcome));
        outcomes.push_back(outcome);
    }
}

/** The engine-level knobs a loadable image must agree on; the
 * SystemConfig signature covers the per-core machines. */
template <typename Sig>
void
walkMcSignature(Sig &&sig, const McConfig &config)
{
    sig.field("cores", config.cores);
    sig.field("scheduleSeed", config.scheduleSeed);
    sig.field("quantum", config.quantum);
    sig.field("ipiDelaySteps", config.ipiDelaySteps);
    sig.field("premap", config.premap ? 1 : 0);
    sig.field("checkInvariants", config.checkInvariants ? 1 : 0);
    sig.field("recordOutcomes", config.recordOutcomes ? 1 : 0);
    sig.field("tidBase", config.tidBase);
    const McWorkloadConfig &wl = config.workload;
    sig.field("wl.stepsPerCore", wl.stepsPerCore);
    sig.field("wl.sharedPages", wl.sharedPages);
    sig.field("wl.privatePages", wl.privatePages);
    sig.field("wl.sharedProbBits", std::bit_cast<u64>(wl.sharedProb));
    sig.field("wl.storeProbBits", std::bit_cast<u64>(wl.storeProb));
    sig.field("wl.churnProbBits", std::bit_cast<u64>(wl.churnProb));
    sig.field("wl.forkProbBits", std::bit_cast<u64>(wl.forkProb));
    sig.field("wl.privateChurn", wl.privateChurn ? 1 : 0);
    sig.field("wl.zipfThetaBits", std::bit_cast<u64>(wl.zipfTheta));
    sig.field("wl.seed", wl.seed);
    // Appended conditionally so pre-coalescing golden images (which
    // end at wl.seed) still load for uncoalesced runs, while any
    // coalesced/uncoalesced cross-load trips the field-name check.
    if (config.coalesceWindow != 0)
        sig.field("coalesceWindow", config.coalesceWindow);
}

struct McSignatureWriter
{
    snap::SnapWriter &w;

    void
    field(const std::string &name, u64 value)
    {
        w.putString(name);
        w.put64(value);
    }
};

struct McSignatureChecker
{
    snap::SnapReader &r;

    void
    field(const std::string &name, u64 value)
    {
        const std::string image_name = r.getString();
        if (image_name != name) {
            SASOS_FATAL("snapshot mismatch: expected engine field '", name,
                        "', image has '", image_name, "'");
        }
        const u64 image_value = r.get64();
        if (image_value != value) {
            SASOS_FATAL("snapshot mismatch: engine field '", name, "' is ",
                        value, " here but ", image_value, " in the image");
        }
    }
};

} // namespace

void
McSystem::save(snap::SnapWriter &w) const
{
    SASOS_ASSERT(inflight_.empty(),
                 "multi-core snapshots require quiescence; stop the "
                 "machine through run(max_slots)");
    w.putTag("mcsystem");
    walkMcSignature(McSignatureWriter{w}, config_);
    saveConfigSignature(w, config_.system);
    schedule_.save(w);
    w.put64(shootdownIds_);
    w.put32(current_);
    w.putBool(done_);
    state_.save(w);
    kernel_->save(w);
    account_.save(w);
    for (const Core &core : cores_) {
        SASOS_ASSERT(core.inbox.empty() && core.barriers == 0,
                     "core not quiescent at snapshot");
        w.putTag("core");
        core.model->save(w);
        core.script->save(w);
        w.put64(core.stepsExecuted);
        w.put64(core.completed);
        w.put64(core.failed);
        w.put64(core.cycles);
        saveOutcomes(w, core.outcomes);
    }
    saveOutcomes(w, quiescentOutcomes_);
    w.putString(firstViolation_);
    statsRoot_.save(w);
}

void
McSystem::load(snap::SnapReader &r)
{
    r.expectTag("mcsystem");
    walkMcSignature(McSignatureChecker{r}, config_);
    checkConfigSignature(r, config_.system);
    schedule_.load(r);
    shootdownIds_ = r.get64();
    const u32 current = r.get32();
    if (current >= cores_.size())
        SASOS_FATAL("corrupt snapshot: current core ", current, " of ",
                    cores_.size());
    current_ = current;
    done_ = r.getBool();
    state_.load(r);
    kernel_->load(r);
    account_.load(r);
    for (Core &core : cores_) {
        r.expectTag("core");
        core.model->load(r);
        core.script->load(r);
        core.stepsExecuted = r.get64();
        core.completed = r.get64();
        core.failed = r.get64();
        core.cycles = r.get64();
        loadOutcomes(r, core.outcomes);
        core.inbox.clear();
        core.barriers = 0;
    }
    loadOutcomes(r, quiescentOutcomes_);
    firstViolation_ = r.getString();
    statsRoot_.load(r);
    inflight_.clear();
    runnable_.clear();
    for (unsigned i = 0; i < cores_.size(); ++i)
        refreshRunnable(i);
}

void
McSystem::dumpStats(std::ostream &os)
{
    statsRoot_.dump(os);
    account_.dump(os, "mc-system.");
}

void
McSystem::dumpStatsJson(std::ostream &os)
{
    obs::writeStatsJson(os, statsRoot_, &account_);
}

} // namespace sasos::core::mc
