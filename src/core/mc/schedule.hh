/**
 * @file
 * The deterministic interleaving schedule of the multi-core engine.
 *
 * One seeded Rng decides, turn by turn, which runnable core steps
 * next. The schedule is a pure function of (schedule_seed, the
 * runnable sets it is offered), and the engine offers runnable sets
 * that depend only on step counts -- never on simulated cycles or
 * host timing -- so the same (workload seed, schedule seed, cores)
 * triple replays the exact same interleaving on every host, for every
 * protection model, at any host thread count.
 *
 * Scheduling at *step* (reference / kernel-op) granularity rather
 * than simulated-cycle granularity is deliberate: the three
 * protection models fault differently and therefore burn different
 * cycle counts for the same step, so a cycle-driven schedule would
 * give each model a different interleaving and make cross-model
 * allow/deny comparison meaningless. Steps are model-independent;
 * cycles are still fully accounted per core.
 */

#ifndef SASOS_CORE_MC_SCHEDULE_HH
#define SASOS_CORE_MC_SCHEDULE_HH

#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace sasos::core::mc
{

/** Seeded pick-next-core schedule. */
class McSchedule
{
  public:
    explicit McSchedule(u64 seed) : rng_(seed) {}

    /** Choose one of the runnable cores for the next turn. */
    unsigned
    pick(const std::vector<unsigned> &runnable)
    {
        SASOS_ASSERT(!runnable.empty(), "no runnable core to schedule");
        if (runnable.size() == 1)
            return runnable.front();
        return runnable[static_cast<std::size_t>(
            rng_.nextBelow(runnable.size()))];
    }

    /** @name Snapshot hooks (the schedule is its rng position) */
    /// @{
    void save(snap::SnapWriter &w) const { rng_.save(w); }
    void load(snap::SnapReader &r) { rng_.load(r); }
    /// @}

  private:
    Rng rng_;
};

} // namespace sasos::core::mc

#endif // SASOS_CORE_MC_SCHEDULE_HH
