/**
 * @file
 * The protection-key (MPK-style) fourth model.
 *
 * Protection is decoupled from translation the way Section 4 argues
 * for, but pushed further than the page-group system: the TLB carries
 * only a translation plus a small key id per page, and the rights a
 * domain holds live in a per-domain key-permission register file
 * (hw::KeyCache). The kernel assigns one key per segment; pages that
 * acquire per-page state (an override or a global mask) are promoted
 * to their own page key so one register always describes one rights
 * value exactly.
 *
 * The payoff is the revocation path: changing a domain's rights over a
 * whole segment flips the one (domain, segment-key) register --
 * registerWrite cycles -- instead of scanning and purging per-page
 * entries as the PLB and conventional systems must. The cost is a
 * bounded key space: when the kernel runs out of the config's `pkeys`
 * ids it recycles one round-robin, which *does* require dropping every
 * register and TLB entry carrying the retired key (the key-recycling
 * pressure the tests exercise).
 */

#ifndef SASOS_CORE_PKEY_SYSTEM_HH
#define SASOS_CORE_PKEY_SYSTEM_HH

#include <map>
#include <vector>

#include "core/mem_path.hh"
#include "core/system_config.hh"
#include "hw/key_cache.hh"
#include "hw/tlb.hh"
#include "os/protection_model.hh"
#include "os/vm_state.hh"
#include "sim/cycle_account.hh"
#include "sim/stats.hh"

namespace sasos::core
{

/** Protection-key register-file model. */
class PkeySystem : public os::ProtectionModel
{
  public:
    PkeySystem(const SystemConfig &config, os::VmState &state,
               CycleAccount &account, stats::Group *parent);

    const char *name() const override { return "pkey"; }

    os::AccessResult access(os::DomainId domain, vm::VAddr va,
                            vm::AccessType type) override;

    os::BatchOutcome accessBatch(os::DomainId domain, const vm::VAddr *vas,
                                 u64 n, vm::AccessType type) override;

    /** @name Batched fast path (core::driveBatch)
     * accessFast() is access() with the hit path's Scalar bumps and
     * charge() calls deferred into a batch-local accumulator, plus a
     * one-entry memo replaying the previous reference's TLB and
     * key-register resolution for same-page runs. flushBatch() folds
     * the accumulator into the real stats once per chunk.
     */
    /// @{
    struct BatchAccum
    {
        Cycles refCycles{};
        u64 tlbLookups = 0;
        u64 tlbHits = 0;
        u64 kprLookups = 0;
        u64 kprHits = 0;
    };

    os::AccessResult accessFast(os::DomainId domain, vm::VAddr va,
                                vm::AccessType type, BatchAccum &acc);
    void flushBatch(BatchAccum &acc);
    void invalidateBatchMemo() override { memo_.valid = false; }
    /// @}

    void onAttach(os::DomainId domain, const vm::Segment &seg,
                  vm::Access rights) override;
    void onDetach(os::DomainId domain, const vm::Segment &seg) override;
    void onSetPageRights(os::DomainId domain, vm::Vpn vpn,
                         vm::Access rights) override;
    void onSetPageRightsAllDomains(vm::Vpn vpn, vm::Access rights) override;
    void onClearPageRightsAllDomains(vm::Vpn vpn) override;
    void onSetSegmentRights(os::DomainId domain, const vm::Segment &seg,
                            vm::Access rights) override;
    void onDomainSwitch(os::DomainId from, os::DomainId to) override;
    void onPageMapped(vm::Vpn vpn, vm::Pfn pfn) override;
    void onPageUnmapped(vm::Vpn vpn, vm::Pfn pfn) override;
    void onDomainDestroyed(os::DomainId domain) override;
    void onSegmentDestroyed(const vm::Segment &seg) override;
    bool refreshAfterFault(os::DomainId domain, vm::Vpn vpn) override;
    vm::Access effectiveRights(os::DomainId domain, vm::Vpn vpn) override;

    void save(snap::SnapWriter &w) const override;
    void load(snap::SnapReader &r) override;

    /** @name Structure access for tests and benches */
    /// @{
    hw::Tlb &tlb() { return tlb_; }
    hw::KeyCache &keyCache() { return keyCache_; }
    hw::DataCache &cache() { return mem_.l1(); }
    MemoryPath &memory() { return mem_; }

    /** The key currently bound to a page (0 when unbound). */
    hw::KeyId keyOf(vm::Vpn vpn) const;
    /** Keys currently bound (segment + page bindings). */
    u64 boundKeys() const;
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar protectionDenies;
    stats::Scalar translationFaultsSeen;
    stats::Scalar keyAssignments;
    stats::Scalar keyRecycles;
    stats::Scalar pageKeyPromotions;
    stats::Scalar keyCorruptions;
    /// @}

  private:
    /** What a key id is bound to. */
    enum class BindKind : u8
    {
        Free = 0,
        Segment = 1,
        Page = 2,
    };

    struct KeyBinding
    {
        BindKind kind = BindKind::Free;
        u64 id = 0; // SegmentId or vpn number
    };

    void charge(CostCategory category, Cycles cycles);

    /** Apply one injected perturbation to this machine's structures.
     * @return true if the reference must raise a transient fault. */
    bool applyPerturbation(const fault::Perturbation &p);

    /** The key a refill for `vpn` must carry, assigning (and possibly
     * recycling) as needed. */
    hw::KeyId keyFor(vm::Vpn vpn);

    /** Bind a fresh key (recycling round-robin when the space is
     * exhausted) to (kind, id). */
    hw::KeyId allocKey(BindKind kind, u64 id);

    /** Drop every register and TLB entry carrying a key and unbind
     * it. */
    void retireKey(hw::KeyId key);

    /** Give a page its own key (first per-page state). */
    hw::KeyId promotePage(vm::Vpn vpn);

    /** Return a page key to the free list when the page no longer has
     * per-page state. */
    void maybeReleasePageKey(vm::Vpn vpn);

    /** Drop the (domain, key) registers of every promoted page in a
     * segment range (their effective rights may derive from the
     * changed grant). */
    void dropPageKeyRegisters(os::DomainId domain, vm::Vpn first,
                              u64 pages);

    /**
     * The previous fast-path reference's resolution. Valid only
     * between two consecutive accessFast() calls, and only when both
     * the TLB and the register file hit: every refill, hook and
     * per-call access() clears it.
     */
    struct BatchMemo
    {
        bool valid = false;
        os::DomainId domain = 0;
        u64 vpn = 0;
        hw::TlbEntry *entry = nullptr;
        hw::AssocLoc tlbLoc{};
        hw::AssocLoc kprLoc{};
        vm::Access rights = vm::Access::None;
    };

    SystemConfig config_;
    os::VmState &state_;
    CycleAccount &account_;
    hw::Tlb tlb_;
    hw::KeyCache keyCache_;
    MemoryPath mem_;
    BatchMemo memo_;

    /** @name Kernel key tables (serialized as the v3 "key tables") */
    /// @{
    std::map<vm::SegmentId, hw::KeyId> segKey_;
    std::map<u64, hw::KeyId> pageKey_;
    /** Index 1..pkeys; slot 0 unused (key 0 is never assigned). */
    std::vector<KeyBinding> bindings_;
    /** Round-robin recycling cursor (last victim). */
    hw::KeyId recycleCursor_ = 0;
    /// @}
};

} // namespace sasos::core

#endif // SASOS_CORE_PKEY_SYSTEM_HH
