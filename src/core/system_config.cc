#include "core/system_config.hh"

#include "sim/logging.hh"

namespace sasos::core
{

const char *
toString(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Plb:
        return "plb";
      case ModelKind::PageGroup:
        return "page-group";
      case ModelKind::Conventional:
        return "conventional";
      case ModelKind::Pkey:
        return "pkey";
    }
    return "?";
}

ModelKind
parseModelKind(const std::string &name)
{
    if (name == "plb")
        return ModelKind::Plb;
    if (name == "pg" || name == "page-group" || name == "pagegroup")
        return ModelKind::PageGroup;
    if (name == "conv" || name == "conventional")
        return ModelKind::Conventional;
    if (name == "pkey" || name == "protection-key" || name == "mpk")
        return ModelKind::Pkey;
    SASOS_FATAL("unknown protection model '", name, "'");
}

namespace
{

/** Shared L2 default: 1 MB, 64 B lines, 4-way, physically indexed. */
hw::DataCacheConfig
defaultL2()
{
    hw::DataCacheConfig l2;
    l2.sizeBytes = 1024 * 1024;
    l2.lineBytes = 64;
    l2.ways = 4;
    l2.org = hw::CacheOrg::Pipt;
    return l2;
}

} // namespace

SystemConfig
SystemConfig::plbSystem()
{
    SystemConfig config;
    config.model = ModelKind::Plb;
    config.l2 = defaultL2();
    config.cache.org = hw::CacheOrg::Vivt;
    // The PLB replaces the on-chip TLB; the translation TLB moves to
    // the second level and can be larger (Section 3.2.1).
    config.plb.sets = 1;
    config.plb.ways = 128;
    // Page-grain plus super-page protection blocks up to 1 GB, so a
    // single entry can cover an aligned segment (Section 4.3).
    config.plb.sizeShifts = {vm::kPageShift};
    for (int shift = vm::kPageShift + 1; shift <= 30; ++shift)
        config.plb.sizeShifts.push_back(shift);
    config.tlb.kind = hw::TlbKind::TranslationOnly;
    config.tlb.sets = 1;
    config.tlb.ways = 512;
    return config;
}

SystemConfig
SystemConfig::pageGroupSystem()
{
    SystemConfig config;
    config.model = ModelKind::PageGroup;
    config.l2 = defaultL2();
    // PA-RISC style: on-chip combined TLB, virtually indexed
    // physically tagged cache, LRU cache of page-groups.
    config.cache.org = hw::CacheOrg::Vipt;
    config.tlb.kind = hw::TlbKind::PageGroup;
    config.tlb.sets = 1;
    config.tlb.ways = 128; // same entry count as the PLB (Section 4)
    config.pgCache.entries = 16;
    config.pgCache.policy = hw::PolicyKind::Lru;
    return config;
}

SystemConfig
SystemConfig::pidRegisterSystem()
{
    SystemConfig config = pageGroupSystem();
    // The original architecture: four registers, no LRU information.
    config.pgCache.entries = 4;
    config.pgCache.policy = hw::PolicyKind::Random;
    return config;
}

SystemConfig
SystemConfig::conventionalSystem()
{
    SystemConfig config;
    config.model = ModelKind::Conventional;
    config.l2 = defaultL2();
    config.cache.org = hw::CacheOrg::Vipt;
    config.tlb.kind = hw::TlbKind::Conventional;
    config.tlb.sets = 1;
    config.tlb.ways = 128;
    return config;
}

SystemConfig
SystemConfig::purgingConventionalSystem()
{
    SystemConfig config = conventionalSystem();
    config.purgeTlbOnSwitch = true;
    return config;
}

SystemConfig
SystemConfig::flushingVcacheSystem()
{
    SystemConfig config = conventionalSystem();
    config.cache.org = hw::CacheOrg::Vivt;
    config.purgeTlbOnSwitch = true;
    config.flushCacheOnSwitch = true;
    return config;
}

SystemConfig
SystemConfig::pkeySystem()
{
    SystemConfig config;
    config.model = ModelKind::Pkey;
    config.l2 = defaultL2();
    // MPK style: untagged on-chip TLB whose entries carry a key id,
    // virtually indexed physically tagged cache, and a register file
    // of (domain, key) permissions consulted in parallel.
    config.cache.org = hw::CacheOrg::Vipt;
    config.tlb.kind = hw::TlbKind::Pkey;
    config.tlb.sets = 1;
    config.tlb.ways = 128; // same entry count as the PLB (Section 4)
    config.keyCache.entries = 64;
    config.keyCache.policy = hw::PolicyKind::Lru;
    config.pkeys = 16;
    return config;
}

SystemConfig
SystemConfig::forModel(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Plb:
        return plbSystem();
      case ModelKind::PageGroup:
        return pageGroupSystem();
      case ModelKind::Conventional:
        return conventionalSystem();
      case ModelKind::Pkey:
        return pkeySystem();
    }
    SASOS_PANIC("unreachable");
}

SystemConfig
SystemConfig::fromOptions(const Options &options, const SystemConfig &base)
{
    SystemConfig config = base;
    if (options.has("model"))
        config = forModel(parseModelKind(options.getString("model", "")));

    config.cache.sizeBytes =
        options.getU64("cacheKB", config.cache.sizeBytes / 1024) * 1024;
    config.cache.lineBytes = static_cast<u32>(
        options.getU64("lineBytes", config.cache.lineBytes));
    config.cache.ways =
        static_cast<u32>(options.getU64("cacheWays", config.cache.ways));
    if (options.has("cacheOrg")) {
        const std::string org = options.getString("cacheOrg", "");
        if (org == "vivt")
            config.cache.org = hw::CacheOrg::Vivt;
        else if (org == "vipt")
            config.cache.org = hw::CacheOrg::Vipt;
        else if (org == "pipt")
            config.cache.org = hw::CacheOrg::Pipt;
        else
            SASOS_FATAL("unknown cache organization '", org, "'");
    }

    config.tlb.ways = options.getU64("tlbEntries", config.tlb.entries()) /
                      config.tlb.sets;
    config.plb.ways = options.getU64("plbEntries", config.plb.entries()) /
                      config.plb.sets;
    config.plb.clusters = static_cast<unsigned>(
        options.getU64("plb_clusters", config.plb.clusters));
    if (config.plb.clusters < 1 || config.plb.clusters > 256)
        SASOS_FATAL("plb_clusters must be in [1, 256], got ",
                    config.plb.clusters);
    config.plb.rangeShift = static_cast<int>(
        options.getU64("plb_range_shift",
                       static_cast<u64>(config.plb.rangeShift)));
    if (config.plb.rangeShift < 0 || config.plb.rangeShift > 28)
        SASOS_FATAL("plb_range_shift must be in [0, 28], got ",
                    config.plb.rangeShift);
    if (config.plb.clusters > 1 && config.plb.ways < config.plb.clusters)
        SASOS_FATAL("plbEntries (", config.plb.entries(),
                    ") must be at least plb_clusters (",
                    config.plb.clusters, "): each bank needs an entry");
    config.pgCache.entries =
        options.getU64("pgEntries", config.pgCache.entries);
    config.keyCache.entries =
        options.getU64("kprEntries", config.keyCache.entries);
    config.pkeys = options.getU64("pkeys", config.pkeys);
    if (config.pkeys < 2)
        SASOS_FATAL("pkeys must be at least 2, got ", config.pkeys);

    config.l2Enabled = options.getBool("l2", config.l2Enabled);
    config.l2.sizeBytes =
        options.getU64("l2KB", config.l2.sizeBytes / 1024) * 1024;

    config.eagerPgReload = options.getBool("eagerPg", config.eagerPgReload);
    config.purgeTlbOnSwitch =
        options.getBool("purgeOnSwitch", config.purgeTlbOnSwitch);
    config.flushCacheOnSwitch =
        options.getBool("flushOnSwitch", config.flushCacheOnSwitch);
    config.superPagePlb = options.getBool("superPage", config.superPagePlb);
    if (config.superPagePlb) {
        // Allow a generous set of power-of-two super-page protection
        // blocks alongside the base page size.
        config.plb.sizeShifts = {vm::kPageShift};
        for (int shift = vm::kPageShift + 1; shift <= 30; ++shift)
            config.plb.sizeShifts.push_back(shift);
    }

    config.frames = options.getU64("frames", config.frames);
    config.seed = options.getU64("seed", config.seed);
    config.cache.seed = config.seed;
    config.tlb.seed = config.seed + 1;
    config.plb.seed = config.seed + 2;
    config.pgCache.seed = config.seed + 3;
    config.keyCache.seed = config.seed + 4;

    config.faults.enabled = options.getBool("faults", config.faults.enabled);
    config.faults.seed = options.getU64("fault_seed", config.faults.seed);
    config.faults.rate = options.getDouble("fault_rate", config.faults.rate);
    if (config.faults.rate < 0.0 || config.faults.rate > 1.0)
        SASOS_FATAL("fault_rate must be in [0, 1], got ",
                    config.faults.rate);
    config.faults.transientGap =
        options.getU64("fault_gap", config.faults.transientGap);

    options.applyCostOverrides(config.costs);
    return config;
}

} // namespace sasos::core
