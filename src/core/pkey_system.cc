#include "core/pkey_system.hh"

#include "core/system.hh" // driveBatch
#include "obs/tracer.hh"
#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::core
{

PkeySystem::PkeySystem(const SystemConfig &config, os::VmState &state,
                       CycleAccount &account, stats::Group *parent)
    : statsGroup(parent, "pkeySystem"),
      protectionDenies(&statsGroup, "protectionDenies",
                       "references denied by key-register rights"),
      translationFaultsSeen(&statsGroup, "translationFaults",
                            "references that found no translation"),
      keyAssignments(&statsGroup, "keyAssignments",
                     "protection-key ids bound by the kernel"),
      keyRecycles(&statsGroup, "keyRecycles",
                  "key ids recycled under key-space pressure"),
      pageKeyPromotions(&statsGroup, "pageKeyPromotions",
                        "pages promoted from a segment key to their own"),
      keyCorruptions(&statsGroup, "keyCorruptions",
                     "injected key-register corruption scrubs"),
      config_(config), state_(state), account_(account),
      tlb_(config.tlb, &statsGroup, "tlb"),
      keyCache_(config.keyCache, &statsGroup),
      mem_(config_, &statsGroup, account)
{
    SASOS_ASSERT(config.tlb.kind == hw::TlbKind::Pkey,
                 "the pkey system uses an untagged key-carrying TLB");
    SASOS_ASSERT(config.pkeys >= 2, "a usable key space needs >= 2 ids");
    SASOS_ASSERT(config.pkeys <= u64{1} << 16,
                 "key ids must fit the TLB's 16-bit key field");
    bindings_.resize(config.pkeys + 1);
}

void
PkeySystem::charge(CostCategory category, Cycles cycles)
{
    account_.charge(category, cycles);
}

bool
PkeySystem::applyPerturbation(const fault::Perturbation &p)
{
    Rng &rng = injector_->rng();
    // Protection state lives in the key-permission register file, so
    // the protection eviction flavor lands there; rights are rederived
    // from canonical state on the next miss.
    if (p.evictProtection) {
        keyCache_.evictOne(rng);
        SASOS_OBS_EVENT(obs::EventKind::PgCacheEvict,
                        account_.total().count(), 0, 1);
    }
    if (p.evictTranslation) {
        tlb_.evictOne(rng);
        SASOS_OBS_EVENT(obs::EventKind::TlbEvict, account_.total().count(),
                        0, 1);
    }
    if (p.evictData) {
        if (auto victim = mem_.l1().evictRandomLine(rng); victim &&
            victim->dirty) {
            charge(CostCategory::Reference, config_.costs.writeback);
        }
        SASOS_OBS_EVENT(obs::EventKind::DCacheEvict,
                        account_.total().count(), 0, 1);
    }
    if (p.flushProtection) {
        // Key-register corruption: the whole file is scrubbed and
        // refilled from the kernel's tables, the pkey analogue of the
        // other models' protection-structure flush.
        keyCache_.purgeAll();
        ++keyCorruptions;
        SASOS_OBS_EVENT(obs::EventKind::ProtectionFlush,
                        account_.total().count(), 0, 0);
    }
    if (p.delayFill)
        charge(CostCategory::Refill, config_.costs.faultDelay);
    return p.transientFault;
}

hw::KeyId
PkeySystem::allocKey(BindKind kind, u64 id)
{
    for (hw::KeyId key = 1; key <= config_.pkeys; ++key) {
        if (bindings_[key].kind == BindKind::Free) {
            bindings_[key] = {kind, id};
            ++keyAssignments;
            charge(CostCategory::KernelWork, config_.costs.keyAssign);
            return key;
        }
    }
    // Key space exhausted: retire the round-robin victim, then rebind
    // it. Recycling is the expensive path -- every register and TLB
    // entry carrying the retired id must go before the id is reused.
    recycleCursor_ =
        static_cast<hw::KeyId>(recycleCursor_ % config_.pkeys + 1);
    const hw::KeyId victim = recycleCursor_;
    retireKey(victim);
    ++keyRecycles;
    bindings_[victim] = {kind, id};
    ++keyAssignments;
    charge(CostCategory::KernelWork, config_.costs.keyAssign);
    return victim;
}

void
PkeySystem::retireKey(hw::KeyId key)
{
    KeyBinding &binding = bindings_[key];
    switch (binding.kind) {
      case BindKind::Segment:
        segKey_.erase(static_cast<vm::SegmentId>(binding.id));
        break;
      case BindKind::Page:
        pageKey_.erase(binding.id);
        break;
      case BindKind::Free:
        return;
    }
    binding = {};
    const auto regs = keyCache_.invalidateKey(key);
    std::vector<vm::Vpn> stale;
    tlb_.forEach([&](vm::Vpn vpn, hw::DomainId, hw::TlbEntry &entry) {
        if (entry.aid == key)
            stale.push_back(vpn);
    });
    for (vm::Vpn vpn : stale)
        tlb_.purgePage(vpn);
    charge(CostCategory::KernelWork,
           regs.scanned * config_.costs.purgeScanEntry +
               regs.invalidated * config_.costs.invalidateEntry +
               tlb_.capacity() * config_.costs.purgeScanEntry +
               stale.size() * config_.costs.invalidateEntry);
}

hw::KeyId
PkeySystem::promotePage(vm::Vpn vpn)
{
    const auto it = pageKey_.find(vpn.number());
    if (it != pageKey_.end())
        return it->second;
    const hw::KeyId key = allocKey(BindKind::Page, vpn.number());
    pageKey_.emplace(vpn.number(), key);
    ++pageKeyPromotions;
    // The page's TLB entry (if any) still carries the segment key;
    // drop it so the next refill tags it with its own key.
    const u64 dropped = tlb_.purgePage(vpn);
    charge(CostCategory::KernelWork,
           dropped * config_.costs.invalidateEntry);
    return key;
}

void
PkeySystem::maybeReleasePageKey(vm::Vpn vpn)
{
    const auto it = pageKey_.find(vpn.number());
    if (it == pageKey_.end())
        return;
    if (!state_.pagesWithStateIn(vpn, 1).empty())
        return; // overrides remain; the page keeps its key
    retireKey(it->second);
}

hw::KeyId
PkeySystem::keyFor(vm::Vpn vpn)
{
    const auto page_it = pageKey_.find(vpn.number());
    if (page_it != pageKey_.end())
        return page_it->second;
    if (!state_.pagesWithStateIn(vpn, 1).empty()) {
        // Per-page state appeared while the page was untagged (e.g.
        // restored state or a pre-reference override): promote at
        // refill so one register always describes one rights value.
        return promotePage(vpn);
    }
    const vm::Segment *seg = state_.segments.findByPage(vpn);
    if (seg == nullptr) {
        // A mapped page outside any live segment (mid-destruction)
        // gets its own key rather than polluting a segment binding.
        return promotePage(vpn);
    }
    const auto seg_it = segKey_.find(seg->id);
    if (seg_it != segKey_.end())
        return seg_it->second;
    const hw::KeyId key = allocKey(BindKind::Segment, seg->id);
    segKey_.emplace(seg->id, key);
    return key;
}

hw::KeyId
PkeySystem::keyOf(vm::Vpn vpn) const
{
    const auto page_it = pageKey_.find(vpn.number());
    if (page_it != pageKey_.end())
        return page_it->second;
    const vm::Segment *seg = state_.segments.findByPage(vpn);
    if (seg == nullptr)
        return 0;
    const auto seg_it = segKey_.find(seg->id);
    return seg_it != segKey_.end() ? seg_it->second : 0;
}

u64
PkeySystem::boundKeys() const
{
    return segKey_.size() + pageKey_.size();
}

os::AccessResult
PkeySystem::access(os::DomainId domain, vm::VAddr va, vm::AccessType type)
{
    // A per-call access (kernel fault-retry excursions included) may
    // insert or evict behind the coalescing memo; drop it.
    memo_.valid = false;

    if (injector_ != nullptr) {
        const fault::Perturbation p = injector_->tick();
        if (p.any() && applyPerturbation(p))
            return {false, os::FaultKind::Protection};
    }

    const vm::Vpn vpn = vm::pageOf(va);
    const bool store = type == vm::AccessType::Store;

    charge(CostCategory::Reference, config_.costs.l1Hit);
    charge(CostCategory::Reference, config_.costs.tlbLookup);

    hw::TlbEntry *entry = tlb_.lookup(vpn);
    if (entry == nullptr) {
        SASOS_OBS_EVENT(obs::EventKind::TlbMiss, account_.total().count(),
                        va.raw(), 0);
        charge(CostCategory::Refill, config_.costs.tlbRefill);
        const vm::Translation *translation = state_.pageTable.lookup(vpn);
        if (translation == nullptr) {
            ++translationFaultsSeen;
            return {false, os::FaultKind::Translation};
        }
        hw::TlbEntry fresh;
        fresh.pfn = translation->pfn;
        fresh.aid = keyFor(vpn);
        tlb_.insert(vpn, fresh);
        entry = tlb_.find(vpn);
        SASOS_ASSERT(entry != nullptr, "TLB lost a fresh entry");
        SASOS_OBS_EVENT(obs::EventKind::TlbFill, account_.total().count(),
                        va.raw(), entry->aid);
    } else {
        SASOS_OBS_EVENT(obs::EventKind::TlbHit, account_.total().count(),
                        va.raw(), entry->aid);
    }

    const hw::KeyId key = entry->aid;
    vm::Access rights;
    if (auto cached = keyCache_.lookup(domain, key)) {
        rights = *cached;
        SASOS_OBS_EVENT(obs::EventKind::PgCacheHit,
                        account_.total().count(), va.raw(), key);
    } else {
        SASOS_OBS_EVENT(obs::EventKind::PgCacheMiss,
                        account_.total().count(), va.raw(), key);
        charge(CostCategory::Refill, config_.costs.kprRefill);
        // By the promotion invariant every page under this key shares
        // this page's effective rights, so the register refill may
        // derive from the faulting page alone.
        rights = state_.effectiveRights(domain, vpn);
        keyCache_.insert(domain, key, rights);
        SASOS_OBS_EVENT(obs::EventKind::PgCacheFill,
                        account_.total().count(), va.raw(), key);
    }

    if (!vm::includes(rights, vm::requiredRight(type))) {
        ++protectionDenies;
        return {false, os::FaultKind::Protection};
    }

    const vm::PAddr pa = vm::translate(va, entry->pfn);
    if (mem_.l1Access(va, pa, store)) {
        SASOS_OBS_EVENT(obs::EventKind::DCacheHit,
                        account_.total().count(), va.raw(), store);
    } else {
        SASOS_OBS_EVENT(obs::EventKind::DCacheMiss,
                        account_.total().count(), va.raw(), store);
        if (auto victim = mem_.fillFromBeyond(va, pa, store)) {
            SASOS_OBS_EVENT(obs::EventKind::DCacheEvict,
                            account_.total().count(), va.raw(),
                            victim->dirty);
            if (victim->dirty)
                charge(CostCategory::Reference, config_.costs.writeback);
        }
    }

    entry->referenced = true;
    if (store)
        entry->dirty = true;
    state_.pageTable.markReferenced(vpn);
    if (store)
        state_.pageTable.markDirty(vpn);
    return {true, os::FaultKind::None};
}

os::BatchOutcome
PkeySystem::accessBatch(os::DomainId domain, const vm::VAddr *vas, u64 n,
                        vm::AccessType type)
{
    return driveBatch(*this, domain, vas, n, type);
}

os::AccessResult
PkeySystem::accessFast(os::DomainId domain, vm::VAddr va,
                       vm::AccessType type, BatchAccum &acc)
{
    const vm::Vpn vpn = vm::pageOf(va);
    const bool store = type == vm::AccessType::Store;

    acc.refCycles += config_.costs.l1Hit;
    acc.refCycles += config_.costs.tlbLookup;

    hw::TlbEntry *entry;
    vm::Access rights;
    if (memo_.valid && memo_.domain == domain &&
        memo_.vpn == vpn.number()) {
        // The previous reference resolved this page: replay exactly
        // what its TLB and register hits would do again -- the stats
        // deltas and the replacement touches -- without re-probing.
        entry = memo_.entry;
        rights = memo_.rights;
        ++acc.tlbLookups;
        ++acc.tlbHits;
        tlb_.touchHit(memo_.tlbLoc);
        ++acc.kprLookups;
        ++acc.kprHits;
        keyCache_.touchHit(memo_.kprLoc);
    } else {
        // From here on the memo describes a stale reference, and the
        // refills below may evict the entries it points at.
        memo_.valid = false;
        hw::AssocLoc tlb_loc;
        bool tlb_hit = true;
        entry = tlb_.lookup(vpn, 0, &tlb_loc);
        if (entry == nullptr) {
            tlb_hit = false;
            charge(CostCategory::Refill, config_.costs.tlbRefill);
            const vm::Translation *translation =
                state_.pageTable.lookup(vpn);
            if (translation == nullptr) {
                ++translationFaultsSeen;
                return {false, os::FaultKind::Translation};
            }
            hw::TlbEntry fresh;
            fresh.pfn = translation->pfn;
            fresh.aid = keyFor(vpn);
            tlb_.insert(vpn, fresh);
            entry = tlb_.find(vpn);
            SASOS_ASSERT(entry != nullptr, "TLB lost a fresh entry");
            // A fill's way is unknown without re-probing, so this
            // reference does not memoize; the next same-page one does.
        }
        const hw::KeyId key = entry->aid;
        hw::AssocLoc kpr_loc;
        if (auto cached = keyCache_.lookup(domain, key, &kpr_loc)) {
            rights = *cached;
            if (tlb_hit) {
                memo_.valid = true;
                memo_.domain = domain;
                memo_.vpn = vpn.number();
                memo_.entry = entry;
                memo_.tlbLoc = tlb_loc;
                memo_.kprLoc = kpr_loc;
                memo_.rights = rights;
            }
        } else {
            charge(CostCategory::Refill, config_.costs.kprRefill);
            rights = state_.effectiveRights(domain, vpn);
            keyCache_.insert(domain, key, rights);
            // The insert's way is unknown too; do not memoize.
        }
    }

    if (!vm::includes(rights, vm::requiredRight(type))) {
        ++protectionDenies;
        return {false, os::FaultKind::Protection};
    }

    const vm::PAddr pa = vm::translate(va, entry->pfn);
    if (!mem_.l1Access(va, pa, store)) {
        if (auto victim = mem_.fillFromBeyond(va, pa, store)) {
            if (victim->dirty)
                charge(CostCategory::Reference, config_.costs.writeback);
        }
    }

    entry->referenced = true;
    if (store)
        entry->dirty = true;
    state_.pageTable.markReferenced(vpn);
    if (store)
        state_.pageTable.markDirty(vpn);
    return {true, os::FaultKind::None};
}

void
PkeySystem::flushBatch(BatchAccum &acc)
{
    account_.charge(CostCategory::Reference, acc.refCycles);
    tlb_.lookups += acc.tlbLookups;
    tlb_.hits += acc.tlbHits;
    keyCache_.lookups += acc.kprLookups;
    keyCache_.hits += acc.kprHits;
    acc = {};
}

void
PkeySystem::dropPageKeyRegisters(os::DomainId domain, vm::Vpn first,
                                 u64 pages)
{
    const u64 lo = first.number();
    const u64 hi = lo + pages;
    for (auto it = pageKey_.lower_bound(lo);
         it != pageKey_.end() && it->first < hi; ++it) {
        if (keyCache_.remove(domain, it->second))
            charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
    }
}

void
PkeySystem::onAttach(os::DomainId domain, const vm::Segment &seg,
                     vm::Access rights)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    // The key binds lazily at the first refill; if the segment already
    // has one, the grant is a single register write for this domain.
    const auto it = segKey_.find(seg.id);
    if (it != segKey_.end())
        keyCache_.updateRights(domain, it->second, rights);
    charge(CostCategory::KernelWork, config_.costs.registerWrite);
    // Promoted pages derive their rights per page; drop this domain's
    // registers for them so refills reread canonical state.
    dropPageKeyRegisters(domain, seg.firstPage, seg.pages);
}

void
PkeySystem::onDetach(os::DomainId domain, const vm::Segment &seg)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    const auto it = segKey_.find(seg.id);
    if (it != segKey_.end() && keyCache_.remove(domain, it->second))
        charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
    charge(CostCategory::KernelWork, config_.costs.registerWrite);
    dropPageKeyRegisters(domain, seg.firstPage, seg.pages);
    // The TLB keeps its untagged entries: translations (and key ids)
    // are domain-independent, the revoked domain simply has no
    // register for the key any more.
}

void
PkeySystem::onSetPageRights(os::DomainId domain, vm::Vpn vpn,
                            vm::Access rights)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    (void)rights;
    // The page now has per-page state: give it its own key, then flip
    // this domain's register for it. The hardware carries *effective*
    // rights (a global mask may narrow the new grant).
    const hw::KeyId key = promotePage(vpn);
    keyCache_.updateRights(domain, key, state_.effectiveRights(domain, vpn));
    charge(CostCategory::KernelWork, config_.costs.registerWrite);
}

void
PkeySystem::onSetPageRightsAllDomains(vm::Vpn vpn, vm::Access rights)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    (void)rights;
    // A global mask narrows every domain's rights on this page: the
    // page gets its own key and every domain's register for it goes;
    // refills rederive through the mask.
    const hw::KeyId key = promotePage(vpn);
    const auto regs = keyCache_.invalidateKey(key);
    charge(CostCategory::KernelWork,
           regs.scanned * config_.costs.purgeScanEntry +
               regs.invalidated * config_.costs.invalidateEntry);
}

void
PkeySystem::onClearPageRightsAllDomains(vm::Vpn vpn)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    const auto it = pageKey_.find(vpn.number());
    if (it == pageKey_.end())
        return;
    const auto regs = keyCache_.invalidateKey(it->second);
    charge(CostCategory::KernelWork,
           regs.scanned * config_.costs.purgeScanEntry +
               regs.invalidated * config_.costs.invalidateEntry);
    // When no overrides remain either, the page folds back into its
    // segment's key (retireKey also drops the stale TLB tagging).
    maybeReleasePageKey(vpn);
}

void
PkeySystem::onSetSegmentRights(os::DomainId domain, const vm::Segment &seg,
                               vm::Access rights)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    // The headline path: segment-wide revocation (or grant) is one
    // register flip -- no per-page scan, no TLB purge. Pages promoted
    // to their own keys are governed by overrides or masks, except
    // that a domain without an override still derives from the grant,
    // so its page-key registers are dropped for refill.
    const auto it = segKey_.find(seg.id);
    if (it != segKey_.end())
        keyCache_.updateRights(domain, it->second, rights);
    charge(CostCategory::KernelWork, config_.costs.registerWrite);
    dropPageKeyRegisters(domain, seg.firstPage, seg.pages);
}

void
PkeySystem::onDomainSwitch(os::DomainId from, os::DomainId to)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    (void)from;
    (void)to;
    // Registers are domain-tagged and survive the switch; the TLB is
    // untagged and shared. One register write selects the domain.
    charge(CostCategory::DomainSwitch, config_.costs.registerWrite);
}

void
PkeySystem::onPageMapped(vm::Vpn vpn, vm::Pfn pfn)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    (void)vpn;
    (void)pfn;
}

void
PkeySystem::onPageUnmapped(vm::Vpn vpn, vm::Pfn pfn)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    const u64 dropped = tlb_.purgePage(vpn);
    charge(CostCategory::KernelWork,
           dropped * config_.costs.invalidateEntry);
    mem_.flushPage(vpn, pfn);
}

void
PkeySystem::onDomainDestroyed(os::DomainId domain)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    const auto regs = keyCache_.purgeDomain(domain);
    charge(CostCategory::KernelWork,
           regs.scanned * config_.costs.purgeScanEntry +
               regs.invalidated * config_.costs.invalidateEntry);
}

void
PkeySystem::onSegmentDestroyed(const vm::Segment &seg)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    const auto it = segKey_.find(seg.id);
    if (it != segKey_.end())
        retireKey(it->second);
    const u64 lo = seg.firstPage.number();
    const u64 hi = lo + seg.pages;
    std::vector<hw::KeyId> victims;
    for (auto page_it = pageKey_.lower_bound(lo);
         page_it != pageKey_.end() && page_it->first < hi; ++page_it) {
        victims.push_back(page_it->second);
    }
    for (hw::KeyId key : victims)
        retireKey(key);
}

bool
PkeySystem::refreshAfterFault(os::DomainId domain, vm::Vpn vpn)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    // The denial may have come from a stale register or a stale key
    // tag; drop both so the retry rederives from the tables.
    const auto it = pageKey_.find(vpn.number());
    hw::KeyId key = it != pageKey_.end() ? it->second : 0;
    if (key == 0) {
        if (const vm::Segment *seg = state_.segments.findByPage(vpn)) {
            const auto seg_it = segKey_.find(seg->id);
            if (seg_it != segKey_.end())
                key = seg_it->second;
        }
    }
    if (key != 0)
        keyCache_.remove(domain, key);
    tlb_.purgePage(vpn);
    charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
    return true;
}

vm::Access
PkeySystem::effectiveRights(os::DomainId domain, vm::Vpn vpn)
{
    // Like the domain-page model, the key model expresses the
    // canonical state exactly (one register per rights value).
    return state_.effectiveRights(domain, vpn);
}

void
PkeySystem::save(snap::SnapWriter &w) const
{
    w.putTag("pkeymodel");
    tlb_.save(w);
    keyCache_.save(w);
    w.putTag("keytables");
    w.put16(recycleCursor_);
    w.put64(segKey_.size());
    for (const auto &[seg, key] : segKey_) {
        w.put32(seg);
        w.put16(key);
    }
    w.put64(pageKey_.size());
    for (const auto &[vpn, key] : pageKey_) {
        w.put64(vpn);
        w.put16(key);
    }
    mem_.save(w);
}

void
PkeySystem::load(snap::SnapReader &r)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    r.expectTag("pkeymodel");
    tlb_.load(r);
    keyCache_.load(r);
    r.expectTag("keytables");
    const u16 cursor = r.get16();
    if (cursor > config_.pkeys)
        SASOS_FATAL("corrupt snapshot: recycle cursor ", cursor,
                    " beyond the key space of ", config_.pkeys);
    recycleCursor_ = cursor;
    segKey_.clear();
    pageKey_.clear();
    bindings_.assign(config_.pkeys + 1, {});
    const u32 seg_count = r.getCount(6);
    for (u32 i = 0; i < seg_count; ++i) {
        const vm::SegmentId seg = r.get32();
        const u16 key = r.get16();
        if (key == 0 || key > config_.pkeys)
            SASOS_FATAL("corrupt snapshot: segment key id ", key,
                        " outside [1, ", config_.pkeys, "]");
        if (bindings_[key].kind != BindKind::Free)
            SASOS_FATAL("corrupt snapshot: key ", key, " bound twice");
        if (!segKey_.emplace(seg, key).second)
            SASOS_FATAL("corrupt snapshot: duplicate segment key entry");
        bindings_[key] = {BindKind::Segment, seg};
    }
    const u32 page_count = r.getCount(10);
    for (u32 i = 0; i < page_count; ++i) {
        const u64 vpn = r.get64();
        const u16 key = r.get16();
        if (key == 0 || key > config_.pkeys)
            SASOS_FATAL("corrupt snapshot: page key id ", key,
                        " outside [1, ", config_.pkeys, "]");
        if (bindings_[key].kind != BindKind::Free)
            SASOS_FATAL("corrupt snapshot: key ", key, " bound twice");
        if (!pageKey_.emplace(vpn, key).second)
            SASOS_FATAL("corrupt snapshot: duplicate page key entry");
        bindings_[key] = {BindKind::Page, vpn};
    }
    mem_.load(r);
}

} // namespace sasos::core
