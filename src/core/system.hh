/**
 * @file
 * The top-level simulated system: machine + kernel + accounting.
 *
 * A System bundles one protection architecture (chosen by the
 * SystemConfig), the canonical VM state, the kernel and the cycle
 * account, and provides the reference-issue loop that resolves faults
 * through the kernel -- the simulation's outermost "CPU".
 */

#ifndef SASOS_CORE_SYSTEM_HH
#define SASOS_CORE_SYSTEM_HH

#include <memory>
#include <ostream>

#include "core/conventional_system.hh"
#include "core/pagegroup_system.hh"
#include "core/pkey_system.hh"
#include "core/plb_system.hh"
#include "core/system_config.hh"
#include "fault/fault.hh"
#include "obs/tracer.hh"
#include "os/kernel.hh"
#include "os/pager.hh"
#include "sim/random.hh"

namespace sasos::wl
{
class AddressStream;
}

namespace sasos::core
{

/** Tally of one batched System::run() call. */
struct RunResult
{
    /** References that completed (possibly after resolved faults). */
    u64 completed = 0;
    /** References that ended in an exception. */
    u64 failed = 0;
};

/** @name Snapshot config signature
 * Every configuration field that decides structure geometry, policy
 * seeds, costs or schedule is serialized as (name, value) pairs; the
 * checker fails with a clean fatal naming the first field whose value
 * differs, so images can never be overlaid on a mismatched machine.
 */
/// @{
void saveConfigSignature(snap::SnapWriter &w, const SystemConfig &config);
void checkConfigSignature(snap::SnapReader &r, const SystemConfig &config);
/// @}

/**
 * The shared batch driver behind every model's accessBatch override.
 *
 * Each model supplies two ingredients: a `BatchAccum` type of
 * batch-local stat/cycle accumulators, and an `accessFast(domain, va,
 * type, acc)` hit path that defers its Scalar bumps and charge()
 * calls into the accumulator and coalesces same-page runs through the
 * model's one-entry memo. flushBatch(acc) folds the accumulator into
 * the real stats exactly once per chunk (and before every faulting
 * return, so a fault observer sees fully up-to-date totals).
 *
 * When tracing is live or a fault injector is attached, per-reference
 * observability matters more than throughput, so the driver falls
 * back to the model's exact access() body per reference -- statically
 * dispatched, which is what the old per-model accessBatch loops did.
 */
template <typename Model>
os::BatchOutcome
driveBatch(Model &model, os::DomainId domain, const vm::VAddr *vas, u64 n,
           vm::AccessType type)
{
    if (obs::enabled() || model.injector() != nullptr) {
        for (u64 i = 0; i < n; ++i) {
            const os::AccessResult result =
                model.Model::access(domain, vas[i], type);
            if (!result.completed)
                return {i, result};
        }
        return {n, {}};
    }
    typename Model::BatchAccum acc;
    for (u64 i = 0; i < n; ++i) {
        const os::AccessResult result =
            model.accessFast(domain, vas[i], type, acc);
        if (!result.completed) {
            model.flushBatch(acc);
            return {i, result};
        }
    }
    model.flushBatch(acc);
    return {n, {}};
}

/** One simulated machine running the SASOS kernel. */
class System
{
  public:
    explicit System(const SystemConfig &config);

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    const SystemConfig &config() const { return config_; }

    /** @name Issuing references from the current domain
     * Faults are resolved through the kernel and the access retried;
     * @return false if the fault became an exception (the reference
     * never completed).
     */
    /// @{
    bool access(vm::VAddr va, vm::AccessType type);
    bool load(vm::VAddr va) { return access(va, vm::AccessType::Load); }
    bool store(vm::VAddr va) { return access(va, vm::AccessType::Store); }
    bool ifetch(vm::VAddr va) { return access(va, vm::AccessType::IFetch); }

    /** Touch every page of a range once (load). */
    void touchRange(vm::VAddr base, u64 bytes);

    /**
     * Issue `n` references drawn from `stream` through the batched
     * fast path. Simulated cycles and statistics are bit-identical to
     * calling access(stream.next(rng), type) n times, but the
     * fault-free path runs inside the model's devirtualized inner
     * loop with one stats update per chunk, which is several times
     * cheaper in host time. The kernel resolves faults exactly as in
     * access().
     */
    RunResult run(wl::AddressStream &stream, u64 n, Rng &rng,
                  vm::AccessType type = vm::AccessType::Load);
    /// @}

    /** Create a pager (registers itself with the kernel). */
    os::Pager &makePager(const os::PagerConfig &pager_config);

    os::Kernel &kernel() { return *kernel_; }
    os::VmState &state() { return state_; }
    os::ProtectionModel &model() { return *model_; }
    CycleAccount &account() { return account_; }
    const CostModel &costs() const { return config_.costs; }

    /** Concrete model access (null when another model is active). */
    PlbSystem *plbSystem() { return plb_; }
    PageGroupSystem *pageGroupSystem() { return pageGroup_; }
    ConventionalSystem *conventionalSystem() { return conventional_; }
    PkeySystem *pkeySystem() { return pkey_; }

    /** The fault injector, or null when `faults=` is off. */
    fault::FaultInjector *injector() { return injector_.get(); }

    /** Total simulated cycles so far. */
    Cycles cycles() const { return account_.total(); }

    stats::Group &statsRoot() { return statsRoot_; }

    /** @name Snapshot hooks
     * save() serializes the complete simulator state behind the
     * config signature; load() restores it into a System constructed
     * with the *same* configuration (any mismatch is a clean fatal
     * naming the offending field). A pager recorded in the image is
     * created on demand before the state is overlaid.
     */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /** Dump all statistics and the cycle breakdown. */
    void dumpStats(std::ostream &os);

    /** @name Machine-readable stats export (obs exporter) */
    /// @{
    void dumpStatsJson(std::ostream &os);
    void dumpStatsCsv(std::ostream &os);
    /// @}

  private:
    /**
     * Resolve the fault of a reference's first attempt through the
     * kernel, retrying bounded-many times; bumps failedReferences and
     * returns false if the fault became an exception.
     */
    bool resolveAndRetry(os::DomainId domain, vm::VAddr va,
                         vm::AccessType type, os::AccessResult result);

    SystemConfig config_;
    stats::Group statsRoot_;

  public:
    /** @name Statistics */
    /// @{
    stats::Scalar references;
    stats::Scalar failedReferences;
    /// @}

  private:
    CycleAccount account_;
    os::VmState state_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::unique_ptr<os::ProtectionModel> model_;
    PlbSystem *plb_ = nullptr;
    PageGroupSystem *pageGroup_ = nullptr;
    ConventionalSystem *conventional_ = nullptr;
    PkeySystem *pkey_ = nullptr;
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<os::Pager> pager_;
};

} // namespace sasos::core

#endif // SASOS_CORE_SYSTEM_HH
