#include "core/smp.hh"

#include "obs/tracer.hh"
#include "sim/logging.hh"

namespace sasos::core
{

namespace
{

std::unique_ptr<os::ProtectionModel>
makeCpuModel(const SystemConfig &config, os::VmState &state,
             CycleAccount &account, stats::Group *parent)
{
    switch (config.model) {
      case ModelKind::Plb:
        return std::make_unique<PlbSystem>(config, state, account, parent);
      case ModelKind::PageGroup:
        return std::make_unique<PageGroupSystem>(config, state, account,
                                                 parent);
      case ModelKind::Conventional:
        return std::make_unique<ConventionalSystem>(config, state, account,
                                                    parent);
      case ModelKind::Pkey:
        return std::make_unique<PkeySystem>(config, state, account, parent);
    }
    SASOS_PANIC("unreachable");
}

} // namespace

BroadcastModel::BroadcastModel(const SystemConfig &config, unsigned cpus,
                               os::VmState &state, CycleAccount &account,
                               stats::Group *parent)
    : statsGroup(parent, "smp"),
      shootdowns(&statsGroup, "shootdowns",
                 "broadcast maintenance operations"),
      ipisSent(&statsGroup, "ipisSent",
               "inter-processor interrupts sent"),
      config_(config), account_(account)
{
    SASOS_ASSERT(cpus >= 1, "a machine needs at least one CPU");
    for (unsigned cpu = 0; cpu < cpus; ++cpu) {
        cpuGroups_.push_back(std::make_unique<stats::Group>(
            &statsGroup, "cpu" + std::to_string(cpu)));
        cpus_.push_back(makeCpuModel(config, state, account,
                                     cpuGroups_.back().get()));
    }
}

BroadcastModel::~BroadcastModel() = default;

void
BroadcastModel::setCurrentCpu(unsigned cpu)
{
    SASOS_ASSERT(cpu < cpus_.size(), "no CPU ", cpu);
    current_ = cpu;
}

os::ProtectionModel &
BroadcastModel::cpu(unsigned index)
{
    SASOS_ASSERT(index < cpus_.size(), "no CPU ", index);
    return *cpus_[index];
}

void
BroadcastModel::chargeShootdown()
{
    ++shootdowns;
    SASOS_OBS_EVENT(obs::EventKind::Shootdown, account_.total().count(), 0,
                    cpus_.size() - 1);
    if (cpus_.size() > 1) {
        const u64 remotes = cpus_.size() - 1;
        ipisSent += remotes;
        account_.charge(CostCategory::KernelWork,
                        remotes * config_.costs.interProcessorInterrupt);
    }
}

os::AccessResult
BroadcastModel::access(os::DomainId domain, vm::VAddr va,
                       vm::AccessType type)
{
    return cpus_[current_]->access(domain, va, type);
}

void
BroadcastModel::onAttach(os::DomainId domain, const vm::Segment &seg,
                         vm::Access rights)
{
    // Attach touches no per-page hardware state on any model; only
    // the issuing CPU's structures (e.g. its PID cache) see it.
    cpus_[current_]->onAttach(domain, seg, rights);
}

void
BroadcastModel::onDetach(os::DomainId domain, const vm::Segment &seg)
{
    broadcast([&](os::ProtectionModel &m) { m.onDetach(domain, seg); });
}

void
BroadcastModel::onSetPageRights(os::DomainId domain, vm::Vpn vpn,
                                vm::Access rights)
{
    broadcast([&](os::ProtectionModel &m) {
        m.onSetPageRights(domain, vpn, rights);
    });
}

void
BroadcastModel::onSetPageRightsAllDomains(vm::Vpn vpn, vm::Access rights)
{
    broadcast([&](os::ProtectionModel &m) {
        m.onSetPageRightsAllDomains(vpn, rights);
    });
}

void
BroadcastModel::onClearPageRightsAllDomains(vm::Vpn vpn)
{
    broadcast([&](os::ProtectionModel &m) {
        m.onClearPageRightsAllDomains(vpn);
    });
}

void
BroadcastModel::onSetSegmentRights(os::DomainId domain,
                                   const vm::Segment &seg,
                                   vm::Access rights)
{
    broadcast([&](os::ProtectionModel &m) {
        m.onSetSegmentRights(domain, seg, rights);
    });
}

void
BroadcastModel::onDomainSwitch(os::DomainId from, os::DomainId to)
{
    // A switch is local to the processor it happens on.
    cpus_[current_]->onDomainSwitch(from, to);
}

void
BroadcastModel::onPageMapped(vm::Vpn vpn, vm::Pfn pfn)
{
    // Mappings load lazily per CPU.
    cpus_[current_]->onPageMapped(vpn, pfn);
}

void
BroadcastModel::onPageUnmapped(vm::Vpn vpn, vm::Pfn pfn)
{
    // The classic TLB shootdown: every processor purges its entry and
    // flushes its cached lines.
    broadcast([&](os::ProtectionModel &m) { m.onPageUnmapped(vpn, pfn); });
}

void
BroadcastModel::onDomainDestroyed(os::DomainId domain)
{
    broadcast(
        [&](os::ProtectionModel &m) { m.onDomainDestroyed(domain); });
}

void
BroadcastModel::onSegmentDestroyed(const vm::Segment &seg)
{
    broadcast(
        [&](os::ProtectionModel &m) { m.onSegmentDestroyed(seg); });
}

bool
BroadcastModel::refreshAfterFault(os::DomainId domain, vm::Vpn vpn)
{
    // Fault repair is local to the faulting processor.
    return cpus_[current_]->refreshAfterFault(domain, vpn);
}

vm::Access
BroadcastModel::effectiveRights(os::DomainId domain, vm::Vpn vpn)
{
    return cpus_[current_]->effectiveRights(domain, vpn);
}

SmpSystem::SmpSystem(const SystemConfig &config, unsigned cpus)
    : config_(config), statsRoot_("smp-system"), state_(config.frames)
{
    broadcast_ = std::make_unique<BroadcastModel>(config_, cpus, state_,
                                                  account_, &statsRoot_);
    kernel_ = std::make_unique<os::Kernel>(state_, *broadcast_,
                                           config_.costs, account_,
                                           &statsRoot_);
}

void
SmpSystem::runOn(unsigned cpu, os::DomainId domain)
{
    broadcast_->setCurrentCpu(cpu);
    kernel_->switchTo(domain);
}

bool
SmpSystem::access(vm::VAddr va, vm::AccessType type)
{
    const os::DomainId domain = kernel_->currentDomain();
    SASOS_ASSERT(domain != 0, "no current domain; create one first");
    for (int attempt = 0; attempt < 8; ++attempt) {
        const os::AccessResult result =
            broadcast_->access(domain, va, type);
        if (result.completed)
            return true;
        bool retry = false;
        switch (result.fault) {
          case os::FaultKind::Protection:
            retry = kernel_->handleProtectionFault(domain, va, type);
            break;
          case os::FaultKind::Translation:
            retry = kernel_->handleTranslationFault(domain, va, type);
            break;
          case os::FaultKind::None:
            SASOS_PANIC("incomplete access without a fault");
        }
        if (!retry)
            return false;
    }
    SASOS_PANIC("livelock resolving faults at address ", va.raw());
}

} // namespace sasos::core
