#include "core/conventional_system.hh"

#include "core/system.hh" // driveBatch
#include "obs/tracer.hh"
#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::core
{

ConventionalSystem::ConventionalSystem(const SystemConfig &config,
                                       os::VmState &state,
                                       CycleAccount &account,
                                       stats::Group *parent)
    : statsGroup(parent, "convSystem"),
      protectionDenies(&statsGroup, "protectionDenies",
                       "references denied by TLB rights"),
      translationFaultsSeen(&statsGroup, "translationFaults",
                            "references that found no translation"),
      switchPurges(&statsGroup, "switchPurges",
                   "full TLB purges on domain switches"),
      switchCacheFlushes(&statsGroup, "switchCacheFlushes",
                         "full data-cache flushes on domain switches"),
      config_(config), state_(state), account_(account),
      tlb_(config.tlb, &statsGroup, "tlb"),
      mem_(config_, &statsGroup, account)
{
    SASOS_ASSERT(config.tlb.kind == hw::TlbKind::Conventional,
                 "the conventional system uses an ASID-tagged TLB");
}

void
ConventionalSystem::charge(CostCategory category, Cycles cycles)
{
    account_.charge(category, cycles);
}

hw::DomainId
ConventionalSystem::tagOf(os::DomainId domain) const
{
    return config_.purgeTlbOnSwitch ? 0 : domain;
}

bool
ConventionalSystem::applyPerturbation(const fault::Perturbation &p)
{
    Rng &rng = injector_->rng();
    // The combined TLB holds protection and translation together, so
    // both eviction flavors land on it.
    if (p.evictProtection) {
        tlb_.evictOne(rng);
        SASOS_OBS_EVENT(obs::EventKind::TlbEvict, account_.total().count(),
                        0, 1);
    }
    if (p.evictTranslation) {
        tlb_.evictOne(rng);
        SASOS_OBS_EVENT(obs::EventKind::TlbEvict, account_.total().count(),
                        0, 1);
    }
    if (p.evictData) {
        if (auto victim = mem_.l1().evictRandomLine(rng); victim &&
            victim->dirty) {
            charge(CostCategory::Reference, config_.costs.writeback);
        }
        SASOS_OBS_EVENT(obs::EventKind::DCacheEvict,
                        account_.total().count(), 0, 1);
    }
    if (p.flushProtection) {
        tlb_.purgeAll();
        SASOS_OBS_EVENT(obs::EventKind::ProtectionFlush,
                        account_.total().count(), 0, 0);
    }
    if (p.delayFill)
        charge(CostCategory::Refill, config_.costs.faultDelay);
    return p.transientFault;
}

os::AccessResult
ConventionalSystem::access(os::DomainId domain, vm::VAddr va,
                           vm::AccessType type)
{
    // A per-call access (kernel fault-retry excursions included) may
    // insert or evict behind the coalescing memo; drop it.
    memo_.valid = false;

    if (injector_ != nullptr) {
        const fault::Perturbation p = injector_->tick();
        if (p.any() && applyPerturbation(p))
            return {false, os::FaultKind::Protection};
    }

    const vm::Vpn vpn = vm::pageOf(va);
    const bool store = type == vm::AccessType::Store;
    const hw::DomainId asid = tagOf(domain);

    charge(CostCategory::Reference, config_.costs.l1Hit);
    charge(CostCategory::Reference, config_.costs.tlbLookup);

    hw::TlbEntry *entry = tlb_.lookup(vpn, asid);
    if (entry == nullptr) {
        SASOS_OBS_EVENT(obs::EventKind::TlbMiss, account_.total().count(),
                        va.raw(), asid);
        charge(CostCategory::Refill, config_.costs.tlbRefill);
        const vm::Translation *translation = state_.pageTable.lookup(vpn);
        if (translation == nullptr) {
            ++translationFaultsSeen;
            return {false, os::FaultKind::Translation};
        }
        hw::TlbEntry fresh;
        fresh.pfn = translation->pfn;
        fresh.asid = asid;
        fresh.rights = state_.effectiveRights(domain, vpn);
        tlb_.insert(vpn, fresh);
        entry = tlb_.find(vpn, asid);
        SASOS_ASSERT(entry != nullptr, "TLB lost a fresh entry");
        SASOS_OBS_EVENT(obs::EventKind::TlbFill, account_.total().count(),
                        va.raw(), asid);
    } else {
        SASOS_OBS_EVENT(obs::EventKind::TlbHit, account_.total().count(),
                        va.raw(), asid);
    }

    if (!vm::includes(entry->rights, vm::requiredRight(type))) {
        ++protectionDenies;
        return {false, os::FaultKind::Protection};
    }

    const vm::PAddr pa = vm::translate(va, entry->pfn);
    if (mem_.l1Access(va, pa, store)) {
        SASOS_OBS_EVENT(obs::EventKind::DCacheHit,
                        account_.total().count(), va.raw(), store);
    } else {
        SASOS_OBS_EVENT(obs::EventKind::DCacheMiss,
                        account_.total().count(), va.raw(), store);
        if (auto victim = mem_.fillFromBeyond(va, pa, store)) {
            SASOS_OBS_EVENT(obs::EventKind::DCacheEvict,
                            account_.total().count(), va.raw(),
                            victim->dirty);
            if (victim->dirty)
                charge(CostCategory::Reference, config_.costs.writeback);
        }
    }

    entry->referenced = true;
    if (store)
        entry->dirty = true;
    state_.pageTable.markReferenced(vpn);
    if (store)
        state_.pageTable.markDirty(vpn);
    return {true, os::FaultKind::None};
}

os::BatchOutcome
ConventionalSystem::accessBatch(os::DomainId domain, const vm::VAddr *vas,
                                u64 n, vm::AccessType type)
{
    return driveBatch(*this, domain, vas, n, type);
}

os::AccessResult
ConventionalSystem::accessFast(os::DomainId domain, vm::VAddr va,
                               vm::AccessType type, BatchAccum &acc)
{
    const vm::Vpn vpn = vm::pageOf(va);
    const bool store = type == vm::AccessType::Store;
    const hw::DomainId asid = tagOf(domain);

    acc.refCycles += config_.costs.l1Hit;
    acc.refCycles += config_.costs.tlbLookup;

    hw::TlbEntry *entry;
    if (memo_.valid && memo_.domain == domain &&
        memo_.vpn == vpn.number()) {
        // The previous reference resolved this page: replay exactly
        // what its TLB hit would do again -- the stats deltas and the
        // replacement touch -- without re-scanning the set.
        entry = memo_.entry;
        ++acc.tlbLookups;
        ++acc.tlbHits;
        tlb_.touchHit(memo_.loc);
    } else {
        // From here on the memo describes a stale reference, and the
        // refill below may evict the entry it points at.
        memo_.valid = false;
        hw::AssocLoc loc;
        entry = tlb_.lookup(vpn, asid, &loc);
        if (entry == nullptr) {
            charge(CostCategory::Refill, config_.costs.tlbRefill);
            const vm::Translation *translation =
                state_.pageTable.lookup(vpn);
            if (translation == nullptr) {
                ++translationFaultsSeen;
                return {false, os::FaultKind::Translation};
            }
            hw::TlbEntry fresh;
            fresh.pfn = translation->pfn;
            fresh.asid = asid;
            fresh.rights = state_.effectiveRights(domain, vpn);
            tlb_.insert(vpn, fresh);
            entry = tlb_.find(vpn, asid);
            SASOS_ASSERT(entry != nullptr, "TLB lost a fresh entry");
            // A fill's way is unknown without re-probing, so this
            // reference does not memoize; the next same-page one does.
        } else {
            memo_.valid = true;
            memo_.domain = domain;
            memo_.vpn = vpn.number();
            memo_.entry = entry;
            memo_.loc = loc;
        }
    }

    if (!vm::includes(entry->rights, vm::requiredRight(type))) {
        ++protectionDenies;
        return {false, os::FaultKind::Protection};
    }

    const vm::PAddr pa = vm::translate(va, entry->pfn);
    if (!mem_.l1Access(va, pa, store)) {
        if (auto victim = mem_.fillFromBeyond(va, pa, store)) {
            if (victim->dirty)
                charge(CostCategory::Reference, config_.costs.writeback);
        }
    }

    entry->referenced = true;
    if (store)
        entry->dirty = true;
    state_.pageTable.markReferenced(vpn);
    if (store)
        state_.pageTable.markDirty(vpn);
    return {true, os::FaultKind::None};
}

void
ConventionalSystem::flushBatch(BatchAccum &acc)
{
    account_.charge(CostCategory::Reference, acc.refCycles);
    tlb_.lookups += acc.tlbLookups;
    tlb_.hits += acc.tlbHits;
    acc = {};
}

void
ConventionalSystem::onAttach(os::DomainId domain, const vm::Segment &seg,
                             vm::Access rights)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    // Entries fault in lazily, one per (domain, page).
    (void)domain;
    (void)seg;
    (void)rights;
}

void
ConventionalSystem::onDetach(os::DomainId domain, const vm::Segment &seg)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    const auto result =
        tlb_.purgeRange(tagOf(domain), seg.firstPage, seg.pages);
    charge(CostCategory::KernelWork,
           result.scanned * config_.costs.purgeScanEntry +
               result.invalidated * config_.costs.invalidateEntry);
}

void
ConventionalSystem::onSetPageRights(os::DomainId domain, vm::Vpn vpn,
                                    vm::Access rights)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    if (config_.purgeTlbOnSwitch) {
        // Untagged entries belong to whichever domain runs; the only
        // safe update is a purge-and-refill.
        if (tlb_.purgePageAsid(vpn, 0))
            charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
        return;
    }
    // One replica belongs to this domain; update it in place. The
    // hardware carries the *effective* rights (a global mask may
    // narrow the new grant).
    (void)rights;
    if (tlb_.setRights(vpn, state_.effectiveRights(domain, vpn),
                       tagOf(domain))) {
        charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
    }
}

void
ConventionalSystem::onSetPageRightsAllDomains(vm::Vpn vpn, vm::Access rights)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    (void)rights;
    // Every domain's replica must go; refills apply the mask.
    const u64 dropped = tlb_.purgePage(vpn);
    charge(CostCategory::KernelWork,
           dropped * config_.costs.invalidateEntry +
               config_.costs.purgeScanEntry * config_.tlb.ways);
}

void
ConventionalSystem::onClearPageRightsAllDomains(vm::Vpn vpn)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    const u64 dropped = tlb_.purgePage(vpn);
    charge(CostCategory::KernelWork,
           dropped * config_.costs.invalidateEntry +
               config_.costs.purgeScanEntry * config_.tlb.ways);
}

void
ConventionalSystem::onSetSegmentRights(os::DomainId domain,
                                       const vm::Segment &seg,
                                       vm::Access rights)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    (void)rights;
    const auto result =
        tlb_.purgeRange(tagOf(domain), seg.firstPage, seg.pages);
    charge(CostCategory::KernelWork,
           result.scanned * config_.costs.purgeScanEntry +
               result.invalidated * config_.costs.invalidateEntry);
}

void
ConventionalSystem::onDomainSwitch(os::DomainId from, os::DomainId to)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    (void)from;
    (void)to;
    if (config_.purgeTlbOnSwitch) {
        // Protection *and* translation state discarded together --
        // the translations were the same for every domain.
        ++switchPurges;
        tlb_.purgeAll();
        SASOS_OBS_EVENT(obs::EventKind::ProtectionFlush,
                        account_.total().count(), 0, to);
        charge(CostCategory::DomainSwitch, config_.costs.registerWrite);
    } else {
        charge(CostCategory::DomainSwitch, config_.costs.registerWrite);
    }
    if (config_.flushCacheOnSwitch) {
        // A virtually indexed cache on a multiple-address-space
        // system must be flushed to avoid homonyms (Section 2.2, as
        // the i860 requires). The single address space systems never
        // pay this.
        ++switchCacheFlushes;
        mem_.flushAllL1();
    }
}

void
ConventionalSystem::onPageMapped(vm::Vpn vpn, vm::Pfn pfn)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    (void)vpn;
    (void)pfn;
}

void
ConventionalSystem::onPageUnmapped(vm::Vpn vpn, vm::Pfn pfn)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    const u64 dropped = tlb_.purgePage(vpn);
    charge(CostCategory::KernelWork,
           dropped * config_.costs.invalidateEntry);
    mem_.flushPage(vpn, pfn);
}

void
ConventionalSystem::onDomainDestroyed(os::DomainId domain)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    if (config_.purgeTlbOnSwitch)
        return; // no per-domain tags to clean
    const auto result = tlb_.purgeAsid(tagOf(domain));
    charge(CostCategory::KernelWork,
           result.scanned * config_.costs.purgeScanEntry +
               result.invalidated * config_.costs.invalidateEntry);
}

void
ConventionalSystem::onSegmentDestroyed(const vm::Segment &seg)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    const auto result =
        tlb_.purgeRange(std::nullopt, seg.firstPage, seg.pages);
    charge(CostCategory::KernelWork,
           result.scanned * config_.costs.purgeScanEntry +
               result.invalidated * config_.costs.invalidateEntry);
}

bool
ConventionalSystem::refreshAfterFault(os::DomainId domain, vm::Vpn vpn)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    // Stale per-domain entry; drop it so the refill reads the tables.
    tlb_.purgePageAsid(vpn, tagOf(domain));
    charge(CostCategory::KernelWork, config_.costs.invalidateEntry);
    return true;
}

vm::Access
ConventionalSystem::effectiveRights(os::DomainId domain, vm::Vpn vpn)
{
    return state_.effectiveRights(domain, vpn);
}

void
ConventionalSystem::save(snap::SnapWriter &w) const
{
    w.putTag("convmodel");
    tlb_.save(w);
    mem_.save(w);
}

void
ConventionalSystem::load(snap::SnapReader &r)
{
    // Maintenance may touch entries behind the coalescing memo;
    // drop it (uniform rule for every hook).
    memo_.valid = false;
    r.expectTag("convmodel");
    tlb_.load(r);
    mem_.load(r);
}


} // namespace sasos::core
