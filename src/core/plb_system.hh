/**
 * @file
 * The domain-page model machine: PLB + VIVT cache + off-chip TLB.
 *
 * This is the paper's proposed organization (Section 3.2.1, Figure 1):
 * on every reference the PLB and the virtually indexed, virtually
 * tagged data cache are probed in parallel; the PLB supplies the
 * current domain's rights to the page, the cache supplies the data.
 * Translation is needed only on cache misses and dirty writebacks and
 * is served by a translation-only TLB at the second level, off the
 * critical path.
 *
 * Consequences modeled here, each measured by a bench:
 *  - domain switch = one register write (the PD-ID register);
 *  - rights changes for one (domain, page) = one indexed PLB update;
 *  - rights changes spanning domains or ranges = a PLB scan;
 *  - segment detach = a PLB scan;
 *  - unmap leaves the PLB alone (stale entries are safe: the flushed
 *    cache and purged TLB force a translation fault);
 *  - sharing replicates PLB entries per domain;
 *  - super-page entries can cover an aligned segment.
 */

#ifndef SASOS_CORE_PLB_SYSTEM_HH
#define SASOS_CORE_PLB_SYSTEM_HH

#include <memory>

#include "core/mem_path.hh"
#include "core/system_config.hh"
#include "hw/cluster_plb.hh"
#include "hw/data_cache.hh"
#include "hw/plb.hh"
#include "hw/tlb.hh"
#include "os/protection_model.hh"
#include "os/vm_state.hh"
#include "sim/cycle_account.hh"
#include "sim/stats.hh"

namespace sasos::core
{

/** The PLB-based protection system. */
class PlbSystem : public os::ProtectionModel
{
  public:
    PlbSystem(const SystemConfig &config, os::VmState &state,
              CycleAccount &account, stats::Group *parent);

    const char *name() const override { return "plb"; }

    os::AccessResult access(os::DomainId domain, vm::VAddr va,
                            vm::AccessType type) override;

    os::BatchOutcome accessBatch(os::DomainId domain, const vm::VAddr *vas,
                                 u64 n, vm::AccessType type) override;

    /** @name Batched fast path (core::driveBatch)
     * accessFast() is access() with the per-reference Scalar bumps and
     * charge() calls of the hit path deferred into a batch-local
     * accumulator, plus a one-entry memo that lets consecutive
     * references to the same (domain, page) replay the previous
     * resolution -- stats deltas and replacement touch included --
     * without re-probing the PLB. flushBatch() folds the accumulator
     * into the real stats; the driver calls it once per chunk and
     * before every faulting return.
     */
    /// @{
    struct BatchAccum
    {
        Cycles refCycles{};
        u64 plbLookups = 0;
        u64 plbHits = 0;
    };

    os::AccessResult accessFast(os::DomainId domain, vm::VAddr va,
                                vm::AccessType type, BatchAccum &acc);
    void flushBatch(BatchAccum &acc);
    void invalidateBatchMemo() override { memo_.valid = false; }
    /// @}

    void onAttach(os::DomainId domain, const vm::Segment &seg,
                  vm::Access rights) override;
    void onDetach(os::DomainId domain, const vm::Segment &seg) override;
    void onSetPageRights(os::DomainId domain, vm::Vpn vpn,
                         vm::Access rights) override;
    void onSetPageRightsAllDomains(vm::Vpn vpn, vm::Access rights) override;
    void onClearPageRightsAllDomains(vm::Vpn vpn) override;
    void onSetSegmentRights(os::DomainId domain, const vm::Segment &seg,
                            vm::Access rights) override;
    void onDomainSwitch(os::DomainId from, os::DomainId to) override;
    void onPageMapped(vm::Vpn vpn, vm::Pfn pfn) override;
    void onPageUnmapped(vm::Vpn vpn, vm::Pfn pfn) override;
    void onDomainDestroyed(os::DomainId domain) override;
    void onSegmentDestroyed(const vm::Segment &seg) override;
    bool refreshAfterFault(os::DomainId domain, vm::Vpn vpn) override;
    vm::Access effectiveRights(os::DomainId domain, vm::Vpn vpn) override;

    void save(snap::SnapWriter &w) const override;
    void load(snap::SnapReader &r) override;

    /** @name Structure access for tests and benches
     * plb() is the flat engine and asserts flat mode; clustered-mode
     * callers go through clusterPlb() or the engine-agnostic
     * prot*() dispatchers below. */
    /// @{
    bool clustered() const { return clplb_ != nullptr; }
    hw::Plb &
    plb()
    {
        SASOS_ASSERT(plb_ != nullptr,
                     "flat plb() accessor on a clustered PLB system");
        return *plb_;
    }
    hw::ClusterPlb *clusterPlb() { return clplb_.get(); }
    hw::Tlb &translationTlb() { return tlb_; }
    hw::DataCache &cache() { return mem_.l1(); }
    MemoryPath &memory() { return mem_; }
    /// @}

    /** @name Engine-agnostic protection-structure dispatch
     * (the mc shootdown path must work over either organization) */
    /// @{
    hw::PurgeResult protPurgeRange(std::optional<hw::DomainId> domain,
                                   vm::Vpn first, u64 pages);
    std::optional<hw::PlbMatch> protPeek(os::DomainId domain,
                                         vm::VAddr va) const;
    std::size_t protOccupancy() const;
    /** Probe misses (cluster-level totals in clustered mode). */
    u64 protMisses() const;
    /** Maintenance-scan entry visits, summed over banks. */
    u64 protPurgeScans() const;
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar protectionDenies;
    stats::Scalar translationFaultsSeen;
    stats::Scalar superPageFills;
    stats::Scalar pageFills;
    stats::Scalar writebackTranslations;
    /// @}

  private:
    void charge(CostCategory category, Cycles cycles);

    /** Apply one injected perturbation to this machine's structures.
     * @return true if the reference must raise a transient fault. */
    bool applyPerturbation(const fault::Perturbation &p);

    /** Resolve a virtual address through the off-chip TLB; nullopt if
     * the page is unmapped. Charges lookup + refill costs. */
    std::optional<vm::Pfn> translateOffChip(vm::Vpn vpn);

    /** Choose the protection block size for a PLB refill. */
    int refillShift(os::DomainId domain, vm::Vpn vpn,
                    const vm::Segment *seg) const;

    /**
     * The previous fast-path reference's PLB resolution. Valid only
     * between two consecutive accessFast() calls: every full-path
     * resolution overwrites or clears it, every maintenance hook and
     * per-call access() clears it, so a match guarantees the entry at
     * `loc` is still the one that granted `rights`.
     */
    struct BatchMemo
    {
        bool valid = false;
        os::DomainId domain = 0;
        u64 vpn = 0;
        vm::Access rights = vm::Access::None;
        hw::AssocLoc loc{};
    };

    /** Run `fn` against whichever protection engine is live. Both
     * engines share the maintenance/probe surface, so call sites stay
     * organization-blind. */
    template <typename Fn>
    auto
    withEngine(Fn &&fn)
    {
        return clplb_ != nullptr ? fn(*clplb_) : fn(*plb_);
    }
    template <typename Fn>
    auto
    withEngine(Fn &&fn) const
    {
        return clplb_ != nullptr
                   ? fn(static_cast<const hw::ClusterPlb &>(*clplb_))
                   : fn(static_cast<const hw::Plb &>(*plb_));
    }

    SystemConfig config_;
    os::VmState &state_;
    CycleAccount &account_;
    /** Exactly one of the two engines is live: the flat PLB
     * (plb_clusters=1, the default) or the clustered one. */
    std::unique_ptr<hw::Plb> plb_;
    std::unique_ptr<hw::ClusterPlb> clplb_;
    hw::Tlb tlb_;
    MemoryPath mem_;
    BatchMemo memo_;
    /** Cached plb_.pageUniform(): sub-page block classes make a
     * VPN-grain memo unsound, so memoization is disabled. */
    bool plbPageUniform_ = false;
};

} // namespace sasos::core

#endif // SASOS_CORE_PLB_SYSTEM_HH
