#include "core/mem_path.hh"

#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::core
{

MemoryPath::MemoryPath(const SystemConfig &config, stats::Group *parent,
                       CycleAccount &account)
    : config_(config), account_(account), l1_(config.cache, parent)
{
    if (config.l2Enabled) {
        hw::DataCacheConfig l2_config = config.l2;
        l2_config.org = hw::CacheOrg::Pipt;
        l2_ = std::make_unique<hw::DataCache>(l2_config, parent, "l2");
    }
}

void
MemoryPath::charge(CostCategory category, Cycles cycles)
{
    account_.charge(category, cycles);
}

std::optional<hw::CacheVictim>
MemoryPath::fillFromBeyond(vm::VAddr va, vm::PAddr pa, bool store)
{
    if (l2_ != nullptr) {
        if (l2_->access(va, pa, false)) {
            charge(CostCategory::Reference, config_.costs.l2Hit);
        } else {
            charge(CostCategory::Reference, config_.costs.l2Hit);
            charge(CostCategory::Reference, config_.costs.memory);
            if (auto victim = l2_->fill(va, pa, false)) {
                if (victim->dirty)
                    charge(CostCategory::Reference,
                           config_.costs.writeback);
            }
        }
    } else {
        charge(CostCategory::Reference, config_.costs.memory);
    }
    return l1_.fill(va, pa, store);
}

void
MemoryPath::flushPage(vm::Vpn vpn, std::optional<vm::Pfn> pfn)
{
    const auto l1_flush = l1_.flushPage(vpn, pfn);
    charge(CostCategory::Flush,
           l1_flush.lineAccesses * config_.costs.cacheFlushLine +
               l1_flush.writebacks * config_.costs.writeback);
    if (l2_ != nullptr && pfn.has_value()) {
        const auto l2_flush = l2_->flushPage(vpn, pfn);
        charge(CostCategory::Flush,
               l2_flush.lineAccesses * config_.costs.cacheFlushLine +
                   l2_flush.writebacks * config_.costs.writeback);
    }
}

u64
MemoryPath::flushAllL1()
{
    const auto flush = l1_.flushAll();
    charge(CostCategory::Flush,
           flush.lineAccesses * config_.costs.cacheFlushLine +
               flush.writebacks * config_.costs.writeback);
    return flush.invalidated;
}

void
MemoryPath::save(snap::SnapWriter &w) const
{
    w.putTag("mempath");
    l1_.save(w);
    w.putBool(l2_ != nullptr);
    if (l2_)
        l2_->save(w);
}

void
MemoryPath::load(snap::SnapReader &r)
{
    r.expectTag("mempath");
    l1_.load(r);
    const bool has_l2 = r.getBool();
    if (has_l2 != (l2_ != nullptr))
        SASOS_FATAL("snapshot mismatch: image ", has_l2 ? "has" : "lacks",
                    " an L2 cache but this system ",
                    l2_ ? "has one" : "does not");
    if (l2_)
        l2_->load(r);
}


} // namespace sasos::core
