#include "core/system.hh"

#include <algorithm>
#include <array>

#include "obs/export.hh"
#include "obs/tracer.hh"
#include "sim/logging.hh"
#include "snap/snapio.hh"
// Header-only use of the stream interface: core never constructs a
// stream, so this adds no link dependency on the workload library.
#include "workload/address_stream.hh"

namespace sasos::core
{

System::System(const SystemConfig &config)
    : config_(config), statsRoot_("system"),
      references(&statsRoot_, "references", "references issued"),
      failedReferences(&statsRoot_, "failedReferences",
                       "references ending in an exception"),
      state_(config.frames)
{
    switch (config_.model) {
      case ModelKind::Plb: {
        auto model = std::make_unique<PlbSystem>(config_, state_, account_,
                                                 &statsRoot_);
        plb_ = model.get();
        model_ = std::move(model);
        break;
      }
      case ModelKind::PageGroup: {
        auto model = std::make_unique<PageGroupSystem>(config_, state_,
                                                       account_,
                                                       &statsRoot_);
        pageGroup_ = model.get();
        model_ = std::move(model);
        break;
      }
      case ModelKind::Conventional: {
        auto model = std::make_unique<ConventionalSystem>(config_, state_,
                                                          account_,
                                                          &statsRoot_);
        conventional_ = model.get();
        model_ = std::move(model);
        break;
      }
      case ModelKind::Pkey: {
        auto model = std::make_unique<PkeySystem>(config_, state_, account_,
                                                  &statsRoot_);
        pkey_ = model.get();
        model_ = std::move(model);
        break;
      }
    }
    if (config_.faults.enabled) {
        injector_ = std::make_unique<fault::FaultInjector>(config_.faults,
                                                           &statsRoot_);
        model_->setInjector(injector_.get());
    }
    kernel_ = std::make_unique<os::Kernel>(state_, *model_, config_.costs,
                                           account_, &statsRoot_);
}

bool
System::access(vm::VAddr va, vm::AccessType type)
{
    ++references;
    const os::DomainId domain = kernel_->currentDomain();
    SASOS_ASSERT(domain != 0, "no current domain; create one first");
    SASOS_OBS_EVENT(obs::EventKind::AccessBegin, account_.total().count(),
                    va.raw(), domain);
    const os::AccessResult result = model_->access(domain, va, type);
    bool ok = true;
    if (!result.completed)
        ok = resolveAndRetry(domain, va, type, result);
    SASOS_OBS_EVENT(obs::EventKind::AccessEnd, account_.total().count(),
                    va.raw(), ok);
    return ok;
}

bool
System::resolveAndRetry(os::DomainId domain, vm::VAddr va,
                        vm::AccessType type, os::AccessResult result)
{
    // A bounded retry loop: each fault either resolves (retry) or
    // becomes an exception. A single reference can legitimately fault
    // a handful of times (protection upcall, then page-in, then a
    // structure refill), but endless repetition is a model bug.
    // `result` is the non-completed outcome of the first attempt; at
    // most 7 further attempts are made (8 in total, as one reference
    // can never legitimately need more).
    SASOS_OBS_EVENT(obs::EventKind::KernelResolveBegin,
                    account_.total().count(), va.raw(), domain);
    for (int attempt = 1; ; ++attempt) {
        bool retry = false;
        switch (result.fault) {
          case os::FaultKind::Protection:
            retry = kernel_->handleProtectionFault(domain, va, type);
            break;
          case os::FaultKind::Translation:
            retry = kernel_->handleTranslationFault(domain, va, type);
            break;
          case os::FaultKind::None:
            SASOS_PANIC("incomplete access without a fault");
        }
        if (!retry) {
            ++failedReferences;
            SASOS_OBS_EVENT(obs::EventKind::KernelResolveEnd,
                            account_.total().count(), va.raw(), 0);
            return false;
        }
        if (attempt >= 8) {
            SASOS_PANIC("livelock resolving faults at address ", va.raw(),
                        " in domain ", domain);
        }
        result = model_->access(domain, va, type);
        if (result.completed) {
            SASOS_OBS_EVENT(obs::EventKind::KernelResolveEnd,
                            account_.total().count(), va.raw(), 1);
            return true;
        }
    }
}

RunResult
System::run(wl::AddressStream &stream, u64 n, Rng &rng, vm::AccessType type)
{
    SASOS_ASSERT(kernel_->currentDomain() != 0,
                 "no current domain; create one first");
    if (obs::enabled()) {
        // Tracing wants one begin/end span per reference, so issue
        // through access(); simulated cycles and statistics are
        // bit-identical to the batched loop below.
        RunResult tally;
        for (u64 i = 0; i < n; ++i) {
            if (access(stream.next(rng), type))
                ++tally.completed;
            else
                ++tally.failed;
        }
        return tally;
    }
    // Addresses are generated a chunk at a time and issued through
    // the model's devirtualized batch loop; only references whose
    // first attempt faults fall back to the kernel's per-reference
    // resolution path. The stats counter is bumped once per chunk.
    constexpr u64 kChunk = 512;
    std::array<vm::VAddr, kChunk> buffer;
    RunResult tally;
    for (u64 left = n; left > 0;) {
        const u64 chunk = std::min(left, kChunk);
        for (u64 i = 0; i < chunk; ++i)
            buffer[i] = stream.next(rng);
        references += chunk;
        u64 i = 0;
        while (i < chunk) {
            // Re-read the domain after every excursion through the
            // kernel: fault handling may have switched domains, and
            // access() picks up the current one per reference.
            const os::DomainId domain = kernel_->currentDomain();
            const os::BatchOutcome outcome = model_->accessBatch(
                domain, buffer.data() + i, chunk - i, type);
            tally.completed += outcome.completed;
            i += outcome.completed;
            if (i == chunk)
                break;
            // buffer[i] made its first attempt inside the batch and
            // faulted; finish it exactly as access() would.
            if (resolveAndRetry(domain, buffer[i], type, outcome.faulted))
                ++tally.completed;
            else
                ++tally.failed;
            ++i;
        }
        left -= chunk;
    }
    return tally;
}

void
System::touchRange(vm::VAddr base, u64 bytes)
{
    for (u64 offset = 0; offset < bytes; offset += vm::kPageBytes)
        load(base + offset);
}

os::Pager &
System::makePager(const os::PagerConfig &pager_config)
{
    SASOS_ASSERT(pager_ == nullptr, "system already has a pager");
    pager_ = std::make_unique<os::Pager>(*kernel_, pager_config,
                                         &statsRoot_);
    return *pager_;
}

namespace
{

/** One (name, u64) signature pair writer / checker. */
struct SignatureWriter
{
    snap::SnapWriter &w;

    void
    field(const std::string &name, u64 value)
    {
        w.putString(name);
        w.put64(value);
    }
};

struct SignatureChecker
{
    snap::SnapReader &r;

    void
    field(const std::string &name, u64 value)
    {
        const std::string image_name = r.getString();
        if (image_name != name) {
            SASOS_FATAL("snapshot mismatch: expected config field '", name,
                        "', image has '", image_name, "'");
        }
        const u64 image_value = r.get64();
        if (image_value != value) {
            SASOS_FATAL("snapshot mismatch: config field '", name, "' is ",
                        value, " here but ", image_value, " in the image");
        }
    }
};

/** Walk every geometry/policy/seed/cost knob through `sig.field`. */
template <typename Sig>
void
walkConfigSignature(Sig &&sig, const SystemConfig &config)
{
    auto cache = [&sig](const std::string &prefix,
                        const hw::DataCacheConfig &c) {
        sig.field(prefix + ".sizeBytes", c.sizeBytes);
        sig.field(prefix + ".lineBytes", c.lineBytes);
        sig.field(prefix + ".ways", c.ways);
        sig.field(prefix + ".org", static_cast<u64>(c.org));
        sig.field(prefix + ".policy", static_cast<u64>(c.policy));
        sig.field(prefix + ".seed", c.seed);
    };
    sig.field("model", static_cast<u64>(config.model));
    sig.field("frames", config.frames);
    sig.field("seed", config.seed);
    cache("cache", config.cache);
    sig.field("l2Enabled", config.l2Enabled ? 1 : 0);
    if (config.l2Enabled)
        cache("l2", config.l2);
    sig.field("tlb.kind", static_cast<u64>(config.tlb.kind));
    sig.field("tlb.sets", config.tlb.sets);
    sig.field("tlb.ways", config.tlb.ways);
    sig.field("tlb.policy", static_cast<u64>(config.tlb.policy));
    sig.field("tlb.seed", config.tlb.seed);
    sig.field("plb.sets", config.plb.sets);
    sig.field("plb.ways", config.plb.ways);
    sig.field("plb.policy", static_cast<u64>(config.plb.policy));
    sig.field("plb.seed", config.plb.seed);
    sig.field("plb.sizeShifts", config.plb.sizeShifts.size());
    for (std::size_t i = 0; i < config.plb.sizeShifts.size(); ++i) {
        sig.field("plb.sizeShifts[" + std::to_string(i) + "]",
                  static_cast<u64>(config.plb.sizeShifts[i]));
    }
    // Clustered-geometry fields only when clustered: flat runs keep
    // the original signature, so golden flat images still load, while
    // any flat/clustered cross-load trips the field-name check.
    if (config.plb.clusters > 1) {
        sig.field("plb.clusters", config.plb.clusters);
        sig.field("plb.rangeShift",
                  static_cast<u64>(config.plb.rangeShift));
    }
    sig.field("pgCache.entries", config.pgCache.entries);
    sig.field("pgCache.policy", static_cast<u64>(config.pgCache.policy));
    sig.field("pgCache.seed", config.pgCache.seed);
    sig.field("keyCache.entries", config.keyCache.entries);
    sig.field("keyCache.policy", static_cast<u64>(config.keyCache.policy));
    sig.field("keyCache.seed", config.keyCache.seed);
    sig.field("pkeys", config.pkeys);
    sig.field("eagerPgReload", config.eagerPgReload ? 1 : 0);
    sig.field("purgeTlbOnSwitch", config.purgeTlbOnSwitch ? 1 : 0);
    sig.field("flushCacheOnSwitch", config.flushCacheOnSwitch ? 1 : 0);
    sig.field("superPagePlb", config.superPagePlb ? 1 : 0);
    sig.field("faults.enabled", config.faults.enabled ? 1 : 0);
    sig.field("faults.seed", config.faults.seed);
    sig.field("faults.rateBits", std::bit_cast<u64>(config.faults.rate));
    sig.field("faults.transientGap", config.faults.transientGap);
    for (const std::string &name : config.costs.names()) {
        u64 cycles = 0;
        config.costs.get(name, cycles);
        sig.field("cost." + name, cycles);
    }
}

} // namespace

void
saveConfigSignature(snap::SnapWriter &w, const SystemConfig &config)
{
    w.putTag("config");
    walkConfigSignature(SignatureWriter{w}, config);
}

void
checkConfigSignature(snap::SnapReader &r, const SystemConfig &config)
{
    r.expectTag("config");
    walkConfigSignature(SignatureChecker{r}, config);
}

void
System::save(snap::SnapWriter &w) const
{
    w.putTag("system");
    saveConfigSignature(w, config_);
    w.putBool(pager_ != nullptr);
    if (pager_)
        w.putBool(pager_->config().compress);
    state_.save(w);
    kernel_->save(w);
    if (pager_)
        pager_->save(w);
    model_->save(w);
    w.putBool(injector_ != nullptr);
    if (injector_)
        injector_->save(w);
    account_.save(w);
    statsRoot_.save(w);
}

void
System::load(snap::SnapReader &r)
{
    r.expectTag("system");
    checkConfigSignature(r, config_);
    const bool image_pager = r.getBool();
    if (image_pager) {
        const bool compress = r.getBool();
        if (pager_ == nullptr) {
            // Construct the pager first: its construction-time domain
            // and attachments are superseded by the state overlay
            // below, and its own id is restored by pager_->load().
            makePager(os::PagerConfig{.compress = compress});
        } else if (pager_->config().compress != compress) {
            SASOS_FATAL("snapshot mismatch: pager compression ",
                        compress ? "on" : "off", " in the image but ",
                        pager_->config().compress ? "on" : "off", " here");
        }
    } else if (pager_ != nullptr) {
        SASOS_FATAL("snapshot mismatch: this system has a pager but the "
                    "image does not");
    }
    state_.load(r);
    kernel_->load(r);
    if (pager_)
        pager_->load(r);
    model_->load(r);
    const bool image_injector = r.getBool();
    if (image_injector != (injector_ != nullptr)) {
        SASOS_FATAL("snapshot mismatch: fault injector ",
                    image_injector ? "present" : "absent",
                    " in the image but ", injector_ ? "present" : "absent",
                    " here");
    }
    if (injector_)
        injector_->load(r);
    account_.load(r);
    statsRoot_.load(r);
    
}

void
System::dumpStats(std::ostream &os)
{
    statsRoot_.dump(os);
    account_.dump(os, "system.");
}

void
System::dumpStatsJson(std::ostream &os)
{
    obs::writeStatsJson(os, statsRoot_, &account_);
}

void
System::dumpStatsCsv(std::ostream &os)
{
    obs::writeStatsCsv(os, statsRoot_, &account_);
}

} // namespace sasos::core
