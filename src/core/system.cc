#include "core/system.hh"

#include <algorithm>
#include <array>

#include "obs/export.hh"
#include "obs/tracer.hh"
#include "sim/logging.hh"
// Header-only use of the stream interface: core never constructs a
// stream, so this adds no link dependency on the workload library.
#include "workload/address_stream.hh"

namespace sasos::core
{

System::System(const SystemConfig &config)
    : config_(config), statsRoot_("system"),
      references(&statsRoot_, "references", "references issued"),
      failedReferences(&statsRoot_, "failedReferences",
                       "references ending in an exception"),
      state_(config.frames)
{
    switch (config_.model) {
      case ModelKind::Plb: {
        auto model = std::make_unique<PlbSystem>(config_, state_, account_,
                                                 &statsRoot_);
        plb_ = model.get();
        model_ = std::move(model);
        break;
      }
      case ModelKind::PageGroup: {
        auto model = std::make_unique<PageGroupSystem>(config_, state_,
                                                       account_,
                                                       &statsRoot_);
        pageGroup_ = model.get();
        model_ = std::move(model);
        break;
      }
      case ModelKind::Conventional: {
        auto model = std::make_unique<ConventionalSystem>(config_, state_,
                                                          account_,
                                                          &statsRoot_);
        conventional_ = model.get();
        model_ = std::move(model);
        break;
      }
    }
    if (config_.faults.enabled) {
        injector_ = std::make_unique<fault::FaultInjector>(config_.faults,
                                                           &statsRoot_);
        model_->setInjector(injector_.get());
    }
    kernel_ = std::make_unique<os::Kernel>(state_, *model_, config_.costs,
                                           account_, &statsRoot_);
}

bool
System::access(vm::VAddr va, vm::AccessType type)
{
    ++references;
    const os::DomainId domain = kernel_->currentDomain();
    SASOS_ASSERT(domain != 0, "no current domain; create one first");
    SASOS_OBS_EVENT(obs::EventKind::AccessBegin, account_.total().count(),
                    va.raw(), domain);
    const os::AccessResult result = model_->access(domain, va, type);
    bool ok = true;
    if (!result.completed)
        ok = resolveAndRetry(domain, va, type, result);
    SASOS_OBS_EVENT(obs::EventKind::AccessEnd, account_.total().count(),
                    va.raw(), ok);
    return ok;
}

bool
System::resolveAndRetry(os::DomainId domain, vm::VAddr va,
                        vm::AccessType type, os::AccessResult result)
{
    // A bounded retry loop: each fault either resolves (retry) or
    // becomes an exception. A single reference can legitimately fault
    // a handful of times (protection upcall, then page-in, then a
    // structure refill), but endless repetition is a model bug.
    // `result` is the non-completed outcome of the first attempt; at
    // most 7 further attempts are made (8 in total, as one reference
    // can never legitimately need more).
    SASOS_OBS_EVENT(obs::EventKind::KernelResolveBegin,
                    account_.total().count(), va.raw(), domain);
    for (int attempt = 1; ; ++attempt) {
        bool retry = false;
        switch (result.fault) {
          case os::FaultKind::Protection:
            retry = kernel_->handleProtectionFault(domain, va, type);
            break;
          case os::FaultKind::Translation:
            retry = kernel_->handleTranslationFault(domain, va, type);
            break;
          case os::FaultKind::None:
            SASOS_PANIC("incomplete access without a fault");
        }
        if (!retry) {
            ++failedReferences;
            SASOS_OBS_EVENT(obs::EventKind::KernelResolveEnd,
                            account_.total().count(), va.raw(), 0);
            return false;
        }
        if (attempt >= 8) {
            SASOS_PANIC("livelock resolving faults at address ", va.raw(),
                        " in domain ", domain);
        }
        result = model_->access(domain, va, type);
        if (result.completed) {
            SASOS_OBS_EVENT(obs::EventKind::KernelResolveEnd,
                            account_.total().count(), va.raw(), 1);
            return true;
        }
    }
}

RunResult
System::run(wl::AddressStream &stream, u64 n, Rng &rng, vm::AccessType type)
{
    SASOS_ASSERT(kernel_->currentDomain() != 0,
                 "no current domain; create one first");
    if (obs::enabled()) {
        // Tracing wants one begin/end span per reference, so issue
        // through access(); simulated cycles and statistics are
        // bit-identical to the batched loop below.
        RunResult tally;
        for (u64 i = 0; i < n; ++i) {
            if (access(stream.next(rng), type))
                ++tally.completed;
            else
                ++tally.failed;
        }
        return tally;
    }
    // Addresses are generated a chunk at a time and issued through
    // the model's devirtualized batch loop; only references whose
    // first attempt faults fall back to the kernel's per-reference
    // resolution path. The stats counter is bumped once per chunk.
    constexpr u64 kChunk = 512;
    std::array<vm::VAddr, kChunk> buffer;
    RunResult tally;
    for (u64 left = n; left > 0;) {
        const u64 chunk = std::min(left, kChunk);
        for (u64 i = 0; i < chunk; ++i)
            buffer[i] = stream.next(rng);
        references += chunk;
        u64 i = 0;
        while (i < chunk) {
            // Re-read the domain after every excursion through the
            // kernel: fault handling may have switched domains, and
            // access() picks up the current one per reference.
            const os::DomainId domain = kernel_->currentDomain();
            const os::BatchOutcome outcome = model_->accessBatch(
                domain, buffer.data() + i, chunk - i, type);
            tally.completed += outcome.completed;
            i += outcome.completed;
            if (i == chunk)
                break;
            // buffer[i] made its first attempt inside the batch and
            // faulted; finish it exactly as access() would.
            if (resolveAndRetry(domain, buffer[i], type, outcome.faulted))
                ++tally.completed;
            else
                ++tally.failed;
            ++i;
        }
        left -= chunk;
    }
    return tally;
}

void
System::touchRange(vm::VAddr base, u64 bytes)
{
    for (u64 offset = 0; offset < bytes; offset += vm::kPageBytes)
        load(base + offset);
}

os::Pager &
System::makePager(const os::PagerConfig &pager_config)
{
    SASOS_ASSERT(pager_ == nullptr, "system already has a pager");
    pager_ = std::make_unique<os::Pager>(*kernel_, pager_config,
                                         &statsRoot_);
    return *pager_;
}

void
System::dumpStats(std::ostream &os)
{
    statsRoot_.dump(os);
    account_.dump(os, "system.");
}

void
System::dumpStatsJson(std::ostream &os)
{
    obs::writeStatsJson(os, statsRoot_, &account_);
}

void
System::dumpStatsCsv(std::ostream &os)
{
    obs::writeStatsCsv(os, statsRoot_, &account_);
}

} // namespace sasos::core
