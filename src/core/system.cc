#include "core/system.hh"

#include "sim/logging.hh"

namespace sasos::core
{

System::System(const SystemConfig &config)
    : config_(config), statsRoot_("system"),
      references(&statsRoot_, "references", "references issued"),
      failedReferences(&statsRoot_, "failedReferences",
                       "references ending in an exception"),
      state_(config.frames)
{
    switch (config_.model) {
      case ModelKind::Plb: {
        auto model = std::make_unique<PlbSystem>(config_, state_, account_,
                                                 &statsRoot_);
        plb_ = model.get();
        model_ = std::move(model);
        break;
      }
      case ModelKind::PageGroup: {
        auto model = std::make_unique<PageGroupSystem>(config_, state_,
                                                       account_,
                                                       &statsRoot_);
        pageGroup_ = model.get();
        model_ = std::move(model);
        break;
      }
      case ModelKind::Conventional: {
        auto model = std::make_unique<ConventionalSystem>(config_, state_,
                                                          account_,
                                                          &statsRoot_);
        conventional_ = model.get();
        model_ = std::move(model);
        break;
      }
    }
    kernel_ = std::make_unique<os::Kernel>(state_, *model_, config_.costs,
                                           account_, &statsRoot_);
}

bool
System::access(vm::VAddr va, vm::AccessType type)
{
    ++references;
    const os::DomainId domain = kernel_->currentDomain();
    SASOS_ASSERT(domain != 0, "no current domain; create one first");
    // A bounded retry loop: each fault either resolves (retry) or
    // becomes an exception. A single reference can legitimately fault
    // a handful of times (protection upcall, then page-in, then a
    // structure refill), but endless repetition is a model bug.
    for (int attempt = 0; attempt < 8; ++attempt) {
        const os::AccessResult result = model_->access(domain, va, type);
        if (result.completed)
            return true;
        bool retry = false;
        switch (result.fault) {
          case os::FaultKind::Protection:
            retry = kernel_->handleProtectionFault(domain, va, type);
            break;
          case os::FaultKind::Translation:
            retry = kernel_->handleTranslationFault(domain, va, type);
            break;
          case os::FaultKind::None:
            SASOS_PANIC("incomplete access without a fault");
        }
        if (!retry) {
            ++failedReferences;
            return false;
        }
    }
    SASOS_PANIC("livelock resolving faults at address ", va.raw(),
                " in domain ", domain);
}

void
System::touchRange(vm::VAddr base, u64 bytes)
{
    for (u64 offset = 0; offset < bytes; offset += vm::kPageBytes)
        load(base + offset);
}

os::Pager &
System::makePager(const os::PagerConfig &pager_config)
{
    SASOS_ASSERT(pager_ == nullptr, "system already has a pager");
    pager_ = std::make_unique<os::Pager>(*kernel_, pager_config,
                                         &statsRoot_);
    return *pager_;
}

void
System::dumpStats(std::ostream &os)
{
    statsRoot_.dump(os);
    account_.dump(os, "system.");
}

} // namespace sasos::core
