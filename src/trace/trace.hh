/**
 * @file
 * Reference traces: record, store, replay.
 *
 * A trace is a sequence of (operation, domain, address) records --
 * loads, stores, instruction fetches and domain switches -- in a
 * fixed-width binary format with a magic header, plus a one-line-per-
 * record text form for inspection. Traces make workload runs
 * reconstructible and let the same reference stream be replayed
 * against every protection model.
 */

#ifndef SASOS_TRACE_TRACE_HH
#define SASOS_TRACE_TRACE_HH

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/system.hh"
#include "vm/address.hh"
#include "vm/rights.hh"

namespace sasos::trace
{

/** What a record describes. */
enum class TraceOp : u8
{
    Load = 0,
    Store = 1,
    IFetch = 2,
    /** Switch to `domain`; addr unused. */
    Switch = 3,
};

const char *toString(TraceOp op);

/** One trace event. */
struct TraceRecord
{
    TraceOp op = TraceOp::Load;
    u16 domain = 0;
    u64 addr = 0;

    bool operator==(const TraceRecord &) const = default;
};

/** Writes records to a binary trace file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const TraceRecord &record);
    void
    append(TraceOp op, u16 domain, vm::VAddr addr)
    {
        append(TraceRecord{op, domain, addr.raw()});
    }

    u64 count() const { return count_; }

    /** Flush and close; called by the destructor as well. */
    void close();

  private:
    std::FILE *file_ = nullptr;
    u64 count_ = 0;
};

/** Reads records back from a binary trace file. */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** @return false at end of trace. */
    bool next(TraceRecord &record);

    /** Records promised by the header. */
    u64 count() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    u64 count_ = 0;
    u64 read_ = 0;
};

/** Render a record as one text line ("store d=2 0x10000"). */
std::string toText(const TraceRecord &record);

/** Parse the text form; fatal on malformed input. */
TraceRecord fromText(const std::string &line);

/** Replay outcome. */
struct ReplayResult
{
    u64 records = 0;
    u64 references = 0;
    u64 switches = 0;
    u64 failedReferences = 0;
};

/** Per-record replay callback: the record and whether it completed.
 * Switch records are not reported (they have no allow/deny outcome). */
using ReplayObserver = std::function<void(const TraceRecord &, bool ok)>;

/**
 * Replay a trace against a system. Trace domain numbers are mapped
 * through `domain_map` (trace id -> simulated domain); unmapped ids
 * are fatal. The caller sets up segments/domains beforehand. The
 * optional observer sees every non-switch record's outcome, which is
 * how the fault oracle collects per-reference decision vectors.
 */
ReplayResult replay(core::System &sys, TraceReader &reader,
                    const std::map<u16, os::DomainId> &domain_map,
                    const ReplayObserver &observer = {});

} // namespace sasos::trace

#endif // SASOS_TRACE_TRACE_HH
