#include "trace/trace.hh"

#include <cinttypes>
#include <cstring>

#include "sim/logging.hh"

namespace sasos::trace
{

namespace
{

constexpr char kMagic[8] = {'S', 'A', 'S', 'T', 'R', 'C', '0', '1'};

/** On-disk record: fixed 16 bytes, little-endian fields. */
struct DiskRecord
{
    u8 op;
    u8 pad;
    u16 domain;
    u32 pad2;
    u64 addr;
};
static_assert(sizeof(DiskRecord) == 16, "trace record must be 16 bytes");

/** Header: magic + record count (patched at close). */
struct DiskHeader
{
    char magic[8];
    u64 count;
};
static_assert(sizeof(DiskHeader) == 16, "trace header must be 16 bytes");

} // namespace

const char *
toString(TraceOp op)
{
    switch (op) {
      case TraceOp::Load:
        return "load";
      case TraceOp::Store:
        return "store";
      case TraceOp::IFetch:
        return "ifetch";
      case TraceOp::Switch:
        return "switch";
    }
    return "?";
}

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        SASOS_FATAL("cannot create trace file '", path, "'");
    DiskHeader header{};
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.count = 0;
    if (std::fwrite(&header, sizeof(header), 1, file_) != 1)
        SASOS_FATAL("cannot write trace header to '", path, "'");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceRecord &record)
{
    SASOS_ASSERT(file_ != nullptr, "append to closed trace");
    DiskRecord disk{};
    disk.op = static_cast<u8>(record.op);
    disk.domain = record.domain;
    disk.addr = record.addr;
    if (std::fwrite(&disk, sizeof(disk), 1, file_) != 1)
        SASOS_FATAL("trace write failed");
    ++count_;
}

void
TraceWriter::close()
{
    if (file_ == nullptr)
        return;
    // Patch the record count into the header.
    if (std::fseek(file_, offsetof(DiskHeader, count), SEEK_SET) == 0) {
        if (std::fwrite(&count_, sizeof(count_), 1, file_) != 1)
            SASOS_FATAL("trace header patch failed");
    }
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr)
        SASOS_FATAL("cannot open trace file '", path, "'");
    DiskHeader header{};
    if (std::fread(&header, sizeof(header), 1, file_) != 1)
        SASOS_FATAL("trace file '", path, "' has no header");
    if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0)
        SASOS_FATAL("'", path, "' is not a sasos trace");
    count_ = header.count;
    // Validate the payload against the header's promise up front, so
    // a truncated or padded file is a loud error instead of a
    // silently-partial replay.
    const long payload_start = std::ftell(file_);
    if (payload_start < 0 || std::fseek(file_, 0, SEEK_END) != 0)
        SASOS_FATAL("cannot size trace file '", path, "'");
    const long size = std::ftell(file_);
    if (size < 0)
        SASOS_FATAL("cannot size trace file '", path, "'");
    const u64 payload = static_cast<u64>(size) -
                        static_cast<u64>(payload_start);
    if (payload != count_ * sizeof(DiskRecord)) {
        SASOS_FATAL("trace file '", path, "' is truncated or corrupt: ",
                    "header promises ", count_, " records (",
                    count_ * sizeof(DiskRecord), " bytes) but the file",
                    " holds ", payload, " payload bytes");
    }
    if (std::fseek(file_, payload_start, SEEK_SET) != 0)
        SASOS_FATAL("cannot rewind trace file '", path, "'");
}

TraceReader::~TraceReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

bool
TraceReader::next(TraceRecord &record)
{
    // The header's count is authoritative: stop there even if the
    // file has trailing bytes (the constructor rejects those anyway).
    if (read_ == count_)
        return false;
    DiskRecord disk{};
    if (std::fread(&disk, sizeof(disk), 1, file_) != 1) {
        // The constructor verified count_ full records exist, so a
        // short read here means the file changed underneath us.
        SASOS_FATAL("trace truncated mid-record: read ", read_, " of ",
                    count_, " promised records");
    }
    if (disk.op > static_cast<u8>(TraceOp::Switch))
        SASOS_FATAL("corrupt trace: bad op ", unsigned{disk.op},
                    " in record ", read_);
    record.op = static_cast<TraceOp>(disk.op);
    record.domain = disk.domain;
    record.addr = disk.addr;
    ++read_;
    return true;
}

std::string
toText(const TraceRecord &record)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%s d=%u 0x%" PRIx64,
                  toString(record.op), unsigned{record.domain},
                  record.addr);
    return buffer;
}

TraceRecord
fromText(const std::string &line)
{
    char op_name[16] = {};
    unsigned domain = 0;
    u64 addr = 0;
    const int fields = std::sscanf(line.c_str(), "%15s d=%u 0x%" SCNx64,
                                   op_name, &domain, &addr);
    if (fields != 3)
        SASOS_FATAL("malformed trace line '", line, "'");
    TraceRecord record;
    record.domain = static_cast<u16>(domain);
    record.addr = addr;
    const std::string name(op_name);
    if (name == "load")
        record.op = TraceOp::Load;
    else if (name == "store")
        record.op = TraceOp::Store;
    else if (name == "ifetch")
        record.op = TraceOp::IFetch;
    else if (name == "switch")
        record.op = TraceOp::Switch;
    else
        SASOS_FATAL("malformed trace op '", name, "'");
    return record;
}

ReplayResult
replay(core::System &sys, TraceReader &reader,
       const std::map<u16, os::DomainId> &domain_map,
       const ReplayObserver &observer)
{
    ReplayResult result;
    TraceRecord record;
    while (reader.next(record)) {
        ++result.records;
        auto it = domain_map.find(record.domain);
        if (it == domain_map.end())
            SASOS_FATAL("trace domain ", record.domain, " is not mapped");
        if (record.op == TraceOp::Switch) {
            sys.kernel().switchTo(it->second);
            ++result.switches;
            continue;
        }
        if (sys.kernel().currentDomain() != it->second)
            sys.kernel().switchTo(it->second);
        bool ok = false;
        switch (record.op) {
          case TraceOp::Load:
            ok = sys.load(vm::VAddr(record.addr));
            break;
          case TraceOp::Store:
            ok = sys.store(vm::VAddr(record.addr));
            break;
          case TraceOp::IFetch:
            ok = sys.ifetch(vm::VAddr(record.addr));
            break;
          case TraceOp::Switch:
            break;
        }
        ++result.references;
        if (!ok)
            ++result.failedReferences;
        if (observer)
            observer(record, ok);
    }
    return result;
}

} // namespace sasos::trace
