#include "hw/tlb.hh"

#include <bit>

namespace sasos::hw
{

const char *
toString(TlbKind kind)
{
    switch (kind) {
      case TlbKind::Conventional:
        return "conventional";
      case TlbKind::PageGroup:
        return "page-group";
      case TlbKind::TranslationOnly:
        return "translation-only";
      case TlbKind::Pkey:
        return "pkey";
    }
    return "?";
}

Tlb::Tlb(const TlbConfig &config, stats::Group *parent,
         const std::string &name)
    : statsGroup(parent, name),
      lookups(&statsGroup, "lookups", "translation lookups"),
      hits(&statsGroup, "hits", "lookups that hit"),
      misses(&statsGroup, "misses", "lookups that missed"),
      insertions(&statsGroup, "insertions", "entries installed"),
      evictions(&statsGroup, "evictions", "valid entries evicted"),
      purgedEntries(&statsGroup, "purgedEntries",
                    "entries removed by purges"),
      injectedEvictions(&statsGroup, "injectedEvictions",
                        "entries dropped by fault injection"),
      hitRate(&statsGroup, "hitRate", "fraction of lookups that hit",
              [this] {
                  return lookups.value()
                             ? static_cast<double>(hits.value()) /
                                   lookups.value()
                             : 0.0;
              }),
      config_(config),
      array_(config.sets, config.ways, config.policy, config.seed)
{
    SASOS_ASSERT(std::has_single_bit(config.sets), "set count not 2^k");
}

std::size_t
Tlb::setOf(vm::Vpn vpn) const
{
    return static_cast<std::size_t>(vpn.number() & (config_.sets - 1));
}

Tlb::Key
Tlb::keyOf(vm::Vpn vpn, DomainId asid) const
{
    Key key;
    key.vpn = vpn.number();
    key.asid = config_.kind == TlbKind::Conventional ? asid : 0;
    return key;
}

TlbEntry *
Tlb::lookup(vm::Vpn vpn, DomainId asid, AssocLoc *loc)
{
    ++lookups;
    TlbEntry *entry = array_.lookup(setOf(vpn), keyOf(vpn, asid), loc);
    if (entry == nullptr) {
        ++misses;
        return nullptr;
    }
    ++hits;
    return entry;
}

const TlbEntry *
Tlb::peek(vm::Vpn vpn, DomainId asid) const
{
    return array_.probe(setOf(vpn), keyOf(vpn, asid));
}

TlbEntry *
Tlb::find(vm::Vpn vpn, DomainId asid)
{
    return array_.probe(setOf(vpn), keyOf(vpn, asid));
}

void
Tlb::insert(vm::Vpn vpn, const TlbEntry &entry)
{
    ++insertions;
    if (array_.insert(setOf(vpn), keyOf(vpn, entry.asid), entry))
        ++evictions;
}

bool
Tlb::setRights(vm::Vpn vpn, vm::Access rights, DomainId asid)
{
    TlbEntry *entry = array_.probe(setOf(vpn), keyOf(vpn, asid));
    if (entry == nullptr)
        return false;
    entry->rights = rights;
    return true;
}

bool
Tlb::setGroup(vm::Vpn vpn, GroupId aid, vm::Access rights)
{
    SASOS_ASSERT(config_.kind == TlbKind::PageGroup,
                 "setGroup on a ", toString(config_.kind), " TLB");
    TlbEntry *entry = array_.probe(setOf(vpn), keyOf(vpn, 0));
    if (entry == nullptr)
        return false;
    entry->aid = aid;
    entry->rights = rights;
    return true;
}

u64
Tlb::purgePage(vm::Vpn vpn)
{
    if (config_.kind != TlbKind::Conventional) {
        const bool dropped = array_.invalidate(setOf(vpn), keyOf(vpn, 0));
        if (dropped)
            ++purgedEntries;
        return dropped ? 1 : 0;
    }
    // Conventional: one replica per ASID may exist; scan the set.
    u64 dropped = 0;
    std::vector<Key> victims;
    array_.forEachInSet(setOf(vpn), [&](const Key &key, TlbEntry &) {
        if (key.vpn == vpn.number())
            victims.push_back(key);
    });
    for (const Key &key : victims)
        dropped += array_.invalidate(setOf(vpn), key) ? 1 : 0;
    purgedEntries += dropped;
    return dropped;
}

bool
Tlb::purgePageAsid(vm::Vpn vpn, DomainId asid)
{
    const bool dropped = array_.invalidate(setOf(vpn), keyOf(vpn, asid));
    if (dropped)
        ++purgedEntries;
    return dropped;
}

PurgeResult
Tlb::purgeAsid(DomainId asid)
{
    SASOS_ASSERT(config_.kind == TlbKind::Conventional,
                 "purgeAsid on a ", toString(config_.kind), " TLB");
    PurgeResult result = array_.invalidateIf(
        [asid](const Key &key, const TlbEntry &) {
            return key.asid == asid;
        });
    purgedEntries += result.invalidated;
    return result;
}

PurgeResult
Tlb::purgeRange(std::optional<DomainId> asid, vm::Vpn first, u64 pages)
{
    const u64 lo = first.number();
    const u64 hi = lo + pages;
    PurgeResult result = array_.invalidateIf(
        [&](const Key &key, const TlbEntry &) {
            if (asid && key.asid != *asid)
                return false;
            return key.vpn >= lo && key.vpn < hi;
        });
    purgedEntries += result.invalidated;
    return result;
}

u64
Tlb::purgeAll()
{
    const u64 dropped = array_.invalidateAll();
    purgedEntries += dropped;
    return dropped;
}

u64
Tlb::countRange(std::optional<DomainId> asid, vm::Vpn first,
                u64 pages) const
{
    const u64 lo = first.number();
    const u64 hi = lo + pages;
    u64 count = 0;
    array_.forEach([&](const Key &key, const TlbEntry &) {
        if (asid && key.asid != *asid)
            return;
        if (key.vpn >= lo && key.vpn < hi)
            ++count;
    });
    return count;
}

bool
Tlb::evictOne(Rng &rng)
{
    const std::size_t live = array_.occupancy();
    if (live == 0)
        return false;
    array_.invalidateNth(static_cast<std::size_t>(rng.nextBelow(live)));
    ++injectedEvictions;
    return true;
}

void
Tlb::save(snap::SnapWriter &w) const
{
    w.putTag("tlb");
    array_.save(
        w,
        [](snap::SnapWriter &out, const Key &key) {
            out.put64(key.vpn);
            out.put16(key.asid);
        },
        [](snap::SnapWriter &out, const TlbEntry &entry) {
            out.put64(entry.pfn.number());
            out.put8(static_cast<u8>(entry.rights));
            out.put16(entry.asid);
            out.put16(entry.aid);
            out.putBool(entry.dirty);
            out.putBool(entry.referenced);
        });
}

void
Tlb::load(snap::SnapReader &r)
{
    r.expectTag("tlb");
    array_.load(
        r,
        [](snap::SnapReader &in) {
            Key key;
            key.vpn = in.get64();
            key.asid = in.get16();
            return key;
        },
        [](snap::SnapReader &in) {
            TlbEntry entry;
            entry.pfn = vm::Pfn(in.get64());
            const u8 rights = in.get8();
            if (rights > static_cast<u8>(vm::Access::All))
                SASOS_FATAL("corrupt snapshot: invalid rights byte ",
                            static_cast<unsigned>(rights));
            entry.rights = static_cast<vm::Access>(rights);
            entry.asid = in.get16();
            entry.aid = in.get16();
            entry.dirty = in.getBool();
            entry.referenced = in.getBool();
            return entry;
        });
}

} // namespace sasos::hw
