#include "hw/plb.hh"

#include <algorithm>
#include <bit>

namespace sasos::hw
{

Plb::Plb(const PlbConfig &config, stats::Group *parent)
    : statsGroup(parent, "plb"),
      lookups(&statsGroup, "lookups", "protection lookups"),
      hits(&statsGroup, "hits", "lookups that matched an entry"),
      misses(&statsGroup, "misses", "lookups with no matching entry"),
      insertions(&statsGroup, "insertions", "entries installed"),
      evictions(&statsGroup, "evictions", "valid entries evicted"),
      updates(&statsGroup, "updates", "in-place rights updates"),
      purgedEntries(&statsGroup, "purgedEntries",
                    "entries removed by purges"),
      purgeScans(&statsGroup, "purgeScans",
                 "entries inspected during purge scans"),
      injectedEvictions(&statsGroup, "injectedEvictions",
                        "entries dropped by fault injection"),
      hitRate(&statsGroup, "hitRate", "fraction of lookups that hit",
              [this] {
                  return lookups.value()
                             ? static_cast<double>(hits.value()) /
                                   lookups.value()
                             : 0.0;
              }),
      config_(config),
      probeOrder_(config.sizeShifts),
      array_(config.sets, config.ways, config.policy, config.seed)
{
    SASOS_ASSERT(!probeOrder_.empty(), "PLB needs at least one size class");
    SASOS_ASSERT(std::has_single_bit(config.sets), "set count not 2^k");
    std::sort(probeOrder_.begin(), probeOrder_.end());
    probeOrder_.erase(std::unique(probeOrder_.begin(), probeOrder_.end()),
                      probeOrder_.end());
    for (int shift : probeOrder_)
        SASOS_ASSERT(shift >= 0 && shift < 64, "bad size shift ", shift);
}

std::size_t
Plb::setOf(u64 block) const
{
    return static_cast<std::size_t>(block & (config_.sets - 1));
}

Plb::Key
Plb::keyFor(DomainId domain, vm::VAddr va, int size_shift) const
{
    Key key;
    key.domain = domain;
    key.block = va.raw() >> size_shift;
    key.sizeShift = size_shift;
    return key;
}

std::pair<u64, u64>
Plb::blockSpan(const Key &key)
{
    const u64 first = key.block << key.sizeShift;
    const u64 last = first + ((u64{1} << key.sizeShift) - 1);
    return {first, last};
}

std::optional<PlbMatch>
Plb::lookup(DomainId domain, vm::VAddr va, AssocLoc *loc)
{
    ++lookups;
    for (int shift : probeOrder_) {
        // A size class with no valid entries anywhere cannot hit, and
        // probing it has no side effect, so skip the set scan.
        if (shiftOccupancy_[static_cast<std::size_t>(shift)] == 0)
            continue;
        const Key key = keyFor(domain, va, shift);
        vm::Access *rights = array_.lookup(setOf(key.block), key, loc);
        if (rights != nullptr) {
            ++hits;
            return PlbMatch{*rights, shift};
        }
    }
    ++misses;
    return std::nullopt;
}

std::optional<PlbMatch>
Plb::peek(DomainId domain, vm::VAddr va) const
{
    for (int shift : probeOrder_) {
        if (shiftOccupancy_[static_cast<std::size_t>(shift)] == 0)
            continue;
        const Key key = keyFor(domain, va, shift);
        const vm::Access *rights = array_.probe(setOf(key.block), key);
        if (rights != nullptr)
            return PlbMatch{*rights, shift};
    }
    return std::nullopt;
}

void
Plb::insert(DomainId domain, vm::VAddr va, int size_shift, vm::Access rights)
{
    (void)insertTracked(domain, va, size_shift, rights);
}

Plb::InsertOutcome
Plb::insertTracked(DomainId domain, vm::VAddr va, int size_shift,
                   vm::Access rights)
{
    SASOS_ASSERT(std::find(probeOrder_.begin(), probeOrder_.end(),
                           size_shift) != probeOrder_.end(),
                 "PLB does not support size shift ", size_shift);
    InsertOutcome outcome;
    const Key key = keyFor(domain, va, size_shift);
    vm::Access *existing = array_.probe(setOf(key.block), key);
    if (existing != nullptr) {
        *existing = rights;
        ++updates;
        return outcome;
    }
    outcome.inserted = true;
    ++insertions;
    ++shiftOccupancy_[static_cast<std::size_t>(size_shift)];
    if (const auto victim = array_.insert(setOf(key.block), key, rights)) {
        ++evictions;
        --shiftOccupancy_[static_cast<std::size_t>(victim->tag.sizeShift)];
        outcome.victim = Evicted{victim->tag.domain, victim->tag.block,
                                 victim->tag.sizeShift};
    }
    return outcome;
}

bool
Plb::updateRights(DomainId domain, vm::VAddr va, vm::Access rights)
{
    for (int shift : probeOrder_) {
        const Key key = keyFor(domain, va, shift);
        vm::Access *existing = array_.probe(setOf(key.block), key);
        if (existing != nullptr) {
            *existing = rights;
            ++updates;
            return true;
        }
    }
    return false;
}

std::optional<int>
Plb::invalidateCovering(DomainId domain, vm::VAddr va)
{
    for (int shift : probeOrder_) {
        const Key key = keyFor(domain, va, shift);
        if (array_.invalidate(setOf(key.block), key)) {
            ++purgedEntries;
            --shiftOccupancy_[static_cast<std::size_t>(shift)];
            return shift;
        }
    }
    return std::nullopt;
}

PurgeResult
Plb::updateRightsRange(std::optional<DomainId> domain, vm::Vpn first,
                       u64 pages, vm::Access rights)
{
    const u64 range_first = first.number() << vm::kPageShift;
    const u64 range_last =
        ((first.number() + pages) << vm::kPageShift) - 1;
    PurgeResult result;
    result.scanned = array_.capacity(); // full hardware scan
    // One pass updates fully contained entries; partially overlapping
    // ones are collected and invalidated (they can no longer carry a
    // single rights value).
    std::vector<Key> partial;
    array_.forEach([&](const Key &key, vm::Access &entry_rights) {
        if (domain && key.domain != *domain)
            return;
        const auto [block_first, block_last] = blockSpan(key);
        if (block_first > range_last || block_last < range_first)
            return;
        if (block_first >= range_first && block_last <= range_last) {
            entry_rights = rights;
            ++updates;
        } else {
            partial.push_back(key);
        }
    });
    for (const Key &key : partial) {
        if (array_.invalidate(setOf(key.block), key)) {
            ++result.invalidated;
            ++purgedEntries;
            --shiftOccupancy_[static_cast<std::size_t>(key.sizeShift)];
        }
    }
    purgeScans += result.scanned;
    return result;
}

PurgeResult
Plb::intersectRightsRange(vm::Vpn first, u64 pages, vm::Access mask)
{
    const u64 range_first = first.number() << vm::kPageShift;
    const u64 range_last =
        ((first.number() + pages) << vm::kPageShift) - 1;
    PurgeResult result;
    result.scanned = array_.capacity(); // full hardware scan
    array_.forEach([&](const Key &key, vm::Access &entry_rights) {
        const auto [block_first, block_last] = blockSpan(key);
        if (block_first > range_last || block_last < range_first)
            return;
        // Intersecting a partially covered super-page entry would
        // wrongly restrict the uncovered part, so only entries fully
        // inside the range are revised in place; we accept the
        // conservative narrowing for entries that span beyond the
        // range start/end by treating them the same (safe: rights
        // only shrink).
        entry_rights = entry_rights & mask;
        ++updates;
    });
    purgeScans += result.scanned;
    return result;
}

PurgeResult
Plb::purgeDomain(DomainId domain)
{
    PurgeResult result = array_.invalidateIf(
        [&](const Key &key, const vm::Access &) {
            if (key.domain != domain)
                return false;
            --shiftOccupancy_[static_cast<std::size_t>(key.sizeShift)];
            return true;
        });
    purgeScans += result.scanned;
    purgedEntries += result.invalidated;
    return result;
}

PurgeResult
Plb::purgeRange(std::optional<DomainId> domain, vm::Vpn first, u64 pages)
{
    const u64 range_first = first.number() << vm::kPageShift;
    const u64 range_last =
        ((first.number() + pages) << vm::kPageShift) - 1;
    PurgeResult result = array_.invalidateIf(
        [&](const Key &key, const vm::Access &) {
            if (domain && key.domain != *domain)
                return false;
            const auto [block_first, block_last] = blockSpan(key);
            if (block_first > range_last || block_last < range_first)
                return false;
            --shiftOccupancy_[static_cast<std::size_t>(key.sizeShift)];
            return true;
        });
    purgeScans += result.scanned;
    purgedEntries += result.invalidated;
    return result;
}

u64
Plb::purgeAll()
{
    const u64 dropped = array_.invalidateAll();
    purgedEntries += dropped;
    shiftOccupancy_.fill(0);
    return dropped;
}

u64
Plb::countRange(std::optional<DomainId> domain, vm::Vpn first,
                u64 pages) const
{
    const u64 range_first = first.number() << vm::kPageShift;
    const u64 range_last =
        ((first.number() + pages) << vm::kPageShift) - 1;
    u64 count = 0;
    array_.forEach([&](const Key &key, const vm::Access &) {
        if (domain && key.domain != *domain)
            return;
        const auto [block_first, block_last] = blockSpan(key);
        if (block_first <= range_last && block_last >= range_first)
            ++count;
    });
    return count;
}

bool
Plb::evictOne(Rng &rng)
{
    return evictOneTracked(rng).has_value();
}

std::optional<Plb::Evicted>
Plb::evictOneTracked(Rng &rng)
{
    const std::size_t live = array_.occupancy();
    if (live == 0)
        return std::nullopt;
    std::optional<Evicted> dropped;
    if (const auto victim = array_.invalidateNth(
            static_cast<std::size_t>(rng.nextBelow(live)))) {
        --shiftOccupancy_[static_cast<std::size_t>(victim->tag.sizeShift)];
        dropped = Evicted{victim->tag.domain, victim->tag.block,
                          victim->tag.sizeShift};
    }
    ++injectedEvictions;
    return dropped;
}

void
Plb::save(snap::SnapWriter &w) const
{
    w.putTag("plb");
    array_.save(
        w,
        [](snap::SnapWriter &out, const Key &key) {
            out.put16(key.domain);
            out.put64(key.block);
            out.put32(static_cast<u32>(key.sizeShift));
        },
        [](snap::SnapWriter &out, const vm::Access &rights) {
            out.put8(static_cast<u8>(rights));
        });
}

void
Plb::load(snap::SnapReader &r)
{
    r.expectTag("plb");
    array_.load(
        r,
        [this](snap::SnapReader &in) {
            Key key;
            key.domain = in.get16();
            key.block = in.get64();
            const u32 shift = in.get32();
            if (std::find(probeOrder_.begin(), probeOrder_.end(),
                          static_cast<int>(shift)) == probeOrder_.end())
                SASOS_FATAL("corrupt snapshot: plb entry with "
                            "unsupported size shift ",
                            shift);
            key.sizeShift = static_cast<int>(shift);
            return key;
        },
        [](snap::SnapReader &in) {
            const u8 rights = in.get8();
            if (rights > static_cast<u8>(vm::Access::All))
                SASOS_FATAL("corrupt snapshot: invalid rights byte ",
                            static_cast<unsigned>(rights));
            return static_cast<vm::Access>(rights);
        });
    shiftOccupancy_.fill(0);
    array_.forEach([this](const Key &key, const vm::Access &) {
        ++shiftOccupancy_[static_cast<std::size_t>(key.sizeShift)];
    });
}

} // namespace sasos::hw
