/**
 * @file
 * A generic set-associative tag store.
 *
 * This is the common machinery behind every lookup structure in the
 * simulator: the data cache tag array, the TLB, the PLB and the
 * page-group cache. Callers map their key to (set index, tag); the
 * store handles validity, replacement and scans.
 *
 * Purge operations report how many entries were *scanned* as well as
 * how many were invalidated, because the paper's cost arguments
 * distinguish a full inspect-every-entry pass (PLB detach) from an
 * indexed invalidate (TLB purge of one page).
 */

#ifndef SASOS_HW_ASSOC_CACHE_HH
#define SASOS_HW_ASSOC_CACHE_HH

#include <optional>
#include <vector>

#include "hw/replacement.hh"
#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::hw
{

/** Result of a scan-style purge. */
struct PurgeResult
{
    u64 scanned = 0;
    u64 invalidated = 0;
};

/**
 * Set-associative storage of (Tag -> Payload).
 *
 * @tparam Tag      equality-comparable lookup key (within a set).
 * @tparam Payload  per-entry data.
 */
template <typename Tag, typename Payload>
class AssocCache
{
  public:
    struct Entry
    {
        bool valid = false;
        Tag tag{};
        Payload payload{};
    };

    /** An evicted valid entry, reported to the caller on insert. */
    struct Victim
    {
        Tag tag{};
        Payload payload{};
    };

    AssocCache(std::size_t sets, std::size_t ways, PolicyKind policy,
               u64 seed = 1)
        : sets_(sets), ways_(ways),
          entries_(sets * ways),
          policy_(makePolicy(policy, sets, ways, seed))
    {
        SASOS_ASSERT(sets > 0 && ways > 0, "degenerate cache geometry");
    }

    std::size_t sets() const { return sets_; }
    std::size_t ways() const { return ways_; }
    std::size_t capacity() const { return entries_.size(); }

    /** Valid entries currently stored. */
    std::size_t occupancy() const { return occupancy_; }

    /** Find and touch (updates replacement state). Null on miss. */
    Payload *
    lookup(std::size_t set, const Tag &tag)
    {
        Entry *entry = findEntry(set, tag);
        if (entry == nullptr)
            return nullptr;
        policy_->touch(set, static_cast<std::size_t>(entry - setBase(set)));
        return &entry->payload;
    }

    /** Find without touching replacement state. Null on miss. */
    Payload *
    probe(std::size_t set, const Tag &tag)
    {
        Entry *entry = findEntry(set, tag);
        return entry ? &entry->payload : nullptr;
    }

    const Payload *
    probe(std::size_t set, const Tag &tag) const
    {
        return const_cast<AssocCache *>(this)->probe(set, tag);
    }

    /**
     * Insert, evicting if the set is full.
     * Inserting a tag that is already present is a caller bug
     * (use lookup + modify payload instead) and panics.
     * @return the evicted valid entry, if any.
     */
    std::optional<Victim>
    insert(std::size_t set, const Tag &tag, Payload payload)
    {
        SASOS_ASSERT(findEntry(set, tag) == nullptr,
                     "inserting duplicate tag");
        Entry *base = setBase(set);
        // Prefer an invalid way.
        for (std::size_t way = 0; way < ways_; ++way) {
            if (!base[way].valid) {
                base[way].valid = true;
                base[way].tag = tag;
                base[way].payload = std::move(payload);
                policy_->fill(set, way);
                ++occupancy_;
                return std::nullopt;
            }
        }
        const std::size_t way = policy_->victim(set);
        SASOS_ASSERT(way < ways_, "policy returned bad way");
        Victim victim{base[way].tag, std::move(base[way].payload)};
        base[way].tag = tag;
        base[way].payload = std::move(payload);
        policy_->fill(set, way);
        return victim;
    }

    /** Invalidate one entry if present. @return true if it existed. */
    bool
    invalidate(std::size_t set, const Tag &tag)
    {
        Entry *entry = findEntry(set, tag);
        if (entry == nullptr)
            return false;
        entry->valid = false;
        --occupancy_;
        return true;
    }

    /**
     * Scan every entry; invalidate those matching `pred(tag, payload)`.
     * Models the "inspect all the entries in the PLB" cost the paper
     * describes for segment detach.
     */
    template <typename Pred>
    PurgeResult
    invalidateIf(Pred pred)
    {
        PurgeResult result;
        // Hardware inspects every slot of the structure, valid or
        // not; the scan cost is the capacity, which is what the
        // paper's "inspecting all the entries" worst case charges.
        result.scanned = entries_.size();
        for (Entry &entry : entries_) {
            if (!entry.valid)
                continue;
            if (pred(entry.tag, entry.payload)) {
                entry.valid = false;
                --occupancy_;
                ++result.invalidated;
            }
        }
        return result;
    }

    /**
     * Invalidate the n-th valid entry in scan order (n < occupancy).
     * This is the fault injector's handle for a spurious eviction: the
     * victim index comes from the campaign Rng, so which entry dies is
     * seeded, not host-dependent. Replacement state is left alone,
     * like the purge paths. @return the dropped entry, or nullopt if
     * n is out of range.
     */
    std::optional<Victim>
    invalidateNth(std::size_t n)
    {
        for (Entry &entry : entries_) {
            if (!entry.valid)
                continue;
            if (n-- == 0) {
                entry.valid = false;
                --occupancy_;
                return Victim{entry.tag, entry.payload};
            }
        }
        return std::nullopt;
    }

    /** Flash-invalidate everything. @return entries dropped. */
    u64
    invalidateAll()
    {
        u64 dropped = 0;
        for (Entry &entry : entries_) {
            if (entry.valid) {
                entry.valid = false;
                ++dropped;
            }
        }
        occupancy_ = 0;
        policy_->reset();
        return dropped;
    }

    /** Visit every valid entry: fn(tag, payload&). */
    template <typename Fn>
    void
    forEach(Fn fn)
    {
        for (Entry &entry : entries_) {
            if (entry.valid)
                fn(entry.tag, entry.payload);
        }
    }

    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const Entry &entry : entries_) {
            if (entry.valid)
                fn(entry.tag, entry.payload);
        }
    }

    /** Visit every valid entry of one set: fn(tag, payload&). */
    template <typename Fn>
    void
    forEachInSet(std::size_t set, Fn fn)
    {
        Entry *base = setBase(set);
        for (std::size_t way = 0; way < ways_; ++way) {
            if (base[way].valid)
                fn(base[way].tag, base[way].payload);
        }
    }

    /**
     * @name Snapshot hooks
     *
     * Tags and payloads are structs with padding, so the owner
     * supplies field-by-field encoders/decoders:
     *
     *   save_tag(w, tag) / save_payload(w, payload)
     *   load_tag(r) -> Tag / load_payload(r) -> Payload
     *
     * Slots are walked in (set, way) order, so the image is byte
     * stable. load() runs against a cache constructed with the same
     * geometry and validates it: the set/way shape must match, and a
     * set may not carry duplicate valid tags (insert() would treat
     * that as a caller bug and abort; for untrusted input it must be
     * a clean fatal instead). Occupancy is recomputed, and the
     * replacement policy restores its own history afterwards.
     */
    /// @{
    template <typename SaveTag, typename SavePayload>
    void
    save(snap::SnapWriter &w, SaveTag save_tag,
         SavePayload save_payload) const
    {
        w.putTag("assoc");
        w.put64(sets_);
        w.put64(ways_);
        for (const Entry &entry : entries_) {
            w.putBool(entry.valid);
            if (entry.valid) {
                save_tag(w, entry.tag);
                save_payload(w, entry.payload);
            }
        }
        policy_->save(w);
    }

    template <typename LoadTag, typename LoadPayload>
    void
    load(snap::SnapReader &r, LoadTag load_tag, LoadPayload load_payload)
    {
        r.expectTag("assoc");
        const u64 sets = r.get64();
        const u64 ways = r.get64();
        if (sets != sets_ || ways != ways_)
            SASOS_FATAL("corrupt snapshot: cache geometry ", sets, "x",
                        ways, " does not match this build's ", sets_,
                        "x", ways_);
        occupancy_ = 0;
        for (Entry &entry : entries_) {
            entry.valid = r.getBool();
            if (entry.valid) {
                entry.tag = load_tag(r);
                entry.payload = load_payload(r);
                ++occupancy_;
            } else {
                entry.tag = Tag{};
                entry.payload = Payload{};
            }
        }
        for (std::size_t set = 0; set < sets_; ++set) {
            const Entry *base = &entries_[set * ways_];
            for (std::size_t a = 0; a < ways_; ++a) {
                if (!base[a].valid)
                    continue;
                for (std::size_t b = a + 1; b < ways_; ++b) {
                    if (base[b].valid && base[a].tag == base[b].tag)
                        SASOS_FATAL("corrupt snapshot: duplicate tag "
                                    "in cache set ",
                                    set);
                }
            }
        }
        policy_->load(r);
    }
    /// @}

  private:
    Entry *setBase(std::size_t set) { return &entries_[set * ways_]; }

    Entry *
    findEntry(std::size_t set, const Tag &tag)
    {
        SASOS_ASSERT(set < sets_, "set index ", set, " out of range");
        Entry *base = setBase(set);
        for (std::size_t way = 0; way < ways_; ++way) {
            if (base[way].valid && base[way].tag == tag)
                return &base[way];
        }
        return nullptr;
    }

    std::size_t sets_;
    std::size_t ways_;
    std::vector<Entry> entries_;
    std::unique_ptr<ReplacementPolicy> policy_;
    std::size_t occupancy_ = 0;
};

} // namespace sasos::hw

#endif // SASOS_HW_ASSOC_CACHE_HH
