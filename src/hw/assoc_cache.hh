/**
 * @file
 * A generic set-associative tag store.
 *
 * This is the common machinery behind every lookup structure in the
 * simulator: the data cache tag array, the TLB, the PLB and the
 * page-group cache. Callers map their key to (set index, tag); the
 * store handles validity, replacement and scans.
 *
 * Storage is structure-of-arrays: the valid bits, tags and payloads
 * live in three parallel vectors, so the probe loop -- the simulator's
 * single hottest scan -- walks a dense byte array and a dense tag
 * array instead of striding over padded (valid, tag, payload) records.
 * The external API (lookup/probe/insert/purge scans) and the snapshot
 * byte format are unchanged from the AoS layout.
 *
 * Purge operations report how many entries were *scanned* as well as
 * how many were invalidated, because the paper's cost arguments
 * distinguish a full inspect-every-entry pass (PLB detach) from an
 * indexed invalidate (TLB purge of one page).
 */

#ifndef SASOS_HW_ASSOC_CACHE_HH
#define SASOS_HW_ASSOC_CACHE_HH

#include <optional>
#include <vector>

#include "hw/replacement.hh"
#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::hw
{

/** Result of a scan-style purge. */
struct PurgeResult
{
    u64 scanned = 0;
    u64 invalidated = 0;
};

/**
 * Location of a lookup hit. Callers that coalesce consecutive
 * references to the same entry remember the location and replay the
 * replacement touch through touch() without re-scanning the set.
 */
struct AssocLoc
{
    std::size_t set = 0;
    std::size_t way = 0;
};

/**
 * Set-associative storage of (Tag -> Payload).
 *
 * @tparam Tag      equality-comparable lookup key (within a set).
 * @tparam Payload  per-entry data.
 */
template <typename Tag, typename Payload>
class AssocCache
{
  public:
    /** An evicted valid entry, reported to the caller on insert. */
    struct Victim
    {
        Tag tag{};
        Payload payload{};
    };

    AssocCache(std::size_t sets, std::size_t ways, PolicyKind policy,
               u64 seed = 1)
        : sets_(sets), ways_(ways),
          valid_(sets * ways, 0),
          tags_(sets * ways),
          payloads_(sets * ways),
          policy_(makePolicy(policy, sets, ways, seed)),
          needsTouch_(policy_->needsTouch())
    {
        SASOS_ASSERT(sets > 0 && ways > 0, "degenerate cache geometry");
    }

    std::size_t sets() const { return sets_; }
    std::size_t ways() const { return ways_; }
    std::size_t capacity() const { return valid_.size(); }

    /** Valid entries currently stored. */
    std::size_t occupancy() const { return occupancy_; }

    /**
     * Find and touch (updates replacement state). Null on miss.
     * @param loc filled with the hit's (set, way) when non-null, so
     *            the caller can replay the touch on a coalesced
     *            re-reference.
     */
    Payload *
    lookup(std::size_t set, const Tag &tag, AssocLoc *loc = nullptr)
    {
        const std::size_t way = findWay(set, tag);
        if (way == kNoWay)
            return nullptr;
        if (needsTouch_)
            policy_->touch(set, way);
        if (loc != nullptr)
            *loc = {set, way};
        return &payloads_[set * ways_ + way];
    }

    /** Find without touching replacement state. Null on miss. */
    Payload *
    probe(std::size_t set, const Tag &tag)
    {
        const std::size_t way = findWay(set, tag);
        return way == kNoWay ? nullptr : &payloads_[set * ways_ + way];
    }

    const Payload *
    probe(std::size_t set, const Tag &tag) const
    {
        return const_cast<AssocCache *>(this)->probe(set, tag);
    }

    /**
     * Replay the replacement touch of a remembered hit, exactly as
     * lookup() would have performed it. The caller guarantees the
     * entry at `loc` is still the one it hit (nothing was inserted or
     * invalidated since).
     */
    void
    touch(const AssocLoc &loc)
    {
        if (needsTouch_)
            policy_->touch(loc.set, loc.way);
    }

    /**
     * Insert, evicting if the set is full.
     * Inserting a tag that is already present is a caller bug
     * (use lookup + modify payload instead) and panics.
     * @return the evicted valid entry, if any.
     */
    std::optional<Victim>
    insert(std::size_t set, const Tag &tag, Payload payload)
    {
        SASOS_ASSERT(findWay(set, tag) == kNoWay,
                     "inserting duplicate tag");
        const std::size_t base = set * ways_;
        // Prefer an invalid way.
        for (std::size_t way = 0; way < ways_; ++way) {
            if (!valid_[base + way]) {
                valid_[base + way] = 1;
                tags_[base + way] = tag;
                payloads_[base + way] = std::move(payload);
                policy_->fill(set, way);
                ++occupancy_;
                return std::nullopt;
            }
        }
        const std::size_t way = policy_->victim(set);
        SASOS_ASSERT(way < ways_, "policy returned bad way");
        Victim victim{tags_[base + way], std::move(payloads_[base + way])};
        tags_[base + way] = tag;
        payloads_[base + way] = std::move(payload);
        policy_->fill(set, way);
        return victim;
    }

    /** Invalidate one entry if present. @return true if it existed. */
    bool
    invalidate(std::size_t set, const Tag &tag)
    {
        const std::size_t way = findWay(set, tag);
        if (way == kNoWay)
            return false;
        valid_[set * ways_ + way] = 0;
        --occupancy_;
        return true;
    }

    /**
     * Scan every entry; invalidate those matching `pred(tag, payload)`.
     * Models the "inspect all the entries in the PLB" cost the paper
     * describes for segment detach.
     */
    template <typename Pred>
    PurgeResult
    invalidateIf(Pred pred)
    {
        PurgeResult result;
        // Hardware inspects every slot of the structure, valid or
        // not; the scan cost is the capacity, which is what the
        // paper's "inspecting all the entries" worst case charges.
        result.scanned = valid_.size();
        for (std::size_t i = 0; i < valid_.size(); ++i) {
            if (!valid_[i])
                continue;
            if (pred(tags_[i], payloads_[i])) {
                valid_[i] = 0;
                --occupancy_;
                ++result.invalidated;
            }
        }
        return result;
    }

    /**
     * Invalidate the n-th valid entry in scan order (n < occupancy).
     * This is the fault injector's handle for a spurious eviction: the
     * victim index comes from the campaign Rng, so which entry dies is
     * seeded, not host-dependent. Replacement state is left alone,
     * like the purge paths. @return the dropped entry, or nullopt if
     * n is out of range.
     */
    std::optional<Victim>
    invalidateNth(std::size_t n)
    {
        for (std::size_t i = 0; i < valid_.size(); ++i) {
            if (!valid_[i])
                continue;
            if (n-- == 0) {
                valid_[i] = 0;
                --occupancy_;
                return Victim{tags_[i], payloads_[i]};
            }
        }
        return std::nullopt;
    }

    /** Flash-invalidate everything. @return entries dropped. */
    u64
    invalidateAll()
    {
        u64 dropped = 0;
        for (std::size_t i = 0; i < valid_.size(); ++i) {
            if (valid_[i]) {
                valid_[i] = 0;
                ++dropped;
            }
        }
        occupancy_ = 0;
        policy_->reset();
        return dropped;
    }

    /** Visit every valid entry: fn(tag, payload&). */
    template <typename Fn>
    void
    forEach(Fn fn)
    {
        for (std::size_t i = 0; i < valid_.size(); ++i) {
            if (valid_[i])
                fn(tags_[i], payloads_[i]);
        }
    }

    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (std::size_t i = 0; i < valid_.size(); ++i) {
            if (valid_[i])
                fn(tags_[i], payloads_[i]);
        }
    }

    /** Visit every valid entry of one set: fn(tag, payload&). */
    template <typename Fn>
    void
    forEachInSet(std::size_t set, Fn fn)
    {
        const std::size_t base = set * ways_;
        for (std::size_t way = 0; way < ways_; ++way) {
            if (valid_[base + way])
                fn(tags_[base + way], payloads_[base + way]);
        }
    }

    /**
     * @name Snapshot hooks
     *
     * Tags and payloads are structs with padding, so the owner
     * supplies field-by-field encoders/decoders:
     *
     *   save_tag(w, tag) / save_payload(w, payload)
     *   load_tag(r) -> Tag / load_payload(r) -> Payload
     *
     * Slots are walked in (set, way) order, so the image is byte
     * stable (and identical to the pre-SoA layout's image). load()
     * runs against a cache constructed with the same geometry and
     * validates it: the set/way shape must match, and a set may not
     * carry duplicate valid tags (insert() would treat that as a
     * caller bug and abort; for untrusted input it must be a clean
     * fatal instead). Occupancy is recomputed, and the replacement
     * policy restores its own history afterwards.
     */
    /// @{
    template <typename SaveTag, typename SavePayload>
    void
    save(snap::SnapWriter &w, SaveTag save_tag,
         SavePayload save_payload) const
    {
        w.putTag("assoc");
        w.put64(sets_);
        w.put64(ways_);
        for (std::size_t i = 0; i < valid_.size(); ++i) {
            w.putBool(valid_[i] != 0);
            if (valid_[i]) {
                save_tag(w, tags_[i]);
                save_payload(w, payloads_[i]);
            }
        }
        policy_->save(w);
    }

    template <typename LoadTag, typename LoadPayload>
    void
    load(snap::SnapReader &r, LoadTag load_tag, LoadPayload load_payload)
    {
        r.expectTag("assoc");
        const u64 sets = r.get64();
        const u64 ways = r.get64();
        if (sets != sets_ || ways != ways_)
            SASOS_FATAL("corrupt snapshot: cache geometry ", sets, "x",
                        ways, " does not match this build's ", sets_,
                        "x", ways_);
        occupancy_ = 0;
        for (std::size_t i = 0; i < valid_.size(); ++i) {
            valid_[i] = r.getBool() ? 1 : 0;
            if (valid_[i]) {
                tags_[i] = load_tag(r);
                payloads_[i] = load_payload(r);
                ++occupancy_;
            } else {
                tags_[i] = Tag{};
                payloads_[i] = Payload{};
            }
        }
        for (std::size_t set = 0; set < sets_; ++set) {
            const std::size_t base = set * ways_;
            for (std::size_t a = 0; a < ways_; ++a) {
                if (!valid_[base + a])
                    continue;
                for (std::size_t b = a + 1; b < ways_; ++b) {
                    if (valid_[base + b] &&
                        tags_[base + a] == tags_[base + b])
                        SASOS_FATAL("corrupt snapshot: duplicate tag "
                                    "in cache set ",
                                    set);
                }
            }
        }
        policy_->load(r);
    }
    /// @}

  private:
    static constexpr std::size_t kNoWay = static_cast<std::size_t>(-1);

    /** The tight probe: dense valid/tag scan, no payload traffic. */
    std::size_t
    findWay(std::size_t set, const Tag &tag) const
    {
        SASOS_ASSERT(set < sets_, "set index ", set, " out of range");
        const std::size_t base = set * ways_;
        const u8 *valid = valid_.data() + base;
        const Tag *tags = tags_.data() + base;
        for (std::size_t way = 0; way < ways_; ++way) {
            if (valid[way] && tags[way] == tag)
                return way;
        }
        return kNoWay;
    }

    std::size_t sets_;
    std::size_t ways_;
    std::vector<u8> valid_;
    std::vector<Tag> tags_;
    std::vector<Payload> payloads_;
    std::unique_ptr<ReplacementPolicy> policy_;
    std::size_t occupancy_ = 0;
    /** Cached policy_->needsTouch(): lookup skips the virtual touch
     * call entirely for FIFO/Random structures. */
    bool needsTouch_;
};

} // namespace sasos::hw

#endif // SASOS_HW_ASSOC_CACHE_HH
