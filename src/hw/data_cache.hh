/**
 * @file
 * First-level data cache model.
 *
 * Supports the three organizations the paper discusses:
 *
 *  - VIVT: virtually indexed, virtually tagged. The organization the
 *    paper pairs with the PLB -- no translation before or during the
 *    access; translation is needed only on misses and writebacks.
 *  - VIPT: virtually indexed, physically tagged. Needs the physical
 *    address for the tag compare (TLB in parallel with the index).
 *  - PIPT: physically indexed and tagged. Needs translation before
 *    the access.
 *
 * The model is functional (tags and dirty bits only, no data) and
 * reports events; the machine layer converts events to cycles and is
 * responsible for consulting the TLB where each organization needs a
 * physical address.
 */

#ifndef SASOS_HW_DATA_CACHE_HH
#define SASOS_HW_DATA_CACHE_HH

#include <optional>
#include <string>

#include "hw/assoc_cache.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "vm/address.hh"

namespace sasos::hw
{

/** Index/tag organization. */
enum class CacheOrg
{
    Vivt,
    Vipt,
    Pipt,
};

const char *toString(CacheOrg org);

/** Data cache geometry and behaviour. */
struct DataCacheConfig
{
    u64 sizeBytes = 64 * 1024;
    u32 lineBytes = 32;
    u32 ways = 1;
    CacheOrg org = CacheOrg::Vivt;
    PolicyKind policy = PolicyKind::Lru;
    u64 seed = 1;

    u64 lines() const { return sizeBytes / lineBytes; }
    u64 sets() const { return lines() / ways; }
};

/** A dirty line evicted by a fill; the machine must write it back. */
struct CacheVictim
{
    /** Virtual line number (valid for Vivt/Vipt). */
    u64 vline = 0;
    /** Physical line number (valid for Vipt/Pipt). */
    u64 pline = 0;
    bool dirty = false;
};

/** Outcome of a page flush. */
struct FlushResult
{
    /** Cache accesses performed (one per line in the page). */
    u64 lineAccesses = 0;
    /** Valid lines invalidated. */
    u64 invalidated = 0;
    /** Dirty lines that needed writing back. */
    u64 writebacks = 0;
};

/** Set-associative write-back data cache. */
class DataCache
{
  public:
    DataCache(const DataCacheConfig &config, stats::Group *parent,
              const std::string &name = "dcache");

    const DataCacheConfig &config() const { return config_; }

    /**
     * Look up a reference.
     * @param va     virtual address.
     * @param pa     physical address; required for Vipt/Pipt, ignored
     *               (may be nullopt) for Vivt.
     * @param store  true for stores (sets the dirty bit on hit).
     * @return true on hit.
     */
    bool access(vm::VAddr va, std::optional<vm::PAddr> pa, bool store);

    /**
     * Install the line for a missed reference (after translation).
     * @return the evicted dirty victim needing writeback, if any.
     */
    std::optional<CacheVictim> fill(vm::VAddr va, vm::PAddr pa, bool store);

    /**
     * Flush every line of a virtual page, one cache access per line
     * in the page (paper Section 4.1.3).
     * @param pfn  required for Pipt (flush needs the translation);
     *             optional otherwise.
     */
    FlushResult flushPage(vm::Vpn vpn, std::optional<vm::Pfn> pfn,
                          int page_shift = vm::kPageShift);

    /** Invalidate everything, writing back dirty lines. */
    FlushResult flushAll();

    /**
     * Fault injection: evict one valid line chosen by `rng`, writing
     * it back if dirty (data is never lost, only displaced).
     * @return the victim, or nullopt when the cache is empty.
     */
    std::optional<CacheVictim> evictRandomLine(Rng &rng);

    /** Valid lines currently present. */
    std::size_t occupancy() const { return array_.occupancy(); }

    /** True if the given virtual line is present (for tests). */
    bool containsVirtualLine(u64 vline) const;

    /** @name Snapshot hooks */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar accesses;
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar fills;
    stats::Scalar writebacks;
    stats::Scalar flushedLines;
    stats::Scalar injectedEvictions;
    stats::Formula hitRate;
    /// @}

  private:
    struct LineState
    {
        bool dirty = false;
        u64 vline = 0;
        u64 pline = 0;
    };

    u64 vlineOf(vm::VAddr va) const { return va.raw() / config_.lineBytes; }
    u64 plineOf(vm::PAddr pa) const { return pa.raw() / config_.lineBytes; }

    std::size_t indexOf(u64 vline, u64 pline) const;
    u64 tagOf(u64 vline, u64 pline) const;

    DataCacheConfig config_;
    AssocCache<u64, LineState> array_;
};

} // namespace sasos::hw

#endif // SASOS_HW_DATA_CACHE_HH
