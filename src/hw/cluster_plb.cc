#include "hw/cluster_plb.hh"

#include <algorithm>
#include <string>

namespace sasos::hw
{

ClusterPlb::ClusterPlb(const PlbConfig &config, stats::Group *parent)
    : statsGroup(parent, "clplb"),
      lookups(&statsGroup, "lookups", "protection lookups (all banks)"),
      hits(&statsGroup, "hits", "lookups that matched a bank entry"),
      misses(&statsGroup, "misses", "lookups with no matching entry"),
      dirBankSkips(&statsGroup, "dirBankSkips",
                   "bank sweeps the L2 directory proved unnecessary"),
      dirBankScans(&statsGroup, "dirBankScans",
                   "bank sweeps the L2 directory could not rule out"),
      hitRate(&statsGroup, "hitRate", "fraction of lookups that hit",
              [this] {
                  return lookups.value()
                             ? static_cast<double>(hits.value()) /
                                   lookups.value()
                             : 0.0;
              }),
      config_(config)
{
    SASOS_ASSERT(config.clusters >= 1, "cluster PLB needs >= 1 bank");
    SASOS_ASSERT(config.ways >= config.clusters,
                 "cluster PLB needs at least one way per bank");
    SASOS_ASSERT(config.rangeShift >= 0 && config.rangeShift < 40,
                 "bad cluster range shift ", config.rangeShift);
    PlbConfig bank_config = config;
    bank_config.clusters = 1;
    bank_config.ways = config.ways / config.clusters;
    // Page-grain only: a super-page entry could straddle a shard
    // boundary, and then no single bank could own it.
    bank_config.sizeShifts = {vm::kPageShift};
    bankGroups_.reserve(config.clusters);
    banks_.reserve(config.clusters);
    for (unsigned i = 0; i < config.clusters; ++i) {
        bank_config.seed = config.seed + i;
        bankGroups_.push_back(std::make_unique<stats::Group>(
            &statsGroup, "bank" + std::to_string(i)));
        banks_.push_back(
            std::make_unique<Plb>(bank_config, bankGroups_.back().get()));
    }
}

void
ClusterPlb::dirAdd(u64 vpn)
{
    ++directory_[vpn >> config_.rangeShift];
}

void
ClusterPlb::dirRemove(u64 vpn)
{
    const auto it = directory_.find(vpn >> config_.rangeShift);
    SASOS_ASSERT(it != directory_.end() && it->second > 0,
                 "cluster PLB directory lost track of range ",
                 vpn >> config_.rangeShift);
    if (--it->second == 0)
        directory_.erase(it);
}

std::vector<unsigned>
ClusterPlb::affectedBanks(vm::Vpn first, u64 pages) const
{
    std::vector<unsigned> affected;
    if (pages == 0)
        return affected;
    const u64 range_first = first.number() >> config_.rangeShift;
    const u64 range_last =
        (first.number() + pages - 1) >> config_.rangeShift;
    std::vector<bool> marked(banks_.size(), false);
    for (auto it = directory_.lower_bound(range_first);
         it != directory_.end() && it->first <= range_last; ++it)
        marked[static_cast<std::size_t>(it->first % banks_.size())] = true;
    for (unsigned i = 0; i < banks_.size(); ++i)
        if (marked[i])
            affected.push_back(i);
    return affected;
}

void
ClusterPlb::noteDirectoryVerdict(std::size_t scanned)
{
    dirBankScans += scanned;
    dirBankSkips += banks_.size() - scanned;
}

std::optional<PlbMatch>
ClusterPlb::lookup(DomainId domain, vm::VAddr va, AssocLoc *loc)
{
    ++lookups;
    const auto match =
        banks_[bankOf(va.raw() >> vm::kPageShift)]->lookup(domain, va, loc);
    if (match)
        ++hits;
    else
        ++misses;
    return match;
}

std::optional<PlbMatch>
ClusterPlb::peek(DomainId domain, vm::VAddr va) const
{
    return banks_[bankOf(va.raw() >> vm::kPageShift)]->peek(domain, va);
}

void
ClusterPlb::insert(DomainId domain, vm::VAddr va, int size_shift,
                   vm::Access rights)
{
    SASOS_ASSERT(size_shift == vm::kPageShift,
                 "cluster PLB is page-grain only, got shift ", size_shift);
    const u64 vpn = va.raw() >> vm::kPageShift;
    const auto outcome =
        banks_[bankOf(vpn)]->insertTracked(domain, va, size_shift, rights);
    if (outcome.victim)
        dirRemove(outcome.victim->block);
    if (outcome.inserted)
        dirAdd(vpn);
}

bool
ClusterPlb::updateRights(DomainId domain, vm::VAddr va, vm::Access rights)
{
    return banks_[bankOf(va.raw() >> vm::kPageShift)]->updateRights(
        domain, va, rights);
}

std::optional<int>
ClusterPlb::invalidateCovering(DomainId domain, vm::VAddr va)
{
    const u64 vpn = va.raw() >> vm::kPageShift;
    const auto shift = banks_[bankOf(vpn)]->invalidateCovering(domain, va);
    if (shift)
        dirRemove(vpn);
    return shift;
}

PurgeResult
ClusterPlb::updateRightsRange(std::optional<DomainId> domain, vm::Vpn first,
                              u64 pages, vm::Access rights)
{
    // Page-grain entries overlapping a page range are always fully
    // contained, so banks update in place and never invalidate: the
    // directory is untouched.
    PurgeResult result;
    const auto affected = affectedBanks(first, pages);
    noteDirectoryVerdict(affected.size());
    for (unsigned i : affected) {
        const PurgeResult bank_result =
            banks_[i]->updateRightsRange(domain, first, pages, rights);
        result.scanned += bank_result.scanned;
        SASOS_ASSERT(bank_result.invalidated == 0,
                     "page-grain rights-range update invalidated entries");
    }
    return result;
}

PurgeResult
ClusterPlb::intersectRightsRange(vm::Vpn first, u64 pages, vm::Access mask)
{
    PurgeResult result;
    const auto affected = affectedBanks(first, pages);
    noteDirectoryVerdict(affected.size());
    for (unsigned i : affected) {
        const PurgeResult bank_result =
            banks_[i]->intersectRightsRange(first, pages, mask);
        result.scanned += bank_result.scanned;
        result.invalidated += bank_result.invalidated;
    }
    return result;
}

template <typename Match>
u64
ClusterPlb::sweepBank(Plb &bank, Match match)
{
    // Collect first, then drop via indexed invalidation so every
    // death is routed through the directory.
    std::vector<std::pair<DomainId, u64>> doomed;
    bank.forEach([&](DomainId entry_domain, vm::VAddr va, int, vm::Access) {
        const u64 vpn = va.raw() >> vm::kPageShift;
        if (match(entry_domain, vpn))
            doomed.emplace_back(entry_domain, vpn);
    });
    for (const auto &[entry_domain, vpn] : doomed) {
        const auto shift = bank.invalidateCovering(
            entry_domain, vm::VAddr(vpn << vm::kPageShift));
        SASOS_ASSERT(shift.has_value(), "cluster PLB sweep lost an entry");
        dirRemove(vpn);
    }
    // Charge the bank the full hardware scan it just performed.
    bank.purgeScans += bank.capacity();
    return doomed.size();
}

PurgeResult
ClusterPlb::purgeDomain(DomainId domain)
{
    // No VPN span, so the directory cannot help: sweep every bank
    // that holds anything at all.
    PurgeResult result;
    std::size_t swept = 0;
    for (const auto &bank : banks_) {
        if (bank->occupancy() == 0)
            continue;
        ++swept;
        result.scanned += bank->capacity();
        result.invalidated += sweepBank(
            *bank, [&](DomainId entry_domain, u64) {
                return entry_domain == domain;
            });
    }
    noteDirectoryVerdict(swept);
    return result;
}

PurgeResult
ClusterPlb::purgeRange(std::optional<DomainId> domain, vm::Vpn first,
                       u64 pages)
{
    PurgeResult result;
    const auto affected = affectedBanks(first, pages);
    noteDirectoryVerdict(affected.size());
    const u64 vpn_first = first.number();
    const u64 vpn_last = first.number() + pages - 1;
    for (unsigned i : affected) {
        result.scanned += banks_[i]->capacity();
        result.invalidated += sweepBank(
            *banks_[i], [&](DomainId entry_domain, u64 vpn) {
                if (domain && entry_domain != *domain)
                    return false;
                return vpn >= vpn_first && vpn <= vpn_last;
            });
    }
    return result;
}

u64
ClusterPlb::purgeAll()
{
    u64 dropped = 0;
    for (const auto &bank : banks_)
        dropped += bank->purgeAll();
    directory_.clear();
    return dropped;
}

bool
ClusterPlb::evictOne(Rng &rng)
{
    const std::size_t live = occupancy();
    if (live == 0)
        return false;
    // Pick an entry uniformly across banks, then let the bank drop
    // one of its own uniformly.
    u64 draw = rng.nextBelow(live);
    for (const auto &bank : banks_) {
        const std::size_t bank_live = bank->occupancy();
        if (draw >= bank_live) {
            draw -= bank_live;
            continue;
        }
        const auto dropped = bank->evictOneTracked(rng);
        SASOS_ASSERT(dropped.has_value(), "nonempty bank refused eviction");
        dirRemove(dropped->block);
        return true;
    }
    SASOS_ASSERT(false, "cluster PLB occupancy out of sync with banks");
    return false;
}

u64
ClusterPlb::countRange(std::optional<DomainId> domain, vm::Vpn first,
                       u64 pages) const
{
    u64 count = 0;
    for (unsigned i : affectedBanks(first, pages))
        count += banks_[i]->countRange(domain, first, pages);
    return count;
}

std::size_t
ClusterPlb::occupancy() const
{
    std::size_t total = 0;
    for (const auto &bank : banks_)
        total += bank->occupancy();
    return total;
}

std::size_t
ClusterPlb::capacity() const
{
    std::size_t total = 0;
    for (const auto &bank : banks_)
        total += bank->capacity();
    return total;
}

void
ClusterPlb::save(snap::SnapWriter &w) const
{
    w.putTag("clplb");
    w.put32(static_cast<u32>(banks_.size()));
    w.put32(static_cast<u32>(config_.rangeShift));
    for (const auto &bank : banks_)
        bank->save(w);
}

void
ClusterPlb::load(snap::SnapReader &r)
{
    r.expectTag("clplb");
    const u32 saved_clusters = r.get32();
    const u32 saved_shift = r.get32();
    if (saved_clusters != banks_.size() ||
        saved_shift != static_cast<u32>(config_.rangeShift))
        SASOS_FATAL("snapshot cluster PLB geometry mismatch: image has ",
                    saved_clusters, " banks / range shift ", saved_shift,
                    ", this run has ", banks_.size(), " / ",
                    config_.rangeShift);
    for (const auto &bank : banks_)
        bank->load(r);
    // The directory is derived state: rebuild it from the live banks.
    directory_.clear();
    for (const auto &bank : banks_)
        bank->forEach([this](DomainId, vm::VAddr va, int, vm::Access) {
            dirAdd(va.raw() >> vm::kPageShift);
        });
}

} // namespace sasos::hw
