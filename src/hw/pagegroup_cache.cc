#include "hw/pagegroup_cache.hh"

namespace sasos::hw
{

PageGroupCache::PageGroupCache(const PageGroupCacheConfig &config,
                               stats::Group *parent)
    : statsGroup(parent, "pgcache"),
      lookups(&statsGroup, "lookups", "page-group checks"),
      hits(&statsGroup, "hits", "checks that matched a cached PID"),
      globalHits(&statsGroup, "globalHits", "checks satisfied by group 0"),
      misses(&statsGroup, "misses", "checks that missed"),
      insertions(&statsGroup, "insertions", "groups installed"),
      evictions(&statsGroup, "evictions", "valid groups evicted"),
      injectedEvictions(&statsGroup, "injectedEvictions",
                        "groups dropped by fault injection"),
      config_(config),
      array_(1, config.entries, config.policy, config.seed)
{
}

std::optional<PidMatch>
PageGroupCache::lookup(GroupId aid, AssocLoc *loc)
{
    ++lookups;
    if (aid == kGlobalGroup) {
        ++globalHits;
        return PidMatch{false};
    }
    PidMatch *match = array_.lookup(0, aid, loc);
    if (match == nullptr) {
        ++misses;
        return std::nullopt;
    }
    ++hits;
    return *match;
}

std::optional<PidMatch>
PageGroupCache::peek(GroupId aid) const
{
    if (aid == kGlobalGroup)
        return PidMatch{false};
    const PidMatch *match = array_.probe(0, aid);
    if (match == nullptr)
        return std::nullopt;
    return *match;
}

void
PageGroupCache::insert(GroupId aid, bool write_disable)
{
    SASOS_ASSERT(aid != kGlobalGroup, "group 0 is implicit");
    PidMatch *existing = array_.probe(0, aid);
    if (existing != nullptr) {
        existing->writeDisable = write_disable;
        return;
    }
    ++insertions;
    if (array_.insert(0, aid, PidMatch{write_disable}))
        ++evictions;
}

bool
PageGroupCache::remove(GroupId aid)
{
    return array_.invalidate(0, aid);
}

u64
PageGroupCache::purgeAll()
{
    return array_.invalidateAll();
}

bool
PageGroupCache::evictOne(Rng &rng)
{
    const std::size_t live = array_.occupancy();
    if (live == 0)
        return false;
    array_.invalidateNth(static_cast<std::size_t>(rng.nextBelow(live)));
    ++injectedEvictions;
    return true;
}

u64
PageGroupCache::loadAll(std::span<const GroupId> groups)
{
    u64 loaded = 0;
    for (GroupId aid : groups) {
        if (loaded >= capacity())
            break;
        if (aid == kGlobalGroup)
            continue;
        insert(aid);
        ++loaded;
    }
    return loaded;
}

void
PageGroupCache::save(snap::SnapWriter &w) const
{
    w.putTag("pgcache");
    array_.save(
        w,
        [](snap::SnapWriter &out, const GroupId &aid) {
            out.put16(aid);
        },
        [](snap::SnapWriter &out, const PidMatch &match) {
            out.putBool(match.writeDisable);
        });
}

void
PageGroupCache::load(snap::SnapReader &r)
{
    r.expectTag("pgcache");
    array_.load(
        r,
        [](snap::SnapReader &in) { return GroupId(in.get16()); },
        [](snap::SnapReader &in) {
            PidMatch match;
            match.writeDisable = in.getBool();
            return match;
        });
}

} // namespace sasos::hw
