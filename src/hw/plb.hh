/**
 * @file
 * The Protection Lookaside Buffer (paper Section 3.2.1, Figure 1).
 *
 * The PLB caches protection mappings on a per-domain, per-page basis:
 * each entry grants one protection domain one set of access rights to
 * one protection block. It contains no translation information, which
 * is what lets it sit beside a virtually indexed, virtually tagged
 * cache and be probed in parallel with it.
 *
 * Protection blocks decouple protection granularity from translation
 * granularity (Section 4.3): an entry may cover a sub-page unit (e.g.
 * 128-byte lock granules, as on the IBM 801), a single translation
 * page, or a power-of-two aligned super-page spanning a whole segment.
 * Lookups probe the configured size classes from most specific to
 * least specific, so a per-page override installed alongside a
 * segment-wide entry wins.
 */

#ifndef SASOS_HW_PLB_HH
#define SASOS_HW_PLB_HH

#include <array>
#include <optional>
#include <vector>

#include "hw/assoc_cache.hh"
#include "hw/tlb.hh" // DomainId
#include "sim/random.hh"
#include "sim/stats.hh"
#include "vm/address.hh"
#include "vm/rights.hh"

namespace sasos::hw
{

/** PLB geometry. The paper's Figure 1 assumes fully associative. */
struct PlbConfig
{
    std::size_t sets = 1;
    std::size_t ways = 128;
    PolicyKind policy = PolicyKind::Lru;
    u64 seed = 1;
    /**
     * Protection block sizes (log2 bytes) this PLB supports, e.g.
     * {12} for page-grain only, {7, 12, 22} for 128-byte sub-page
     * blocks plus pages plus 4 MB super-pages.
     */
    std::vector<int> sizeShifts = {vm::kPageShift};

    /**
     * Clustered organization (ClusterPlb): number of per-cluster
     * banks the entries are sharded across by VPN range. 1 selects
     * the flat single-bank Plb (plb_clusters=).
     */
    unsigned clusters = 1;
    /** log2 pages per shard range: consecutive 2^rangeShift-page
     * ranges rotate across the banks (plb_range_shift=). */
    int rangeShift = 10;

    std::size_t entries() const { return sets * ways; }
};

/** What a successful PLB lookup yields. */
struct PlbMatch
{
    vm::Access rights = vm::Access::None;
    /** log2 bytes of the matching protection block. */
    int sizeShift = vm::kPageShift;
};

/** The protection lookaside buffer. */
class Plb
{
  public:
    Plb(const PlbConfig &config, stats::Group *parent);

    const PlbConfig &config() const { return config_; }

    /**
     * Probe for (domain, address). Probes each size class, most
     * specific first. @return the match, or nullopt on PLB miss.
     * A match with rights None is a hit (an explicit deny), not a
     * miss; the caller raises a protection fault without refilling.
     * @param loc filled with the hit entry's array location when
     *            non-null, for touchHit() replay on coalesced runs.
     */
    std::optional<PlbMatch> lookup(DomainId domain, vm::VAddr va,
                                   AssocLoc *loc = nullptr);

    /** Lookup without stats/replacement side effects. */
    std::optional<PlbMatch> peek(DomainId domain, vm::VAddr va) const;

    /**
     * Replay the replacement touch of a remembered hit, exactly as
     * lookup() would. The caller guarantees the entry is still live
     * (any insert or purge since invalidates the remembered loc).
     */
    void touchHit(const AssocLoc &loc) { array_.touch(loc); }

    /**
     * True when every configured size class covers at least a full
     * translation page, i.e. any match for an address holds for every
     * other address on the same page. Sub-page block classes break
     * that, so VPN-grain memoization is only sound when this holds.
     */
    bool
    pageUniform() const
    {
        return probeOrder_.front() >= vm::kPageShift;
    }

    /**
     * Install (or update in place) the entry granting `domain`
     * rights over the block of size 2^size_shift containing `va`.
     */
    void insert(DomainId domain, vm::VAddr va, int size_shift,
                vm::Access rights);

    /** What insertTracked() / evictOneTracked() displaced. */
    struct Evicted
    {
        DomainId domain = 0;
        /** Block number (va >> sizeShift); the VPN at page grain. */
        u64 block = 0;
        int sizeShift = 0;
    };

    /** insert() that reports what happened, for callers maintaining
     * derived occupancy indexes (the clustered PLB's L2 directory). */
    struct InsertOutcome
    {
        /** False when an existing entry was updated in place. */
        bool inserted = false;
        /** The valid entry the insert displaced, when any. */
        std::optional<Evicted> victim;
    };

    InsertOutcome insertTracked(DomainId domain, vm::VAddr va,
                                int size_shift, vm::Access rights);

    /**
     * Update the rights of the most specific entry covering
     * (domain, va), if one is cached. This is the paper's "changing a
     * domain's access rights to a page simply requires updating a PLB
     * entry". @return true if an entry was updated.
     */
    bool updateRights(DomainId domain, vm::VAddr va, vm::Access rights);

    /**
     * Drop the most specific entry covering (domain, va), using
     * indexed probes only (no scan). Used when a page-grain rights
     * change must shatter a cached super-page entry.
     * @return the size shift of the dropped entry, or nullopt.
     */
    std::optional<int> invalidateCovering(DomainId domain, vm::VAddr va);

    /**
     * Scan the whole PLB and set the rights of entries overlapping a
     * page range (for one domain, or all when nullopt). This is the
     * paper's "inspect each entry in the PLB, marking those ..."
     * operation (GC flip, checkpoint restrict).
     * Super-page entries that only partially overlap the range cannot
     * keep a single rights value, so they are invalidated instead.
     */
    PurgeResult updateRightsRange(std::optional<DomainId> domain,
                                  vm::Vpn first, u64 pages,
                                  vm::Access rights);

    /**
     * Scan the whole PLB and intersect the rights of entries
     * overlapping a page range with `mask` (all domains). Used when a
     * global restriction is placed on a page (paging exclusion):
     * intersection can only remove rights, so it is safe for every
     * domain regardless of what each entry held.
     */
    PurgeResult intersectRightsRange(vm::Vpn first, u64 pages,
                                     vm::Access mask);

    /**
     * Scan the whole PLB, dropping entries for one domain
     * (used on domain destruction). Reports scan size for costing.
     */
    PurgeResult purgeDomain(DomainId domain);

    /**
     * Scan the whole PLB, dropping entries overlapping a page range.
     * @param domain restrict to one domain, or nullopt for all
     *               domains (rights changed for every domain).
     * This models the paper's segment-detach worst case: "inspecting
     * all the entries in the PLB and eliminating those that match".
     */
    PurgeResult purgeRange(std::optional<DomainId> domain, vm::Vpn first,
                           u64 pages);

    /** Flash-invalidate. @return entries dropped. */
    u64 purgeAll();

    /**
     * Fault injection: drop one valid entry chosen by `rng`.
     * Models a spurious (soft-error / pressure) eviction; the entry
     * is simply refetched from kernel state on next use.
     * @return true if an entry was dropped (false when empty).
     */
    bool evictOne(Rng &rng);

    /** evictOne() that reports the dropped entry (nullopt when the
     * PLB was empty), for derived-index maintenance. */
    std::optional<Evicted> evictOneTracked(Rng &rng);

    /**
     * Count valid entries overlapping a page range (one domain, or
     * all when nullopt), with no stats or replacement side effects.
     * Shootdown ack processing probes this to size the stale state a
     * remote core still held when it finally took the IPI.
     */
    u64 countRange(std::optional<DomainId> domain, vm::Vpn first,
                   u64 pages) const;

    std::size_t occupancy() const { return array_.occupancy(); }
    std::size_t capacity() const { return array_.capacity(); }

    /** Visit valid entries: fn(domain, blockBaseVa, sizeShift, rights). */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        array_.forEach([&](const Key &key, const vm::Access &rights) {
            fn(key.domain, vm::VAddr(key.block << key.sizeShift),
               key.sizeShift, rights);
        });
    }

    /** @name Snapshot hooks (array + replacement state; the stats
     * tree is captured by the owning system's group walk) */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar lookups;
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar insertions;
    stats::Scalar evictions;
    stats::Scalar updates;
    stats::Scalar purgedEntries;
    stats::Scalar purgeScans;
    stats::Scalar injectedEvictions;
    stats::Formula hitRate;
    /// @}

  private:
    struct Key
    {
        DomainId domain = 0;
        u64 block = 0;
        int sizeShift = 0;

        bool operator==(const Key &) const = default;
    };

    std::size_t setOf(u64 block) const;
    Key keyFor(DomainId domain, vm::VAddr va, int size_shift) const;

    /** [first byte, last byte] covered by an entry. */
    static std::pair<u64, u64> blockSpan(const Key &key);

    PlbConfig config_;
    /** Size shifts sorted ascending (most specific first). */
    std::vector<int> probeOrder_;
    AssocCache<Key, vm::Access> array_;
    /**
     * Valid entries per size class. A configured class that holds no
     * entries (e.g. a super-page class the workload never fills)
     * cannot produce a hit, so lookup/peek skip its probe entirely.
     */
    std::array<u32, 64> shiftOccupancy_{};
};

} // namespace sasos::hw

#endif // SASOS_HW_PLB_HH
