/**
 * @file
 * The clustered Protection Lookaside Buffer: a datacenter-scale PLB
 * organization sharded by VPN range across per-cluster banks, with a
 * shared L2 range directory.
 *
 * SPARTA's divide-and-conquer translation (arXiv 2001.07045) motivates
 * the split: at 64-1024 cores the expensive PLB operations are not the
 * per-reference probes (those are indexed) but the maintenance scans
 * -- segment detach, rights-range revocation, domain destruction --
 * that the shootdown protocol runs on *every* core. Sharding entries
 * by VPN range means (a) a probe touches exactly one small bank, and
 * (b) a maintenance scan only has to visit banks that can hold
 * affected entries. The shared L2 directory makes (b) cheap: it is an
 * exact map from VPN range to the number of live entries the owning
 * bank holds for that range, so a scan skips every bank with no live
 * range in the operation's span.
 *
 * Entries are page-grain only: a super-page entry could straddle a
 * shard boundary and would need multi-bank coherence on every indexed
 * op. The owning PlbSystem forces page-grain refills in clustered
 * mode, so routing by VPN is exact and the allow/deny decisions are
 * bit-identical to the flat PLB of the same total capacity -- an
 * identity bench_scale enforces by exit code.
 *
 * The directory is kept exact (never stale) by funnelling every entry
 * birth and death through it: inserts report their victims
 * (Plb::insertTracked), indexed invalidations report their hit, and
 * the scan-style operations are decomposed into per-bank
 * collect-then-invalidate sweeps so each dropped entry is seen.
 */

#ifndef SASOS_HW_CLUSTER_PLB_HH
#define SASOS_HW_CLUSTER_PLB_HH

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "hw/plb.hh"

namespace sasos::hw
{

/** The VPN-range-sharded, bank-clustered PLB. */
class ClusterPlb
{
  public:
    /** @param config total geometry; `config.ways` entries are split
     *                evenly across `config.clusters` banks. */
    ClusterPlb(const PlbConfig &config, stats::Group *parent);

    const PlbConfig &config() const { return config_; }
    unsigned clusters() const
    {
        return static_cast<unsigned>(banks_.size());
    }
    u64 rangePages() const { return u64{1} << config_.rangeShift; }

    /** The bank owning a page: ranges rotate across banks. */
    unsigned
    bankOf(u64 vpn) const
    {
        return static_cast<unsigned>((vpn >> config_.rangeShift) %
                                     banks_.size());
    }

    /** @name The Plb probe surface (routed to the owning bank) */
    /// @{
    std::optional<PlbMatch> lookup(DomainId domain, vm::VAddr va,
                                   AssocLoc *loc = nullptr);
    std::optional<PlbMatch> peek(DomainId domain, vm::VAddr va) const;

    /** Replay a remembered hit's replacement touch; the vpn routes
     * the remembered AssocLoc to its bank. */
    void
    touchHit(u64 vpn, const AssocLoc &loc)
    {
        banks_[bankOf(vpn)]->touchHit(loc);
    }

    /** Page-grain only, so every match covers its whole page. */
    bool pageUniform() const { return true; }
    /// @}

    /** @name The Plb maintenance surface
     * Same semantics as hw::Plb; scans consult the L2 directory and
     * only sweep banks with live entries in the affected span.
     * PurgeResult::scanned counts the entries of every bank actually
     * swept (the hardware cost the directory just saved elsewhere). */
    /// @{
    void insert(DomainId domain, vm::VAddr va, int size_shift,
                vm::Access rights);
    bool updateRights(DomainId domain, vm::VAddr va, vm::Access rights);
    std::optional<int> invalidateCovering(DomainId domain, vm::VAddr va);
    PurgeResult updateRightsRange(std::optional<DomainId> domain,
                                  vm::Vpn first, u64 pages,
                                  vm::Access rights);
    PurgeResult intersectRightsRange(vm::Vpn first, u64 pages,
                                     vm::Access mask);
    PurgeResult purgeDomain(DomainId domain);
    PurgeResult purgeRange(std::optional<DomainId> domain, vm::Vpn first,
                           u64 pages);
    u64 purgeAll();
    bool evictOne(Rng &rng);
    u64 countRange(std::optional<DomainId> domain, vm::Vpn first,
                   u64 pages) const;
    /// @}

    std::size_t occupancy() const;
    std::size_t capacity() const;

    /** Live (nonzero) ranges in the L2 directory. */
    std::size_t liveRanges() const { return directory_.size(); }

    /** Direct bank access for tests. */
    Plb &bank(unsigned i) { return *banks_[i]; }
    const Plb &bank(unsigned i) const { return *banks_[i]; }

    /** Visit valid entries bank by bank:
     * fn(domain, blockBaseVa, sizeShift, rights). */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &bank : banks_)
            bank->forEach(fn);
    }

    /** @name Snapshot hooks (geometry guard + per-bank arrays; the
     * directory is derived state, rebuilt on load) */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /** @name Statistics
     * Cluster-level lookups/hits/misses also absorb the owning
     * system's batch-memo replays (which never reach a bank), so the
     * cluster totals may exceed the per-bank sums. */
    /// @{
    stats::Group statsGroup;
    stats::Scalar lookups;
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar dirBankSkips;
    stats::Scalar dirBankScans;
    stats::Formula hitRate;
    /// @}

  private:
    /** One live page-grain entry appeared on `vpn`. */
    void dirAdd(u64 vpn);
    /** One live page-grain entry on `vpn` died. */
    void dirRemove(u64 vpn);

    /**
     * Banks with at least one directory-live range intersecting
     * [first, first+pages), in bank order. Pure (no stats side
     * effects); non-const callers record skip/scan counts via
     * noteDirectoryVerdict().
     */
    std::vector<unsigned> affectedBanks(vm::Vpn first, u64 pages) const;

    /** Record a directory consultation: `scanned` banks must be
     * swept, the rest were proven clean. */
    void noteDirectoryVerdict(std::size_t scanned);

    /**
     * Sweep one bank, invalidating every valid entry matching
     * `match(domain, vpn)`, keeping the directory exact.
     * @return entries invalidated; `scanned` accounting is the
     *         caller's (one full bank scan).
     */
    template <typename Match>
    u64 sweepBank(Plb &bank, Match match);

    PlbConfig config_;
    std::vector<std::unique_ptr<stats::Group>> bankGroups_;
    std::vector<std::unique_ptr<Plb>> banks_;
    /** Range id (vpn >> rangeShift) -> live entries in that range.
     * Ordered so range iteration order is host-independent. */
    std::map<u64, u32> directory_;
};

} // namespace sasos::hw

#endif // SASOS_HW_CLUSTER_PLB_HH
