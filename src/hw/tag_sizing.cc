#include "hw/tag_sizing.hh"

#include <bit>

#include "sim/logging.hh"

namespace sasos::hw::sizing
{

namespace
{

int
log2Exact(u64 value)
{
    SASOS_ASSERT(std::has_single_bit(value), value, " is not a power of 2");
    return std::countr_zero(value);
}

u64
vpnTagBits(const SizingParams &p)
{
    const u64 vpn_bits = static_cast<u64>(p.vaBits - p.pageShift);
    const u64 index_bits = static_cast<u64>(log2Exact(p.sets));
    SASOS_ASSERT(index_bits < vpn_bits, "index wider than VPN");
    return vpn_bits - index_bits;
}

u64
pfnBits(const SizingParams &p)
{
    return static_cast<u64>(p.paBits - p.pageShift);
}

} // namespace

u64
EntryLayout::totalBits() const
{
    u64 total = 0;
    for (const Field &field : fields)
        total += field.bits;
    return total;
}

u64
EntryLayout::bitsOf(const std::string &name) const
{
    for (const Field &field : fields) {
        if (field.name == name)
            return field.bits;
    }
    return 0;
}

EntryLayout
plbEntry(const SizingParams &p)
{
    return EntryLayout{{
        {"vpn", vpnTagBits(p)},
        {"pdid", static_cast<u64>(p.pdidBits)},
        {"rights", static_cast<u64>(p.rightsBits)},
    }};
}

EntryLayout
pageGroupTlbEntry(const SizingParams &p)
{
    return EntryLayout{{
        {"vpn", vpnTagBits(p)},
        {"pfn", pfnBits(p)},
        {"aid", static_cast<u64>(p.aidBits)},
        {"rights", static_cast<u64>(p.rightsBits)},
        {"dirty", 1},
        {"referenced", 1},
    }};
}

EntryLayout
translationTlbEntry(const SizingParams &p)
{
    return EntryLayout{{
        {"vpn", vpnTagBits(p)},
        {"pfn", pfnBits(p)},
        {"dirty", 1},
        {"referenced", 1},
    }};
}

EntryLayout
conventionalTlbEntry(const SizingParams &p)
{
    return EntryLayout{{
        {"vpn", vpnTagBits(p)},
        {"asid", static_cast<u64>(p.asidBits)},
        {"pfn", pfnBits(p)},
        {"rights", static_cast<u64>(p.rightsBits)},
        {"dirty", 1},
        {"referenced", 1},
    }};
}

u64
cacheLineBits(const CacheSizing &c, Tagging tagging)
{
    const u64 lines = c.sizeBytes / c.lineBytes;
    const u64 sets = lines / c.ways;
    const int offset_bits = log2Exact(c.lineBytes);
    const int index_bits = log2Exact(sets);
    const int addr_bits =
        tagging == Tagging::Virtual ? c.vaBits : c.paBits;
    const u64 tag_bits =
        static_cast<u64>(addr_bits - index_bits - offset_bits);
    const u64 data_bits = static_cast<u64>(c.lineBytes) * 8;
    return data_bits + tag_bits + c.stateBitsPerLine;
}

u64
cacheTotalBits(const CacheSizing &c, Tagging tagging)
{
    const u64 lines = c.sizeBytes / c.lineBytes;
    return lines * cacheLineBits(c, tagging);
}

double
virtualTagOverhead(const CacheSizing &c)
{
    return static_cast<double>(cacheTotalBits(c, Tagging::Virtual)) /
           static_cast<double>(cacheTotalBits(c, Tagging::Physical));
}

u64
entriesInSameArea(const EntryLayout &entry, const EntryLayout &reference,
                  u64 reference_entries)
{
    const u64 budget = reference.totalBits() * reference_entries;
    SASOS_ASSERT(entry.totalBits() > 0, "empty entry layout");
    return budget / entry.totalBits();
}

} // namespace sasos::hw::sizing
