/**
 * @file
 * The cache of permitted page-groups (paper Section 3.2.2, Figure 2).
 *
 * In the PA-RISC the executing domain's accessible page-groups live
 * in four PID registers. The paper's page-group implementation
 * replaces them with an LRU cache of page-groups (after Wilkes &
 * Sears); this class models both: configure four entries with Fifo or
 * Random replacement for the register file (no LRU information for
 * the OS), or more entries with Lru for the cache variant.
 *
 * Each entry carries the PID's write-disable (D) bit, which denies
 * stores to the whole group regardless of the TLB Rights field.
 * Group 0 is globally accessible and always hits.
 */

#ifndef SASOS_HW_PAGEGROUP_CACHE_HH
#define SASOS_HW_PAGEGROUP_CACHE_HH

#include <optional>
#include <span>

#include "hw/assoc_cache.hh"
#include "hw/tlb.hh" // GroupId
#include "sim/random.hh"
#include "sim/stats.hh"

namespace sasos::hw
{

/** Geometry of the page-group cache. */
struct PageGroupCacheConfig
{
    std::size_t entries = 16;
    PolicyKind policy = PolicyKind::Lru;
    u64 seed = 1;
};

/** Result of a page-group probe. */
struct PidMatch
{
    /** Stores to the group are denied when set (the D bit). */
    bool writeDisable = false;
};

/** Fully associative cache of the current domain's page-groups. */
class PageGroupCache
{
  public:
    PageGroupCache(const PageGroupCacheConfig &config,
                   stats::Group *parent);

    const PageGroupCacheConfig &config() const { return config_; }

    /**
     * Check whether the current domain may access a group.
     * Group 0 always matches with writes enabled.
     * @param loc filled with the hit's array location when non-null
     *            (left untouched for group-0 hits, which never probe
     *            the array), for touchHit() replay on coalesced runs.
     */
    std::optional<PidMatch> lookup(GroupId aid, AssocLoc *loc = nullptr);

    /**
     * Replay the replacement touch of a remembered hit, exactly as
     * lookup() would. The caller guarantees the entry is still live
     * (any insert or purge since invalidates the remembered loc).
     */
    void touchHit(const AssocLoc &loc) { array_.touch(loc); }

    /** Probe without stats/replacement updates. */
    std::optional<PidMatch> peek(GroupId aid) const;

    /** Install a group (evicting LRU/FIFO/random as configured). */
    void insert(GroupId aid, bool write_disable = false);

    /** Drop one group (segment detach). @return true if present. */
    bool remove(GroupId aid);

    /** Flash-invalidate (domain switch). @return entries dropped. */
    u64 purgeAll();

    /**
     * Explicitly load a domain's groups (eager reload on domain
     * switch, Section 4.1.4). Loads up to capacity, in order.
     * @return number of entries loaded.
     */
    u64 loadAll(std::span<const GroupId> groups);

    /**
     * Fault injection: drop one cached group chosen by `rng`; the
     * kernel revalidates and reloads it on the next miss.
     * @return true if an entry was dropped (false when empty).
     */
    bool evictOne(Rng &rng);

    std::size_t occupancy() const { return array_.occupancy(); }
    std::size_t capacity() const { return array_.capacity(); }

    /** @name Snapshot hooks */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar lookups;
    stats::Scalar hits;
    stats::Scalar globalHits;
    stats::Scalar misses;
    stats::Scalar insertions;
    stats::Scalar evictions;
    stats::Scalar injectedEvictions;
    /// @}

  private:
    PageGroupCacheConfig config_;
    AssocCache<GroupId, PidMatch> array_;
};

} // namespace sasos::hw

#endif // SASOS_HW_PAGEGROUP_CACHE_HH
