/**
 * @file
 * Translation lookaside buffer with the three personalities the paper
 * compares.
 *
 *  - Conventional: ASID-tagged entries carrying per-domain access
 *    rights (MIPS/Alpha style). Sharing a page across N domains
 *    replicates the entry N times (paper Section 3.1).
 *  - PageGroup: one entry per page for all domains, carrying the
 *    translation, the page-group number (AID) and the group-wide
 *    Rights field (PA-RISC style, Figure 2).
 *  - TranslationOnly: one entry per page with no protection content
 *    at all -- the second-level, off-critical-path TLB of the PLB
 *    system (Section 3.2.1).
 *  - Pkey: one entry per page for all domains, carrying the
 *    translation and a small protection-key id (MPK style); the
 *    rights themselves live in a per-domain key-permission register
 *    file (hw::KeyCache), not in the TLB.
 */

#ifndef SASOS_HW_TLB_HH
#define SASOS_HW_TLB_HH

#include <optional>

#include "hw/assoc_cache.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "vm/address.hh"
#include "vm/rights.hh"

namespace sasos::hw
{

/** Identifies a protection domain to the hardware (PD-ID / ASID). */
using DomainId = u16;

/** Identifies a page-group (the PA-RISC access identifier). */
using GroupId = u16;

/** AID 0 is the globally accessible page-group (paper Section 3.2.2). */
constexpr GroupId kGlobalGroup = 0;

/** Which fields a TLB carries and matches. */
enum class TlbKind
{
    Conventional,
    PageGroup,
    TranslationOnly,
    Pkey,
};

const char *toString(TlbKind kind);

/** One TLB entry; unused fields stay at their defaults. */
struct TlbEntry
{
    vm::Pfn pfn;
    /** Per-domain rights (Conventional) or group rights (PageGroup). */
    vm::Access rights = vm::Access::None;
    /** Matching ASID (Conventional only). */
    DomainId asid = 0;
    /** Page-group number (PageGroup) or protection-key id (Pkey). */
    GroupId aid = kGlobalGroup;
    bool dirty = false;
    bool referenced = false;
};

/** TLB geometry. */
struct TlbConfig
{
    TlbKind kind = TlbKind::TranslationOnly;
    std::size_t sets = 1;
    std::size_t ways = 64;
    PolicyKind policy = PolicyKind::Lru;
    u64 seed = 1;

    std::size_t entries() const { return sets * ways; }
};

/** Set-associative TLB. */
class Tlb
{
  public:
    Tlb(const TlbConfig &config, stats::Group *parent,
        const std::string &name = "tlb");

    const TlbConfig &config() const { return config_; }

    /**
     * Look up a page.
     * @param vpn   page to translate.
     * @param asid  current domain; only used by Conventional TLBs.
     * @param loc   filled with the hit's array location when non-null,
     *              for touchHit() replay on coalesced runs.
     * @return entry on hit, null on miss. Counts stats.
     */
    TlbEntry *lookup(vm::Vpn vpn, DomainId asid = 0,
                     AssocLoc *loc = nullptr);

    /**
     * Replay the replacement touch of a remembered hit, exactly as
     * lookup() would. The caller guarantees the entry is still live
     * (any insert or purge since invalidates the remembered loc).
     */
    void touchHit(const AssocLoc &loc) { array_.touch(loc); }

    /** Lookup without stats or replacement update (for tests). */
    const TlbEntry *peek(vm::Vpn vpn, DomainId asid = 0) const;

    /** Mutable lookup without stats or replacement update. */
    TlbEntry *find(vm::Vpn vpn, DomainId asid = 0);

    /**
     * Install an entry (evicting as needed). Duplicate (vpn[,asid])
     * insertion is a caller bug.
     */
    void insert(vm::Vpn vpn, const TlbEntry &entry);

    /** Modify the entry for one page in place. @return found. */
    bool setRights(vm::Vpn vpn, vm::Access rights, DomainId asid = 0);

    /** Move a page to a new group (PageGroup kind). @return found. */
    bool setGroup(vm::Vpn vpn, GroupId aid, vm::Access rights);

    /** Drop all entries for a page (all ASIDs). @return dropped. */
    u64 purgePage(vm::Vpn vpn);

    /** Drop the entry for (page, asid). @return true if present. */
    bool purgePageAsid(vm::Vpn vpn, DomainId asid);

    /** Drop every entry tagged with an ASID. Scans the whole TLB. */
    PurgeResult purgeAsid(DomainId asid);

    /**
     * Scan the TLB, dropping entries for pages in [first,
     * first+pages), optionally restricted to one ASID.
     */
    PurgeResult purgeRange(std::optional<DomainId> asid, vm::Vpn first,
                           u64 pages);

    /** Flash-invalidate. @return entries dropped. */
    u64 purgeAll();

    /**
     * Fault injection: drop one valid entry chosen by `rng`; refilled
     * from kernel page tables on next touch.
     * @return true if an entry was dropped (false when empty).
     */
    bool evictOne(Rng &rng);

    /**
     * Count valid entries for pages in [first, first+pages),
     * optionally restricted to one ASID, with no stats or replacement
     * side effects. Shootdown ack processing probes this to size the
     * stale state a remote core still held when it took the IPI.
     */
    u64 countRange(std::optional<DomainId> asid, vm::Vpn first,
                   u64 pages) const;

    std::size_t occupancy() const { return array_.occupancy(); }
    std::size_t capacity() const { return array_.capacity(); }

    /** Visit all valid entries: fn(vpn, asid, entry&). */
    template <typename Fn>
    void
    forEach(Fn fn)
    {
        array_.forEach([&](const Key &key, TlbEntry &entry) {
            fn(vm::Vpn(key.vpn), key.asid, entry);
        });
    }

    /** @name Snapshot hooks */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar lookups;
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar insertions;
    stats::Scalar evictions;
    stats::Scalar purgedEntries;
    stats::Scalar injectedEvictions;
    stats::Formula hitRate;
    /// @}

  private:
    struct Key
    {
        u64 vpn = 0;
        DomainId asid = 0;

        bool operator==(const Key &) const = default;
    };

    std::size_t setOf(vm::Vpn vpn) const;
    Key keyOf(vm::Vpn vpn, DomainId asid) const;

    TlbConfig config_;
    AssocCache<Key, TlbEntry> array_;
};

} // namespace sasos::hw

#endif // SASOS_HW_TLB_HH
