/**
 * @file
 * Replacement policies for set-associative hardware structures.
 *
 * One policy object serves a whole structure; state is kept per
 * (set, way). The structure asks for a victim only when every way in
 * the set is valid -- invalid ways are always filled first by the
 * caller.
 */

#ifndef SASOS_HW_REPLACEMENT_HH
#define SASOS_HW_REPLACEMENT_HH

#include <memory>
#include <string>

#include "sim/random.hh"
#include "sim/types.hh"

namespace sasos::snap
{
class SnapWriter;
class SnapReader;
} // namespace sasos::snap

namespace sasos::hw
{

/** Selectable replacement policies. */
enum class PolicyKind
{
    Lru,
    Fifo,
    Random,
    TreePlru,
};

const char *toString(PolicyKind kind);

/** Parse "lru" / "fifo" / "random" / "plru" (fatal on other input). */
PolicyKind parsePolicyKind(const std::string &name);

/** Per-structure replacement state. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Record a hit on (set, way). */
    virtual void touch(std::size_t set, std::size_t way) = 0;

    /**
     * Whether touch() has any effect. FIFO and Random ignore hits, so
     * the structure's lookup path can skip the virtual call entirely;
     * recency-based policies return true.
     */
    virtual bool needsTouch() const { return true; }

    /** Record a fill of (set, way). */
    virtual void fill(std::size_t set, std::size_t way) = 0;

    /** Choose the way to evict in a full set. */
    virtual std::size_t victim(std::size_t set) = 0;

    /** Forget all history (e.g. after a full purge). */
    virtual void reset() = 0;

    /** @name Snapshot hooks
     * Replacement history decides every future victim, so it is part
     * of the deterministic state; load() is called on a policy built
     * with the same (kind, sets, ways, seed) and fails cleanly on a
     * shape mismatch. */
    /// @{
    virtual void save(snap::SnapWriter &w) const = 0;
    virtual void load(snap::SnapReader &r) = 0;
    /// @}
};

/**
 * Build a policy instance.
 * @param seed only used by PolicyKind::Random.
 */
std::unique_ptr<ReplacementPolicy> makePolicy(PolicyKind kind,
                                              std::size_t sets,
                                              std::size_t ways,
                                              u64 seed = 1);

} // namespace sasos::hw

#endif // SASOS_HW_REPLACEMENT_HH
