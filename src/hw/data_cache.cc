#include "hw/data_cache.hh"

#include <bit>

namespace sasos::hw
{

const char *
toString(CacheOrg org)
{
    switch (org) {
      case CacheOrg::Vivt:
        return "vivt";
      case CacheOrg::Vipt:
        return "vipt";
      case CacheOrg::Pipt:
        return "pipt";
    }
    return "?";
}

DataCache::DataCache(const DataCacheConfig &config, stats::Group *parent,
                     const std::string &name)
    : statsGroup(parent, name),
      accesses(&statsGroup, "accesses", "lookups performed"),
      hits(&statsGroup, "hits", "lookups that hit"),
      misses(&statsGroup, "misses", "lookups that missed"),
      fills(&statsGroup, "fills", "lines installed"),
      writebacks(&statsGroup, "writebacks", "dirty lines written back"),
      flushedLines(&statsGroup, "flushedLines",
                   "valid lines removed by flush operations"),
      injectedEvictions(&statsGroup, "injectedEvictions",
                        "lines evicted by fault injection"),
      hitRate(&statsGroup, "hitRate", "fraction of accesses that hit",
              [this] {
                  return accesses.value()
                             ? static_cast<double>(hits.value()) /
                                   accesses.value()
                             : 0.0;
              }),
      config_(config),
      array_(config.sets(), config.ways, config.policy, config.seed)
{
    SASOS_ASSERT(std::has_single_bit(config.lineBytes), "line size not 2^k");
    SASOS_ASSERT(std::has_single_bit(config.sets()), "set count not 2^k");
    SASOS_ASSERT(config.sizeBytes % (config.lineBytes * config.ways) == 0,
                 "cache size not divisible by way size");
}

std::size_t
DataCache::indexOf(u64 vline, u64 pline) const
{
    const u64 line = config_.org == CacheOrg::Pipt ? pline : vline;
    return static_cast<std::size_t>(line & (config_.sets() - 1));
}

u64
DataCache::tagOf(u64 vline, u64 pline) const
{
    return config_.org == CacheOrg::Vivt ? vline : pline;
}

bool
DataCache::access(vm::VAddr va, std::optional<vm::PAddr> pa, bool store)
{
    ++accesses;
    const u64 vline = vlineOf(va);
    u64 pline = 0;
    if (config_.org != CacheOrg::Vivt) {
        SASOS_ASSERT(pa.has_value(), toString(config_.org),
                     " lookup needs a physical address");
        pline = plineOf(*pa);
    }
    LineState *line = array_.lookup(indexOf(vline, pline),
                                    tagOf(vline, pline));
    if (line == nullptr) {
        ++misses;
        return false;
    }
    if (store)
        line->dirty = true;
    ++hits;
    return true;
}

std::optional<CacheVictim>
DataCache::fill(vm::VAddr va, vm::PAddr pa, bool store)
{
    ++fills;
    const u64 vline = vlineOf(va);
    const u64 pline = plineOf(pa);
    LineState state;
    state.dirty = store;
    state.vline = vline;
    state.pline = pline;
    auto victim = array_.insert(indexOf(vline, pline), tagOf(vline, pline),
                                state);
    if (!victim)
        return std::nullopt;
    CacheVictim out;
    out.vline = victim->payload.vline;
    out.pline = victim->payload.pline;
    out.dirty = victim->payload.dirty;
    if (out.dirty)
        ++writebacks;
    return out;
}

FlushResult
DataCache::flushPage(vm::Vpn vpn, std::optional<vm::Pfn> pfn, int page_shift)
{
    FlushResult result;
    const u64 lines_per_page =
        (u64{1} << page_shift) / config_.lineBytes;
    const u64 first_vline =
        (vpn.number() << page_shift) / config_.lineBytes;
    u64 first_pline = 0;
    if (config_.org == CacheOrg::Pipt) {
        SASOS_ASSERT(pfn.has_value(),
                     "pipt flush needs the physical page");
        first_pline = (pfn->number() << page_shift) / config_.lineBytes;
    }
    for (u64 i = 0; i < lines_per_page; ++i) {
        ++result.lineAccesses;
        const u64 vline = first_vline + i;
        const u64 pline = first_pline + i;
        const std::size_t set = indexOf(vline, pline);
        // Match on the stored virtual line so Vipt (physical tags)
        // still flushes by virtual page; Pipt matches physical lines.
        bool removed_dirty = false;
        bool removed = false;
        if (config_.org == CacheOrg::Pipt) {
            LineState *line = array_.probe(set, pline);
            if (line != nullptr) {
                removed = true;
                removed_dirty = line->dirty;
                array_.invalidate(set, pline);
            }
        } else {
            const u64 tag = tagOf(vline, pline);
            if (config_.org == CacheOrg::Vivt) {
                LineState *line = array_.probe(set, tag);
                if (line != nullptr) {
                    removed = true;
                    removed_dirty = line->dirty;
                    array_.invalidate(set, tag);
                }
            } else {
                // Vipt: tags are physical; scan the set for the vline.
                u64 found_tag = 0;
                bool found = false;
                bool found_dirty = false;
                array_.forEachInSet(set, [&](u64 tag_key, LineState &state) {
                    if (state.vline == vline) {
                        found = true;
                        found_tag = tag_key;
                        found_dirty = state.dirty;
                    }
                });
                if (found) {
                    removed = true;
                    removed_dirty = found_dirty;
                    array_.invalidate(set, found_tag);
                }
            }
        }
        if (removed) {
            ++result.invalidated;
            ++flushedLines;
            if (removed_dirty) {
                ++result.writebacks;
                ++writebacks;
            }
        }
    }
    return result;
}

FlushResult
DataCache::flushAll()
{
    FlushResult result;
    result.lineAccesses = config_.lines();
    array_.forEach([&](u64, LineState &state) {
        ++result.invalidated;
        ++flushedLines;
        if (state.dirty) {
            ++result.writebacks;
            ++writebacks;
        }
    });
    array_.invalidateAll();
    return result;
}

std::optional<CacheVictim>
DataCache::evictRandomLine(Rng &rng)
{
    const std::size_t live = array_.occupancy();
    if (live == 0)
        return std::nullopt;
    auto victim = array_.invalidateNth(
        static_cast<std::size_t>(rng.nextBelow(live)));
    if (!victim)
        return std::nullopt;
    ++injectedEvictions;
    CacheVictim out;
    out.vline = victim->payload.vline;
    out.pline = victim->payload.pline;
    out.dirty = victim->payload.dirty;
    if (out.dirty)
        ++writebacks;
    return out;
}

bool
DataCache::containsVirtualLine(u64 vline) const
{
    bool found = false;
    array_.forEach([&](u64, const LineState &state) {
        if (state.vline == vline)
            found = true;
    });
    return found;
}

void
DataCache::save(snap::SnapWriter &w) const
{
    w.putTag("dcache");
    array_.save(
        w,
        [](snap::SnapWriter &out, const u64 &tag) { out.put64(tag); },
        [](snap::SnapWriter &out, const LineState &line) {
            out.putBool(line.dirty);
            out.put64(line.vline);
            out.put64(line.pline);
        });
}

void
DataCache::load(snap::SnapReader &r)
{
    r.expectTag("dcache");
    array_.load(
        r,
        [](snap::SnapReader &in) { return in.get64(); },
        [](snap::SnapReader &in) {
            LineState line;
            line.dirty = in.getBool();
            line.vline = in.get64();
            line.pline = in.get64();
            return line;
        });
}

} // namespace sasos::hw
