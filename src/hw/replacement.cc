#include "hw/replacement.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::hw
{

namespace
{

/** Shared stamp-vector serialization for LRU and FIFO. */
void
saveStamps(snap::SnapWriter &w, const std::vector<u64> &stamps, u64 clock)
{
    w.putTag("stamps");
    w.put64(stamps.size());
    for (u64 stamp : stamps)
        w.put64(stamp);
    w.put64(clock);
}

void
loadStamps(snap::SnapReader &r, std::vector<u64> &stamps, u64 &clock)
{
    r.expectTag("stamps");
    const u64 count = r.getCount(8);
    if (count != stamps.size())
        SASOS_FATAL("corrupt snapshot: replacement state carries ",
                    count, " stamps, this geometry has ", stamps.size());
    for (auto &stamp : stamps)
        stamp = r.get64();
    clock = r.get64();
}

/** True LRU via per-way timestamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::size_t sets, std::size_t ways)
        : ways_(ways), stamps_(sets * ways, 0)
    {
    }

    void
    touch(std::size_t set, std::size_t way) override
    {
        stamps_[set * ways_ + way] = ++clock_;
    }

    void
    fill(std::size_t set, std::size_t way) override
    {
        touch(set, way);
    }

    std::size_t
    victim(std::size_t set) override
    {
        const u64 *base = &stamps_[set * ways_];
        return static_cast<std::size_t>(
            std::min_element(base, base + ways_) - base);
    }

    void
    reset() override
    {
        std::fill(stamps_.begin(), stamps_.end(), 0);
        clock_ = 0;
    }

    void save(snap::SnapWriter &w) const override
    {
        saveStamps(w, stamps_, clock_);
    }

    void load(snap::SnapReader &r) override
    {
        loadStamps(r, stamps_, clock_);
    }

  private:
    std::size_t ways_;
    std::vector<u64> stamps_;
    u64 clock_ = 0;
};

/** FIFO: evict the oldest fill; hits do not refresh. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    FifoPolicy(std::size_t sets, std::size_t ways)
        : ways_(ways), stamps_(sets * ways, 0)
    {
    }

    void touch(std::size_t, std::size_t) override {}
    bool needsTouch() const override { return false; }

    void
    fill(std::size_t set, std::size_t way) override
    {
        stamps_[set * ways_ + way] = ++clock_;
    }

    std::size_t
    victim(std::size_t set) override
    {
        const u64 *base = &stamps_[set * ways_];
        return static_cast<std::size_t>(
            std::min_element(base, base + ways_) - base);
    }

    void
    reset() override
    {
        std::fill(stamps_.begin(), stamps_.end(), 0);
        clock_ = 0;
    }

    void save(snap::SnapWriter &w) const override
    {
        saveStamps(w, stamps_, clock_);
    }

    void load(snap::SnapReader &r) override
    {
        loadStamps(r, stamps_, clock_);
    }

  private:
    std::size_t ways_;
    std::vector<u64> stamps_;
    u64 clock_ = 0;
};

/** Uniformly random victim (deterministic via seeded Rng). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::size_t ways, u64 seed) : ways_(ways), rng_(seed) {}

    void touch(std::size_t, std::size_t) override {}
    bool needsTouch() const override { return false; }
    void fill(std::size_t, std::size_t) override {}

    std::size_t
    victim(std::size_t) override
    {
        return static_cast<std::size_t>(rng_.nextBelow(ways_));
    }

    void reset() override {}

    void save(snap::SnapWriter &w) const override { rng_.save(w); }
    void load(snap::SnapReader &r) override { rng_.load(r); }

  private:
    std::size_t ways_;
    Rng rng_;
};

/**
 * Tree pseudo-LRU: one bit per internal node of a binary tree over
 * the ways. Requires a power-of-two way count; falls back to LRU for
 * other geometries (callers get told via makePolicy's choice).
 */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    TreePlruPolicy(std::size_t sets, std::size_t ways)
        : ways_(ways), bits_(sets * (ways - 1), 0)
    {
    }

    void
    touch(std::size_t set, std::size_t way) override
    {
        // Walk from root to the leaf, pointing each node away from
        // the touched way.
        char *tree = treeFor(set);
        std::size_t node = 0;
        std::size_t lo = 0, hi = ways_;
        while (hi - lo > 1) {
            const std::size_t mid = lo + (hi - lo) / 2;
            const bool right = way >= mid;
            tree[node] = !right; // point away from the used half
            node = 2 * node + (right ? 2 : 1);
            if (right)
                lo = mid;
            else
                hi = mid;
        }
    }

    void
    fill(std::size_t set, std::size_t way) override
    {
        touch(set, way);
    }

    std::size_t
    victim(std::size_t set) override
    {
        char *tree = treeFor(set);
        std::size_t node = 0;
        std::size_t lo = 0, hi = ways_;
        while (hi - lo > 1) {
            const std::size_t mid = lo + (hi - lo) / 2;
            const bool right = tree[node];
            node = 2 * node + (right ? 2 : 1);
            if (right)
                lo = mid;
            else
                hi = mid;
        }
        return lo;
    }

    void
    reset() override
    {
        std::fill(bits_.begin(), bits_.end(), 0);
    }

    void save(snap::SnapWriter &w) const override
    {
        w.putTag("plru");
        w.put64(bits_.size());
        for (char bit : bits_)
            w.putBool(bit != 0);
    }

    void load(snap::SnapReader &r) override
    {
        r.expectTag("plru");
        const u64 count = r.getCount();
        if (count != bits_.size())
            SASOS_FATAL("corrupt snapshot: plru state carries ", count,
                        " bits, this geometry has ", bits_.size());
        for (auto &bit : bits_)
            bit = r.getBool() ? 1 : 0;
    }

  private:
    char *treeFor(std::size_t set) { return &bits_[set * (ways_ - 1)]; }

    std::size_t ways_;
    std::vector<char> bits_;
};

} // namespace

const char *
toString(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru:
        return "lru";
      case PolicyKind::Fifo:
        return "fifo";
      case PolicyKind::Random:
        return "random";
      case PolicyKind::TreePlru:
        return "plru";
    }
    return "?";
}

PolicyKind
parsePolicyKind(const std::string &name)
{
    if (name == "lru")
        return PolicyKind::Lru;
    if (name == "fifo")
        return PolicyKind::Fifo;
    if (name == "random")
        return PolicyKind::Random;
    if (name == "plru")
        return PolicyKind::TreePlru;
    SASOS_FATAL("unknown replacement policy '", name, "'");
}

std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, std::size_t sets, std::size_t ways, u64 seed)
{
    SASOS_ASSERT(sets > 0 && ways > 0, "degenerate geometry");
    switch (kind) {
      case PolicyKind::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
      case PolicyKind::Fifo:
        return std::make_unique<FifoPolicy>(sets, ways);
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(ways, seed);
      case PolicyKind::TreePlru:
        if ((ways & (ways - 1)) != 0 || ways == 1)
            return std::make_unique<LruPolicy>(sets, ways);
        return std::make_unique<TreePlruPolicy>(sets, ways);
    }
    SASOS_PANIC("unreachable");
}

} // namespace sasos::hw
