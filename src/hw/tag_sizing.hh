/**
 * @file
 * Analytic SRAM geometry for the paper's sizing arguments.
 *
 * Reproduces three artifacts:
 *
 *  - Figure 1 field widths: a fully associative PLB with 64-bit
 *    addresses and 4 KB pages tags entries with a 52-bit VPN, a
 *    16-bit PD-ID and a 3-bit rights field.
 *  - Section 3.2.1: with 64-bit virtual addresses, 36-bit physical
 *    addresses and 32-byte lines, a virtually tagged cache is about
 *    10% larger than a physically tagged one.
 *  - Section 4: PLB entries are about 25% smaller than page-group
 *    TLB entries because they carry no translation, so the same
 *    silicon holds more of them.
 */

#ifndef SASOS_HW_TAG_SIZING_HH
#define SASOS_HW_TAG_SIZING_HH

#include <string>
#include <vector>

#include "sim/types.hh"
#include "vm/address.hh"

namespace sasos::hw::sizing
{

/** One named bit-field of a structure entry. */
struct Field
{
    std::string name;
    u64 bits = 0;
};

/** A structure entry broken into fields. */
struct EntryLayout
{
    std::vector<Field> fields;

    u64 totalBits() const;
    /** Lookup a field width by name; 0 if absent. */
    u64 bitsOf(const std::string &name) const;
};

/** Parameters shared by the entry layouts. */
struct SizingParams
{
    int vaBits = vm::kVaBits;
    int paBits = vm::kPaBits;
    int pageShift = vm::kPageShift;
    int pdidBits = 16;
    int aidBits = 16;
    int asidBits = 16;
    int rightsBits = 3;
    /** Sets in the structure; tag omits index bits when > 1. */
    u64 sets = 1;
};

/** PLB entry: VPN tag + PD-ID + rights (Figure 1). */
EntryLayout plbEntry(const SizingParams &p);

/** Page-group TLB entry: VPN tag + PFN + AID + rights + dirty/ref. */
EntryLayout pageGroupTlbEntry(const SizingParams &p);

/** Translation-only TLB entry: VPN tag + PFN + dirty/ref. */
EntryLayout translationTlbEntry(const SizingParams &p);

/** Conventional TLB entry: VPN tag + ASID + PFN + rights + dirty/ref. */
EntryLayout conventionalTlbEntry(const SizingParams &p);

/** How a data cache line is tagged. */
enum class Tagging
{
    Virtual,
    Physical,
};

/** Data cache geometry for bit accounting. */
struct CacheSizing
{
    u64 sizeBytes = 64 * 1024;
    u32 lineBytes = 32;
    u32 ways = 1;
    int vaBits = vm::kVaBits;
    int paBits = vm::kPaBits;
    /** valid + dirty. */
    u32 stateBitsPerLine = 2;
};

/** Bits in one line (data + tag + state) under a tagging scheme. */
u64 cacheLineBits(const CacheSizing &c, Tagging tagging);

/** Total SRAM bits of the cache under a tagging scheme. */
u64 cacheTotalBits(const CacheSizing &c, Tagging tagging);

/**
 * Relative size of a virtually tagged cache vs a physically tagged
 * one, e.g. 1.10 for the paper's example parameters.
 */
double virtualTagOverhead(const CacheSizing &c);

/**
 * Entries of layout `entry` that fit in the silicon occupied by
 * `reference_entries` entries of layout `reference` (the "more PLB
 * entries in the same space" argument).
 */
u64 entriesInSameArea(const EntryLayout &entry, const EntryLayout &reference,
                      u64 reference_entries);

} // namespace sasos::hw::sizing

#endif // SASOS_HW_TAG_SIZING_HH
