/**
 * @file
 * The per-domain key-permission register file of the protection-key
 * model (MPK style; Achermann et al., "Separating Translation from
 * Protection in Address Spaces with Dynamic Remapping").
 *
 * Pages carry a small key id in their TLB entry; the rights a domain
 * holds for a key live here, in a bounded file of (domain, key) ->
 * rights registers. A protection change flips the one register for
 * the affected (domain, key) pair instead of walking per-page state --
 * the decoupling of protection from translation the paper argues for
 * in Section 4, taken to its register-file extreme.
 *
 * Entries survive domain switches (the file is tagged by domain, like
 * ASIDs), so a switch costs one register write, not a flush. The file
 * is bounded: when the kernel recycles a key id, every register and
 * TLB entry carrying the retired key must be dropped on this cache's
 * side (KeyCache::invalidateKey) before the id is rebound.
 */

#ifndef SASOS_HW_KEY_CACHE_HH
#define SASOS_HW_KEY_CACHE_HH

#include <optional>

#include "hw/assoc_cache.hh"
#include "hw/tlb.hh" // DomainId, GroupId
#include "sim/random.hh"
#include "sim/stats.hh"
#include "vm/rights.hh"

namespace sasos::hw
{

/** Identifies a protection key (carried in TlbEntry::aid). */
using KeyId = GroupId;

/** Geometry of the key-permission register file. */
struct KeyCacheConfig
{
    std::size_t entries = 64;
    PolicyKind policy = PolicyKind::Lru;
    u64 seed = 1;
};

/** One key-permission register's payload. */
struct KeyPerm
{
    vm::Access rights = vm::Access::None;
};

/** Fully associative file of (domain, key) -> rights registers. */
class KeyCache
{
  public:
    KeyCache(const KeyCacheConfig &config, stats::Group *parent);

    const KeyCacheConfig &config() const { return config_; }

    /**
     * Look up the rights a domain holds for a key.
     * @param loc filled with the hit's array location when non-null,
     *            for touchHit() replay on coalesced runs.
     * @return rights on hit, nullopt on miss. Counts stats.
     */
    std::optional<vm::Access> lookup(DomainId domain, KeyId key,
                                     AssocLoc *loc = nullptr);

    /**
     * Replay the replacement touch of a remembered hit, exactly as
     * lookup() would. The caller guarantees the entry is still live
     * (any insert or purge since invalidates the remembered loc).
     */
    void touchHit(const AssocLoc &loc) { array_.touch(loc); }

    /** Probe without stats/replacement updates. */
    std::optional<vm::Access> peek(DomainId domain, KeyId key) const;

    /** Install a register (evicting as configured). */
    void insert(DomainId domain, KeyId key, vm::Access rights);

    /**
     * The headline operation: flip one cached register's rights in
     * place, without touching any per-page state.
     * @return true if the register was cached (and flipped).
     */
    bool updateRights(DomainId domain, KeyId key, vm::Access rights);

    /** Drop one (domain, key) register. @return true if present. */
    bool remove(DomainId domain, KeyId key);

    /** Drop every domain's register for a key (key recycling).
     * @return scan/invalidate tally for cost charging. */
    PurgeResult invalidateKey(KeyId key);

    /** Drop every register a domain holds (domain destruction). */
    PurgeResult purgeDomain(DomainId domain);

    /** Flash-invalidate. @return entries dropped. */
    u64 purgeAll();

    /**
     * Fault injection: drop one register chosen by `rng`; rights are
     * rederived from canonical state on the next miss.
     * @return true if an entry was dropped (false when empty).
     */
    bool evictOne(Rng &rng);

    std::size_t occupancy() const { return array_.occupancy(); }
    std::size_t capacity() const { return array_.capacity(); }

    /** @name Snapshot hooks */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar lookups;
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar insertions;
    stats::Scalar evictions;
    stats::Scalar flips;
    stats::Scalar injectedEvictions;
    /// @}

  private:
    struct Key
    {
        DomainId domain = 0;
        KeyId key = 0;

        bool operator==(const Key &) const = default;
    };

    KeyCacheConfig config_;
    AssocCache<Key, KeyPerm> array_;
};

} // namespace sasos::hw

#endif // SASOS_HW_KEY_CACHE_HH
