#include "hw/key_cache.hh"

namespace sasos::hw
{

KeyCache::KeyCache(const KeyCacheConfig &config, stats::Group *parent)
    : statsGroup(parent, "keycache"),
      lookups(&statsGroup, "lookups", "key-permission register reads"),
      hits(&statsGroup, "hits", "reads that matched a register"),
      misses(&statsGroup, "misses", "reads that missed"),
      insertions(&statsGroup, "insertions", "registers installed"),
      evictions(&statsGroup, "evictions", "valid registers evicted"),
      flips(&statsGroup, "flips", "registers flipped in place"),
      injectedEvictions(&statsGroup, "injectedEvictions",
                        "registers dropped by fault injection"),
      config_(config),
      array_(1, config.entries, config.policy, config.seed)
{
}

std::optional<vm::Access>
KeyCache::lookup(DomainId domain, KeyId key, AssocLoc *loc)
{
    ++lookups;
    KeyPerm *perm = array_.lookup(0, Key{domain, key}, loc);
    if (perm == nullptr) {
        ++misses;
        return std::nullopt;
    }
    ++hits;
    return perm->rights;
}

std::optional<vm::Access>
KeyCache::peek(DomainId domain, KeyId key) const
{
    const KeyPerm *perm = array_.probe(0, Key{domain, key});
    if (perm == nullptr)
        return std::nullopt;
    return perm->rights;
}

void
KeyCache::insert(DomainId domain, KeyId key, vm::Access rights)
{
    KeyPerm *existing = array_.probe(0, Key{domain, key});
    if (existing != nullptr) {
        existing->rights = rights;
        return;
    }
    ++insertions;
    if (array_.insert(0, Key{domain, key}, KeyPerm{rights}))
        ++evictions;
}

bool
KeyCache::updateRights(DomainId domain, KeyId key, vm::Access rights)
{
    KeyPerm *perm = array_.probe(0, Key{domain, key});
    if (perm == nullptr)
        return false;
    perm->rights = rights;
    ++flips;
    return true;
}

bool
KeyCache::remove(DomainId domain, KeyId key)
{
    return array_.invalidate(0, Key{domain, key});
}

PurgeResult
KeyCache::invalidateKey(KeyId key)
{
    return array_.invalidateIf(
        [key](const Key &k, const KeyPerm &) { return k.key == key; });
}

PurgeResult
KeyCache::purgeDomain(DomainId domain)
{
    return array_.invalidateIf([domain](const Key &k, const KeyPerm &) {
        return k.domain == domain;
    });
}

u64
KeyCache::purgeAll()
{
    return array_.invalidateAll();
}

bool
KeyCache::evictOne(Rng &rng)
{
    const std::size_t live = array_.occupancy();
    if (live == 0)
        return false;
    array_.invalidateNth(static_cast<std::size_t>(rng.nextBelow(live)));
    ++injectedEvictions;
    return true;
}

void
KeyCache::save(snap::SnapWriter &w) const
{
    w.putTag("keycache");
    array_.save(
        w,
        [](snap::SnapWriter &out, const Key &key) {
            out.put16(key.domain);
            out.put16(key.key);
        },
        [](snap::SnapWriter &out, const KeyPerm &perm) {
            out.put8(static_cast<u8>(perm.rights));
        });
}

void
KeyCache::load(snap::SnapReader &r)
{
    r.expectTag("keycache");
    array_.load(
        r,
        [](snap::SnapReader &in) {
            Key key;
            key.domain = in.get16();
            key.key = in.get16();
            return key;
        },
        [](snap::SnapReader &in) {
            KeyPerm perm;
            const u8 rights = in.get8();
            if (rights > static_cast<u8>(vm::Access::All))
                SASOS_FATAL("corrupt snapshot: invalid rights byte ",
                            static_cast<unsigned>(rights));
            perm.rights = static_cast<vm::Access>(rights);
            return perm;
        });
}

} // namespace sasos::hw
