/**
 * @file
 * The single address space kernel model (Opal-like).
 *
 * The kernel owns the canonical protection and translation state
 * (VmState) and drives exactly one ProtectionModel: every public
 * operation updates the canonical tables, charges its trap and
 * software costs, and invokes the model's maintenance hooks so the
 * hardware structures track the change. Protection faults are
 * reflected to user-level segment servers; translation faults are
 * satisfied by demand-zero mapping or by the paging server.
 *
 * Public operations model system calls (they charge a kernel trap);
 * servers running inside a fault handler use the do*() forms exposed
 * through handler context to avoid double-charging.
 */

#ifndef SASOS_OS_KERNEL_HH
#define SASOS_OS_KERNEL_HH

#include <set>
#include <unordered_map>

#include "os/protection_model.hh"
#include "os/segment_server.hh"
#include "os/vm_state.hh"
#include "sim/cost_model.hh"
#include "sim/cycle_account.hh"
#include "sim/stats.hh"

namespace sasos::os
{

class Pager;

/** The kernel: canonical state plus one protection model. */
class Kernel
{
  public:
    Kernel(VmState &state, ProtectionModel &model, const CostModel &costs,
           CycleAccount &account, stats::Group *parent);

    /** @name Protection domains */
    /// @{
    DomainId createDomain(std::string name);
    void destroyDomain(DomainId domain);
    DomainId currentDomain() const { return current_; }
    /** Switch the processor to another domain (RPC, scheduling). */
    void switchTo(DomainId domain);
    /// @}

    /** @name Virtual segments */
    /// @{
    vm::SegmentId createSegment(std::string name, u64 pages,
                                bool pow2_align = true);
    void destroySegment(vm::SegmentId seg);
    /** Grant a domain segment-level rights (Table 1: Attach). */
    void attach(DomainId domain, vm::SegmentId seg, vm::Access rights);
    /** Revoke a domain's grant (Table 1: Detach). */
    void detach(DomainId domain, vm::SegmentId seg);
    /** Register the user-level server for a segment's faults. */
    void setSegmentServer(vm::SegmentId seg, SegmentServer *server);
    /**
     * μFork-style copy-on-write fork of a segment: creates a same-size
     * segment, attaches `child` to it with `rights`, and shares every
     * mapped source frame (refcounted) instead of copying. Both ends
     * of each shared pair are write-protected through the page-mask
     * layer; the first store to either side takes a protection fault
     * that resolveCow() turns into a private copy (or a reuse when the
     * store hits the last sharer). Unmapped source pages stay unmapped
     * and demand-zero in the child on first touch.
     * @return the new (child) segment id.
     */
    vm::SegmentId forkSegmentCow(vm::SegmentId src, DomainId child,
                                 vm::Access rights, std::string name);
    /** True while a page awaits its copy-on-write resolution. */
    bool isCowProtected(vm::Vpn vpn) const;
    /// @}

    /** @name Rights manipulation (Table 1 applications) */
    /// @{
    /** Set one domain's rights to one page (page override). */
    void setPageRights(DomainId domain, vm::Vpn vpn, vm::Access rights);
    /** Drop the override; the segment grant applies again. */
    void clearPageRights(DomainId domain, vm::Vpn vpn);
    /** Restrict every domain to at most `mask` on a page (the
     * paging-operation exclusion; `exempt` bypasses, e.g. the paging
     * server). */
    void restrictPage(vm::Vpn vpn, vm::Access mask, DomainId exempt = 0);
    /** Lift the restriction. */
    void unrestrictPage(vm::Vpn vpn);
    /** Replace a domain's segment-level grant. */
    void setSegmentRights(DomainId domain, vm::SegmentId seg,
                          vm::Access rights);
    /// @}

    /** @name Mapping and paging */
    /// @{
    bool isMapped(vm::Vpn vpn) const;
    /** Allocate a frame and install the unique translation. */
    void mapPage(vm::Vpn vpn);
    /** Remove translation: purge TLBs, flush caches, free the frame. */
    void unmapPage(vm::Vpn vpn);
    void markOnDisk(vm::Vpn vpn);
    void clearOnDisk(vm::Vpn vpn);
    bool isOnDisk(vm::Vpn vpn) const;
    /** Register the paging server used for on-disk pages and frame
     * pressure. */
    void setPager(Pager *pager) { pager_ = pager; }
    Pager *pager() const { return pager_; }
    /// @}

    /** @name Fault handling (called by the machine's access loop) */
    /// @{
    /**
     * Hardware denied a reference. Repairs stale hardware state, or
     * upcalls the segment server. @return true to retry.
     */
    bool handleProtectionFault(DomainId domain, vm::VAddr va,
                               vm::AccessType type);
    /**
     * No translation for the page. Demand-zero maps or pages in.
     * @return true to retry.
     */
    bool handleTranslationFault(DomainId domain, vm::VAddr va,
                                vm::AccessType type);
    /// @}

    /** Canonical (software-truth) rights of a domain on a page. */
    vm::Access canonicalRights(DomainId domain, vm::Vpn vpn) const;

    /** Charge cycles to the simulation account. */
    void charge(CostCategory category, Cycles cycles);

    VmState &state() { return state_; }
    const VmState &state() const { return state_; }
    ProtectionModel &model() { return model_; }
    const CostModel &costs() const { return costs_; }
    CycleAccount &account() { return account_; }

    /** @name Snapshot hooks
     * Serializes the current domain, the on-disk page set and the
     * CoW-pending page set; the
     * referenced VmState/model/account snapshot separately. Segment
     * server and pager registrations are runtime wiring, re-done by
     * the owner after load. */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar domainSwitches;
    stats::Scalar attaches;
    stats::Scalar detaches;
    stats::Scalar rightsChanges;
    stats::Scalar protectionFaults;
    stats::Scalar translationFaults;
    stats::Scalar staleFaults;
    stats::Scalar serverUpcalls;
    stats::Scalar exceptions;
    stats::Scalar demandMaps;
    stats::Scalar unmaps;
    /** Faults resolved so the reference retries (stale-state repairs,
     * server grants, demand maps, page-ins) -- under fault injection,
     * the recovery work the engine forced. */
    stats::Scalar faultRetries;
    /** @name Copy-on-write fork */
    /// @{
    stats::Scalar forks;
    stats::Scalar cowFaults;
    /** CoW faults resolved by copying to a private frame. */
    stats::Scalar cowCopies;
    /** CoW faults where the store hit the last sharer (no copy). */
    stats::Scalar cowReuses;
    /// @}
    /// @}

  private:
    void chargeTrap();

    /** Allocate a frame, looping pager evictions under pressure (an
     * eviction of a CoW-shared page drops a reference without freeing
     * the frame, so one eviction is not always enough). */
    vm::Pfn allocateFrame();

    /** Write-protect a page pending CoW resolution. */
    void protectCowPage(vm::Vpn vpn);

    /** First store to a CoW page: privatize the frame (copy or
     * last-sharer reuse) and lift the write protection. */
    void resolveCow(vm::Vpn vpn);

    VmState &state_;
    ProtectionModel &model_;
    const CostModel &costs_;
    CycleAccount &account_;

    DomainId current_ = 0;
    std::unordered_map<vm::SegmentId, SegmentServer *> servers_;
    std::set<vm::Vpn> onDisk_;
    /** Pages write-protected pending copy-on-write resolution. */
    std::set<vm::Vpn> cowPages_;
    Pager *pager_ = nullptr;
};

} // namespace sasos::os

#endif // SASOS_OS_KERNEL_HH
