/**
 * @file
 * OS management of PA-RISC style page-groups.
 *
 * Under the page-group model a page belongs to exactly one group, a
 * domain is the set of groups it may access, and a page has a single
 * Rights field shared by all domains (with the per-domain D bit able
 * to disable writes group-wide). The kernel's canonical protection
 * state, however, is per-(domain, page). This manager derives a
 * grouping from the canonical state:
 *
 *  - pages of a segment whose rights vector equals the segment's
 *    default vector (the attach grants) share the segment's default
 *    group -- attach/detach stay O(1), the paper's headline advantage;
 *  - pages whose vector diverges (per-page overrides, paging masks)
 *    move to groups keyed by their exact rights vector -- the paper's
 *    group *splitting* (Section 4.1.2);
 *  - vectors not expressible as one (Rights, D-bit) combination (e.g.
 *    one domain read-only, another write-only) get a group favoring
 *    one domain; the others take faults and the page hops groups,
 *    reproducing the paper's alternation pathology.
 *
 * The manager is pure bookkeeping: the page-group hardware model owns
 * the TLB/PID-cache manipulation and charges the costs.
 */

#ifndef SASOS_OS_PAGE_GROUP_MANAGER_HH
#define SASOS_OS_PAGE_GROUP_MANAGER_HH

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "os/vm_state.hh"
#include "sim/stats.hh"

namespace sasos::os
{

using hw::GroupId;

/**
 * The group of pages no domain may access (e.g. during paging).
 * Never allocated to a segment; membership checks always fail.
 */
constexpr GroupId kNullGroup = 0xFFFF;

/** What the page-group TLB entry for a page should contain. */
struct PageGroupState
{
    GroupId aid = hw::kGlobalGroup;
    vm::Access rights = vm::Access::None;

    bool operator==(const PageGroupState &) const = default;
};

/** Derives and tracks the page -> group assignment. */
class PageGroupManager
{
  public:
    PageGroupManager(VmState &state, stats::Group *parent);

    /** @name Segment lifecycle */
    /// @{
    void registerSegment(vm::SegmentId seg);
    void releaseSegment(vm::SegmentId seg);
    /// @}

    /** The default group of a segment (creating it on first use). */
    GroupId defaultGroupOf(vm::SegmentId seg);

    /** The Rights field pages of the default group carry right now
     * (the expressible union of the attach grants). */
    vm::Access defaultRightsOf(vm::SegmentId seg) const;

    /**
     * The (group, rights) the page's TLB entry should carry right
     * now, deriving (and caching) from canonical state on first use.
     */
    PageGroupState pageState(vm::Vpn vpn);

    /**
     * Recompute a page's group after a canonical rights change.
     * @return the new state; callers compare with the previous state
     *         to decide whether hardware needs a group move.
     */
    PageGroupState regroupPage(vm::Vpn vpn);

    /**
     * Recompute favoring `domain` when the page's vector is not
     * expressible as a single group: the chosen representative
     * rights are the favored domain's, and only conforming domains
     * become members. Counts an alternation when this displaces a
     * previously favored domain.
     */
    PageGroupState regroupPageFor(vm::Vpn vpn, DomainId domain);

    /** @name Membership (derived from group records) */
    /// @{
    bool domainHasGroup(DomainId domain, GroupId aid) const;
    bool writeDisabled(DomainId domain, GroupId aid) const;
    /** All groups a domain can currently access, for eager reload. */
    std::vector<GroupId> groupsOf(DomainId domain) const;
    /** Groups carved out of one segment (default + splits). */
    std::vector<GroupId> groupsOfSegment(vm::SegmentId seg) const;

    /** Pages in [first, first+pages) currently assigned away from
     * their segment's default group. Segment-wide rights changes must
     * regroup these as well as pages with canonical per-page state
     * (a fault-driven favored group can hold stateless pages). */
    std::vector<vm::Vpn> assignedPagesIn(vm::Vpn first, u64 pages) const;
    /// @}

    /**
     * Hardware-semantic rights of a domain on a page: the page's
     * group Rights field, minus Write if the domain's D bit is set,
     * and None if the domain is not a member of the group.
     */
    vm::Access hwRights(DomainId domain, vm::Vpn vpn);

    /**
     * Invalidate the membership caches after attach/detach or
     * segment-rights changes (default vectors changed).
     */
    void invalidateSegmentDefaults(vm::SegmentId seg);

    /** Live (allocated) group count. */
    std::size_t liveGroups() const { return groups_.size(); }

    /** @name Snapshot hooks
     * The full derived grouping is serialized (AID recycling order
     * included) so restored runs regroup identically; byKey_ is
     * rebuilt from the group records. The onGroupFreed callback is
     * runtime wiring, re-set by the owning model. */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /**
     * Invoked whenever a group is freed (its AID may be recycled).
     * The hardware model uses this to evict the stale PID from the
     * page-group cache.
     */
    std::function<void(GroupId)> onGroupFreed;

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar groupsCreated;
    stats::Scalar groupsFreed;
    stats::Scalar pageMoves;
    stats::Scalar splits;
    stats::Scalar inexpressible;
    stats::Scalar alternations;
    /// @}

  private:
    /** Canonical group identity: the segment it is carved from, the
     * exact rights vector it encodes, and the representative rights
     * (which differ from the vector when inexpressible). */
    struct GroupKey
    {
        vm::SegmentId segment = vm::kInvalidSegment;
        RightsVector vector;
        u8 rights = 0;

        bool
        operator<(const GroupKey &other) const
        {
            if (segment != other.segment)
                return segment < other.segment;
            if (rights != other.rights)
                return rights < other.rights;
            return vector < other.vector;
        }
    };

    struct GroupInfo
    {
        vm::SegmentId segment = vm::kInvalidSegment;
        /** Group-wide Rights field. */
        vm::Access rights = vm::Access::None;
        /** Members and their D bits. */
        std::map<DomainId, bool> members;
        /** Pages currently assigned (default groups track only
         * explicitly reassigned counts and may be zero). */
        u64 pageCount = 0;
        bool isDefault = false;
        /** False when the group under-approximates its vector. */
        bool exact = true;
        std::optional<GroupKey> key;
    };

    /** Representative rights + membership for a vector. */
    struct Expressed
    {
        vm::Access rights = vm::Access::None;
        std::map<DomainId, bool> members;
        bool exact = false; // every domain in the vector is a member
    };

    static Expressed expressVector(const RightsVector &vector,
                                   std::optional<DomainId> favored);

    GroupId allocateAid();
    void freeGroup(GroupId aid);
    GroupId findOrCreateGroup(vm::SegmentId seg, const GroupKey &key,
                              const Expressed &expressed);
    PageGroupState assignPage(vm::Vpn vpn, std::optional<DomainId> favored);
    void dropAssignment(vm::Vpn vpn);

    VmState &state_;
    GroupId nextAid_ = 1;
    std::vector<GroupId> freeAids_;
    std::map<GroupId, GroupInfo> groups_;
    std::map<vm::SegmentId, GroupId> defaultGroups_;
    std::map<GroupKey, GroupId> byKey_;
    /** Pages assigned away from their segment's default group. */
    std::map<vm::Vpn, PageGroupState> assignments_;
    /** domain -> non-default groups it belongs to. */
    std::map<DomainId, std::set<GroupId>> domainGroups_;
};

} // namespace sasos::os

#endif // SASOS_OS_PAGE_GROUP_MANAGER_HH
