#include "os/kernel.hh"

#include "obs/tracer.hh"
#include "os/pager.hh"
#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::os
{

Kernel::Kernel(VmState &state, ProtectionModel &model,
               const CostModel &costs, CycleAccount &account,
               stats::Group *parent)
    : statsGroup(parent, "kernel"),
      domainSwitches(&statsGroup, "domainSwitches",
                     "protection domain switches"),
      attaches(&statsGroup, "attaches", "segment attach operations"),
      detaches(&statsGroup, "detaches", "segment detach operations"),
      rightsChanges(&statsGroup, "rightsChanges",
                    "protection manipulation operations"),
      protectionFaults(&statsGroup, "protectionFaults",
                       "protection faults taken"),
      translationFaults(&statsGroup, "translationFaults",
                        "translation faults taken"),
      staleFaults(&statsGroup, "staleFaults",
                  "faults caused by stale hardware state"),
      serverUpcalls(&statsGroup, "serverUpcalls",
                    "segment-server upcalls"),
      exceptions(&statsGroup, "exceptions",
                 "faults delivered as exceptions"),
      demandMaps(&statsGroup, "demandMaps", "demand-zero page mappings"),
      unmaps(&statsGroup, "unmaps", "pages unmapped"),
      faultRetries(&statsGroup, "faultRetries",
                   "faults resolved so the reference retries"),
      forks(&statsGroup, "forks", "copy-on-write segment forks"),
      cowFaults(&statsGroup, "cowFaults",
                "stores faulted on CoW-protected pages"),
      cowCopies(&statsGroup, "cowCopies",
                "CoW faults resolved by a private copy"),
      cowReuses(&statsGroup, "cowReuses",
                "CoW faults resolved in place (last sharer)"),
      state_(state), model_(model), costs_(costs), account_(account)
{
}

void
Kernel::charge(CostCategory category, Cycles cycles)
{
    account_.charge(category, cycles);
}

void
Kernel::chargeTrap()
{
    charge(CostCategory::Trap, costs_.kernelTrap);
}

DomainId
Kernel::createDomain(std::string name)
{
    chargeTrap();
    Domain &domain = state_.createDomain(std::move(name));
    if (current_ == 0)
        current_ = domain.id;
    return domain.id;
}

void
Kernel::destroyDomain(DomainId domain)
{
    chargeTrap();
    SASOS_ASSERT(domain != current_, "destroying the running domain");
    model_.onDomainDestroyed(domain);
    state_.destroyDomain(domain);
}

void
Kernel::switchTo(DomainId domain)
{
    if (domain == current_)
        return;
    ++domainSwitches;
    SASOS_OBS_EVENT(obs::EventKind::DomainSwitch,
                    account_.total().count(), current_, domain);
    charge(CostCategory::DomainSwitch, costs_.domainSwitchBase);
    const DomainId from = current_;
    current_ = domain;
    model_.onDomainSwitch(from, domain);
}

vm::SegmentId
Kernel::createSegment(std::string name, u64 pages, bool pow2_align)
{
    chargeTrap();
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    return state_.segments.create(std::move(name), pages, pow2_align);
}

void
Kernel::destroySegment(vm::SegmentId seg)
{
    chargeTrap();
    const vm::Segment *segment = state_.segments.find(seg);
    if (segment == nullptr)
        SASOS_FATAL("destroying unknown segment ", seg);
    // Unmap any mapped pages (flushing caches and purging TLBs).
    for (u64 i = 0; i < segment->pages; ++i) {
        const vm::Vpn vpn(segment->firstPage.number() + i);
        if (state_.pageTable.isMapped(vpn))
            unmapPage(vpn);
        onDisk_.erase(vpn);
        state_.clearPageMask(vpn);
    }
    // Detach every domain still attached.
    const std::set<DomainId> attached = state_.attachedDomains(seg);
    for (DomainId d : attached) {
        Domain &domain = state_.domain(d);
        domain.prot.detachSegment(*segment);
        state_.noteDetached(d, seg);
    }
    state_.forgetOverridesIn(segment->firstPage, segment->pages,
                             std::nullopt);
    model_.onSegmentDestroyed(*segment);
    servers_.erase(seg);
    state_.segments.destroy(seg);
}

void
Kernel::attach(DomainId domain, vm::SegmentId seg, vm::Access rights)
{
    chargeTrap();
    ++attaches;
    const vm::Segment *segment = state_.segments.find(seg);
    if (segment == nullptr)
        SASOS_FATAL("attaching unknown segment ", seg);
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    Domain &d = state_.domain(domain);
    if (d.prot.isAttached(seg)) {
        // Re-attach: semantically a grant replacement. The hardware
        // may hold entries with the old rights, so this takes the
        // (costlier) segment-rights-change path, not the O(1) attach.
        d.prot.setSegmentRights(seg, rights);
        model_.onSetSegmentRights(domain, *segment, rights);
        return;
    }
    d.prot.attachSegment(seg, rights);
    state_.noteAttached(domain, seg);
    model_.onAttach(domain, *segment, rights);
}

void
Kernel::detach(DomainId domain, vm::SegmentId seg)
{
    chargeTrap();
    ++detaches;
    const vm::Segment *segment = state_.segments.find(seg);
    if (segment == nullptr)
        SASOS_FATAL("detaching unknown segment ", seg);
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    state_.domain(domain).prot.detachSegment(*segment);
    state_.noteDetached(domain, seg);
    // The model sees the override index before it is pruned, so pages
    // whose only override belonged to this domain still regroup.
    model_.onDetach(domain, *segment);
    state_.forgetOverridesIn(segment->firstPage, segment->pages, domain);
}

void
Kernel::setSegmentServer(vm::SegmentId seg, SegmentServer *server)
{
    if (server == nullptr)
        servers_.erase(seg);
    else
        servers_[seg] = server;
}

vm::SegmentId
Kernel::forkSegmentCow(vm::SegmentId src, DomainId child,
                       vm::Access rights, std::string name)
{
    chargeTrap();
    ++forks;
    const vm::Segment *source = state_.segments.find(src);
    if (source == nullptr)
        SASOS_FATAL("forking unknown segment ", src);
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    const vm::SegmentId dst =
        state_.segments.create(std::move(name), source->pages, true);
    // segments.create may rehash; re-find both ends.
    source = state_.segments.find(src);
    const vm::Segment *dest = state_.segments.find(dst);
    SASOS_ASSERT(source != nullptr && dest != nullptr,
                 "fork lost its segments");
    // Attach the child to its copy (inline: the fork is one trap).
    ++attaches;
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    Domain &d = state_.domain(child);
    d.prot.attachSegment(dst, rights);
    state_.noteAttached(child, dst);
    model_.onAttach(child, *dest, rights);
    // Share every mapped source frame instead of copying it; both
    // ends of a pair are write-protected until a store resolves them.
    for (u64 i = 0; i < source->pages; ++i) {
        const vm::Vpn svpn(source->firstPage.number() + i);
        const vm::Translation *t = state_.pageTable.lookup(svpn);
        if (t == nullptr)
            continue; // untouched or on disk: child demand-zeros
        const vm::Vpn dvpn(dest->firstPage.number() + i);
        const vm::Pfn pfn = t->pfn;
        state_.frameAllocator.ref(pfn);
        charge(CostCategory::KernelWork, costs_.tableUpdate);
        state_.pageTable.mapShared(dvpn, pfn);
        model_.onPageMapped(dvpn, pfn);
        protectCowPage(svpn);
        protectCowPage(dvpn);
    }
    return dst;
}

bool
Kernel::isCowProtected(vm::Vpn vpn) const
{
    return cowPages_.count(vpn) != 0;
}

void
Kernel::protectCowPage(vm::Vpn vpn)
{
    if (!cowPages_.insert(vpn).second)
        return; // already protected by an earlier fork
    // The mask layer is single-slot: a CoW fork takes it over (any
    // paging-era restriction is superseded; resolveCow clears it).
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    state_.setPageMask(vpn, vm::Access::ReadExecute);
    model_.onSetPageRightsAllDomains(vpn, vm::Access::ReadExecute);
}

void
Kernel::resolveCow(vm::Vpn vpn)
{
    ++cowFaults;
    const vm::Translation *t = state_.pageTable.lookup(vpn);
    SASOS_ASSERT(t != nullptr, "CoW fault on unmapped page ",
                 vpn.number());
    const vm::Pfn shared = t->pfn;
    if (state_.frameAllocator.refCount(shared) > 1) {
        // Still shared: move this mapping to a private copy.
        model_.onPageUnmapped(vpn, shared);
        state_.pageTable.unmap(vpn);
        state_.frameAllocator.unref(shared);
        const vm::Pfn copy = allocateFrame();
        state_.pageTable.map(vpn, copy);
        charge(CostCategory::KernelWork, costs_.pageCopy);
        model_.onPageMapped(vpn, copy);
        ++cowCopies;
    } else {
        // Last sharer: the frame is already private.
        ++cowReuses;
    }
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    cowPages_.erase(vpn);
    state_.clearPageMask(vpn);
    model_.onClearPageRightsAllDomains(vpn);
}

void
Kernel::setPageRights(DomainId domain, vm::Vpn vpn, vm::Access rights)
{
    ++rightsChanges;
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    state_.domain(domain).prot.setPageRights(vpn, rights);
    state_.notePageOverride(domain, vpn);
    model_.onSetPageRights(domain, vpn, rights);
}

void
Kernel::clearPageRights(DomainId domain, vm::Vpn vpn)
{
    ++rightsChanges;
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    Domain &d = state_.domain(domain);
    d.prot.clearPageRights(vpn);
    state_.notePageOverrideCleared(domain, vpn);
    // The hardware hears the post-clear canonical rights.
    model_.onSetPageRights(domain, vpn,
                           state_.effectiveRights(domain, vpn));
}

void
Kernel::restrictPage(vm::Vpn vpn, vm::Access mask, DomainId exempt)
{
    ++rightsChanges;
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    state_.setPageMask(vpn, mask, exempt);
    model_.onSetPageRightsAllDomains(vpn, mask);
}

void
Kernel::unrestrictPage(vm::Vpn vpn)
{
    ++rightsChanges;
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    if (cowPages_.count(vpn) != 0) {
        // The page still awaits CoW resolution: lifting a paging-era
        // restriction re-establishes the kernel-owned write
        // protection instead of exposing the shared frame.
        state_.setPageMask(vpn, vm::Access::ReadExecute);
        model_.onSetPageRightsAllDomains(vpn, vm::Access::ReadExecute);
        return;
    }
    state_.clearPageMask(vpn);
    model_.onClearPageRightsAllDomains(vpn);
}

void
Kernel::setSegmentRights(DomainId domain, vm::SegmentId seg,
                         vm::Access rights)
{
    ++rightsChanges;
    const vm::Segment *segment = state_.segments.find(seg);
    if (segment == nullptr)
        SASOS_FATAL("segment rights on unknown segment ", seg);
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    state_.domain(domain).prot.setSegmentRights(seg, rights);
    model_.onSetSegmentRights(domain, *segment, rights);
}

bool
Kernel::isMapped(vm::Vpn vpn) const
{
    return state_.pageTable.isMapped(vpn);
}

vm::Pfn
Kernel::allocateFrame()
{
    auto frame = state_.frameAllocator.allocate();
    if (frame)
        return *frame;
    SASOS_ASSERT(pager_ != nullptr, "out of physical memory with no pager");
    // Evicting a CoW-shared page only drops a reference, so it can
    // take several evictions before a frame actually frees.
    for (u64 i = 0; i < state_.frameAllocator.capacity() && !frame; ++i) {
        pager_->evictOne();
        frame = state_.frameAllocator.allocate();
    }
    SASOS_ASSERT(frame, "pager failed to free a frame");
    return *frame;
}

void
Kernel::mapPage(vm::Vpn vpn)
{
    const vm::Pfn frame = allocateFrame();
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    state_.pageTable.map(vpn, frame);
    model_.onPageMapped(vpn, frame);
}

void
Kernel::unmapPage(vm::Vpn vpn)
{
    const vm::Translation *translation = state_.pageTable.lookup(vpn);
    SASOS_ASSERT(translation != nullptr, "unmapping unmapped page ",
                 vpn.number());
    ++unmaps;
    const vm::Pfn pfn = translation->pfn;
    charge(CostCategory::KernelWork, costs_.tableUpdate);
    model_.onPageUnmapped(vpn, pfn);
    state_.pageTable.unmap(vpn);
    // A CoW-shared frame survives until its last mapper goes.
    state_.frameAllocator.unref(pfn);
    if (cowPages_.erase(vpn) != 0) {
        // The translation is gone, so the missing mapping protects
        // the page now; drop the CoW mask so a future re-map starts
        // clean.
        state_.clearPageMask(vpn);
        model_.onClearPageRightsAllDomains(vpn);
    }
}

void
Kernel::markOnDisk(vm::Vpn vpn)
{
    onDisk_.insert(vpn);
}

void
Kernel::clearOnDisk(vm::Vpn vpn)
{
    onDisk_.erase(vpn);
}

bool
Kernel::isOnDisk(vm::Vpn vpn) const
{
    return onDisk_.count(vpn) != 0;
}

bool
Kernel::handleProtectionFault(DomainId domain, vm::VAddr va,
                              vm::AccessType type)
{
    ++protectionFaults;
    SASOS_OBS_EVENT(obs::EventKind::ProtectionFault,
                    account_.total().count(), va.raw(), domain);
    chargeTrap();
    const vm::Vpn vpn = vm::pageOf(va);
    if (type == vm::AccessType::Store && cowPages_.count(vpn) != 0) {
        // A store against the CoW write protection. Legal iff the
        // domain's rights *without* the mask include Write -- then
        // this is the copy-on-write moment, not a real violation.
        const Domain *d = state_.findDomain(domain);
        const vm::Access unmasked =
            d == nullptr ? vm::Access::None
                         : d->prot.effectiveRights(vpn, state_.segments);
        if (vm::includes(unmasked, vm::Access::Write)) {
            resolveCow(vpn);
            ++faultRetries;
            SASOS_OBS_EVENT(obs::EventKind::FaultRetry,
                            account_.total().count(), va.raw(), domain);
            return true;
        }
    }
    const vm::Access canonical = state_.effectiveRights(domain, vpn);
    if (vm::includes(canonical, vm::requiredRight(type))) {
        // The kernel's tables grant the access; the hardware state
        // was stale (e.g. a page-group assignment must follow the
        // faulting domain). Repair and retry.
        ++staleFaults;
        if (model_.refreshAfterFault(domain, vpn)) {
            ++faultRetries;
            SASOS_OBS_EVENT(obs::EventKind::FaultRetry,
                            account_.total().count(), va.raw(), domain);
            return true;
        }
        ++exceptions;
        return false;
    }
    // Reflect to the segment's server, if any.
    const vm::Segment *segment = state_.segments.findByPage(vpn);
    if (segment != nullptr) {
        auto it = servers_.find(segment->id);
        if (it != servers_.end()) {
            ++serverUpcalls;
            charge(CostCategory::Upcall, costs_.serverUpcall);
            if (it->second->onProtectionFault(*this, domain, va, type)) {
                ++faultRetries;
                SASOS_OBS_EVENT(obs::EventKind::FaultRetry,
                                account_.total().count(), va.raw(),
                                domain);
                return true;
            }
        }
    }
    ++exceptions;
    return false;
}

bool
Kernel::handleTranslationFault(DomainId domain, vm::VAddr va,
                               vm::AccessType type)
{
    (void)domain;
    (void)type;
    ++translationFaults;
    SASOS_OBS_EVENT(obs::EventKind::TranslationFault,
                    account_.total().count(), va.raw(), domain);
    chargeTrap();
    const vm::Vpn vpn = vm::pageOf(va);
    SASOS_ASSERT(!state_.pageTable.isMapped(vpn),
                 "translation fault on mapped page");
    const vm::Segment *segment = state_.segments.findByPage(vpn);
    if (segment == nullptr) {
        // Reference outside any segment: deliver an exception.
        ++exceptions;
        return false;
    }
    if (isOnDisk(vpn)) {
        SASOS_ASSERT(pager_ != nullptr, "on-disk page with no pager");
        pager_->pageIn(vpn);
        ++faultRetries;
        SASOS_OBS_EVENT(obs::EventKind::FaultRetry,
                        account_.total().count(), va.raw(), domain);
        return true;
    }
    ++demandMaps;
    mapPage(vpn);
    ++faultRetries;
    SASOS_OBS_EVENT(obs::EventKind::FaultRetry, account_.total().count(),
                    va.raw(), domain);
    return true;
}

vm::Access
Kernel::canonicalRights(DomainId domain, vm::Vpn vpn) const
{
    return state_.effectiveRights(domain, vpn);
}

void
Kernel::save(snap::SnapWriter &w) const
{
    w.putTag("kernel");
    w.put16(current_);
    w.put64(onDisk_.size());
    for (vm::Vpn vpn : onDisk_)
        w.put64(vpn.number());
    w.put64(cowPages_.size());
    for (vm::Vpn vpn : cowPages_)
        w.put64(vpn.number());
}

void
Kernel::load(snap::SnapReader &r)
{
    r.expectTag("kernel");
    const DomainId current = static_cast<DomainId>(r.get16());
    if (current != 0 && state_.findDomain(current) == nullptr)
        SASOS_FATAL("corrupt snapshot: current domain ", current,
                    " does not exist");
    current_ = current;
    onDisk_.clear();
    const u32 on_disk = r.getCount(8);
    for (u32 i = 0; i < on_disk; ++i) {
        const vm::Vpn vpn(r.get64());
        if (!onDisk_.insert(vpn).second)
            SASOS_FATAL("corrupt snapshot: page ", vpn.number(),
                        " on disk twice");
    }
    cowPages_.clear();
    const u32 cow_pages = r.getCount(8);
    for (u32 i = 0; i < cow_pages; ++i) {
        const vm::Vpn vpn(r.get64());
        if (!state_.pageTable.isMapped(vpn))
            SASOS_FATAL("corrupt snapshot: CoW page ", vpn.number(),
                        " is not mapped");
        if (!cowPages_.insert(vpn).second)
            SASOS_FATAL("corrupt snapshot: page ", vpn.number(),
                        " CoW-protected twice");
    }
}

} // namespace sasos::os
