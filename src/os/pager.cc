#include "os/pager.hh"

#include <optional>

#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::os
{

Pager::Pager(Kernel &kernel, const PagerConfig &config,
             stats::Group *parent)
    : statsGroup(parent, "pager"),
      pageOuts(&statsGroup, "pageOuts", "pages written to disk"),
      pageIns(&statsGroup, "pageIns", "pages read from disk"),
      evictions(&statsGroup, "evictions",
                "page-outs forced by frame pressure"),
      kernel_(kernel), config_(config),
      domain_(kernel.createDomain("pager"))
{
    kernel_.setPager(this);
}

void
Pager::pageOut(vm::Vpn vpn)
{
    SASOS_ASSERT(kernel_.isMapped(vpn), "paging out unmapped page ",
                 vpn.number());
    ++pageOuts;
    // The pager is a user-level server: entering it costs an upcall.
    kernel_.charge(CostCategory::Upcall, kernel_.costs().serverUpcall);
    // Exclude every application while the transfer is in flight; the
    // exclusion stays until the page returns.
    kernel_.restrictPage(vpn, vm::Access::None, domain_);
    if (config_.compress)
        kernel_.charge(CostCategory::Io, kernel_.costs().compressPage);
    kernel_.charge(CostCategory::Io, kernel_.costs().diskAccess);
    kernel_.unmapPage(vpn);
    kernel_.markOnDisk(vpn);
    // Once unmapped, the missing translation is what protects the
    // page (Section 4.1.3: a stale PLB entry may allow the access,
    // but the purged TLB faults it); lift the exclusion so the fault
    // routes to page-in rather than a protection exception.
    kernel_.unrestrictPage(vpn);
}

void
Pager::pageIn(vm::Vpn vpn)
{
    SASOS_ASSERT(kernel_.isOnDisk(vpn), "paging in resident page ",
                 vpn.number());
    ++pageIns;
    kernel_.charge(CostCategory::Upcall, kernel_.costs().serverUpcall);
    // Exclude applications for the duration of the transfer.
    kernel_.restrictPage(vpn, vm::Access::None, domain_);
    kernel_.clearOnDisk(vpn);
    kernel_.mapPage(vpn); // may evict under pressure
    kernel_.charge(CostCategory::Io, kernel_.costs().diskAccess);
    if (config_.compress)
        kernel_.charge(CostCategory::Io, kernel_.costs().decompressPage);
    kernel_.unrestrictPage(vpn);
}

void
Pager::evictOne()
{
    ++evictions;
    pageOut(chooseVictim());
}

vm::Vpn
Pager::chooseVictim()
{
    // One-pass clock: prefer an unreferenced page; remember the first
    // mapped page as a fallback and age the referenced bits we pass.
    std::optional<vm::Vpn> unreferenced;
    std::optional<vm::Vpn> any;
    auto &table = kernel_.state().pageTable;
    table.forEach([&](vm::Vpn vpn, const vm::Translation &translation) {
        if (!any)
            any = vpn;
        if (!unreferenced && !translation.referenced)
            unreferenced = vpn;
    });
    SASOS_ASSERT(any, "no mapped pages to evict");
    const vm::Vpn victim = unreferenced ? *unreferenced : *any;
    kernel_.state().pageTable.clearUsage(victim);
    return victim;
}

void
Pager::save(snap::SnapWriter &w) const
{
    w.putTag("pager");
    w.put16(domain_);
}

void
Pager::load(snap::SnapReader &r)
{
    r.expectTag("pager");
    const DomainId domain = static_cast<DomainId>(r.get16());
    if (kernel_.state().findDomain(domain) == nullptr)
        SASOS_FATAL("corrupt snapshot: pager domain ", domain,
                    " does not exist");
    domain_ = domain;
}

} // namespace sasos::os
