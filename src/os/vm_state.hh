/**
 * @file
 * The kernel's canonical virtual memory state.
 *
 * This is the software truth from which every protection model
 * derives its hardware state: the global segment table, the single
 * global page table, physical memory, and one protection domain
 * record (with its protection table) per domain. Reverse indexes
 * (segment -> attached domains, page -> domains with overrides) let
 * the page-group model compute a page's rights vector without
 * scanning every domain.
 */

#ifndef SASOS_OS_VM_STATE_HH
#define SASOS_OS_VM_STATE_HH

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hw/tlb.hh" // DomainId
#include "vm/page_table.hh"
#include "vm/phys_mem.hh"
#include "vm/prot_table.hh"
#include "vm/segment.hh"

namespace sasos::os
{

using hw::DomainId;

/** One protection domain: a set of access rights to the global space. */
struct Domain
{
    DomainId id = 0;
    std::string name;
    /** Canonical per-domain rights (segment grants + page overrides). */
    vm::ProtectionTable prot;
};

/**
 * A page's canonical rights vector: which domains can access it and
 * how. Ordered so it can serve as a group-equivalence key.
 */
using RightsVector = std::vector<std::pair<DomainId, vm::Access>>;

/** Canonical VM state shared by the kernel and the models. */
class VmState
{
  public:
    explicit VmState(u64 frames);

    /** @name Core tables */
    /// @{
    vm::SegmentTable segments;
    vm::GlobalPageTable pageTable;
    vm::FrameAllocator frameAllocator;
    /// @}

    /** @name Domains */
    /// @{
    Domain &createDomain(std::string name);
    void destroyDomain(DomainId id);
    Domain *findDomain(DomainId id);
    const Domain *findDomain(DomainId id) const;
    Domain &domain(DomainId id); // fatal if unknown
    const std::map<DomainId, Domain> &domains() const { return domains_; }
    /// @}

    /** @name Reverse indexes (maintained by the kernel) */
    /// @{
    void noteAttached(DomainId domain, vm::SegmentId seg);
    void noteDetached(DomainId domain, vm::SegmentId seg);
    void notePageOverride(DomainId domain, vm::Vpn vpn);
    void notePageOverrideCleared(DomainId domain, vm::Vpn vpn);

    /** Domains currently attached to a segment. */
    const std::set<DomainId> &attachedDomains(vm::SegmentId seg) const;

    /** Domains holding a page-level override on a page. */
    const std::set<DomainId> &overrideDomains(vm::Vpn vpn) const;

    /** Drop override-index records for a page range (one domain, or
     * all when nullopt). Called when overrides are bulk-cleared by
     * detach or segment destruction. */
    void forgetOverridesIn(vm::Vpn first, u64 pages,
                           std::optional<DomainId> domain);
    /// @}

    /** @name Per-page global mask
     * A second protection layer intersected with every domain's
     * rights, used to exclude all applications from a page during
     * paging operations (Section 4.1.3). The `exempt` domain (the
     * paging server) bypasses the mask.
     */
    /// @{
    void setPageMask(vm::Vpn vpn, vm::Access mask, DomainId exempt = 0);
    void clearPageMask(vm::Vpn vpn);
    vm::Access pageMask(vm::Vpn vpn, DomainId domain) const;
    bool hasPageMask(vm::Vpn vpn) const;
    /// @}

    /**
     * The canonical rights vector of a page: every domain with
     * nonzero effective rights (mask applied), sorted by domain id.
     * This is what the page-group model's grouping is derived from.
     */
    RightsVector rightsVector(vm::Vpn vpn) const;

    /**
     * The rights vector a segment's unmodified pages share: the
     * attach grants, with no page overrides and no mask.
     */
    RightsVector segmentDefaultVector(vm::SegmentId seg) const;

    /** Canonical effective rights of one domain on one page. */
    vm::Access effectiveRights(DomainId domain, vm::Vpn vpn) const;

    /** Pages in [first, first+pages) holding any per-page state
     * (override or mask); used for segment-wide regrouping. */
    std::vector<vm::Vpn> pagesWithStateIn(vm::Vpn first, u64 pages) const;

    /** @name Snapshot hooks (the entire canonical state) */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

  private:
    struct Mask
    {
        vm::Access mask = vm::Access::All;
        DomainId exempt = 0;
    };

    DomainId nextDomainId_ = 1;
    std::map<DomainId, Domain> domains_;
    std::map<vm::SegmentId, std::set<DomainId>> attached_;
    std::map<vm::Vpn, std::set<DomainId>> overrides_;
    std::map<vm::Vpn, Mask> masks_;
    std::set<DomainId> empty_;
};

} // namespace sasos::os

#endif // SASOS_OS_VM_STATE_HH
