#include "os/page_group_manager.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::os
{

PageGroupManager::PageGroupManager(VmState &state, stats::Group *parent)
    : statsGroup(parent, "pgman"),
      groupsCreated(&statsGroup, "groupsCreated", "page-groups allocated"),
      groupsFreed(&statsGroup, "groupsFreed", "page-groups recycled"),
      pageMoves(&statsGroup, "pageMoves",
                "pages moved between page-groups"),
      splits(&statsGroup, "splits",
             "non-default groups created by rights divergence"),
      inexpressible(&statsGroup, "inexpressible",
                    "rights vectors not expressible as one group"),
      alternations(&statsGroup, "alternations",
                   "page regroups displacing another domain's view"),
      state_(state)
{
}

PageGroupManager::Expressed
PageGroupManager::expressVector(const RightsVector &vector,
                                std::optional<DomainId> favored)
{
    Expressed out;
    if (vector.empty()) {
        out.exact = true;
        return out;
    }
    vm::Access representative = vm::Access::None;
    if (favored) {
        for (const auto &[d, r] : vector) {
            if (d == *favored) {
                representative = r;
                break;
            }
        }
    }
    if (representative == vm::Access::None) {
        for (const auto &[d, r] : vector)
            representative = representative | r;
    }
    out.rights = representative;
    out.exact = true;
    const bool has_write = vm::includes(representative, vm::Access::Write);
    const vm::Access disabled = representative & ~vm::Access::Write;
    for (const auto &[d, r] : vector) {
        if (r == representative) {
            out.members.emplace(d, false);
        } else if (has_write && r == disabled) {
            out.members.emplace(d, true);
        } else {
            out.exact = false;
        }
    }
    return out;
}

GroupId
PageGroupManager::allocateAid()
{
    if (!freeAids_.empty()) {
        const GroupId aid = freeAids_.back();
        freeAids_.pop_back();
        return aid;
    }
    if (nextAid_ == hw::kGlobalGroup)
        ++nextAid_;
    if (nextAid_ >= kNullGroup) {
        SASOS_FATAL("page-group identifier space exhausted (",
                    groups_.size(), " live groups)");
    }
    return nextAid_++;
}

void
PageGroupManager::freeGroup(GroupId aid)
{
    auto it = groups_.find(aid);
    SASOS_ASSERT(it != groups_.end(), "freeing unknown group ", aid);
    if (it->second.key)
        byKey_.erase(*it->second.key);
    for (const auto &[d, dbit] : it->second.members) {
        auto dit = domainGroups_.find(d);
        if (dit != domainGroups_.end())
            dit->second.erase(aid);
    }
    groups_.erase(it);
    freeAids_.push_back(aid);
    ++groupsFreed;
    if (onGroupFreed)
        onGroupFreed(aid);
}

void
PageGroupManager::registerSegment(vm::SegmentId seg)
{
    // Default groups are created lazily; nothing to do yet.
    (void)seg;
}

void
PageGroupManager::releaseSegment(vm::SegmentId seg)
{
    const vm::Segment *segment = state_.segments.find(seg);
    // Drop page assignments inside the segment.
    if (segment != nullptr) {
        auto it = assignments_.lower_bound(segment->firstPage);
        while (it != assignments_.end() && it->first <= segment->lastPage())
            it = assignments_.erase(it);
    }
    // Free every group carved from the segment.
    std::vector<GroupId> doomed;
    for (const auto &[aid, info] : groups_) {
        if (info.segment == seg)
            doomed.push_back(aid);
    }
    for (GroupId aid : doomed)
        freeGroup(aid);
    defaultGroups_.erase(seg);
}

GroupId
PageGroupManager::defaultGroupOf(vm::SegmentId seg)
{
    auto it = defaultGroups_.find(seg);
    if (it != defaultGroups_.end())
        return it->second;
    const GroupId aid = allocateAid();
    GroupInfo info;
    info.segment = seg;
    info.isDefault = true;
    groups_.emplace(aid, std::move(info));
    defaultGroups_.emplace(seg, aid);
    ++groupsCreated;
    return aid;
}

vm::Access
PageGroupManager::defaultRightsOf(vm::SegmentId seg) const
{
    return expressVector(state_.segmentDefaultVector(seg), std::nullopt)
        .rights;
}

PageGroupState
PageGroupManager::pageState(vm::Vpn vpn)
{
    auto it = assignments_.find(vpn);
    if (it != assignments_.end())
        return it->second;
    const vm::Segment *seg = state_.segments.findByPage(vpn);
    if (seg == nullptr)
        return PageGroupState{kNullGroup, vm::Access::None};
    if (!state_.hasPageMask(vpn) && state_.overrideDomains(vpn).empty()) {
        const Expressed def =
            expressVector(state_.segmentDefaultVector(seg->id),
                          std::nullopt);
        return PageGroupState{defaultGroupOf(seg->id), def.rights};
    }
    return assignPage(vpn, std::nullopt);
}

PageGroupState
PageGroupManager::regroupPage(vm::Vpn vpn)
{
    return assignPage(vpn, std::nullopt);
}

PageGroupState
PageGroupManager::regroupPageFor(vm::Vpn vpn, DomainId domain)
{
    return assignPage(vpn, domain);
}

PageGroupState
PageGroupManager::assignPage(vm::Vpn vpn, std::optional<DomainId> favored)
{
    const vm::Segment *seg = state_.segments.findByPage(vpn);
    auto prev_it = assignments_.find(vpn);
    const std::optional<PageGroupState> previous =
        prev_it == assignments_.end()
            ? std::nullopt
            : std::optional<PageGroupState>(prev_it->second);

    // Whether the view being displaced under-approximated its vector
    // (the precondition for counting an alternation).
    bool prev_inexact = false;
    if (previous) {
        auto git = groups_.find(previous->aid);
        prev_inexact = git != groups_.end() && !git->second.exact;
    } else if (seg != nullptr) {
        const Expressed natural = expressVector(
            state_.segmentDefaultVector(seg->id), std::nullopt);
        prev_inexact = !natural.exact;
    }

    PageGroupState next;
    if (seg == nullptr) {
        next = PageGroupState{kNullGroup, vm::Access::None};
    } else if (!state_.hasPageMask(vpn) &&
               state_.overrideDomains(vpn).empty()) {
        // The page carries no per-page state, so its vector is the
        // segment default. If that vector is expressible -- or the
        // favored domain is served by its natural expression -- the
        // default group covers it; otherwise the page needs a group
        // carved toward the favored domain even without overrides
        // (the paper's alternation case).
        const RightsVector def_vector =
            state_.segmentDefaultVector(seg->id);
        const Expressed natural = expressVector(def_vector, std::nullopt);
        if (!natural.exact)
            ++inexpressible;
        if (natural.exact || !favored ||
            natural.members.count(*favored)) {
            next = PageGroupState{defaultGroupOf(seg->id),
                                  natural.rights};
        } else {
            const Expressed expressed = expressVector(def_vector, favored);
            GroupKey key;
            key.segment = seg->id;
            key.vector = def_vector;
            key.rights = static_cast<u8>(expressed.rights);
            const GroupId aid =
                findOrCreateGroup(seg->id, key, expressed);
            next = PageGroupState{aid, expressed.rights};
        }
    } else {
        const RightsVector vector = state_.rightsVector(vpn);
        if (vector.empty()) {
            next = PageGroupState{kNullGroup, vm::Access::None};
        } else {
            Expressed expressed = expressVector(vector, favored);
            if (!expressed.exact)
                ++inexpressible;
            GroupKey key;
            key.segment = seg->id;
            key.vector = vector;
            key.rights = static_cast<u8>(expressed.rights);
            const GroupId aid =
                findOrCreateGroup(seg->id, key, expressed);
            next = PageGroupState{aid, expressed.rights};
        }
    }

    if (previous && previous->aid == next.aid) {
        // Same group; rights may still differ (group rights evolve
        // only by re-keying, so they match here by construction).
        if (prev_it->second != next)
            prev_it->second = next;
        return next;
    }

    // Update page counts and the assignment map.
    if (prev_inexact)
        ++alternations;
    if (previous) {
        auto git = groups_.find(previous->aid);
        if (git != groups_.end() && !git->second.isDefault) {
            SASOS_ASSERT(git->second.pageCount > 0, "pageCount underflow");
            if (--git->second.pageCount == 0)
                freeGroup(previous->aid);
        }
        ++pageMoves;
    } else {
        // Leaving the default group (or first assignment).
        ++pageMoves;
    }

    bool is_default_state = false;
    if (seg != nullptr) {
        auto dit = defaultGroups_.find(seg->id);
        is_default_state = dit != defaultGroups_.end() &&
                           next.aid == dit->second;
    }
    if (next.aid != kNullGroup && !is_default_state) {
        auto git = groups_.find(next.aid);
        SASOS_ASSERT(git != groups_.end(), "assigned to unknown group");
        if (!git->second.isDefault)
            ++git->second.pageCount;
    }

    if (is_default_state || next.aid == kNullGroup) {
        if (next.aid == kNullGroup)
            assignments_[vpn] = next;
        else
            assignments_.erase(vpn);
    } else {
        assignments_[vpn] = next;
    }
    return next;
}

GroupId
PageGroupManager::findOrCreateGroup(vm::SegmentId seg, const GroupKey &key,
                                    const Expressed &expressed)
{
    auto it = byKey_.find(key);
    if (it != byKey_.end())
        return it->second;
    const GroupId aid = allocateAid();
    GroupInfo info;
    info.segment = seg;
    info.rights = expressed.rights;
    info.members = expressed.members;
    info.exact = expressed.exact;
    info.key = key;
    groups_.emplace(aid, std::move(info));
    byKey_.emplace(key, aid);
    for (const auto &[d, dbit] : expressed.members)
        domainGroups_[d].insert(aid);
    ++groupsCreated;
    ++splits;
    return aid;
}

void
PageGroupManager::dropAssignment(vm::Vpn vpn)
{
    assignments_.erase(vpn);
}

bool
PageGroupManager::domainHasGroup(DomainId domain, GroupId aid) const
{
    if (aid == hw::kGlobalGroup)
        return true;
    if (aid == kNullGroup)
        return false;
    auto it = groups_.find(aid);
    if (it == groups_.end())
        return false;
    const GroupInfo &info = it->second;
    if (info.isDefault) {
        const Expressed def = expressVector(
            state_.segmentDefaultVector(info.segment), std::nullopt);
        return def.members.count(domain) != 0;
    }
    return info.members.count(domain) != 0;
}

bool
PageGroupManager::writeDisabled(DomainId domain, GroupId aid) const
{
    if (aid == hw::kGlobalGroup || aid == kNullGroup)
        return false;
    auto it = groups_.find(aid);
    if (it == groups_.end())
        return false;
    const GroupInfo &info = it->second;
    if (info.isDefault) {
        const Expressed def = expressVector(
            state_.segmentDefaultVector(info.segment), std::nullopt);
        auto mit = def.members.find(domain);
        return mit != def.members.end() && mit->second;
    }
    auto mit = info.members.find(domain);
    return mit != info.members.end() && mit->second;
}

std::vector<GroupId>
PageGroupManager::groupsOf(DomainId domain) const
{
    std::vector<GroupId> result;
    const Domain *d = state_.findDomain(domain);
    if (d != nullptr) {
        for (vm::SegmentId seg : d->prot.attachedSegmentIds()) {
            auto it = defaultGroups_.find(seg);
            if (it != defaultGroups_.end() &&
                domainHasGroup(domain, it->second)) {
                result.push_back(it->second);
            }
        }
    }
    auto it = domainGroups_.find(domain);
    if (it != domainGroups_.end())
        result.insert(result.end(), it->second.begin(), it->second.end());
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    return result;
}

std::vector<GroupId>
PageGroupManager::groupsOfSegment(vm::SegmentId seg) const
{
    std::vector<GroupId> result;
    for (const auto &[aid, info] : groups_) {
        if (info.segment == seg)
            result.push_back(aid);
    }
    return result;
}

std::vector<vm::Vpn>
PageGroupManager::assignedPagesIn(vm::Vpn first, u64 pages) const
{
    const vm::Vpn last(first.number() + pages - 1);
    std::vector<vm::Vpn> result;
    for (auto it = assignments_.lower_bound(first);
         it != assignments_.end() && it->first <= last; ++it) {
        result.push_back(it->first);
    }
    return result;
}

vm::Access
PageGroupManager::hwRights(DomainId domain, vm::Vpn vpn)
{
    const PageGroupState st = pageState(vpn);
    if (!domainHasGroup(domain, st.aid))
        return vm::Access::None;
    vm::Access rights = st.rights;
    if (writeDisabled(domain, st.aid))
        rights = rights & ~vm::Access::Write;
    return rights;
}

void
PageGroupManager::invalidateSegmentDefaults(vm::SegmentId seg)
{
    // Default-group membership and rights are derived on demand from
    // VmState, so there is no cached state to invalidate; the hook
    // exists so hardware models have a single notification point.
    (void)seg;
}

namespace
{

vm::Access
readGroupAccess(snap::SnapReader &r)
{
    const u8 raw = r.get8();
    if (raw > static_cast<u8>(vm::Access::All))
        SASOS_FATAL("corrupt snapshot: invalid rights byte ", u32(raw));
    return static_cast<vm::Access>(raw);
}

void
saveVector(snap::SnapWriter &w, const RightsVector &vector)
{
    w.put64(vector.size());
    for (const auto &[domain, rights] : vector) {
        w.put16(domain);
        w.put8(static_cast<u8>(rights));
    }
}

RightsVector
loadVector(snap::SnapReader &r)
{
    RightsVector vector;
    const u32 count = r.getCount(3);
    vector.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        const DomainId domain = static_cast<DomainId>(r.get16());
        vector.emplace_back(domain, readGroupAccess(r));
    }
    return vector;
}

} // namespace

void
PageGroupManager::save(snap::SnapWriter &w) const
{
    w.putTag("pgmgr");
    w.put16(nextAid_);
    w.put64(freeAids_.size());
    for (GroupId aid : freeAids_)
        w.put16(aid);
    w.put64(groups_.size());
    for (const auto &[aid, info] : groups_) {
        w.put16(aid);
        w.put32(info.segment);
        w.put8(static_cast<u8>(info.rights));
        w.put64(info.members.size());
        for (const auto &[domain, disabled] : info.members) {
            w.put16(domain);
            w.putBool(disabled);
        }
        w.put64(info.pageCount);
        w.putBool(info.isDefault);
        w.putBool(info.exact);
        w.putBool(info.key.has_value());
        if (info.key) {
            w.put32(info.key->segment);
            w.put8(info.key->rights);
            saveVector(w, info.key->vector);
        }
    }
    w.put64(defaultGroups_.size());
    for (const auto &[seg, aid] : defaultGroups_) {
        w.put32(seg);
        w.put16(aid);
    }
    w.put64(assignments_.size());
    for (const auto &[vpn, state] : assignments_) {
        w.put64(vpn.number());
        w.put16(state.aid);
        w.put8(static_cast<u8>(state.rights));
    }
    w.put64(domainGroups_.size());
    for (const auto &[domain, groups] : domainGroups_) {
        w.put16(domain);
        w.put64(groups.size());
        for (GroupId aid : groups)
            w.put16(aid);
    }
}

void
PageGroupManager::load(snap::SnapReader &r)
{
    r.expectTag("pgmgr");
    nextAid_ = static_cast<GroupId>(r.get16());
    freeAids_.clear();
    groups_.clear();
    defaultGroups_.clear();
    byKey_.clear();
    assignments_.clear();
    domainGroups_.clear();
    const u32 free_count = r.getCount(2);
    freeAids_.reserve(free_count);
    for (u32 i = 0; i < free_count; ++i)
        freeAids_.push_back(static_cast<GroupId>(r.get16()));
    const u32 group_count = r.getCount(18);
    for (u32 i = 0; i < group_count; ++i) {
        const GroupId aid = static_cast<GroupId>(r.get16());
        auto [it, inserted] = groups_.emplace(aid, GroupInfo{});
        if (!inserted)
            SASOS_FATAL("corrupt snapshot: group ", aid, " listed twice");
        GroupInfo &info = it->second;
        info.segment = r.get32();
        info.rights = readGroupAccess(r);
        const u32 member_count = r.getCount(3);
        for (u32 j = 0; j < member_count; ++j) {
            const DomainId domain = static_cast<DomainId>(r.get16());
            if (!info.members.emplace(domain, r.getBool()).second)
                SASOS_FATAL("corrupt snapshot: domain ", domain,
                            " is a member of group ", aid, " twice");
        }
        info.pageCount = r.get64();
        info.isDefault = r.getBool();
        info.exact = r.getBool();
        if (r.getBool()) {
            GroupKey key;
            key.segment = r.get32();
            key.rights = r.get8();
            key.vector = loadVector(r);
            info.key = key;
            if (!byKey_.emplace(key, aid).second)
                SASOS_FATAL("corrupt snapshot: two groups share one key");
        }
    }
    const u32 default_count = r.getCount(6);
    for (u32 i = 0; i < default_count; ++i) {
        const vm::SegmentId seg = r.get32();
        const GroupId aid = static_cast<GroupId>(r.get16());
        if (groups_.find(aid) == groups_.end())
            SASOS_FATAL("corrupt snapshot: default group ", aid,
                        " of segment ", seg, " does not exist");
        if (!defaultGroups_.emplace(seg, aid).second)
            SASOS_FATAL("corrupt snapshot: segment ", seg,
                        " has two default groups");
    }
    const u32 assign_count = r.getCount(11);
    for (u32 i = 0; i < assign_count; ++i) {
        const vm::Vpn vpn(r.get64());
        PageGroupState state;
        state.aid = static_cast<GroupId>(r.get16());
        state.rights = readGroupAccess(r);
        if (state.aid != kNullGroup &&
            groups_.find(state.aid) == groups_.end()) {
            SASOS_FATAL("corrupt snapshot: page ", vpn.number(),
                        " assigned to unknown group ", state.aid);
        }
        if (!assignments_.emplace(vpn, state).second)
            SASOS_FATAL("corrupt snapshot: page ", vpn.number(),
                        " assigned twice");
    }
    const u32 domain_count = r.getCount(6);
    for (u32 i = 0; i < domain_count; ++i) {
        const DomainId domain = static_cast<DomainId>(r.get16());
        std::set<GroupId> &groups = domainGroups_[domain];
        const u32 count = r.getCount(2);
        for (u32 j = 0; j < count; ++j) {
            if (!groups.insert(static_cast<GroupId>(r.get16())).second)
                SASOS_FATAL("corrupt snapshot: duplicate group record for "
                            "domain ",
                            domain);
        }
    }
}

} // namespace sasos::os
