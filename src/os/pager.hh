/**
 * @file
 * A user-level paging server (paper Section 4.1.3).
 *
 * The pager runs in its own protection domain and must have exclusive
 * access to a page while moving it to or from secondary store. It
 * excludes every other domain through the kernel's page mask (the
 * models translate that into PLB scan-updates or a move into the
 * pager's private page-group -- exactly the Table 1 rows), performs
 * the disk transfer (optionally compressing, for the compression
 * paging application of Appel & Li), and unmaps or remaps the page.
 */

#ifndef SASOS_OS_PAGER_HH
#define SASOS_OS_PAGER_HH

#include "os/kernel.hh"
#include "sim/stats.hh"

namespace sasos::os
{

/** Paging server behaviour. */
struct PagerConfig
{
    /** Compress pages on the way out (compression paging). */
    bool compress = false;
};

/** The user-level paging server. */
class Pager
{
  public:
    Pager(Kernel &kernel, const PagerConfig &config, stats::Group *parent);

    /** The pager's own protection domain. */
    DomainId domainId() const { return domain_; }

    const PagerConfig &config() const { return config_; }

    /**
     * Move a mapped page to secondary store: exclude applications,
     * (compress and) write, unmap, free the frame.
     */
    void pageOut(vm::Vpn vpn);

    /**
     * Bring a page back: map a frame, read (and decompress), restore
     * application access.
     */
    void pageIn(vm::Vpn vpn);

    /**
     * Free one frame under memory pressure: pick a victim by a clock
     * scan over the page table (unreferenced pages first) and page
     * it out.
     */
    void evictOne();

    /** @name Snapshot hooks
     * The pager's domain id is canonical state; its construction-time
     * domain creation is superseded when the owner restores VmState
     * and then calls load(). */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar pageOuts;
    stats::Scalar pageIns;
    stats::Scalar evictions;
    /// @}

  private:
    vm::Vpn chooseVictim();

    Kernel &kernel_;
    PagerConfig config_;
    DomainId domain_;
};

} // namespace sasos::os

#endif // SASOS_OS_PAGER_HH
