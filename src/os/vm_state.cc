#include "os/vm_state.hh"

#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::os
{

VmState::VmState(u64 frames) : frameAllocator(frames) {}

Domain &
VmState::createDomain(std::string name)
{
    const DomainId id = nextDomainId_++;
    SASOS_ASSERT(id != 0, "domain id space exhausted");
    Domain &domain = domains_[id];
    domain.id = id;
    domain.name = std::move(name);
    return domain;
}

void
VmState::destroyDomain(DomainId id)
{
    auto it = domains_.find(id);
    SASOS_ASSERT(it != domains_.end(), "destroying unknown domain ", id);
    // Remove from reverse indexes.
    for (auto &[seg, members] : attached_)
        members.erase(id);
    for (auto &[vpn, holders] : overrides_)
        holders.erase(id);
    domains_.erase(it);
}

Domain *
VmState::findDomain(DomainId id)
{
    auto it = domains_.find(id);
    return it == domains_.end() ? nullptr : &it->second;
}

const Domain *
VmState::findDomain(DomainId id) const
{
    auto it = domains_.find(id);
    return it == domains_.end() ? nullptr : &it->second;
}

Domain &
VmState::domain(DomainId id)
{
    Domain *d = findDomain(id);
    if (d == nullptr)
        SASOS_FATAL("unknown domain ", id);
    return *d;
}

void
VmState::noteAttached(DomainId domain, vm::SegmentId seg)
{
    attached_[seg].insert(domain);
}

void
VmState::noteDetached(DomainId domain, vm::SegmentId seg)
{
    auto it = attached_.find(seg);
    if (it != attached_.end()) {
        it->second.erase(domain);
        if (it->second.empty())
            attached_.erase(it);
    }
}

void
VmState::notePageOverride(DomainId domain, vm::Vpn vpn)
{
    overrides_[vpn].insert(domain);
}

void
VmState::notePageOverrideCleared(DomainId domain, vm::Vpn vpn)
{
    auto it = overrides_.find(vpn);
    if (it != overrides_.end()) {
        it->second.erase(domain);
        if (it->second.empty())
            overrides_.erase(it);
    }
}

const std::set<DomainId> &
VmState::attachedDomains(vm::SegmentId seg) const
{
    auto it = attached_.find(seg);
    return it == attached_.end() ? empty_ : it->second;
}

const std::set<DomainId> &
VmState::overrideDomains(vm::Vpn vpn) const
{
    auto it = overrides_.find(vpn);
    return it == overrides_.end() ? empty_ : it->second;
}

void
VmState::forgetOverridesIn(vm::Vpn first, u64 pages,
                           std::optional<DomainId> domain)
{
    const vm::Vpn last(first.number() + pages - 1);
    auto it = overrides_.lower_bound(first);
    while (it != overrides_.end() && it->first <= last) {
        if (domain)
            it->second.erase(*domain);
        else
            it->second.clear();
        if (it->second.empty())
            it = overrides_.erase(it);
        else
            ++it;
    }
}

void
VmState::setPageMask(vm::Vpn vpn, vm::Access mask, DomainId exempt)
{
    masks_[vpn] = Mask{mask, exempt};
}

void
VmState::clearPageMask(vm::Vpn vpn)
{
    masks_.erase(vpn);
}

vm::Access
VmState::pageMask(vm::Vpn vpn, DomainId domain) const
{
    auto it = masks_.find(vpn);
    if (it == masks_.end())
        return vm::Access::All;
    if (domain != 0 && domain == it->second.exempt)
        return vm::Access::All;
    return it->second.mask;
}

bool
VmState::hasPageMask(vm::Vpn vpn) const
{
    return masks_.count(vpn) != 0;
}

RightsVector
VmState::rightsVector(vm::Vpn vpn) const
{
    RightsVector vector;
    const vm::Segment *seg = segments.findByPage(vpn);
    // Audience: domains attached to the containing segment plus any
    // domain holding a page override (overrides can outlive grants).
    std::set<DomainId> audience = overrideDomains(vpn);
    if (seg != nullptr) {
        const std::set<DomainId> &att = attachedDomains(seg->id);
        audience.insert(att.begin(), att.end());
    }
    for (DomainId id : audience) {
        const vm::Access rights = effectiveRights(id, vpn);
        if (rights != vm::Access::None)
            vector.emplace_back(id, rights);
    }
    return vector;
}

RightsVector
VmState::segmentDefaultVector(vm::SegmentId seg) const
{
    RightsVector vector;
    for (DomainId id : attachedDomains(seg)) {
        const Domain *d = findDomain(id);
        if (d == nullptr)
            continue;
        const vm::Access rights = d->prot.segmentRights(seg);
        if (rights != vm::Access::None)
            vector.emplace_back(id, rights);
    }
    return vector;
}

vm::Access
VmState::effectiveRights(DomainId domain, vm::Vpn vpn) const
{
    const Domain *d = findDomain(domain);
    if (d == nullptr)
        return vm::Access::None;
    return d->prot.effectiveRights(vpn, segments) & pageMask(vpn, domain);
}

namespace
{

vm::Access
readAccessByte(snap::SnapReader &r)
{
    const u8 raw = r.get8();
    if (raw > static_cast<u8>(vm::Access::All))
        SASOS_FATAL("corrupt snapshot: invalid rights byte ", u32(raw));
    return static_cast<vm::Access>(raw);
}

} // namespace

void
VmState::save(snap::SnapWriter &w) const
{
    w.putTag("vmstate");
    segments.save(w);
    pageTable.save(w);
    frameAllocator.save(w);
    w.put16(nextDomainId_);
    w.put64(domains_.size());
    for (const auto &[id, domain] : domains_) {
        w.put16(id);
        w.putString(domain.name);
        domain.prot.save(w);
    }
    w.put64(attached_.size());
    for (const auto &[seg, members] : attached_) {
        w.put32(seg);
        w.put64(members.size());
        for (DomainId id : members)
            w.put16(id);
    }
    w.put64(overrides_.size());
    for (const auto &[vpn, holders] : overrides_) {
        w.put64(vpn.number());
        w.put64(holders.size());
        for (DomainId id : holders)
            w.put16(id);
    }
    w.put64(masks_.size());
    for (const auto &[vpn, mask] : masks_) {
        w.put64(vpn.number());
        w.put8(static_cast<u8>(mask.mask));
        w.put16(mask.exempt);
    }
}

void
VmState::load(snap::SnapReader &r)
{
    r.expectTag("vmstate");
    segments.load(r);
    pageTable.load(r);
    frameAllocator.load(r);
    
    nextDomainId_ = static_cast<DomainId>(r.get16());
    domains_.clear();
    attached_.clear();
    overrides_.clear();
    masks_.clear();
    const u32 domain_count = r.getCount(4);
    for (u32 i = 0; i < domain_count; ++i) {
        const DomainId id = static_cast<DomainId>(r.get16());
        if (id == 0)
            SASOS_FATAL("corrupt snapshot: domain id 0 is reserved");
        Domain &domain = domains_[id];
        if (domain.id != 0)
            SASOS_FATAL("corrupt snapshot: domain ", id, " listed twice");
        domain.id = id;
        domain.name = r.getString();
        domain.prot.load(r);
    }
    const u32 attach_count = r.getCount(8);
    for (u32 i = 0; i < attach_count; ++i) {
        const vm::SegmentId seg = r.get32();
        std::set<DomainId> &members = attached_[seg];
        const u32 member_count = r.getCount(2);
        for (u32 j = 0; j < member_count; ++j) {
            if (!members.insert(static_cast<DomainId>(r.get16())).second)
                SASOS_FATAL("corrupt snapshot: duplicate attach record for "
                            "segment ",
                            seg);
        }
    }
    const u32 override_count = r.getCount(12);
    for (u32 i = 0; i < override_count; ++i) {
        const vm::Vpn vpn(r.get64());
        std::set<DomainId> &holders = overrides_[vpn];
        const u32 holder_count = r.getCount(2);
        for (u32 j = 0; j < holder_count; ++j) {
            if (!holders.insert(static_cast<DomainId>(r.get16())).second)
                SASOS_FATAL("corrupt snapshot: duplicate override record "
                            "for page ",
                            vpn.number());
        }
    }
    const u32 mask_count = r.getCount(11);
    for (u32 i = 0; i < mask_count; ++i) {
        const vm::Vpn vpn(r.get64());
        Mask mask;
        mask.mask = readAccessByte(r);
        mask.exempt = static_cast<DomainId>(r.get16());
        if (!masks_.emplace(vpn, mask).second)
            SASOS_FATAL("corrupt snapshot: page ", vpn.number(),
                        " masked twice");
    }
    // Cross-check the two sides of CoW sharing: every mapped frame's
    // refcount must equal the number of pages mapping it (the loader
    // above allowed shared frames on the strength of this).
    pageTable.forEach([&](vm::Vpn vpn, const vm::Translation &t) {
        if (!frameAllocator.isAllocated(t.pfn))
            SASOS_FATAL("corrupt snapshot: page ", vpn.number(),
                        " maps unallocated frame ", t.pfn.number());
        if (frameAllocator.refCount(t.pfn) !=
            pageTable.frameMappers(t.pfn))
            SASOS_FATAL("corrupt snapshot: frame ", t.pfn.number(),
                        " holds ", frameAllocator.refCount(t.pfn),
                        " references but backs ",
                        pageTable.frameMappers(t.pfn), " pages");
    });
}

std::vector<vm::Vpn>
VmState::pagesWithStateIn(vm::Vpn first, u64 pages) const
{
    const vm::Vpn last(first.number() + pages - 1);
    std::set<vm::Vpn> result;
    for (auto it = overrides_.lower_bound(first);
         it != overrides_.end() && it->first <= last; ++it) {
        result.insert(it->first);
    }
    for (auto it = masks_.lower_bound(first);
         it != masks_.end() && it->first <= last; ++it) {
        result.insert(it->first);
    }
    return {result.begin(), result.end()};
}

} // namespace sasos::os
