#include "os/vm_state.hh"

#include "sim/logging.hh"

namespace sasos::os
{

VmState::VmState(u64 frames) : frameAllocator(frames) {}

Domain &
VmState::createDomain(std::string name)
{
    const DomainId id = nextDomainId_++;
    SASOS_ASSERT(id != 0, "domain id space exhausted");
    Domain &domain = domains_[id];
    domain.id = id;
    domain.name = std::move(name);
    return domain;
}

void
VmState::destroyDomain(DomainId id)
{
    auto it = domains_.find(id);
    SASOS_ASSERT(it != domains_.end(), "destroying unknown domain ", id);
    // Remove from reverse indexes.
    for (auto &[seg, members] : attached_)
        members.erase(id);
    for (auto &[vpn, holders] : overrides_)
        holders.erase(id);
    domains_.erase(it);
}

Domain *
VmState::findDomain(DomainId id)
{
    auto it = domains_.find(id);
    return it == domains_.end() ? nullptr : &it->second;
}

const Domain *
VmState::findDomain(DomainId id) const
{
    auto it = domains_.find(id);
    return it == domains_.end() ? nullptr : &it->second;
}

Domain &
VmState::domain(DomainId id)
{
    Domain *d = findDomain(id);
    if (d == nullptr)
        SASOS_FATAL("unknown domain ", id);
    return *d;
}

void
VmState::noteAttached(DomainId domain, vm::SegmentId seg)
{
    attached_[seg].insert(domain);
}

void
VmState::noteDetached(DomainId domain, vm::SegmentId seg)
{
    auto it = attached_.find(seg);
    if (it != attached_.end()) {
        it->second.erase(domain);
        if (it->second.empty())
            attached_.erase(it);
    }
}

void
VmState::notePageOverride(DomainId domain, vm::Vpn vpn)
{
    overrides_[vpn].insert(domain);
}

void
VmState::notePageOverrideCleared(DomainId domain, vm::Vpn vpn)
{
    auto it = overrides_.find(vpn);
    if (it != overrides_.end()) {
        it->second.erase(domain);
        if (it->second.empty())
            overrides_.erase(it);
    }
}

const std::set<DomainId> &
VmState::attachedDomains(vm::SegmentId seg) const
{
    auto it = attached_.find(seg);
    return it == attached_.end() ? empty_ : it->second;
}

const std::set<DomainId> &
VmState::overrideDomains(vm::Vpn vpn) const
{
    auto it = overrides_.find(vpn);
    return it == overrides_.end() ? empty_ : it->second;
}

void
VmState::forgetOverridesIn(vm::Vpn first, u64 pages,
                           std::optional<DomainId> domain)
{
    const vm::Vpn last(first.number() + pages - 1);
    auto it = overrides_.lower_bound(first);
    while (it != overrides_.end() && it->first <= last) {
        if (domain)
            it->second.erase(*domain);
        else
            it->second.clear();
        if (it->second.empty())
            it = overrides_.erase(it);
        else
            ++it;
    }
}

void
VmState::setPageMask(vm::Vpn vpn, vm::Access mask, DomainId exempt)
{
    masks_[vpn] = Mask{mask, exempt};
}

void
VmState::clearPageMask(vm::Vpn vpn)
{
    masks_.erase(vpn);
}

vm::Access
VmState::pageMask(vm::Vpn vpn, DomainId domain) const
{
    auto it = masks_.find(vpn);
    if (it == masks_.end())
        return vm::Access::All;
    if (domain != 0 && domain == it->second.exempt)
        return vm::Access::All;
    return it->second.mask;
}

bool
VmState::hasPageMask(vm::Vpn vpn) const
{
    return masks_.count(vpn) != 0;
}

RightsVector
VmState::rightsVector(vm::Vpn vpn) const
{
    RightsVector vector;
    const vm::Segment *seg = segments.findByPage(vpn);
    // Audience: domains attached to the containing segment plus any
    // domain holding a page override (overrides can outlive grants).
    std::set<DomainId> audience = overrideDomains(vpn);
    if (seg != nullptr) {
        const std::set<DomainId> &att = attachedDomains(seg->id);
        audience.insert(att.begin(), att.end());
    }
    for (DomainId id : audience) {
        const vm::Access rights = effectiveRights(id, vpn);
        if (rights != vm::Access::None)
            vector.emplace_back(id, rights);
    }
    return vector;
}

RightsVector
VmState::segmentDefaultVector(vm::SegmentId seg) const
{
    RightsVector vector;
    for (DomainId id : attachedDomains(seg)) {
        const Domain *d = findDomain(id);
        if (d == nullptr)
            continue;
        const vm::Access rights = d->prot.segmentRights(seg);
        if (rights != vm::Access::None)
            vector.emplace_back(id, rights);
    }
    return vector;
}

vm::Access
VmState::effectiveRights(DomainId domain, vm::Vpn vpn) const
{
    const Domain *d = findDomain(domain);
    if (d == nullptr)
        return vm::Access::None;
    return d->prot.effectiveRights(vpn, segments) & pageMask(vpn, domain);
}

std::vector<vm::Vpn>
VmState::pagesWithStateIn(vm::Vpn first, u64 pages) const
{
    const vm::Vpn last(first.number() + pages - 1);
    std::set<vm::Vpn> result;
    for (auto it = overrides_.lower_bound(first);
         it != overrides_.end() && it->first <= last; ++it) {
        result.insert(it->first);
    }
    for (auto it = masks_.lower_bound(first);
         it != masks_.end() && it->first <= last; ++it) {
        result.insert(it->first);
    }
    return {result.begin(), result.end()};
}

} // namespace sasos::os
