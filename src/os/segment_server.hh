/**
 * @file
 * User-level segment servers.
 *
 * Opal lets the semantics and protection of a segment be controlled
 * by a user-level server; the kernel reflects protection faults on
 * the segment's pages up to it (paper Section 6: "support for
 * user-level segment servers which control the semantics and the
 * protection for each segment"). All the Table 1 applications --
 * concurrent GC, distributed VM, transactional VM, checkpointing --
 * are implemented as segment servers in this library.
 */

#ifndef SASOS_OS_SEGMENT_SERVER_HH
#define SASOS_OS_SEGMENT_SERVER_HH

#include "os/protection_model.hh"

namespace sasos::os
{

class Kernel;

/** Receives protection-fault upcalls for one or more segments. */
class SegmentServer
{
  public:
    virtual ~SegmentServer() = default;

    /**
     * A domain faulted on a page of a served segment.
     * The server may change protections through the kernel (e.g.
     * grant the right after servicing the fault).
     * @return true to retry the faulting access, false to deliver an
     *         exception to the faulting domain.
     */
    virtual bool onProtectionFault(Kernel &kernel, DomainId domain,
                                   vm::VAddr va, vm::AccessType type) = 0;
};

} // namespace sasos::os

#endif // SASOS_OS_SEGMENT_SERVER_HH
