/**
 * @file
 * The hardware/OS protection contract.
 *
 * A ProtectionModel is the hardware side of one of the paper's
 * protection organizations (domain-page / page-group / conventional).
 * The kernel keeps the canonical protection state -- per-domain
 * protection tables over segments and pages -- and calls the model's
 * maintenance hooks whenever that state changes; the model updates
 * whatever caching structures it owns (PLB, TLBs, page-group cache)
 * and charges the cycles those manipulations cost. The reference path
 * (access()) performs the model's hardware checks, resolving its own
 * structure misses, and reports faults for the kernel to handle.
 *
 * Table 1 of the paper is precisely the difference between the
 * implementations of these hooks across models.
 */

#ifndef SASOS_OS_PROTECTION_MODEL_HH
#define SASOS_OS_PROTECTION_MODEL_HH

#include "hw/tlb.hh" // DomainId, GroupId
#include "vm/address.hh"
#include "vm/rights.hh"
#include "vm/segment.hh"

namespace sasos::fault
{
class FaultInjector;
}

namespace sasos::snap
{
class SnapWriter;
class SnapReader;
} // namespace sasos::snap

namespace sasos::os
{

using hw::DomainId;
using hw::GroupId;

/** Why a reference could not complete in hardware. */
enum class FaultKind : u8
{
    None,
    /** Rights insufficient per the hardware's (refilled) state. */
    Protection,
    /** No translation exists for the page. */
    Translation,
};

/** Outcome of one reference through the model's hardware. */
struct AccessResult
{
    /** The reference completed. */
    bool completed = false;
    FaultKind fault = FaultKind::None;
};

/** Outcome of a batched issue through accessBatch(). */
struct BatchOutcome
{
    /** References that completed without any fault. */
    u64 completed = 0;
    /** When completed < n: the first-attempt result of the reference
     * at index `completed`, which faulted and stopped the batch. */
    AccessResult faulted;
};

/** Abstract protection architecture. */
class ProtectionModel
{
  public:
    virtual ~ProtectionModel();

    virtual const char *name() const = 0;

    /**
     * Issue one reference from a domain. The model resolves its own
     * structure misses (charging refill costs) and either completes
     * the reference or reports a fault. It must never complete a
     * reference whose required right the kernel has not granted.
     */
    virtual AccessResult access(DomainId domain, vm::VAddr va,
                                vm::AccessType type) = 0;

    /**
     * Issue up to `n` references, stopping after the first one whose
     * initial attempt faults. Semantically identical to calling
     * access() in a loop; concrete models override it with a
     * devirtualized inner loop so the fault-free hit path pays one
     * virtual dispatch per batch instead of per reference.
     */
    virtual BatchOutcome accessBatch(DomainId domain, const vm::VAddr *vas,
                                     u64 n, vm::AccessType type);

    /**
     * Forget any same-page coalescing memo the batched fast path is
     * holding. Models memoize the previous reference's resolution
     * (entry pointer, replacement location, rights) to skip re-probing
     * on same-page runs; anything that mutates hardware structures
     * behind the model's back -- a remote shootdown ack, a test poking
     * a structure directly -- must call this so a stale memo can never
     * leak rights or touch a recycled slot. The model's own hooks and
     * access() entry invalidate internally; the default is a no-op for
     * models without a memo.
     */
    virtual void invalidateBatchMemo() {}

    /** @name Kernel-driven maintenance hooks
     * Called *after* the kernel has updated the canonical protection
     * state, so models may re-derive hardware state from it.
     */
    /// @{
    virtual void onAttach(DomainId domain, const vm::Segment &seg,
                          vm::Access rights) = 0;
    virtual void onDetach(DomainId domain, const vm::Segment &seg) = 0;
    virtual void onSetPageRights(DomainId domain, vm::Vpn vpn,
                                 vm::Access rights) = 0;
    /** A global mask now limits every domain to `rights` on the page
     * (rights == None during paging operations). */
    virtual void onSetPageRightsAllDomains(vm::Vpn vpn,
                                           vm::Access rights) = 0;
    /** The global mask was lifted; per-domain rights are canonical
     * again (models may purge and refill lazily). */
    virtual void onClearPageRightsAllDomains(vm::Vpn vpn) = 0;
    virtual void onSetSegmentRights(DomainId domain, const vm::Segment &seg,
                                    vm::Access rights) = 0;
    virtual void onDomainSwitch(DomainId from, DomainId to) = 0;
    virtual void onPageMapped(vm::Vpn vpn, vm::Pfn pfn) = 0;
    /** Purge translations and flush cached lines for an unmapped page. */
    virtual void onPageUnmapped(vm::Vpn vpn, vm::Pfn pfn) = 0;
    virtual void onDomainDestroyed(DomainId domain) = 0;
    virtual void onSegmentDestroyed(const vm::Segment &seg) = 0;
    /// @}

    /**
     * Called when a reference protection-faulted but the canonical
     * state grants the right: hardware protection state was stale
     * (e.g. the page-group model must regroup a page toward the
     * faulting domain's view). The model repairs its structures and
     * returns true if retrying can succeed.
     */
    virtual bool refreshAfterFault(DomainId domain, vm::Vpn vpn) = 0;

    /**
     * The model-semantic oracle: the rights the hardware *would*
     * grant this domain on this page once all structures are warm.
     * Used by tests to check the safety invariant against the
     * kernel's canonical tables.
     */
    virtual vm::Access effectiveRights(DomainId domain, vm::Vpn vpn) = 0;

    /** @name Snapshot hooks
     * Serialize the model's cached hardware state (PLB, TLBs,
     * page-group cache, data cache, replacement state). The defaults
     * are no-ops for stateless models; every model owning hardware
     * structures overrides both.
     */
    /// @{
    virtual void save(snap::SnapWriter &w) const { (void)w; }
    virtual void load(snap::SnapReader &r) { (void)r; }
    /// @}

    /**
     * Attach a fault injector whose schedule each access() consults
     * before issuing (null detaches). Injection only discards or
     * delays *cached* state, so it perturbs costs, never outcomes;
     * the differential oracle in src/fault enforces exactly that.
     */
    void setInjector(fault::FaultInjector *injector)
    {
        injector_ = injector;
    }

    fault::FaultInjector *injector() const { return injector_; }

  protected:
    /** Fault-injection schedule, or null when injection is off. */
    fault::FaultInjector *injector_ = nullptr;
};

} // namespace sasos::os

#endif // SASOS_OS_PROTECTION_MODEL_HH
