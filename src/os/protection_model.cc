#include "os/protection_model.hh"

namespace sasos::os
{

ProtectionModel::~ProtectionModel() = default;

} // namespace sasos::os
