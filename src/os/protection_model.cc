#include "os/protection_model.hh"

namespace sasos::os
{

ProtectionModel::~ProtectionModel() = default;

BatchOutcome
ProtectionModel::accessBatch(DomainId domain, const vm::VAddr *vas, u64 n,
                             vm::AccessType type)
{
    // Generic fallback: virtual dispatch per reference. Models
    // override this with a direct-call loop over their own access().
    for (u64 i = 0; i < n; ++i) {
        const AccessResult result = access(domain, vas[i], type);
        if (!result.completed)
            return {i, result};
    }
    return {n, {}};
}

} // namespace sasos::os
