/**
 * @file
 * Umbrella header for the sasos library.
 *
 * Reproduction of "Architectural Support for Single Address Space
 * Operating Systems" (Koldinger, Chase, Eggers; ASPLOS 1992): the
 * protection lookaside buffer (domain-page model), the PA-RISC
 * page-group model, and a conventional ASID baseline, on top of an
 * Opal-like single address space kernel.
 */

#ifndef SASOS_SASOS_HH
#define SASOS_SASOS_HH

#include "core/system.hh"
#include "core/system_config.hh"
#include "hw/tag_sizing.hh"
#include "os/pager.hh"
#include "os/segment_server.hh"
#include "sim/options.hh"
#include "sim/table.hh"

#endif // SASOS_SASOS_HH
