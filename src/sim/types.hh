/**
 * @file
 * Fundamental fixed-width and strong types used across the simulator.
 */

#ifndef SASOS_SIM_TYPES_HH
#define SASOS_SIM_TYPES_HH

#include <compare>
#include <cstdint>

namespace sasos
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/**
 * Simulated time, measured in processor cycles.
 *
 * A strong type so that cycle counts cannot be silently mixed with
 * byte counts or entry counts. Supports the arithmetic a cost
 * accumulator needs and nothing else.
 */
class Cycles
{
  public:
    constexpr Cycles() = default;
    constexpr explicit Cycles(u64 count) : count_(count) {}

    /** Raw cycle count. */
    constexpr u64 count() const { return count_; }

    constexpr Cycles
    operator+(Cycles other) const
    {
        return Cycles(count_ + other.count_);
    }

    constexpr Cycles &
    operator+=(Cycles other)
    {
        count_ += other.count_;
        return *this;
    }

    constexpr Cycles
    operator*(u64 factor) const
    {
        return Cycles(count_ * factor);
    }

    constexpr auto operator<=>(const Cycles &) const = default;

  private:
    u64 count_ = 0;
};

/** Scale a cycle count, e.g. `flushPerLine * lines`. */
constexpr Cycles
operator*(u64 factor, Cycles c)
{
    return c * factor;
}

} // namespace sasos

#endif // SASOS_SIM_TYPES_HH
