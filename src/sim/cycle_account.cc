#include "sim/cycle_account.hh"

#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos
{

const char *
toString(CostCategory category)
{
    switch (category) {
      case CostCategory::Reference:
        return "reference";
      case CostCategory::Refill:
        return "refill";
      case CostCategory::Trap:
        return "trap";
      case CostCategory::Upcall:
        return "upcall";
      case CostCategory::KernelWork:
        return "kernelWork";
      case CostCategory::DomainSwitch:
        return "domainSwitch";
      case CostCategory::Flush:
        return "flush";
      case CostCategory::Io:
        return "io";
      case CostCategory::NumCategories:
        break;
    }
    return "?";
}

Cycles
CycleAccount::total() const
{
    Cycles sum;
    for (Cycles c : totals_)
        sum += c;
    return sum;
}

Cycles
CycleAccount::totalExcludingIo() const
{
    Cycles sum;
    for (unsigned i = 0; i < kCount; ++i) {
        if (static_cast<CostCategory>(i) != CostCategory::Io)
            sum += totals_[i];
    }
    return sum;
}

void
CycleAccount::reset()
{
    totals_.fill(Cycles());
}

void
CycleAccount::dump(std::ostream &os, const std::string &prefix) const
{
    for (unsigned i = 0; i < kCount; ++i) {
        if (totals_[i].count() == 0)
            continue;
        os << prefix << "cycles." << toString(static_cast<CostCategory>(i))
           << " " << totals_[i].count() << "\n";
    }
    os << prefix << "cycles.total " << total().count() << "\n";
}

CycleAccount &
CycleAccount::operator+=(const CycleAccount &other)
{
    for (unsigned i = 0; i < kCount; ++i)
        totals_[i] += other.totals_[i];
    return *this;
}

void
CycleAccount::save(snap::SnapWriter &w) const
{
    w.putTag("cycles");
    w.put32(kCount);
    for (Cycles c : totals_)
        w.put64(c.count());
}

void
CycleAccount::load(snap::SnapReader &r)
{
    r.expectTag("cycles");
    const u32 count = r.get32();
    if (count != kCount)
        SASOS_FATAL("corrupt snapshot: cycle account carries ", count,
                    " categories, this build has ", kCount);
    for (unsigned i = 0; i < kCount; ++i)
        totals_[i] = Cycles(r.get64());
}

CycleAccount
CycleAccount::since(const CycleAccount &snapshot) const
{
    CycleAccount diff;
    for (unsigned i = 0; i < kCount; ++i) {
        SASOS_ASSERT(totals_[i] >= snapshot.totals_[i],
                     "snapshot is newer than this account");
        diff.totals_[i] =
            Cycles(totals_[i].count() - snapshot.totals_[i].count());
    }
    return diff;
}

} // namespace sasos
