#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>

#include "sim/logging.hh"

namespace sasos::stats
{

Stat::Stat(Group *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    SASOS_ASSERT(parent != nullptr, "stat '", name_, "' needs a group");
    parent->addStat(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value_ << " # " << desc() << "\n";
}

Histogram::Histogram(Group *parent, std::string name, std::string desc,
                     u64 bucket_width, std::size_t bucket_count)
    : Stat(parent, std::move(name), std::move(desc)),
      bucketWidth_(bucket_width), buckets_(bucket_count, 0)
{
    SASOS_ASSERT(bucket_width > 0, "zero bucket width");
    SASOS_ASSERT(bucket_count > 0, "zero bucket count");
}

void
Histogram::sample(u64 value)
{
    std::size_t index = value / bucketWidth_;
    if (index < buckets_.size())
        ++buckets_[index];
    else
        ++overflow_;
    if (samples_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++samples_;
    sum_ += value;
}

double
Histogram::mean() const
{
    return samples_ ? static_cast<double>(sum_) / samples_ : 0.0;
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ".samples " << samples_ << " # " << desc()
       << "\n";
    if (!samples_)
        return;
    os << prefix << name() << ".min " << min() << "\n";
    os << prefix << name() << ".max " << max() << "\n";
    os << prefix << name() << ".mean " << std::fixed << std::setprecision(2)
       << mean() << "\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        os << prefix << name() << ".bucket[" << i * bucketWidth_ << ","
           << (i + 1) * bucketWidth_ << ") " << buckets_[i] << "\n";
    }
    if (overflow_)
        os << prefix << name() << ".overflow " << overflow_ << "\n";
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

Formula::Formula(Group *parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : Stat(parent, std::move(name), std::move(desc)), fn_(std::move(fn))
{
    SASOS_ASSERT(fn_ != nullptr, "formula '", this->name(), "' needs a body");
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << std::fixed << std::setprecision(4)
       << fn_() << " # " << desc() << "\n";
}

Group::Group(std::string name) : name_(std::move(name)) {}

Group::Group(Group *parent, std::string name) : name_(std::move(name))
{
    SASOS_ASSERT(parent != nullptr, "child group '", name_,
                 "' needs a parent");
    parent->addChild(this);
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string my_prefix =
        name_.empty() ? prefix : prefix + name_ + ".";
    for (const Stat *stat : stats_)
        stat->dump(os, my_prefix);
    for (const Group *child : children_)
        child->dump(os, my_prefix);
}

void
Group::reset()
{
    for (Stat *stat : stats_)
        stat->reset();
    for (Group *child : children_)
        child->reset();
}

const Scalar *
Group::findScalar(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        for (const Stat *stat : stats_) {
            if (stat->name() == path)
                return dynamic_cast<const Scalar *>(stat);
        }
        return nullptr;
    }
    const std::string head = path.substr(0, dot);
    const std::string tail = path.substr(dot + 1);
    for (const Group *child : children_) {
        if (child->name() == head)
            return child->findScalar(tail);
    }
    return nullptr;
}

} // namespace sasos::stats
