#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>

#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::stats
{

Stat::Stat(Group *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    SASOS_ASSERT(parent != nullptr, "stat '", name_, "' needs a group");
    parent->addStat(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value_ << " # " << desc() << "\n";
}

void
Scalar::saveValue(snap::SnapWriter &w) const
{
    w.put64(value_);
}

void
Scalar::loadValue(snap::SnapReader &r)
{
    value_ = r.get64();
}

Histogram::Histogram(Group *parent, std::string name, std::string desc,
                     u64 bucket_width, std::size_t bucket_count)
    : Stat(parent, std::move(name), std::move(desc)),
      bucketWidth_(bucket_width), buckets_(bucket_count, 0)
{
    SASOS_ASSERT(bucket_width > 0, "zero bucket width");
    SASOS_ASSERT(bucket_count > 0, "zero bucket count");
}

void
Histogram::sample(u64 value)
{
    std::size_t index = value / bucketWidth_;
    if (index < buckets_.size())
        ++buckets_[index];
    else
        ++overflow_;
    if (samples_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++samples_;
    sum_ += value;
}

double
Histogram::mean() const
{
    return samples_ ? static_cast<double>(sum_) / samples_ : 0.0;
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ".samples " << samples_ << " # " << desc()
       << "\n";
    if (!samples_)
        return;
    os << prefix << name() << ".min " << min() << "\n";
    os << prefix << name() << ".max " << max() << "\n";
    os << prefix << name() << ".mean " << std::fixed << std::setprecision(2)
       << mean() << "\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        os << prefix << name() << ".bucket[" << i * bucketWidth_ << ","
           << (i + 1) * bucketWidth_ << ") " << buckets_[i] << "\n";
    }
    if (overflow_)
        os << prefix << name() << ".overflow " << overflow_ << "\n";
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

void
Histogram::saveValue(snap::SnapWriter &w) const
{
    w.put64(bucketWidth_);
    w.put64(buckets_.size());
    for (u64 bucket : buckets_)
        w.put64(bucket);
    w.put64(overflow_);
    w.put64(samples_);
    w.put64(sum_);
    w.put64(min_);
    w.put64(max_);
}

void
Histogram::loadValue(snap::SnapReader &r)
{
    // Geometry is structure, not value: the constructed histogram
    // must already match the snapshot's shape.
    const u64 width = r.get64();
    const u64 count = r.get64();
    if (width != bucketWidth_ || count != buckets_.size())
        SASOS_FATAL("corrupt snapshot: histogram '", name(), "' has ",
                    count, " buckets of width ", width,
                    ", this build expects ", buckets_.size(),
                    " of width ", bucketWidth_);
    for (auto &bucket : buckets_)
        bucket = r.get64();
    overflow_ = r.get64();
    samples_ = r.get64();
    sum_ = r.get64();
    min_ = r.get64();
    max_ = r.get64();
}

Formula::Formula(Group *parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : Stat(parent, std::move(name), std::move(desc)), fn_(std::move(fn))
{
    SASOS_ASSERT(fn_ != nullptr, "formula '", this->name(), "' needs a body");
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << std::fixed << std::setprecision(4)
       << fn_() << " # " << desc() << "\n";
}

Group::Group(std::string name) : name_(std::move(name)) {}

Group::Group(Group *parent, std::string name) : name_(std::move(name))
{
    SASOS_ASSERT(parent != nullptr, "child group '", name_,
                 "' needs a parent");
    parent->addChild(this);
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string my_prefix =
        name_.empty() ? prefix : prefix + name_ + ".";
    for (const Stat *stat : stats_)
        stat->dump(os, my_prefix);
    for (const Group *child : children_)
        child->dump(os, my_prefix);
}

void
Group::reset()
{
    for (Stat *stat : stats_)
        stat->reset();
    for (Group *child : children_)
        child->reset();
}

void
Group::save(snap::SnapWriter &w) const
{
    w.putTag("group");
    w.putString(name_);
    w.put64(stats_.size());
    for (const Stat *stat : stats_) {
        w.putString(stat->name());
        stat->saveValue(w);
    }
    w.put64(children_.size());
    for (const Group *child : children_)
        child->save(w);
}

void
Group::load(snap::SnapReader &r)
{
    r.expectTag("group");
    const std::string name = r.getString();
    if (name != name_)
        SASOS_FATAL("corrupt snapshot: stats group '", name,
                    "' does not match this build's '", name_, "'");
    const u64 stat_count = r.getCount();
    if (stat_count != stats_.size())
        SASOS_FATAL("corrupt snapshot: stats group '", name_,
                    "' carries ", stat_count, " stats, this build has ",
                    stats_.size());
    for (Stat *stat : stats_) {
        const std::string stat_name = r.getString();
        if (stat_name != stat->name())
            SASOS_FATAL("corrupt snapshot: stat '", stat_name,
                        "' does not match this build's '", stat->name(),
                        "' in group '", name_, "'");
        stat->loadValue(r);
    }
    const u64 child_count = r.getCount();
    if (child_count != children_.size())
        SASOS_FATAL("corrupt snapshot: stats group '", name_,
                    "' carries ", child_count,
                    " child groups, this build has ", children_.size());
    for (Group *child : children_)
        child->load(r);
}

const Scalar *
Group::findScalar(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        for (const Stat *stat : stats_) {
            if (stat->name() == path)
                return dynamic_cast<const Scalar *>(stat);
        }
        return nullptr;
    }
    const std::string head = path.substr(0, dot);
    const std::string tail = path.substr(dot + 1);
    for (const Group *child : children_) {
        if (child->name() == head)
            return child->findScalar(tail);
    }
    return nullptr;
}

} // namespace sasos::stats
