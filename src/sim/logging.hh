/**
 * @file
 * Error and status reporting, following the gem5 fatal/panic split.
 *
 * panic() is for simulator bugs (conditions that should be impossible
 * regardless of user input); fatal() is for user errors (bad
 * configuration, invalid arguments). warn()/inform() report conditions
 * without stopping the simulation.
 */

#ifndef SASOS_SIM_LOGGING_HH
#define SASOS_SIM_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace sasos
{

namespace detail
{

/** Compose a message from stream-style arguments. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);

} // namespace detail

/**
 * Intercept SASOS_FATAL instead of exiting the process. The handler
 * may throw (e.g. a fuzz harness turning bad input into a caught
 * exception); if it returns, exit(1) happens as usual. Pass nullptr
 * to restore the default. Returns the previous handler.
 */
using FatalHandler = void (*)(const std::string &message);
FatalHandler setFatalHandler(FatalHandler handler);

/** Abort: an internal invariant was violated (simulator bug). */
#define SASOS_PANIC(...) \
    ::sasos::detail::panicImpl(__FILE__, __LINE__, \
        ::sasos::detail::composeMessage(__VA_ARGS__))

/** Exit: the user asked for something unsatisfiable. */
#define SASOS_FATAL(...) \
    ::sasos::detail::fatalImpl(__FILE__, __LINE__, \
        ::sasos::detail::composeMessage(__VA_ARGS__))

/** Panic unless the condition holds. */
#define SASOS_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            SASOS_PANIC("assertion '" #cond "' failed: ", \
                        ::sasos::detail::composeMessage(__VA_ARGS__)); \
        } \
    } while (0)

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::composeMessage(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::composeMessage(std::forward<Args>(args)...));
}

} // namespace sasos

#endif // SASOS_SIM_LOGGING_HH
