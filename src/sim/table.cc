#include "sim/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace sasos
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SASOS_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    SASOS_ASSERT(cells.size() == headers_.size(), "row has ", cells.size(),
                 " cells, table has ", headers_.size(), " columns");
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto print_rule = [&] {
        os << "+";
        for (std::size_t w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t i = 0; i < cells.size(); ++i)
            os << " " << std::left << std::setw(static_cast<int>(widths[i]))
               << cells[i] << " |";
        os << "\n";
    };

    print_rule();
    print_cells(headers_);
    print_rule();
    for (const auto &row : rows_) {
        if (row.empty())
            print_rule();
        else
            print_cells(row);
    }
    print_rule();
}

std::string
TextTable::num(u64 value)
{
    // Group digits for readability: 1234567 -> 1,234,567.
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (digits.size() - i) % 3 == 0)
            out += ',';
        out += digits[i];
    }
    return out;
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::ratio(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value << "x";
    return os.str();
}

} // namespace sasos
