#include "sim/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace sasos
{

namespace
{
FatalHandler fatalHandler = nullptr;
}

FatalHandler
setFatalHandler(FatalHandler handler)
{
    FatalHandler previous = fatalHandler;
    fatalHandler = handler;
    return previous;
}

namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &message)
{
    if (fatalHandler != nullptr)
        fatalHandler(message); // may throw back into the caller
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", message.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
informImpl(const std::string &message)
{
    std::fprintf(stdout, "info: %s\n", message.c_str());
}

} // namespace detail
} // namespace sasos
