#include "sim/options.hh"

#include <cstdlib>
#include <cstring>

#include "sim/cost_model.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace sasos
{

namespace
{

/** True if arg looks like key=value with a plausible key. */
bool
splitKeyValue(const std::string &arg, std::string &key, std::string &value)
{
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    key = arg.substr(0, eq);
    for (char c : key) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' &&
            c != '_' && c != '-') {
            return false;
        }
    }
    value = arg.substr(eq + 1);
    return true;
}

} // namespace

void
Options::parseArgs(int &argc, char **argv)
{
    int out = 1;
    for (int in = 1; in < argc; ++in) {
        std::string arg = argv[in];
        if (arg.rfind("--sasos-", 0) == 0)
            arg = arg.substr(std::strlen("--sasos-"));
        std::string key, value;
        // Only swallow args that parse as key=value and do not look
        // like a flag for another parser (e.g. --benchmark_filter=x).
        if (arg.rfind("--", 0) != 0 && splitKeyValue(arg, key, value)) {
            values_[key] = value;
        } else {
            argv[out++] = argv[in];
        }
    }
    argc = out;
}

void
Options::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Options::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

u64
Options::getU64(const std::string &key, u64 def) const
{
    consumed_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const u64 value = std::strtoull(it->second.c_str(), &end, 0);
    if (end == nullptr || *end != '\0')
        SASOS_FATAL("option '", key, "': '", it->second, "' is not an int");
    return value;
}

double
Options::getDouble(const std::string &key, double def) const
{
    consumed_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0')
        SASOS_FATAL("option '", key, "': '", it->second, "' is not a number");
    return value;
}

std::string
Options::getString(const std::string &key, const std::string &def) const
{
    consumed_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

bool
Options::getBool(const std::string &key, bool def) const
{
    consumed_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes")
        return true;
    if (v == "0" || v == "false" || v == "no")
        return false;
    SASOS_FATAL("option '", key, "': '", v, "' is not a bool");
}

unsigned
Options::threads() const
{
    const u64 value = getU64("threads", 0);
    if (value != 0)
        return static_cast<unsigned>(value);
    return ThreadPool::defaultThreads();
}

const char *
Options::helpText()
{
    return "common options (key=value or --sasos-key=value):\n"
           "  model=plb|pg|conv      protection architecture preset\n"
           "  threads=N              sweep worker threads (default:\n"
           "                         hardware concurrency; 1 = serial)\n"
           "  seed=N                 top-level simulation seed\n"
           "  frames=N               physical memory frames\n"
           "  cacheKB= lineBytes= cacheWays= cacheOrg=   data cache\n"
           "  tlbEntries= tlbWays= plbEntries= pgEntries=  structures\n"
           "  eagerPg= purgeOnSwitch= flushOnSwitch= superPage=\n"
           "  cores=N                simulated cores (multi-core engine)\n"
           "  schedule_seed=N        core-interleaving schedule seed\n"
           "  mc_quantum=N           steps per scheduling turn\n"
           "  mc_ipi_delay=N         remote steps before an IPI is taken\n"
           "  faults=0|1             deterministic fault injection\n"
           "  fault_seed=N fault_rate=P fault_gap=N   injection schedule\n"
           "  trace=0|1              memory-path event tracing\n"
           "  trace_out=FILE         Perfetto JSON output\n"
           "                         (default: sasos_trace.json)\n"
           "  trace_buf=N            per-thread ring capacity, events\n"
           "  stats_out=FILE         stats export (.json or .csv)\n"
           "  farm_workers=N         sweep-farm worker processes\n"
           "  farm_checkpoint_every=N  refs between worker checkpoints\n"
           "                         (0 = no mid-cell checkpoints)\n"
           "  farm_kill_rate=P       chaos: P(one SIGKILL) per cell\n"
           "  farm_migrate_rate=P    chaos: P(preempt+migrate) per cell\n"
           "  farm_kill_seed=N       chaos schedule seed\n"
           "  farm_timeout=S farm_max_attempts=N   farm watchdog/retry\n"
           "  cost.<name>=<cycles>   cost-model override\n";
}

void
Options::applyCostOverrides(CostModel &costs) const
{
    const std::string prefix = "cost.";
    for (const auto &[key, value] : values_) {
        if (key.rfind(prefix, 0) != 0)
            continue;
        consumed_.insert(key);
        const std::string name = key.substr(prefix.size());
        char *end = nullptr;
        const u64 cycles = std::strtoull(value.c_str(), &end, 0);
        if (end == nullptr || *end != '\0')
            SASOS_FATAL("cost override '", key, "': bad value '", value, "'");
        if (!costs.set(name, cycles))
            SASOS_FATAL("unknown cost constant '", name, "'");
    }
}

std::vector<std::string>
Options::unusedKeys() const
{
    std::vector<std::string> unused;
    for (const auto &[key, value] : values_) {
        if (!consumed_.count(key))
            unused.push_back(key);
    }
    return unused;
}

} // namespace sasos
