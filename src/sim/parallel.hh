/**
 * @file
 * A work-stealing thread-pool executor for the simulation driver.
 *
 * Large experiments are sweeps of independent (model x geometry x
 * workload x seed) cells; each cell owns a complete core::System, so
 * cells share no mutable state and parallelize perfectly. The pool
 * keeps one deque per worker: owners push and pop at the back (LIFO,
 * cache-warm), idle workers steal from the front of a victim's deque
 * (FIFO, oldest -- and therefore largest -- work first). Determinism
 * is the caller's job and is easy: write results into a slot indexed
 * by cell, never into shared accumulators.
 */

#ifndef SASOS_SIM_PARALLEL_HH
#define SASOS_SIM_PARALLEL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/types.hh"

namespace sasos
{

/** A fixed-size pool of workers with per-worker deques and stealing. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param threads worker count; 0 means defaultThreads(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Queue one task; may be called from worker threads (a task may
     * spawn subtasks), in which case it lands on the caller's own
     * deque. Tasks must not throw. */
    void submit(Task task);

    /** Block until every submitted task has finished. */
    void wait();

    /** The `threads=` default: hardware concurrency, at least 1. */
    static unsigned defaultThreads();

  private:
    struct Worker
    {
        std::deque<Task> tasks;
        std::mutex mutex;
    };

    void workerLoop(unsigned self);
    /** Pop from our own deque or steal; false when everything is empty. */
    bool tryRun(unsigned self);
    void finishTask();

    std::vector<std::unique_ptr<Worker>> queues_;
    std::vector<std::thread> threads_;

    /** Guards the two condition variables below. */
    std::mutex sleepMutex_;
    /** Signals workers that a task was queued (or shutdown). */
    std::condition_variable wake_;
    /** Signals wait() that the pool drained. */
    std::condition_variable idle_;

    /** Tasks sitting in deques, not yet claimed. */
    u64 queued_ = 0;
    /** Tasks submitted and not yet finished. */
    u64 pending_ = 0;
    bool stop_ = false;
    /** Round-robin cursor for external submits. */
    u64 nextQueue_ = 0;
};

/**
 * Run fn(i) for every i in [0, n), distributed across the pool, and
 * block until all iterations finish. With a single-thread pool the
 * loop runs inline on the calling thread (no scheduling, useful both
 * as the threads=1 determinism baseline and under sanitizers).
 */
template <typename Fn>
void
parallelFor(ThreadPool &pool, u64 n, Fn &&fn)
{
    if (pool.threadCount() <= 1) {
        for (u64 i = 0; i < n; ++i)
            fn(i);
        return;
    }
    for (u64 i = 0; i < n; ++i)
        pool.submit([i, &fn] { fn(i); });
    pool.wait();
}

} // namespace sasos

#endif // SASOS_SIM_PARALLEL_HH
