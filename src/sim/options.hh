/**
 * @file
 * Minimal key=value option handling for benches and examples.
 *
 * Recognizes arguments of the form `--sasos-<key>=<value>` (or bare
 * `<key>=<value>`), removes them from argv so that downstream parsers
 * (e.g. google-benchmark) never see them, and exposes typed getters
 * with defaults. Unrecognized keys are kept and reported so typos do
 * not silently fall back to defaults.
 */

#ifndef SASOS_SIM_OPTIONS_HH
#define SASOS_SIM_OPTIONS_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sasos
{

class CostModel;

/** Parsed key=value options with typed access. */
class Options
{
  public:
    Options() = default;

    /**
     * Extract sasos options from argv, compacting it in place.
     * @param argc updated argument count.
     * @param argv updated argument vector (entries are shuffled, not
     *             freed).
     */
    void parseArgs(int &argc, char **argv);

    /** Insert or replace a single key. */
    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    /** Typed getters; record the key as consumed. */
    u64 getU64(const std::string &key, u64 def) const;
    double getDouble(const std::string &key, double def) const;
    std::string getString(const std::string &key,
                          const std::string &def) const;
    bool getBool(const std::string &key, bool def) const;

    /**
     * The `threads=` key: worker count for parallel sweep drivers.
     * Defaults to the hardware concurrency; `threads=1` forces the
     * serial path (the determinism baseline).
     */
    unsigned threads() const;

    /** One line per common key, for benches' usage text. */
    static const char *helpText();

    /**
     * Apply every `cost.<name>=<value>` option to a cost model.
     * Unknown cost names are fatal (user error).
     */
    void applyCostOverrides(CostModel &costs) const;

    /** Keys that were parsed but never consumed by a getter. */
    std::vector<std::string> unusedKeys() const;

  private:
    std::map<std::string, std::string> values_;
    mutable std::set<std::string> consumed_;
};

} // namespace sasos

#endif // SASOS_SIM_OPTIONS_HH
