#include "sim/cost_model.hh"

namespace sasos
{

CostModel::CostModel() = default;

const std::vector<CostModel::Binding> &
CostModel::bindings()
{
    static const std::vector<Binding> table = {
        {"l1Hit", &CostModel::l1Hit},
        {"l2Hit", &CostModel::l2Hit},
        {"memory", &CostModel::memory},
        {"writeback", &CostModel::writeback},
        {"cacheFlushLine", &CostModel::cacheFlushLine},
        {"tlbLookup", &CostModel::tlbLookup},
        {"offChipTlb", &CostModel::offChipTlb},
        {"tlbRefill", &CostModel::tlbRefill},
        {"plbRefill", &CostModel::plbRefill},
        {"pgCacheRefill", &CostModel::pgCacheRefill},
        {"purgeScanEntry", &CostModel::purgeScanEntry},
        {"invalidateEntry", &CostModel::invalidateEntry},
        {"pgCacheLoadEntry", &CostModel::pgCacheLoadEntry},
        {"kprRefill", &CostModel::kprRefill},
        {"keyAssign", &CostModel::keyAssign},
        {"registerWrite", &CostModel::registerWrite},
        {"kernelTrap", &CostModel::kernelTrap},
        {"serverUpcall", &CostModel::serverUpcall},
        {"domainSwitchBase", &CostModel::domainSwitchBase},
        {"interProcessorInterrupt", &CostModel::interProcessorInterrupt},
        {"ipiDispatch", &CostModel::ipiDispatch},
        {"tableUpdate", &CostModel::tableUpdate},
        {"faultDelay", &CostModel::faultDelay},
        {"diskAccess", &CostModel::diskAccess},
        {"pageCopy", &CostModel::pageCopy},
        {"compressPage", &CostModel::compressPage},
        {"decompressPage", &CostModel::decompressPage},
        {"networkRoundTrip", &CostModel::networkRoundTrip},
    };
    return table;
}

bool
CostModel::set(const std::string &name, u64 cycles)
{
    for (const Binding &binding : bindings()) {
        if (name == binding.name) {
            this->*binding.member = Cycles(cycles);
            return true;
        }
    }
    return false;
}

bool
CostModel::get(const std::string &name, u64 &cycles) const
{
    for (const Binding &binding : bindings()) {
        if (name == binding.name) {
            cycles = (this->*binding.member).count();
            return true;
        }
    }
    return false;
}

std::vector<std::string>
CostModel::names() const
{
    std::vector<std::string> result;
    result.reserve(bindings().size());
    for (const Binding &binding : bindings())
        result.emplace_back(binding.name);
    return result;
}

} // namespace sasos
