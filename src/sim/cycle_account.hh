/**
 * @file
 * Categorized cycle accounting.
 *
 * Every simulated cost is charged to one category so benches can
 * decompose where time goes (reference stream vs refills vs kernel
 * traps vs structure maintenance vs I/O), which is the level at which
 * the paper's Table 1 comparisons are made.
 */

#ifndef SASOS_SIM_CYCLE_ACCOUNT_HH
#define SASOS_SIM_CYCLE_ACCOUNT_HH

#include <array>
#include <ostream>
#include <string>

#include "sim/types.hh"

namespace sasos::snap
{
class SnapWriter;
class SnapReader;
} // namespace sasos::snap

namespace sasos
{

/** Where a charge belongs. */
enum class CostCategory : unsigned
{
    /** The user-level reference stream (cache/memory time). */
    Reference,
    /** Hardware-structure refills (TLB/PLB/page-group cache). */
    Refill,
    /** Kernel traps and returns. */
    Trap,
    /** Upcalls to user-level servers. */
    Upcall,
    /** Kernel software work (table updates, scans, purges). */
    KernelWork,
    /** Protection domain switches. */
    DomainSwitch,
    /** Cache flushes. */
    Flush,
    /** Disk, network and bulk-data time. */
    Io,
    NumCategories,
};

const char *toString(CostCategory category);

/** A per-category accumulator of simulated cycles. */
class CycleAccount
{
  public:
    CycleAccount() = default;

    void
    charge(CostCategory category, Cycles cycles)
    {
        totals_[static_cast<unsigned>(category)] += cycles;
    }

    Cycles
    byCategory(CostCategory category) const
    {
        return totals_[static_cast<unsigned>(category)];
    }

    Cycles total() const;

    /** Total excluding I/O, often the interesting comparison. */
    Cycles totalExcludingIo() const;

    void reset();

    /** One line per nonzero category. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    CycleAccount &operator+=(const CycleAccount &other);

    /** Difference since a snapshot (other must be older). */
    CycleAccount since(const CycleAccount &snapshot) const;

    /** @name Snapshot hooks */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

  private:
    static constexpr unsigned kCount =
        static_cast<unsigned>(CostCategory::NumCategories);
    std::array<Cycles, kCount> totals_{};
};

} // namespace sasos

#endif // SASOS_SIM_CYCLE_ACCOUNT_HH
