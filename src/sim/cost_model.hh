/**
 * @file
 * The latency table mapping hardware and kernel events to cycles.
 *
 * The paper's comparisons are about *counts* of structure operations
 * (register writes, purge scans, refills, traps); the cost model turns
 * those counts into simulated cycles using auditable constants. Every
 * constant can be overridden by name (see set()/Options), and the
 * headline results hold across a wide range of constants because the
 * compared quantities differ asymptotically.
 *
 * Defaults are loosely calibrated to an early-90s RISC with a software
 * TLB miss handler (e.g. MIPS R4000 class), matching the paper's
 * context.
 */

#ifndef SASOS_SIM_COST_MODEL_HH
#define SASOS_SIM_COST_MODEL_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace sasos
{

/** Named, overridable latency constants (all in cycles). */
class CostModel
{
  public:
    CostModel();

    /** @name Memory hierarchy */
    /// @{
    /** First-level cache hit (load-to-use). */
    Cycles l1Hit{1};
    /** Second-level cache hit, beyond the L1 time. */
    Cycles l2Hit{12};
    /** Main memory access, beyond the L2 time. */
    Cycles memory{80};
    /** Write back one dirty line to the next level. */
    Cycles writeback{12};
    /** Flush (and possibly write back) one cache line by instruction. */
    Cycles cacheFlushLine{2};
    /// @}

    /** @name Translation and protection structures */
    /// @{
    /** On-chip TLB lookup overlapped with the cache access. */
    Cycles tlbLookup{0};
    /** Off-chip (second-level) TLB consulted on cache miss/writeback. */
    Cycles offChipTlb{6};
    /** Software TLB miss handler: walk tables, insert entry. */
    Cycles tlbRefill{40};
    /** Software PLB miss handler: protection-table lookup, insert. */
    Cycles plbRefill{40};
    /** Page-group cache refill from the domain's group list (kernel). */
    Cycles pgCacheRefill{40};
    /** Inspect one entry during a purge scan of a PLB/TLB. */
    Cycles purgeScanEntry{1};
    /** Invalidate one matched entry. */
    Cycles invalidateEntry{1};
    /** Load one page-group entry during an explicit reload. */
    Cycles pgCacheLoadEntry{2};
    /** Key-permission register refill from canonical rights (kernel). */
    Cycles kprRefill{20};
    /** Assign or recycle a protection-key id in kernel software. */
    Cycles keyAssign{15};
    /** Write a processor control register (e.g. the PD-ID register). */
    Cycles registerWrite{1};
    /// @}

    /** @name Kernel operations */
    /// @{
    /** Trap into the kernel and return (protection fault, syscall). */
    Cycles kernelTrap{200};
    /** Upcall to a user-level segment server and back. */
    Cycles serverUpcall{400};
    /** Scheduler work on a protection domain switch, before any
     * hardware-structure maintenance. */
    Cycles domainSwitchBase{100};
    /** Interrupt a remote processor for a shootdown (send + ack). */
    Cycles interProcessorInterrupt{500};
    /** Remote side of an IPI: take the interrupt, run the maintenance
     * handler's entry/exit, resume the interrupted stream. */
    Cycles ipiDispatch{150};
    /** Update one protection/page-table entry in kernel software. */
    Cycles tableUpdate{10};
    /// @}

    /** @name Fault injection */
    /// @{
    /** Stall modeling a delayed fill injected by the fault engine. */
    Cycles faultDelay{100};
    /// @}

    /** @name I/O and bulk data */
    /// @{
    /** Disk access for one page (page-in/page-out). */
    Cycles diskAccess{400000};
    /** Copy one page of memory. */
    Cycles pageCopy{1024};
    /** Compress one page (compression paging). */
    Cycles compressPage{8192};
    /** Decompress one page. */
    Cycles decompressPage{4096};
    /** Remote-node round trip (distributed VM). */
    Cycles networkRoundTrip{20000};
    /// @}

    /**
     * Override a constant by name, e.g. set("kernelTrap", 500).
     * @return false if the name is unknown.
     */
    bool set(const std::string &name, u64 cycles);

    /** Read a constant by name. @return false if unknown. */
    bool get(const std::string &name, u64 &cycles) const;

    /** All known constant names, for help text. */
    std::vector<std::string> names() const;

  private:
    struct Binding
    {
        const char *name;
        Cycles CostModel::*member;
    };

    static const std::vector<Binding> &bindings();
};

} // namespace sasos

#endif // SASOS_SIM_COST_MODEL_HH
