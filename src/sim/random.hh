/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Uses xoshiro256** seeded through SplitMix64. All simulator
 * randomness must flow through a seeded Rng so that runs are exactly
 * reproducible; nothing here reads entropy from the environment.
 */

#ifndef SASOS_SIM_RANDOM_HH
#define SASOS_SIM_RANDOM_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace sasos::snap
{
class SnapWriter;
class SnapReader;
} // namespace sasos::snap

namespace sasos
{

/** xoshiro256** 1.0, deterministic and fast. */
class Rng
{
  public:
    explicit Rng(u64 seed);

    /** Uniform over all 64-bit values. */
    u64 next();

    /** Uniform in [0, bound); bound must be nonzero. */
    u64 nextBelow(u64 bound);

    /** Uniform in [lo, hi] inclusive. */
    u64 nextRange(u64 lo, u64 hi);

    /** Uniform real in [0, 1). */
    double nextReal();

    /** True with probability p. */
    bool bernoulli(double p);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(nextBelow(i));
            std::swap(items[i - 1], items[j]);
        }
    }

    /** @name Snapshot hooks (position in the stream) */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

  private:
    u64 state_[4];
};

/**
 * Zipf distribution over {0, ..., n-1} with skew theta.
 *
 * theta = 0 is uniform; larger theta concentrates probability on low
 * ranks. Implemented with a precomputed CDF and binary search, which
 * is exact and fast for the n (up to a few million pages) used by the
 * workload generators.
 */
class ZipfDistribution
{
  public:
    ZipfDistribution(std::size_t n, double theta);

    std::size_t operator()(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

/** Geometric distribution: number of failures before first success. */
class GeometricDistribution
{
  public:
    explicit GeometricDistribution(double p);

    u64 operator()(Rng &rng) const;

  private:
    double logOneMinusP_;
};

} // namespace sasos

#endif // SASOS_SIM_RANDOM_HH
