#include "sim/parallel.hh"

#include "sim/logging.hh"

namespace sasos
{

namespace
{

/** Which pool (if any) the current thread is a worker of, so that
 * submit() from inside a task lands on the caller's own deque. */
thread_local ThreadPool *tls_pool = nullptr;
thread_local unsigned tls_index = 0;

} // namespace

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<Worker>());
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(Task task)
{
    SASOS_ASSERT(task != nullptr, "null task submitted to the pool");
    unsigned target;
    if (tls_pool == this) {
        target = tls_index;
    } else {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        target = static_cast<unsigned>(nextQueue_++ % queues_.size());
    }
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        ++queued_;
        ++pending_;
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(sleepMutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
}

bool
ThreadPool::tryRun(unsigned self)
{
    Task task;
    // Own deque first, newest task (back): it is the cache-warm one.
    {
        Worker &own = *queues_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.back());
            own.tasks.pop_back();
        }
    }
    // Then steal the oldest task (front) from the first busy victim.
    for (unsigned step = 1; task == nullptr && step < queues_.size();
         ++step) {
        Worker &victim = *queues_[(self + step) % queues_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            task = std::move(victim.tasks.front());
            victim.tasks.pop_front();
        }
    }
    if (task == nullptr)
        return false;
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        --queued_;
    }
    task();
    finishTask();
    return true;
}

void
ThreadPool::finishTask()
{
    bool drained = false;
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        drained = --pending_ == 0;
    }
    if (drained)
        idle_.notify_all();
}

void
ThreadPool::workerLoop(unsigned self)
{
    tls_pool = this;
    tls_index = self;
    for (;;) {
        if (tryRun(self))
            continue;
        std::unique_lock<std::mutex> lock(sleepMutex_);
        wake_.wait(lock, [this] { return stop_ || queued_ > 0; });
        if (stop_ && queued_ == 0)
            return;
    }
}

} // namespace sasos
