/**
 * @file
 * Plain-text table formatting for bench output.
 *
 * Benches print the paper-artifact tables (Table 1 rows, geometry
 * tables, sweeps) through this formatter so all outputs align and can
 * be diffed between runs.
 */

#ifndef SASOS_SIM_TABLE_HH
#define SASOS_SIM_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sasos
{

/** A simple column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

    /** Format helpers for numeric cells. */
    static std::string num(u64 value);
    static std::string num(double value, int precision = 2);
    /** Ratio rendered like "3.1x". */
    static std::string ratio(double value, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; // empty row = separator
};

} // namespace sasos

#endif // SASOS_SIM_TABLE_HH
