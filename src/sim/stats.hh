/**
 * @file
 * Lightweight hierarchical statistics, in the spirit of gem5's stats
 * package.
 *
 * Components own a Group; counters (Scalar), distributions (Histogram)
 * and derived values (Formula) register themselves with their parent
 * group on construction and are dumped recursively. Everything is
 * deterministic and allocation happens only at construction time, so
 * counters can be bumped on the simulator fast path.
 */

#ifndef SASOS_SIM_STATS_HH
#define SASOS_SIM_STATS_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sasos::snap
{
class SnapWriter;
class SnapReader;
} // namespace sasos::snap

namespace sasos::stats
{

class Group;

/** Common base for all statistics: a name and a description. */
class Stat
{
  public:
    Stat(Group *parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Write one or more `name value # desc` lines. */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

    /** @name Snapshot hooks: value only, never structure. Formula
     * recomputes, so the default is stateless. */
    /// @{
    virtual void saveValue(snap::SnapWriter &) const {}
    virtual void loadValue(snap::SnapReader &) {}
    /// @}

  private:
    std::string name_;
    std::string desc_;
};

/** A monotonically growing (or directly set) 64-bit counter. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &
    operator++()
    {
        ++value_;
        return *this;
    }

    Scalar &
    operator+=(u64 delta)
    {
        value_ += delta;
        return *this;
    }

    void set(u64 value) { value_ = value; }
    u64 value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { value_ = 0; }

    void saveValue(snap::SnapWriter &w) const override;
    void loadValue(snap::SnapReader &r) override;

  private:
    u64 value_ = 0;
};

/**
 * A fixed-bucket histogram over u64 samples.
 *
 * Buckets are [0,w), [w,2w), ...; samples beyond the last bucket are
 * accumulated in an overflow bucket. Tracks min/max/mean as well.
 */
class Histogram : public Stat
{
  public:
    Histogram(Group *parent, std::string name, std::string desc,
              u64 bucket_width, std::size_t bucket_count);

    void sample(u64 value);

    u64 samples() const { return samples_; }
    u64 min() const { return samples_ ? min_ : 0; }
    u64 max() const { return max_; }
    double mean() const;
    u64 bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t bucketCount() const { return buckets_.size(); }
    u64 bucketWidth() const { return bucketWidth_; }
    u64 overflow() const { return overflow_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

    void saveValue(snap::SnapWriter &w) const override;
    void loadValue(snap::SnapReader &r) override;

  private:
    u64 bucketWidth_;
    std::vector<u64> buckets_;
    u64 overflow_ = 0;
    u64 samples_ = 0;
    u64 sum_ = 0;
    u64 min_ = 0;
    u64 max_ = 0;
};

/** A value computed at dump time, typically a ratio of Scalars. */
class Formula : public Stat
{
  public:
    Formula(Group *parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_(); }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of stats and child groups.
 *
 * Groups do not own their children; the owning component declares the
 * Group and its stats as members, so lifetimes nest naturally.
 */
class Group
{
  public:
    explicit Group(std::string name);
    Group(Group *parent, std::string name);

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return name_; }

    void addStat(Stat *stat) { stats_.push_back(stat); }
    void addChild(Group *child) { children_.push_back(child); }

    /** Dump this group's stats and all descendants. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Reset all stats in this group and descendants. */
    void reset();

    /** @name Snapshot hooks
     * The restore path a loader can rebind counters through: save()
     * records the tree shape (names, in registration order) alongside
     * the values; load() walks the identically-shaped tree of the
     * freshly constructed owner and re-seats every value, failing
     * cleanly when the snapshot's shape does not match this build.
     */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /** Find a scalar by dotted path relative to this group, or null. */
    const Scalar *findScalar(const std::string &path) const;

    /** @name Tree traversal (exporters, tests) */
    /// @{
    const std::vector<Stat *> &statsList() const { return stats_; }
    const std::vector<Group *> &childGroups() const { return children_; }
    /// @}

  private:
    std::string name_;
    std::vector<Stat *> stats_;
    std::vector<Group *> children_;
};

} // namespace sasos::stats

#endif // SASOS_SIM_STATS_HH
