#include "sim/random.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos
{

namespace
{

constexpr u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** SplitMix64 step, used only for seeding. */
u64
splitMix64(u64 &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    u64 z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(u64 seed)
{
    u64 sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

u64
Rng::next()
{
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

u64
Rng::nextBelow(u64 bound)
{
    SASOS_ASSERT(bound > 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = -bound % bound;
    for (;;) {
        const u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

u64
Rng::nextRange(u64 lo, u64 hi)
{
    SASOS_ASSERT(lo <= hi, "bad range [", lo, ",", hi, "]");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    return nextReal() < p;
}

void
Rng::save(snap::SnapWriter &w) const
{
    w.putTag("rng");
    for (u64 word : state_)
        w.put64(word);
}

void
Rng::load(snap::SnapReader &r)
{
    r.expectTag("rng");
    u64 words[4];
    for (auto &word : words)
        word = r.get64();
    // The all-zero state is xoshiro's one absorbing fixed point; no
    // seeding can produce it, so its presence means corruption.
    if (words[0] == 0 && words[1] == 0 && words[2] == 0 && words[3] == 0)
        SASOS_FATAL("corrupt snapshot: all-zero rng state");
    for (int i = 0; i < 4; ++i)
        state_[i] = words[i];
}

ZipfDistribution::ZipfDistribution(std::size_t n, double theta)
{
    SASOS_ASSERT(n > 0, "empty Zipf domain");
    SASOS_ASSERT(theta >= 0.0, "negative Zipf skew");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
        cdf_[i] = sum;
    }
    for (auto &value : cdf_)
        value /= sum;
}

std::size_t
ZipfDistribution::operator()(Rng &rng) const
{
    const double u = rng.nextReal();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
}

GeometricDistribution::GeometricDistribution(double p)
{
    SASOS_ASSERT(p > 0.0 && p <= 1.0, "geometric p out of range");
    logOneMinusP_ = std::log1p(-p);
}

u64
GeometricDistribution::operator()(Rng &rng) const
{
    if (logOneMinusP_ == 0.0)
        return 0;
    const double u = rng.nextReal();
    return static_cast<u64>(std::log1p(-u) / logOneMinusP_);
}

} // namespace sasos
