#include "farm/coordinator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <memory>
#include <poll.h>
#include <stdexcept>
#include <sys/wait.h>
#include <unistd.h>

#include "farm/wire.hh"
#include "farm/worker.hh"

/** gcov's flush hook; present only in --coverage builds. Forked
 * workers exit through _exit (no atexit, no inherited-state
 * teardown), which would otherwise drop their coverage counters. */
extern "C" void __gcov_dump(void) __attribute__((weak));

namespace sasos::farm
{

FarmOptions
FarmOptions::fromOptions(const Options &options)
{
    FarmOptions o;
    o.workers =
        static_cast<unsigned>(options.getU64("farm_workers", o.workers));
    o.checkpointEvery =
        options.getU64("farm_checkpoint_every", o.checkpointEvery);
    o.adaptiveCheckpoint =
        options.getBool("farm_adaptive", o.adaptiveCheckpoint);
    o.killRate = options.getDouble("farm_kill_rate", o.killRate);
    o.migrateRate = options.getDouble("farm_migrate_rate", o.migrateRate);
    o.killSeed = options.getU64("farm_kill_seed", o.killSeed);
    o.timeoutSec = options.getDouble("farm_timeout", o.timeoutSec);
    o.maxAttempts = static_cast<unsigned>(
        options.getU64("farm_max_attempts", o.maxAttempts));
    return o;
}

u64
adaptiveCheckpointEvery(u64 base, u64 assignments, u64 deaths)
{
    if (base == 0)
        return 0;
    if (deaths == 0)
        return base;
    // Each death weighs as four clean assignments: cadence halves
    // once deaths reach a quarter of the order count, floored at
    // base/8 (but never 0) so a pathological kill schedule cannot
    // turn the farm into a checkpoint-only storm.
    const u64 weight = assignments + 1;
    u64 scaled = base * weight / (weight + 4 * deaths);
    const u64 floor = std::max<u64>(1, base / 8);
    if (scaled < floor)
        scaled = floor;
    return std::min(scaled, base);
}

namespace
{

using Clock = std::chrono::steady_clock;

void
flushChildStreams()
{
    std::fflush(stdout);
    std::fflush(stderr);
}

[[noreturn]] void
exitChild(int status)
{
    if (__gcov_dump)
        __gcov_dump();
    ::_exit(status);
}

/** decodeMessage with the fatal rerouted into a rejection, so a
 * garbage frame from a worker is the *worker's* problem. */
struct FrameRejected : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

bool
tryDecode(const std::vector<u8> &frame, Message &out, std::string &err)
{
    FatalHandler previous =
        setFatalHandler([](const std::string &message) -> void {
            throw FrameRejected(message);
        });
    bool ok = true;
    try {
        out = decodeMessage(frame);
    } catch (const FrameRejected &rejection) {
        err = rejection.what();
        ok = false;
    }
    setFatalHandler(previous);
    return ok;
}

constexpr u64 kNoWorker = ~u64{0};

/** A queued unit of work: a cell to start from scratch or to resume
 * from a checkpoint image. */
struct PendingWork
{
    std::size_t index = 0;
    std::shared_ptr<const std::vector<u8>> image;
    u64 refsDone = 0;
    u64 completed = 0;
    u64 failed = 0;
    /** Worker that last held the cell; migrations prefer a
     * different one. */
    u64 lastWorker = kNoWorker;
};

/** Per-cell campaign bookkeeping. */
struct CellState
{
    unsigned attempts = 0;
    bool done = false;
    /** Chaos is decided once, at first assignment, so a hostile
     * schedule cannot livelock a cell. */
    bool chaosDecided = false;
    bool doomKill = false;
    u64 killAfterImages = 0;
    bool migratePlanned = false;
};

struct WorkerSlot
{
    pid_t pid = -1;
    int rfd = -1;
    int wfd = -1;
    u64 index = kNoWorker;
    bool alive = false;
    bool idle = false;
    /** Campaign position of the assigned cell; -1 when idle. */
    long cell = -1;
    /** One-shot chaos kill armed for the current assignment. */
    bool doomed = false;
    u64 killAfterImages = 0;
    u64 imagesThisCell = 0;
    /** Latest accepted checkpoint for the current assignment. */
    std::shared_ptr<const std::vector<u8>> image;
    u64 refsDone = 0;
    u64 completed = 0;
    u64 failed = 0;
    Clock::time_point lastActive;
    FrameBuffer frames;
};

class Coordinator
{
  public:
    Coordinator(const Campaign &campaign, const FarmOptions &options)
        : campaign_(campaign),
          options_(options),
          chaosRng_(options.killSeed)
    {
    }

    FarmResult
    run()
    {
        const auto start = Clock::now();
        FarmResult out;
        const std::size_t total = campaign_.size();
        results_.resize(total);
        cells_.resize(total);
        if (total == 0) {
            out.ok = true;
            return out;
        }

        // A dead peer must surface as a failed write, not SIGPIPE.
        struct sigaction ignore{};
        struct sigaction oldPipe{};
        ignore.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ignore, &oldPipe);

        for (std::size_t i = 0; i < total; ++i) {
            PendingWork work;
            work.index = i;
            queue_.push_back(std::move(work));
        }

        const unsigned width =
            options_.workers > 0 ? options_.workers : 1;
        slots_.resize(width);
        for (WorkerSlot &slot : slots_)
            spawn(slot);

        while (done_ < total && !failed()) {
            assignIdle();
            pollWorkers();
            enforceTimeouts();
        }

        shutdownAll();
        ::sigaction(SIGPIPE, &oldPipe, nullptr);

        out.ok = !failed() && done_ == total;
        out.error = error_;
        out.results = std::move(results_);
        out.stats = stats_;
        out.wallSeconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        return out;
    }

  private:
    bool failed() const { return !error_.empty(); }

    void
    fail(std::string why)
    {
        if (error_.empty())
            error_ = std::move(why);
    }

    void
    spawn(WorkerSlot &slot)
    {
        int toWorker[2];
        int fromWorker[2];
        if (::pipe(toWorker) != 0 || ::pipe(fromWorker) != 0) {
            fail(std::string("pipe: ") + std::strerror(errno));
            return;
        }
        flushChildStreams();
        const u64 index = nextWorkerIndex_++;
        const pid_t pid = ::fork();
        if (pid < 0) {
            fail(std::string("fork: ") + std::strerror(errno));
            ::close(toWorker[0]);
            ::close(toWorker[1]);
            ::close(fromWorker[0]);
            ::close(fromWorker[1]);
            return;
        }
        if (pid == 0) {
            // Child: drop every other worker's parent-side pipe end,
            // so a sibling's death is visible to the coordinator as
            // EOF the moment it happens.
            for (const WorkerSlot &other : slots_) {
                if (other.rfd >= 0)
                    ::close(other.rfd);
                if (other.wfd >= 0)
                    ::close(other.wfd);
            }
            ::close(toWorker[1]);
            ::close(fromWorker[0]);
            const int status =
                workerMain(campaign_, toWorker[0], fromWorker[1], index);
            exitChild(status);
        }
        ::close(toWorker[0]);
        ::close(fromWorker[1]);
        ::fcntl(fromWorker[0], F_SETFL,
                ::fcntl(fromWorker[0], F_GETFL) | O_NONBLOCK);
        slot = WorkerSlot{};
        slot.pid = pid;
        slot.rfd = fromWorker[0];
        slot.wfd = toWorker[1];
        slot.index = index;
        slot.alive = true;
        slot.idle = false; // Until its Hello arrives.
        slot.lastActive = Clock::now();
        ++stats_.forks;
    }

    /** Pick queued work for this slot; migrated cells prefer any
     * other worker when one is alive to take them. */
    bool
    takeWork(const WorkerSlot &slot, PendingWork &work)
    {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->lastWorker == slot.index && otherWorkerAlive(slot)) {
                continue;
            }
            work = std::move(*it);
            queue_.erase(it);
            return true;
        }
        return false;
    }

    bool
    otherWorkerAlive(const WorkerSlot &slot) const
    {
        for (const WorkerSlot &other : slots_)
            if (other.alive && other.index != slot.index)
                return true;
        return false;
    }

    void
    assignIdle()
    {
        for (WorkerSlot &slot : slots_) {
            if (failed() || queue_.empty())
                return;
            if (!slot.alive || !slot.idle)
                continue;
            PendingWork work;
            if (!takeWork(slot, work))
                continue;
            CellState &cell = cells_[work.index];
            if (cell.done)
                continue;
            ++cell.attempts;
            if (cell.attempts > options_.maxAttempts) {
                fail("cell id " +
                     std::to_string(campaign_.cells()[work.index].id) +
                     " exceeded " + std::to_string(options_.maxAttempts) +
                     " attempts");
                return;
            }
            if (!cell.chaosDecided) {
                cell.chaosDecided = true;
                cell.doomKill = chaosRng_.bernoulli(options_.killRate);
                cell.killAfterImages =
                    (cell.doomKill && options_.checkpointEvery)
                        ? chaosRng_.nextBelow(3)
                        : 0;
                cell.migratePlanned =
                    options_.checkpointEvery
                        ? chaosRng_.bernoulli(options_.migrateRate)
                        : false;
            }

            Message order;
            order.cell = campaign_.cells()[work.index].id;
            // The cadence rides in each order, so a farm under fire
            // tightens checkpointing for newly assigned cells while
            // in-flight ones keep the cadence they started with.
            order.checkpointEvery =
                options_.adaptiveCheckpoint
                    ? adaptiveCheckpointEvery(options_.checkpointEvery,
                                              assignments_, stats_.deaths)
                    : options_.checkpointEvery;
            if (work.image) {
                // Hand-off preflight: never ship a corrupt image to a
                // worker; fall back to restarting the cell.
                const std::string bad = snap::preflightEnvelope(*work.image);
                if (bad.empty()) {
                    order.kind = MsgKind::Resume;
                    order.refsDone = work.refsDone;
                    order.completed = work.completed;
                    order.failed = work.failed;
                    order.image = *work.image;
                    ++stats_.resumes;
                } else {
                    ++stats_.rejectedImages;
                    work.image.reset();
                    work.refsDone = work.completed = work.failed = 0;
                    order.kind = MsgKind::Assign;
                }
            } else {
                order.kind = MsgKind::Assign;
            }
            // A planned migration rides in the order: the worker
            // checkpoints once, ships the image stopped, and drops
            // the cell -- deterministic, unlike a raced wire Preempt.
            if (cell.migratePlanned && options_.checkpointEvery)
                order.preemptFirst = true;

            if (!writeFrame(slot.wfd, encodeMessage(order))) {
                // Worker died before taking the order; put the work
                // back untouched and reap the slot.
                --cell.attempts;
                if (order.kind == MsgKind::Resume)
                    --stats_.resumes;
                queue_.push_front(std::move(work));
                reap(slot);
                continue;
            }

            ++assignments_;
            slot.idle = false;
            slot.cell = static_cast<long>(work.index);
            slot.imagesThisCell = 0;
            slot.image = work.image;
            slot.refsDone = work.refsDone;
            slot.completed = work.completed;
            slot.failed = work.failed;
            slot.lastActive = Clock::now();
            slot.doomed = cell.doomKill;
            slot.killAfterImages = cell.killAfterImages;
            cell.doomKill = false; // One-shot.
            if (order.preemptFirst) {
                cell.migratePlanned = false; // One-shot.
                ++stats_.preempts;
            }

            if (slot.doomed && slot.killAfterImages == 0)
                chaosKill(slot);
        }
    }

    void
    chaosKill(WorkerSlot &slot)
    {
        slot.doomed = false;
        ++stats_.chaosKills;
        ::kill(slot.pid, SIGKILL);
        // Death is observed as EOF on the pipe and handled there.
    }

    void
    pollWorkers()
    {
        std::vector<struct pollfd> fds;
        std::vector<WorkerSlot *> owners;
        for (WorkerSlot &slot : slots_) {
            if (!slot.alive)
                continue;
            struct pollfd pfd;
            pfd.fd = slot.rfd;
            pfd.events = POLLIN;
            pfd.revents = 0;
            fds.push_back(pfd);
            owners.push_back(&slot);
        }
        if (fds.empty()) {
            if (done_ < campaign_.size())
                fail("no workers left alive");
            return;
        }
        const int ready = ::poll(fds.data(), fds.size(), 50);
        if (ready <= 0)
            return;
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (failed())
                return;
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
                drain(*owners[i]);
        }
    }

    /** Read everything available from a worker and act on it. */
    void
    drain(WorkerSlot &slot)
    {
        bool eof = false;
        u8 chunk[65536];
        for (;;) {
            const ssize_t n = ::read(slot.rfd, chunk, sizeof chunk);
            if (n > 0) {
                slot.frames.feed(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0) {
                eof = true;
                break;
            }
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            eof = true; // Treat a read error like a death.
            break;
        }

        std::vector<u8> frame;
        for (;;) {
            const int got = slot.frames.next(frame);
            if (got == 0)
                break;
            if (got < 0) {
                ++stats_.poisonedFrames;
                ::kill(slot.pid, SIGKILL);
                reap(slot);
                return;
            }
            Message message;
            std::string err;
            if (!tryDecode(frame, message, err)) {
                ++stats_.poisonedFrames;
                ::kill(slot.pid, SIGKILL);
                reap(slot);
                return;
            }
            handle(slot, message);
            if (!slot.alive)
                return;
        }
        if (eof)
            reap(slot);
    }

    void
    handle(WorkerSlot &slot, const Message &message)
    {
        slot.lastActive = Clock::now();
        switch (message.kind) {
          case MsgKind::Hello:
            slot.idle = true;
            return;
          case MsgKind::Image:
            handleImage(slot, message);
            return;
          case MsgKind::Done:
            handleDone(slot, message);
            return;
          default:
            ++stats_.poisonedFrames;
            ::kill(slot.pid, SIGKILL);
            reap(slot);
            return;
        }
    }

    void
    handleImage(WorkerSlot &slot, const Message &message)
    {
        if (slot.cell < 0 ||
            campaign_.cells()[static_cast<std::size_t>(slot.cell)].id !=
                message.cell) {
            ++stats_.poisonedFrames;
            ::kill(slot.pid, SIGKILL);
            reap(slot);
            return;
        }
        ++stats_.checkpointImages;
        // Acceptance preflight: a corrupt image must never become a
        // resume point. The worker that produced it is suspect.
        const std::string bad = snap::preflightEnvelope(message.image);
        if (!bad.empty()) {
            ++stats_.rejectedImages;
            ::kill(slot.pid, SIGKILL);
            reap(slot);
            return;
        }
        if (message.stopped) {
            // The worker preempted the cell; migrate it. Requeue at
            // the front, preferring a different worker.
            PendingWork work;
            work.index = static_cast<std::size_t>(slot.cell);
            work.image = std::make_shared<const std::vector<u8>>(
                message.image);
            work.refsDone = message.refsDone;
            work.completed = message.completed;
            work.failed = message.failed;
            work.lastWorker = slot.index;
            queue_.push_front(std::move(work));
            ++stats_.migrations;
            slot.cell = -1;
            slot.idle = true;
            slot.image.reset();
            return;
        }
        slot.image =
            std::make_shared<const std::vector<u8>>(message.image);
        slot.refsDone = message.refsDone;
        slot.completed = message.completed;
        slot.failed = message.failed;
        ++slot.imagesThisCell;
        if (slot.doomed && slot.imagesThisCell >= slot.killAfterImages)
            chaosKill(slot);
    }

    void
    handleDone(WorkerSlot &slot, const Message &message)
    {
        if (slot.cell < 0 ||
            campaign_.cells()[static_cast<std::size_t>(slot.cell)].id !=
                message.cell) {
            ++stats_.poisonedFrames;
            ::kill(slot.pid, SIGKILL);
            reap(slot);
            return;
        }
        const std::size_t index = static_cast<std::size_t>(slot.cell);
        CellState &cell = cells_[index];
        if (cell.done) {
            // A reassigned cell finished twice; dedup by id. The two
            // results must agree -- cells are pure functions.
            ++stats_.duplicateResults;
            const CellResult &have = results_[index];
            if (have.statsDump != message.result.statsDump ||
                have.simCycles != message.result.simCycles)
                fail("duplicate results for cell id " +
                     std::to_string(message.cell) + " diverged");
        } else {
            results_[index] = message.result;
            cell.done = true;
            ++done_;
        }
        slot.cell = -1;
        slot.idle = true;
        slot.doomed = false;
        slot.image.reset();
    }

    /** A worker is gone: collect the corpse, requeue its cell from
     * the last good checkpoint (back of the queue -- the retry
     * backoff), and refill the pool while work remains. */
    void
    reap(WorkerSlot &slot)
    {
        if (!slot.alive)
            return;
        ++stats_.deaths;
        int status = 0;
        ::waitpid(slot.pid, &status, 0);
        ::close(slot.rfd);
        ::close(slot.wfd);
        slot.rfd = slot.wfd = -1;
        slot.alive = false;
        if (slot.cell >= 0 &&
            !cells_[static_cast<std::size_t>(slot.cell)].done) {
            ++stats_.retries;
            PendingWork work;
            work.index = static_cast<std::size_t>(slot.cell);
            work.image = slot.image;
            work.refsDone = slot.refsDone;
            work.completed = slot.completed;
            work.failed = slot.failed;
            queue_.push_back(std::move(work));
        }
        slot.cell = -1;
        slot.image.reset();
        if (done_ < campaign_.size() && !failed())
            spawn(slot);
    }

    void
    enforceTimeouts()
    {
        const auto now = Clock::now();
        for (WorkerSlot &slot : slots_) {
            if (!slot.alive || slot.idle)
                continue;
            const double silent =
                std::chrono::duration<double>(now - slot.lastActive)
                    .count();
            if (silent > options_.timeoutSec) {
                ++stats_.timeouts;
                ::kill(slot.pid, SIGKILL);
                reap(slot);
            }
        }
    }

    void
    shutdownAll()
    {
        for (WorkerSlot &slot : slots_) {
            if (!slot.alive)
                continue;
            if (failed()) {
                ::kill(slot.pid, SIGKILL);
            } else {
                Message bye;
                bye.kind = MsgKind::Shutdown;
                writeFrame(slot.wfd, encodeMessage(bye));
            }
            ::close(slot.wfd);
            slot.wfd = -1;
        }
        // Give clean exits a moment; a worker stuck mid-write gets
        // its pipe drained by the close below, a stuck one is shot.
        const auto deadline = Clock::now() + std::chrono::seconds(10);
        for (WorkerSlot &slot : slots_) {
            if (!slot.alive)
                continue;
            // Drain until EOF so a worker blocked writing a large
            // frame can finish its write and exit.
            u8 chunk[65536];
            for (;;) {
                const ssize_t n = ::read(slot.rfd, chunk, sizeof chunk);
                if (n > 0)
                    continue;
                if (n < 0 &&
                    (errno == EAGAIN || errno == EWOULDBLOCK)) {
                    if (Clock::now() > deadline) {
                        ::kill(slot.pid, SIGKILL);
                        break;
                    }
                    struct pollfd pfd;
                    pfd.fd = slot.rfd;
                    pfd.events = POLLIN;
                    pfd.revents = 0;
                    ::poll(&pfd, 1, 100);
                    continue;
                }
                if (n < 0 && errno == EINTR)
                    continue;
                break; // EOF or hard error: the worker is gone.
            }
            int status = 0;
            ::waitpid(slot.pid, &status, 0);
            ::close(slot.rfd);
            slot.rfd = -1;
            slot.alive = false;
        }
    }

    const Campaign &campaign_;
    const FarmOptions &options_;
    Rng chaosRng_;
    std::vector<WorkerSlot> slots_;
    std::deque<PendingWork> queue_;
    std::vector<CellState> cells_;
    std::vector<CellResult> results_;
    FarmStats stats_;
    /** Orders successfully written, the adaptive cadence's
     * denominator. */
    u64 assignments_ = 0;
    std::size_t done_ = 0;
    u64 nextWorkerIndex_ = 0;
    std::string error_;
};

} // namespace

FarmResult
runFarm(const Campaign &campaign, const FarmOptions &options)
{
    Coordinator coordinator(campaign, options);
    return coordinator.run();
}

} // namespace sasos::farm
