/**
 * @file
 * The sweep campaign abstraction: (model x workload x seed) cells with
 * stable identities, sliced execution, and the thread-pool runner.
 *
 * Promoted from bench/sweep_runner.hh so the multi-process farm
 * (src/farm/coordinator.hh), bench_sweep and bench_snap all share one
 * campaign/cell layer. Each cell owns a complete core::System -- its
 * VmState, kernel and cycle account live inside the System object --
 * so cells share no mutable state and run on any thread *or process*.
 * Every cell draws from its own Rng seeded by the cell's seed, so a
 * campaign's output (including the full stats dump) is bit-identical
 * whatever the thread count, worker-process count or kill schedule.
 *
 * Cells carry stable ids: results are merged by id, never by
 * position, so a farm retry or migrated resume cannot double-count a
 * reassigned cell. Campaign construction asserts id uniqueness.
 *
 * Wall-clock time is the only nondeterministic field; it feeds the
 * refs/sec throughput report and the BENCH_*.json perf artifacts,
 * never the simulated results.
 */

#ifndef SASOS_FARM_CAMPAIGN_HH
#define SASOS_FARM_CAMPAIGN_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/tracer.hh"
#include "sasos.hh"
#include "sim/parallel.hh"
#include "snap/snapshot.hh"
#include "workload/address_stream.hh"

namespace sasos::farm
{

/** Factory for a cell's reference stream over its heap segment. */
using StreamFactory = std::function<std::unique_ptr<wl::AddressStream>(
    vm::VAddr base, u64 pages, u64 seed)>;

/** Sentinel: the campaign assigns this cell its position as its id. */
constexpr u64 kAutoCellId = ~u64{0};

/** One independent simulation cell of a sweep campaign. */
struct SweepCell
{
    /** Stable identity within a campaign; results, retries and
     * checkpoint hand-offs are keyed by it. kAutoCellId takes the
     * cell's campaign position. */
    u64 id = kAutoCellId;
    std::string model;
    std::string workload;
    u64 seed = 0;
    core::SystemConfig config;
    /** Heap segment size the stream ranges over. */
    u64 pages = 256;
    /** References to issue through the batched fast path. */
    u64 references = 200'000;
    vm::AccessType type = vm::AccessType::Load;
    StreamFactory makeStream;

    /** @name Warm start
     * A cell with warmRefs > 0 first executes a warm-up prefix of
     * that many references drawn from a warmSeed-seeded Rng/stream,
     * then re-seeds both from the cell's own seed for the measured
     * continuation. Because the continuation state is constructed
     * fresh in both paths, restoring the prefix from `warmImage`
     * instead of replaying it is bit-identical -- one prefix image
     * (per configuration) serves every sweep point.
     */
    /// @{
    u64 warmRefs = 0;
    u64 warmSeed = 0;
    /** Shared prefix image; null replays the prefix live (cold). */
    std::shared_ptr<const snap::Snapshot> warmImage;
    /// @}
};

/**
 * A validated set of cells. Construction resolves kAutoCellId cells
 * to their position and asserts that every id is unique -- the
 * build-time guard that makes id-keyed retry/dedup sound. Duplicate
 * ids are a SASOS_FATAL (user error in the campaign builder).
 */
class Campaign
{
  public:
    Campaign() = default;

    explicit Campaign(std::vector<SweepCell> cells)
        : cells_(std::move(cells))
    {
        for (std::size_t i = 0; i < cells_.size(); ++i) {
            if (cells_[i].id == kAutoCellId)
                cells_[i].id = i;
        }
        for (std::size_t i = 0; i < cells_.size(); ++i) {
            const auto [it, inserted] = index_.emplace(cells_[i].id, i);
            if (!inserted)
                SASOS_FATAL("campaign cells ", it->second, " and ", i,
                            " share id ", cells_[i].id,
                            "; cell ids must be unique");
        }
    }

    const std::vector<SweepCell> &cells() const { return cells_; }
    std::size_t size() const { return cells_.size(); }
    bool empty() const { return cells_.empty(); }

    /** The cell with this id; null when the id is unknown. */
    const SweepCell *
    byId(u64 id) const
    {
        const auto it = index_.find(id);
        return it == index_.end() ? nullptr : &cells_[it->second];
    }

    /** Campaign position of this id; fatal when unknown. */
    std::size_t
    indexOf(u64 id) const
    {
        const auto it = index_.find(id);
        if (it == index_.end())
            SASOS_FATAL("campaign has no cell with id ", id);
        return it->second;
    }

  private:
    std::vector<SweepCell> cells_;
    std::map<u64, std::size_t> index_;
};

/** What one cell produced. Everything except the wall-clock fields is
 * deterministic for a given cell definition. */
struct CellResult
{
    u64 id = 0;
    std::string model;
    std::string workload;
    u64 seed = 0;
    u64 references = 0;
    u64 completed = 0;
    u64 failed = 0;
    u64 simCycles = 0;
    /** Full stats + cycle-breakdown dump, for bit-identity checks. */
    std::string statsDump;
    double wallSeconds = 0.0;
    double refsPerSec = 0.0;
};

/** The cells' standard single-domain setup: one app domain with one
 * read-write heap segment, switched in.
 * @return the heap base the cell's streams range over. */
inline vm::VAddr
setupCell(core::System &sys, const SweepCell &cell)
{
    const os::DomainId app = sys.kernel().createDomain("app");
    const vm::SegmentId seg = sys.kernel().createSegment("heap", cell.pages);
    sys.kernel().attach(app, seg, vm::Access::ReadWrite);
    sys.kernel().switchTo(app);
    return sys.state().segments.find(seg)->base();
}

/**
 * One cell's in-progress execution: the System, Rng and stream plus
 * the progress tally, steppable in slices. Running a cell in any
 * slicing is bit-identical to one straight run (the property the
 * snapshot resume oracle pins), which is what lets a farm worker
 * checkpoint mid-cell and any other worker resume the image.
 *
 * Cold construction replays the warm prefix (or restores the shared
 * warm image) exactly as the serial runner does; kForRestore skips
 * all of that and only builds objects of the right shape for a
 * checkpoint overlay.
 */
class CellExecution
{
  public:
    struct ForRestore
    {
    };
    static constexpr ForRestore kForRestore{};

    /** Cold start. @param tid logical trace thread-id stamped on the
     * cell's events; keeps merged traces deterministic whatever
     * worker ran the cell. */
    CellExecution(const SweepCell &cell, u32 tid)
        : CellExecution(cell, tid, false)
    {
    }

    /** Shape-only construction for checkpoint overlay via resume(). */
    CellExecution(const SweepCell &cell, u32 tid, ForRestore)
        : CellExecution(cell, tid, true)
    {
    }

    const SweepCell &cell() const { return *cell_; }
    u64 refsDone() const { return refsDone_; }
    u64 completed() const { return completed_; }
    u64 failed() const { return failed_; }
    bool done() const { return refsDone_ >= cell_->references; }
    u64 remaining() const { return cell_->references - refsDone_; }

    /** Issue up to n further references (clamped to the target). */
    void
    step(u64 n)
    {
        if (n > remaining())
            n = remaining();
        if (n == 0)
            return;
        const core::RunResult run =
            sys_.run(*stream_, n, *rng_, cell_->type);
        completed_ += run.completed;
        failed_ += run.failed;
        refsDone_ += n;
    }

    /** Seal the execution state (System + Rng + stream) into an
     * image any same-cell CellExecution can resume. The progress
     * tally travels beside the image, not inside it. */
    snap::Snapshot
    checkpoint() const
    {
        snap::Snapshotter snapper;
        snapper.add(sys_);
        snapper.add(*rng_);
        snapper.add(*stream_);
        return snapper.finish();
    }

    /** Overlay a checkpoint of the same cell onto this execution. */
    void
    resume(const snap::Snapshot &image, u64 refs_done, u64 completed,
           u64 failed)
    {
        snap::Restorer restorer(image);
        restorer.restore(sys_);
        restorer.restore(*rng_);
        restorer.restore(*stream_);
        restorer.finish();
        refsDone_ = refs_done;
        completed_ = completed;
        failed_ = failed;
    }

    /** The cell's deterministic result plus this execution's
     * wall-clock share. Call once the cell is done. */
    CellResult
    finish()
    {
        SASOS_ASSERT(done(), "cell ", cell_->id, " finished early: ",
                     refsDone_, " of ", cell_->references, " references");
        CellResult result;
        result.id = cell_->id;
        result.model = cell_->model;
        result.workload = cell_->workload;
        result.seed = cell_->seed;
        result.references = cell_->references;
        result.completed = completed_;
        result.failed = failed_;
        result.simCycles = sys_.cycles().count();
        std::ostringstream dump;
        sys_.dumpStats(dump);
        result.statsDump = dump.str();
        result.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        result.refsPerSec =
            result.wallSeconds > 0.0
                ? static_cast<double>(cell_->references) /
                      result.wallSeconds
                : 0.0;
        return result;
    }

  private:
    CellExecution(const SweepCell &cell, u32 tid, bool for_restore)
        : cell_(&cell), sys_(cell.config)
    {
        obs::setThreadId(tid);
        start_ = std::chrono::steady_clock::now();
        const vm::VAddr base = setupCell(sys_, cell);
        if (!for_restore && cell.warmRefs) {
            if (cell.warmImage) {
                snap::Restorer restorer(*cell.warmImage);
                restorer.restore(sys_);
                restorer.finish();
            } else {
                Rng warm_rng(cell.warmSeed);
                std::unique_ptr<wl::AddressStream> warm_stream =
                    cell.makeStream(base, cell.pages, cell.warmSeed);
                sys_.run(*warm_stream, cell.warmRefs, warm_rng, cell.type);
            }
        }
        // The continuation re-seeds from the cell's own seed in both
        // the cold and warm paths, so the restored prefix is
        // indistinguishable from the replayed one.
        rng_ = std::make_unique<Rng>(cell.seed);
        stream_ = cell.makeStream(base, cell.pages, cell.seed);
    }

    const SweepCell *cell_;
    core::System sys_;
    std::unique_ptr<Rng> rng_;
    std::unique_ptr<wl::AddressStream> stream_;
    u64 refsDone_ = 0;
    u64 completed_ = 0;
    u64 failed_ = 0;
    std::chrono::steady_clock::time_point start_;
};

/** Runs campaign cells across a thread pool, deterministically. */
class SweepRunner
{
  public:
    /** @param threads worker count; 1 runs inline on the caller. */
    explicit SweepRunner(unsigned threads) : pool_(threads) {}

    unsigned threadCount() const { return pool_.threadCount(); }

    /** Replay a cell's warm-up prefix live and seal the result into
     * the prefix image its whole sweep family shares. */
    static std::shared_ptr<const snap::Snapshot>
    buildWarmImage(const SweepCell &cell)
    {
        core::System sys(cell.config);
        const vm::VAddr base = setupCell(sys, cell);
        Rng rng(cell.warmSeed);
        std::unique_ptr<wl::AddressStream> stream =
            cell.makeStream(base, cell.pages, cell.warmSeed);
        sys.run(*stream, cell.warmRefs, rng, cell.type);
        snap::Snapshotter snapper;
        snapper.add(sys);
        return std::make_shared<snap::Snapshot>(snapper.finish());
    }

    /** Run one cell start to finish on the calling thread. */
    static CellResult
    runCell(const SweepCell &cell, u32 tid = 0)
    {
        CellExecution exec(cell, tid);
        exec.step(cell.references);
        return exec.finish();
    }

    /** Run every cell; results come back in cell order regardless of
     * which thread ran what. The trace tid is the cell's id + 1. */
    std::vector<CellResult>
    run(const Campaign &campaign)
    {
        const std::vector<SweepCell> &cells = campaign.cells();
        std::vector<CellResult> results(cells.size());
        parallelFor(pool_, cells.size(), [&](u64 i) {
            results[i] =
                runCell(cells[i], static_cast<u32>(cells[i].id) + 1);
        });
        return results;
    }

    /** Convenience: validate loose cells (positional ids) and run. */
    std::vector<CellResult>
    run(const std::vector<SweepCell> &cells)
    {
        return run(Campaign(cells));
    }

  private:
    ThreadPool pool_;
};

/** Cold-vs-warm comparison for the sweep artifact's "warm" block. */
struct WarmReport
{
    /** Warm-up prefix length each cold cell replayed. */
    u64 warmRefs = 0;
    /** Prefix images built (one per sweep family). */
    u64 images = 0;
    double coldWallSeconds = 0.0;
    double buildWallSeconds = 0.0;
    double warmWallSeconds = 0.0;

    /** Cold replay time over warm restore time (builds amortized in). */
    double
    speedup() const
    {
        const double warm = buildWallSeconds + warmWallSeconds;
        return warm > 0.0 ? coldWallSeconds / warm : 0.0;
    }
};

/** One point of the perf history carried across changes. */
struct TrajectoryEntry
{
    std::string date;
    std::string commit;
    u64 threads = 0;
    double refsPerSec = 0.0;
};

namespace detail
{

/** Extract `"key": <value>` from a flat JSON object body; strings come
 * back unquoted, anything else verbatim. Tolerant: missing keys yield
 * an empty string rather than an error, so a hand-edited or
 * older-schema artifact never blocks a rewrite. */
inline std::string
extractJsonField(std::string_view body, std::string_view key)
{
    const std::string pattern = "\"" + std::string(key) + "\"";
    std::size_t pos = body.find(pattern);
    if (pos == std::string_view::npos)
        return {};
    pos = body.find(':', pos + pattern.size());
    if (pos == std::string_view::npos)
        return {};
    ++pos;
    while (pos < body.size() &&
           (body[pos] == ' ' || body[pos] == '\t' || body[pos] == '\n'))
        ++pos;
    if (pos >= body.size())
        return {};
    if (body[pos] == '"') {
        const std::size_t end = body.find('"', pos + 1);
        if (end == std::string_view::npos)
            return {};
        return std::string(body.substr(pos + 1, end - pos - 1));
    }
    std::size_t end = pos;
    while (end < body.size() && body[end] != ',' && body[end] != '}' &&
           body[end] != '\n')
        ++end;
    return std::string(body.substr(pos, end - pos));
}

} // namespace detail

/** Recover the trajectory records of an existing sweep artifact so a
 * rewrite appends to the perf history instead of erasing it. String
 * extraction, not a parser: any file without a recognizable
 * "trajectory" array simply contributes no history. */
inline std::vector<TrajectoryEntry>
readTrajectory(const std::string &path)
{
    std::vector<TrajectoryEntry> entries;
    std::ifstream is(path);
    if (!is)
        return entries;
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string text = buffer.str();
    const std::size_t key = text.find("\"trajectory\"");
    if (key == std::string::npos)
        return entries;
    const std::size_t open = text.find('[', key);
    if (open == std::string::npos)
        return entries;
    const std::size_t close = text.find(']', open);
    if (close == std::string::npos)
        return entries;
    std::size_t pos = open;
    while (true) {
        const std::size_t obj = text.find('{', pos);
        if (obj == std::string::npos || obj > close)
            break;
        const std::size_t end = text.find('}', obj);
        if (end == std::string::npos || end > close)
            break;
        const std::string_view body(text.data() + obj, end - obj + 1);
        TrajectoryEntry e;
        e.date = detail::extractJsonField(body, "date");
        e.commit = detail::extractJsonField(body, "commit");
        e.threads = static_cast<u64>(
            std::strtoull(detail::extractJsonField(body, "threads").c_str(),
                          nullptr, 10));
        e.refsPerSec = std::strtod(
            detail::extractJsonField(body, "refsPerSec").c_str(), nullptr);
        entries.push_back(std::move(e));
        pos = end + 1;
    }
    return entries;
}

/** The commit to stamp on a trajectory record: walk up from the
 * working directory (benches run from build/) to the repository root
 * and resolve .git/HEAD by hand -- loose ref, then packed-refs, then
 * a detached HEAD hash. "unknown" when no repository is found, so the
 * bench also runs from an exported tarball. */
inline std::string
headCommit()
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path dir = fs::current_path(ec);
    if (ec)
        return "unknown";
    while (true) {
        const fs::path git = dir / ".git";
        const fs::path head = git / "HEAD";
        if (fs::exists(head, ec) && !ec) {
            std::ifstream is(head);
            std::string line;
            if (!std::getline(is, line) || line.empty())
                return "unknown";
            if (line.rfind("ref: ", 0) != 0)
                return line.substr(0, 12);
            const std::string ref = line.substr(5);
            std::ifstream loose(git / ref);
            std::string hash;
            if (loose && std::getline(loose, hash) && !hash.empty())
                return hash.substr(0, 12);
            std::ifstream packed(git / "packed-refs");
            std::string pline;
            while (std::getline(packed, pline)) {
                if (pline.size() > ref.size() + 1 && pline[0] != '#' &&
                    pline.compare(pline.size() - ref.size(), ref.size(),
                                  ref) == 0)
                    return pline.substr(0, 12);
            }
            return "unknown";
        }
        const fs::path parent = dir.parent_path();
        if (parent == dir)
            return "unknown";
        dir = parent;
    }
}

/** Today as YYYY-MM-DD (UTC), for trajectory records. */
inline std::string
utcDate()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[16];
    std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", tm.tm_year + 1900,
                  tm.tm_mon + 1, tm.tm_mday);
    return buf;
}

/**
 * Emit the machine-readable sweep artifact. Schema:
 *
 *   { "bench": "sweep", "threads": N,
 *     "wallSeconds": W, "serialWallSeconds": S, "speedup": S/W,
 *     "totals": { "cells": N, "references": R, "simCycles": C,
 *                 "refsPerSec": R/W },
 *     "trajectory": [ { "date", "commit", "threads", "refsPerSec" } ],
 *     "warm": { "warmRefs", "images", "coldWallSeconds",
 *               "buildWallSeconds", "warmWallSeconds", "speedup" },
 *     "cells": [ { "id", "model", "workload", "seed", "references",
 *                  "completed", "failed", "simCycles",
 *                  "simCyclesPerRef", "wallSeconds", "refsPerSec" } ] }
 *
 * serialWallSeconds/speedup are 0 when no threads=1 reference run was
 * taken; the "warm" block only appears for warm-start sweeps. The
 * trajectory array is the perf history: records recovered from any
 * existing artifact at `path` are preserved and this run's aggregate
 * throughput is appended, so the file carries refs/sec across
 * changes instead of only remembering the latest run.
 */
inline void
writeSweepJson(const std::string &path,
               const std::vector<CellResult> &results, unsigned threads,
               double wall_seconds, double serial_wall_seconds = 0.0,
               const WarmReport *warm = nullptr)
{
    u64 total_refs = 0;
    u64 total_cycles = 0;
    for (const CellResult &cell : results) {
        total_refs += cell.references;
        total_cycles += cell.simCycles;
    }

    // Recover the history before the ofstream truncates the file.
    std::vector<TrajectoryEntry> trajectory = readTrajectory(path);
    TrajectoryEntry now;
    now.date = utcDate();
    now.commit = headCommit();
    now.threads = threads;
    now.refsPerSec = wall_seconds > 0.0
                         ? static_cast<double>(total_refs) / wall_seconds
                         : 0.0;
    trajectory.push_back(std::move(now));

    std::ofstream os(path);
    obs::JsonWriter json(os);
    json.beginObject();
    json.member("bench", "sweep");
    json.member("threads", threads);
    json.member("wallSeconds", wall_seconds);
    json.member("serialWallSeconds", serial_wall_seconds);
    json.member("speedup", wall_seconds > 0.0
                               ? serial_wall_seconds / wall_seconds
                               : 0.0);
    json.key("totals");
    json.beginObject();
    json.member("cells", static_cast<u64>(results.size()));
    json.member("references", total_refs);
    json.member("simCycles", total_cycles);
    json.member("refsPerSec",
                wall_seconds > 0.0
                    ? static_cast<double>(total_refs) / wall_seconds
                    : 0.0);
    json.endObject();
    json.key("trajectory");
    json.beginArray();
    for (const TrajectoryEntry &e : trajectory) {
        json.beginObject();
        json.member("date", e.date);
        json.member("commit", e.commit);
        json.member("threads", e.threads);
        json.member("refsPerSec", e.refsPerSec);
        json.endObject();
    }
    json.endArray();
    if (warm) {
        json.key("warm");
        json.beginObject();
        json.member("warmRefs", warm->warmRefs);
        json.member("images", warm->images);
        json.member("coldWallSeconds", warm->coldWallSeconds);
        json.member("buildWallSeconds", warm->buildWallSeconds);
        json.member("warmWallSeconds", warm->warmWallSeconds);
        json.member("speedup", warm->speedup());
        json.endObject();
    }
    json.key("cells");
    json.beginArray();
    for (const CellResult &cell : results) {
        json.beginObject();
        json.member("id", cell.id);
        json.member("model", cell.model);
        json.member("workload", cell.workload);
        json.member("seed", cell.seed);
        json.member("references", cell.references);
        json.member("completed", cell.completed);
        json.member("failed", cell.failed);
        json.member("simCycles", cell.simCycles);
        json.member("simCyclesPerRef",
                    cell.references
                        ? static_cast<double>(cell.simCycles) /
                              static_cast<double>(cell.references)
                        : 0.0);
        json.member("wallSeconds", cell.wallSeconds);
        json.member("refsPerSec", cell.refsPerSec);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
}

/** The sweep benches' standard stream recipes. */
inline std::vector<std::pair<std::string, StreamFactory>>
standardStreams()
{
    return {
        {"sequential",
         [](vm::VAddr base, u64 pages, u64) {
             return std::make_unique<wl::SequentialStream>(
                 base, pages * vm::kPageBytes, 64);
         }},
        {"uniform",
         [](vm::VAddr base, u64 pages, u64) {
             return std::make_unique<wl::UniformStream>(
                 base, pages * vm::kPageBytes);
         }},
        {"zipf",
         [](vm::VAddr base, u64 pages, u64 seed) {
             return std::make_unique<wl::ZipfPageStream>(base, pages, 0.8,
                                                         seed);
         }},
        {"working-set",
         [](vm::VAddr base, u64 pages, u64) {
             return std::make_unique<wl::WorkingSetStream>(
                 base, pages, pages / 8 ? pages / 8 : 1, 4096);
         }},
    };
}

} // namespace sasos::farm

#endif // SASOS_FARM_CAMPAIGN_HH
