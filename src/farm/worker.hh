/**
 * @file
 * The farm_worker entry point, run in a forked child of the
 * coordinator (fork without exec: a cell's StreamFactory is an
 * arbitrary closure, so the campaign definition rides into the child
 * as inherited memory instead of needing a serializable spec).
 *
 * The worker is a message loop over two inherited pipe fds: it
 * announces itself (Hello), then runs whatever cells the coordinator
 * assigns. With a checkpoint cadence it ships an unsolicited sealed
 * snapshot image every checkpointEvery references -- the
 * coordinator's resume point when this worker is killed, and its
 * migration handle when it preempts the cell. A Preempt request (or
 * SIGTERM, or a `preemptFirst` flag riding in the order itself) makes
 * the worker checkpoint at the next slice boundary, ship the image
 * flagged `stopped`, and drop the cell so another worker can resume
 * it; every path ends in results bit-identical to an uninterrupted
 * run, which the farm oracle enforces.
 */

#ifndef SASOS_FARM_WORKER_HH
#define SASOS_FARM_WORKER_HH

#include "farm/campaign.hh"

namespace sasos::farm
{

/**
 * Serve cell assignments until Shutdown or EOF.
 * @param campaign the (inherited) campaign; cells are named by id.
 * @param rfd pipe end carrying coordinator -> worker frames.
 * @param wfd pipe end carrying worker -> coordinator frames.
 * @param worker this worker's farm index, echoed in Hello.
 * @return process exit status (0 on clean shutdown).
 */
int workerMain(const Campaign &campaign, int rfd, int wfd, u64 worker);

} // namespace sasos::farm

#endif // SASOS_FARM_WORKER_HH
