#include "farm/wire.hh"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <unistd.h>

namespace sasos::farm
{

namespace
{

constexpr char kFrameTag[] = "farm.msg";

/** Byte-string bridge over SnapWriter's string encoding. */
void
putBytes(snap::SnapWriter &w, const std::vector<u8> &bytes)
{
    w.putString(std::string_view(
        reinterpret_cast<const char *>(bytes.data()), bytes.size()));
}

std::vector<u8>
getBytes(snap::SnapReader &r)
{
    const std::string s = r.getString();
    return std::vector<u8>(s.begin(), s.end());
}

u64
peekLe64(const u8 *in)
{
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<u64>(in[i]) << (8 * i);
    return v;
}

} // namespace

std::vector<u8>
encodeMessage(const Message &message)
{
    snap::SnapWriter w;
    w.putTag(kFrameTag);
    w.put8(static_cast<u8>(message.kind));
    switch (message.kind) {
      case MsgKind::Hello:
        w.put64(message.worker);
        break;
      case MsgKind::Assign:
        w.put64(message.cell);
        w.put64(message.checkpointEvery);
        w.putBool(message.preemptFirst);
        break;
      case MsgKind::Resume:
        w.put64(message.cell);
        w.put64(message.checkpointEvery);
        w.putBool(message.preemptFirst);
        w.put64(message.refsDone);
        w.put64(message.completed);
        w.put64(message.failed);
        putBytes(w, message.image);
        break;
      case MsgKind::Preempt:
        w.put64(message.cell);
        break;
      case MsgKind::Image:
        w.put64(message.cell);
        w.put64(message.refsDone);
        w.put64(message.completed);
        w.put64(message.failed);
        w.putBool(message.stopped);
        putBytes(w, message.image);
        break;
      case MsgKind::Done:
        w.put64(message.cell);
        w.putString(message.result.model);
        w.putString(message.result.workload);
        w.put64(message.result.seed);
        w.put64(message.result.references);
        w.put64(message.result.completed);
        w.put64(message.result.failed);
        w.put64(message.result.simCycles);
        w.putString(message.result.statsDump);
        w.putDouble(message.result.wallSeconds);
        w.putDouble(message.result.refsPerSec);
        break;
      case MsgKind::Shutdown:
        break;
    }
    return w.seal();
}

Message
decodeMessage(const std::vector<u8> &frame)
{
    if (frame.size() > kMaxFrameBytes)
        SASOS_FATAL("farm frame of ", frame.size(),
                    " bytes exceeds the ", kMaxFrameBytes, "-byte ceiling");
    snap::SnapReader r(frame);
    r.expectTag(kFrameTag);
    const u8 kind = r.get8();
    if (kind < static_cast<u8>(MsgKind::Hello) ||
        kind > static_cast<u8>(MsgKind::Shutdown))
        SASOS_FATAL("farm frame carries unknown message kind ",
                    static_cast<unsigned>(kind));
    Message message;
    message.kind = static_cast<MsgKind>(kind);
    switch (message.kind) {
      case MsgKind::Hello:
        message.worker = r.get64();
        break;
      case MsgKind::Assign:
        message.cell = r.get64();
        message.checkpointEvery = r.get64();
        message.preemptFirst = r.getBool();
        break;
      case MsgKind::Resume:
        message.cell = r.get64();
        message.checkpointEvery = r.get64();
        message.preemptFirst = r.getBool();
        message.refsDone = r.get64();
        message.completed = r.get64();
        message.failed = r.get64();
        message.image = getBytes(r);
        break;
      case MsgKind::Preempt:
        message.cell = r.get64();
        break;
      case MsgKind::Image:
        message.cell = r.get64();
        message.refsDone = r.get64();
        message.completed = r.get64();
        message.failed = r.get64();
        message.stopped = r.getBool();
        message.image = getBytes(r);
        break;
      case MsgKind::Done:
        message.cell = r.get64();
        message.result.id = message.cell;
        message.result.model = r.getString();
        message.result.workload = r.getString();
        message.result.seed = r.get64();
        message.result.references = r.get64();
        message.result.completed = r.get64();
        message.result.failed = r.get64();
        message.result.simCycles = r.get64();
        message.result.statsDump = r.getString();
        message.result.wallSeconds = r.getDouble();
        message.result.refsPerSec = r.getDouble();
        break;
      case MsgKind::Shutdown:
        break;
    }
    r.finish();
    return message;
}

void
FrameBuffer::feed(const u8 *data, std::size_t size)
{
    if (poisoned_)
        return;
    // Compact once the consumed prefix dominates, so a long-lived
    // worker connection does not grow the buffer without bound.
    if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + size);
}

int
FrameBuffer::next(std::vector<u8> &frame)
{
    if (poisoned_)
        return -1;
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < snap::kHeaderBytes)
        return 0;
    const u8 *head = buffer_.data() + consumed_;
    if (std::memcmp(head, snap::kMagic, sizeof(snap::kMagic)) != 0) {
        poisoned_ = true;
        error_ = "frame header has bad magic; framing lost";
        return -1;
    }
    const u64 length = peekLe64(head + 16);
    if (length > kMaxFrameBytes - snap::kHeaderBytes) {
        poisoned_ = true;
        error_ = "frame header claims " + std::to_string(length) +
                 " payload bytes, over the ceiling";
        return -1;
    }
    const std::size_t total = snap::kHeaderBytes + length;
    if (avail < total)
        return 0;
    frame.assign(head, head + total);
    consumed_ += total;
    return 1;
}

bool
writeFrame(int fd, const std::vector<u8> &frame)
{
    std::size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n = ::write(fd, frame.data() + off,
                                  frame.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

namespace
{

/** Read exactly n bytes; 0 bytes read so far + EOF is reported. */
ReadStatus
readAll(int fd, u8 *out, std::size_t n, std::string &err)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t got = ::read(fd, out + off, n - off);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            err = std::strerror(errno);
            return ReadStatus::Error;
        }
        if (got == 0) {
            if (off == 0)
                return ReadStatus::Eof;
            err = "peer closed mid-frame (" + std::to_string(off) +
                  " of " + std::to_string(n) + " bytes)";
            return ReadStatus::Error;
        }
        off += static_cast<std::size_t>(got);
    }
    return ReadStatus::Frame;
}

} // namespace

ReadStatus
readFrame(int fd, std::vector<u8> &frame, std::string &err)
{
    frame.resize(snap::kHeaderBytes);
    const ReadStatus head = readAll(fd, frame.data(), snap::kHeaderBytes,
                                    err);
    if (head != ReadStatus::Frame)
        return head;
    if (std::memcmp(frame.data(), snap::kMagic, sizeof(snap::kMagic)) !=
        0) {
        err = "frame header has bad magic";
        return ReadStatus::Error;
    }
    const u64 length = peekLe64(frame.data() + 16);
    if (length > kMaxFrameBytes - snap::kHeaderBytes) {
        err = "frame header claims " + std::to_string(length) +
              " payload bytes, over the ceiling";
        return ReadStatus::Error;
    }
    frame.resize(snap::kHeaderBytes + length);
    const ReadStatus body = readAll(fd, frame.data() + snap::kHeaderBytes,
                                    length, err);
    if (body == ReadStatus::Eof) {
        err = "peer closed between a frame's header and payload";
        return ReadStatus::Error;
    }
    return body;
}

bool
readableNow(int fd)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    return ::poll(&pfd, 1, 0) > 0 && (pfd.revents & (POLLIN | POLLHUP));
}

} // namespace sasos::farm
