#include "farm/worker.hh"

#include <csignal>
#include <unistd.h>

#include "farm/wire.hh"

namespace sasos::farm
{

namespace
{

volatile std::sig_atomic_t g_sigterm = 0;

void
onSigterm(int)
{
    g_sigterm = 1;
}

/** A control frame consumed mid-cell; tells the cell loop what to do
 * with the execution it is holding. */
struct CellVerdict
{
    bool preempt = false;
    bool shutdown = false;
};

/** Drain any control frames that arrived while the slice ran.
 * Preempt only counts when it names the running cell -- a stale
 * preempt for a cell this worker already finished must not stop the
 * next one. */
CellVerdict
drainControl(int rfd, u64 running_cell)
{
    CellVerdict verdict;
    std::string err;
    while (!verdict.shutdown && readableNow(rfd)) {
        std::vector<u8> frame;
        const ReadStatus status = readFrame(rfd, frame, err);
        if (status != ReadStatus::Frame) {
            // Coordinator gone; no one is left to ship results to.
            verdict.shutdown = true;
            break;
        }
        const Message message = decodeMessage(frame);
        switch (message.kind) {
          case MsgKind::Preempt:
            if (message.cell == running_cell)
                verdict.preempt = true;
            break;
          case MsgKind::Shutdown:
            verdict.shutdown = true;
            break;
          default:
            SASOS_FATAL("farm worker got message kind ",
                        static_cast<unsigned>(message.kind),
                        " while running a cell");
        }
    }
    if (g_sigterm)
        verdict.preempt = true;
    return verdict;
}

/** Ship a checkpoint of the running execution. */
bool
sendImage(int wfd, const CellExecution &exec, bool stopped)
{
    Message message;
    message.kind = MsgKind::Image;
    message.cell = exec.cell().id;
    message.refsDone = exec.refsDone();
    message.completed = exec.completed();
    message.failed = exec.failed();
    message.stopped = stopped;
    message.image = exec.checkpoint().bytes;
    return writeFrame(wfd, encodeMessage(message));
}

/** Run one assignment (fresh or resumed) to completion, preemption
 * or shutdown. @return false when the worker should exit. */
bool
serveCell(const Campaign &campaign, const Message &order, int rfd,
          int wfd)
{
    const SweepCell *cell = campaign.byId(order.cell);
    if (cell == nullptr)
        SASOS_FATAL("farm worker assigned unknown cell id ", order.cell);
    const u32 tid = static_cast<u32>(cell->id) + 1;

    std::unique_ptr<CellExecution> exec;
    if (order.kind == MsgKind::Resume) {
        snap::Snapshot image;
        image.bytes = order.image;
        exec = std::make_unique<CellExecution>(
            *cell, tid, CellExecution::kForRestore);
        exec->resume(image, order.refsDone, order.completed, order.failed);
    } else {
        exec = std::make_unique<CellExecution>(*cell, tid);
    }

    // With no checkpoint cadence the whole cell is one slice; control
    // frames are then only honored between cells.
    const u64 slice = order.checkpointEvery ? order.checkpointEvery
                                            : cell->references;
    while (!exec->done()) {
        exec->step(slice);
        const CellVerdict verdict = drainControl(rfd, cell->id);
        if (verdict.shutdown)
            return false;
        if (exec->done())
            break;
        if (verdict.preempt || order.preemptFirst) {
            // Final image, flagged stopped: the coordinator migrates
            // the cell to another worker from exactly this point.
            return sendImage(wfd, *exec, true);
        }
        if (order.checkpointEvery) {
            if (!sendImage(wfd, *exec, false))
                return false;
        }
    }

    Message done;
    done.kind = MsgKind::Done;
    done.cell = cell->id;
    done.result = exec->finish();
    return writeFrame(wfd, encodeMessage(done));
}

} // namespace

int
workerMain(const Campaign &campaign, int rfd, int wfd, u64 worker)
{
    // The coordinator may vanish (or SIGKILL a sibling holding the
    // pipe); writes must fail with EPIPE, not kill the process.
    std::signal(SIGPIPE, SIG_IGN);
    // SIGTERM is the out-of-band preempt: checkpoint at the next
    // slice boundary, ship the image and keep serving.
    std::signal(SIGTERM, onSigterm);

    Message hello;
    hello.kind = MsgKind::Hello;
    hello.worker = worker;
    if (!writeFrame(wfd, encodeMessage(hello)))
        return 1;

    std::string err;
    for (;;) {
        std::vector<u8> frame;
        const ReadStatus status = readFrame(rfd, frame, err);
        if (status == ReadStatus::Eof)
            return 0;
        if (status == ReadStatus::Error)
            SASOS_FATAL("farm worker ", worker, ": ", err);
        const Message message = decodeMessage(frame);
        switch (message.kind) {
          case MsgKind::Shutdown:
            return 0;
          case MsgKind::Assign:
          case MsgKind::Resume:
            if (!serveCell(campaign, message, rfd, wfd))
                return 0;
            break;
          case MsgKind::Preempt:
            // Stale: the cell it names was already finished (its
            // Done crossed the preempt on the wire). Ignore.
            break;
          default:
            SASOS_FATAL("farm worker ", worker,
                        " got unexpected message kind ",
                        static_cast<unsigned>(message.kind));
        }
        g_sigterm = 0;
    }
}

} // namespace sasos::farm
