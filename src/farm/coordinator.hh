/**
 * @file
 * The sweep farm coordinator: shards a campaign across forked worker
 * processes, distributes cells through a work queue, and uses the
 * snapshot subsystem for elastic, crash-tolerant scheduling.
 *
 * Workers talk over pipes in envelope-checked frames (wire.hh). The
 * coordinator's event loop assigns cells to idle workers, drains
 * checkpoint images (each preflighted before it is accepted as a
 * resume point, and again before hand-off), and merges finished
 * CellResults *by cell id*, so the merged output is independent of
 * which worker ran what, in which order, and how many times a cell
 * was restarted.
 *
 * Failure handling: a worker that dies (crash, chaos SIGKILL, or
 * watchdog timeout), poisons its frame stream, or ships a corrupt
 * image is reaped and its cell is requeued -- resumed from the last
 * good checkpoint image when one exists, restarted from the cell
 * start otherwise -- at the *back* of the queue (the retry backoff),
 * with a per-cell attempt cap as the giving-up point. The pool is
 * elastic: every death is replaced by a fresh fork while work
 * remains, so the farm finishes at full width even under a hostile
 * kill schedule.
 *
 * Chaos: killRate is a seeded per-cell probability of one SIGKILL
 * during that cell's service -- immediately after assignment or after
 * a seeded number of checkpoints, so both restart-from-scratch and
 * resume-from-image recovery paths are exercised. Each cell is doomed
 * at most once, so chaos never livelocks a campaign. migrateRate
 * instead preempts the cell at its first checkpoint and resumes it on
 * a different worker: the graceful elasticity path.
 *
 * Every recovery path lands on the same guarantee, enforced by
 * bench_farm and tests/farm_test.cc: the farmed results are
 * bit-identical -- stats dump, cycle account, BENCH JSON -- to a
 * serial SweepRunner run of the same campaign.
 */

#ifndef SASOS_FARM_COORDINATOR_HH
#define SASOS_FARM_COORDINATOR_HH

#include <string>
#include <vector>

#include "farm/campaign.hh"

namespace sasos::farm
{

/** Farm shape and failure-injection knobs. */
struct FarmOptions
{
    /** Worker processes (farm_workers=). */
    unsigned workers = 4;
    /** References between worker checkpoints; 0 disables mid-cell
     * checkpointing (farm_checkpoint_every=). */
    u64 checkpointEvery = 0;
    /** Adapt the checkpoint cadence to the observed kill rate
     * (farm_adaptive=): the more deaths per assignment the farm has
     * seen, the denser the checkpoints, down to base/8. Purely a
     * lost-work/IO trade -- results stay bit-identical to serial
     * either way. */
    bool adaptiveCheckpoint = false;
    /** Seeded probability of one chaos SIGKILL per cell
     * (farm_kill_rate=). */
    double killRate = 0.0;
    /** Seeded probability of one preempt-and-migrate per cell
     * (farm_migrate_rate=). */
    double migrateRate = 0.0;
    /** Chaos schedule seed (farm_kill_seed=). */
    u64 killSeed = 1;
    /** Kill a busy worker silent for this long (watchdog). */
    double timeoutSec = 120.0;
    /** Give up on a cell after this many attempts. */
    unsigned maxAttempts = 8;

    static FarmOptions fromOptions(const Options &options);
};

/** What the farm did to finish the campaign. */
struct FarmStats
{
    u64 forks = 0;
    u64 deaths = 0;
    u64 chaosKills = 0;
    u64 timeouts = 0;
    u64 retries = 0;
    u64 checkpointImages = 0;
    u64 preempts = 0;
    u64 migrations = 0;
    u64 resumes = 0;
    u64 rejectedImages = 0;
    u64 poisonedFrames = 0;
    u64 duplicateResults = 0;
};

/** The farmed campaign's outcome: results in cell order. */
struct FarmResult
{
    bool ok = false;
    std::string error;
    std::vector<CellResult> results;
    FarmStats stats;
    double wallSeconds = 0.0;
};

/**
 * The adaptive cadence: scale `base` down by the observed death rate
 * (`deaths` worker deaths over `assignments` orders issued so far).
 * A farm that never loses workers keeps the sparse base cadence; a
 * farm bleeding workers converges toward base/8, so at most ~1/8 of
 * base's worth of references can be lost to any one death. Returns 0
 * iff base is 0 (adaptivity never turns checkpointing on or off,
 * which the chaos/migration plumbing relies on).
 */
u64 adaptiveCheckpointEvery(u64 base, u64 assignments, u64 deaths);

/** Run the whole campaign across a forked worker pool. */
FarmResult runFarm(const Campaign &campaign, const FarmOptions &options);

} // namespace sasos::farm

#endif // SASOS_FARM_COORDINATOR_HH
