/**
 * @file
 * The farm's pipe protocol: length-prefixed frames reusing the
 * snapshot envelope (magic, version, payload length, FNV-1a checksum;
 * snap/snapio.hh), so every message crossing a worker pipe gets the
 * same integrity guarantees as a snapshot image -- a truncated,
 * bit-flipped, over-length or wrong-version frame is rejected before
 * a single payload byte is interpreted.
 *
 * decodeMessage() treats frames as untrusted input and SASOS_FATALs
 * on any malformation (tests reroute the fatal into an exception; the
 * coordinator wraps decoding and treats a rejection as worker death).
 * The coordinator's receive path uses FrameBuffer, an incremental
 * reassembler that validates the header -- magic and a hard frame
 * length ceiling -- before buffering a frame's payload, so a hostile
 * or corrupt length field cannot drive a huge allocation.
 */

#ifndef SASOS_FARM_WIRE_HH
#define SASOS_FARM_WIRE_HH

#include <string>
#include <vector>

#include "farm/campaign.hh"
#include "snap/snapio.hh"

namespace sasos::farm
{

/** Refuse frames longer than this (hostile length-field backstop;
 * checkpoint images of farm-sized machines are a few hundred KB). */
constexpr u64 kMaxFrameBytes = u64{1} << 28;

/** Every message crossing a farm pipe. */
enum class MsgKind : u8
{
    /** worker -> coordinator: ready for work. */
    Hello = 1,
    /** coordinator -> worker: run this cell from the start. */
    Assign = 2,
    /** coordinator -> worker: resume this cell from the attached
     * checkpoint image at the attached progress point. */
    Resume = 3,
    /** coordinator -> worker: checkpoint the named cell at the next
     * slice boundary, ship the image back and drop the cell. */
    Preempt = 4,
    /** worker -> coordinator: a checkpoint image (unsolicited every
     * checkpointEvery references, or final after Preempt/SIGTERM,
     * flagged by `stopped`). */
    Image = 5,
    /** worker -> coordinator: the cell's finished CellResult. */
    Done = 6,
    /** coordinator -> worker: exit cleanly. */
    Shutdown = 7,
};

/** One decoded farm message; which fields are meaningful depends on
 * the kind (see MsgKind). */
struct Message
{
    MsgKind kind = MsgKind::Hello;
    /** Hello: the worker's index in the farm. */
    u64 worker = 0;
    /** Assign/Resume/Preempt/Image/Done: the cell's stable id. */
    u64 cell = 0;
    /** Assign/Resume: checkpoint cadence in references (0 = none). */
    u64 checkpointEvery = 0;
    /** Resume/Image: progress tally travelling beside the image. */
    u64 refsDone = 0;
    u64 completed = 0;
    u64 failed = 0;
    /** Assign/Resume: checkpoint once, ship it stopped, and drop the
     * cell -- the planned-migration handle. Riding in the order
     * itself makes seeded migration deterministic; a wire Preempt
     * can instead race a fast cell's completion (and is then
     * correctly ignored as stale). */
    bool preemptFirst = false;
    /** Image: the worker abandoned the cell (preempt or SIGTERM). */
    bool stopped = false;
    /** Resume/Image: a sealed snapshot image (snap envelope). */
    std::vector<u8> image;
    /** Done: the finished cell. */
    CellResult result;
};

/** Seal a message into one wire frame. */
std::vector<u8> encodeMessage(const Message &message);

/** Parse one frame. Every malformation -- bad envelope, unknown
 * kind, bad tag, trailing bytes, hostile counts -- is a SASOS_FATAL
 * naming the problem. */
Message decodeMessage(const std::vector<u8> &frame);

/**
 * Incremental frame reassembly over a nonblocking fd's read chunks.
 * feed() appends bytes; next() extracts complete frames. The header
 * is validated (magic, length ceiling) as soon as it is complete;
 * a violation poisons the buffer permanently -- framing is lost, so
 * the peer cannot be trusted again.
 */
class FrameBuffer
{
  public:
    void feed(const u8 *data, std::size_t size);

    /** @return 1: a frame was extracted into `frame`; 0: need more
     * bytes; -1: poisoned (error() names why). */
    int next(std::vector<u8> &frame);

    bool poisoned() const { return poisoned_; }
    const std::string &error() const { return error_; }

    /** Bytes buffered but not yet extracted. */
    std::size_t pending() const { return buffer_.size() - consumed_; }

  private:
    std::vector<u8> buffer_;
    std::size_t consumed_ = 0;
    bool poisoned_ = false;
    std::string error_;
};

/** @name Fd plumbing
 * Blocking helpers for the worker side (and coordinator writes).
 * Writes return false when the peer is gone (EPIPE with SIGPIPE
 * ignored); reads distinguish a clean EOF from a mid-frame cut.
 */
/// @{
enum class ReadStatus
{
    Frame,
    Eof,
    Error,
};

/** Write one frame, retrying short writes. */
bool writeFrame(int fd, const std::vector<u8> &frame);

/** Read exactly one frame (blocking). Eof only at a frame boundary;
 * a mid-frame cut or malformed header is Error with `err` set. */
ReadStatus readFrame(int fd, std::vector<u8> &frame, std::string &err);

/** True when the fd has readable data (poll with zero timeout). */
bool readableNow(int fd);
/// @}

} // namespace sasos::farm

#endif // SASOS_FARM_WIRE_HH
