/**
 * @file
 * The cross-model differential oracle.
 *
 * The paper's central claim is that the PLB, page-group, conventional
 * and protection-key systems may differ in *cost* but never in
 * *outcome*: every reference is allowed or denied identically, because
 * all four derive their decisions from the same canonical protection
 * state (PAPER.md Sections 3-4). The oracle turns that claim, plus the
 * fault engine's contract (injection perturbs cached state only),
 * into an executable check:
 *
 *   1. synthesize a deterministic scenario -- domains, segments, a
 *      rights matrix, a reference trace with embedded domain switches
 *      and mid-stream rights churn -- from one seed;
 *   2. replay the identical trace against all four models, clean and
 *      with fault injection enabled;
 *   3. assert that per-reference allow/deny decision vectors and the
 *      final canonical rights state are bit-identical across all eight
 *      runs, and that no model's hardware view ever exceeds the
 *      canonical rights.
 *
 * Cycle costs legitimately differ (that difference is the paper); the
 * oracle reports them as recovery-overhead numbers instead of
 * checking them.
 */

#ifndef SASOS_FAULT_ORACLE_HH
#define SASOS_FAULT_ORACLE_HH

#include <string>
#include <vector>

#include "core/system_config.hh"
#include "fault/fault.hh"

namespace sasos::fault
{

/** One differential campaign's shape. Everything is derived from
 * `scenarioSeed`, so a campaign is reproducible bit for bit. */
struct CampaignConfig
{
    u64 scenarioSeed = 1;
    /** Schedule for the injected runs (enabled is forced on there and
     * off in the clean runs). */
    FaultConfig faults;
    /** Reference records in the trace (switches are extra). */
    u64 references = 20'000;
    u32 domains = 3;
    u32 segments = 4;
    u64 pagesPerSegment = 32;
    double storeFraction = 0.3;
    double ifetchFraction = 0.1;
    /** Probability that a record is a domain switch. */
    double switchFraction = 0.02;
    /** Apply one random rights-churn operation every N references
     * (0 disables churn). */
    u64 rightsChurnEvery = 256;
};

/** What one (model, injected?) run produced. */
struct RunOutcome
{
    std::string model;
    bool injected = false;
    u64 completed = 0;
    u64 failed = 0;
    u64 simCycles = 0;
    u64 protectionFaults = 0;
    u64 translationFaults = 0;
    u64 staleFaults = 0;
    u64 faultRetries = 0;
    /** Injector totals (0 in clean runs). */
    u64 injectedEvents = 0;
    u64 transients = 0;
    /** Per-reference allow/deny decisions, in trace order. */
    std::vector<u8> decisions;
    /** Canonical rights of every (domain, page) after the run. */
    std::string rightsSnapshot;
    /** Hardware rights never exceeded canonical rights. */
    bool hwWithinCanonical = true;
};

/** Verdict of one campaign. */
struct CampaignResult
{
    bool passed = false;
    /** Human-readable invariant violations (empty when passed). */
    std::vector<std::string> violations;
    /** Eight runs: {plb, page-group, conventional, pkey} x
     * {clean, injected}. */
    std::vector<RunOutcome> runs;
    /** References per run (identical for all runs). */
    u64 references = 0;

    /** The injected run for a model kind, for overhead reporting. */
    const RunOutcome *find(const std::string &model, bool injected) const;
};

/**
 * Run one differential campaign. The synthesized trace is written to
 * `trace_path` (overwritten if present) and replayed via
 * trace::replay against every run, so the stream each system sees is
 * exactly the on-disk artifact.
 */
CampaignResult runCampaign(const CampaignConfig &config,
                           const std::string &trace_path);

} // namespace sasos::fault

#endif // SASOS_FAULT_ORACLE_HH
