#include "fault/fault.hh"

#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::fault
{

FaultInjector::FaultInjector(const FaultConfig &config,
                             stats::Group *parent)
    : statsGroup(parent, "faults"),
      ticks(&statsGroup, "ticks", "schedule ticks (references seen)"),
      injected(&statsGroup, "injected", "perturbations injected"),
      evictions(&statsGroup, "evictions", "spurious evictions scheduled"),
      flushes(&statsGroup, "flushes", "capacity-pressure flushes"),
      delays(&statsGroup, "delays", "delayed fills"),
      transients(&statsGroup, "transients",
                 "transient protection faults raised"),
      config_(config), rng_(config.seed)
{
}

Perturbation
FaultInjector::tick()
{
    Perturbation p;
    ++tick_;
    ++ticks;
    if (!config_.enabled || !rng_.bernoulli(config_.rate))
        return p;

    ++injected;
    switch (rng_.nextBelow(6)) {
      case 0:
        p.evictProtection = true;
        ++evictions;
        break;
      case 1:
        p.evictTranslation = true;
        ++evictions;
        break;
      case 2:
        p.evictData = true;
        ++evictions;
        break;
      case 3:
        p.flushProtection = true;
        ++flushes;
        break;
      case 4:
        p.delayFill = true;
        ++delays;
        break;
      case 5:
        // A transient fault consumes a retry attempt; keep them far
        // enough apart that the bounded retry loop sees at most one
        // per reference. A blocked transient degrades to an eviction
        // so the schedule still perturbs something.
        if (tick_ >= nextTransientOk_) {
            p.transientFault = true;
            nextTransientOk_ = tick_ + config_.transientGap;
            ++transients;
        } else {
            p.evictProtection = true;
            ++evictions;
        }
        break;
    }
    return p;
}

void
FaultInjector::save(snap::SnapWriter &w) const
{
    w.putTag("injector");
    rng_.save(w);
    w.put64(tick_);
    w.put64(nextTransientOk_);
}

void
FaultInjector::load(snap::SnapReader &r)
{
    r.expectTag("injector");
    rng_.load(r);
    tick_ = r.get64();
    nextTransientOk_ = r.get64();
}


} // namespace sasos::fault
