/**
 * @file
 * Deterministic fault injection for the hardware structures.
 *
 * A FaultInjector perturbs a running system mid-stream: spurious
 * PLB/TLB/page-group-cache evictions, flash purges modeling capacity
 * pressure, delayed fills, and transient protection faults that the
 * kernel must resolve through its ordinary retry path. The schedule
 * is drawn from a seeded Rng advanced exactly once per reference, so
 * a campaign is bit-for-bit reproducible for a given (seed, rate) and
 * independent of host threading -- each simulated System owns its own
 * injector.
 *
 * The injector never touches canonical protection state. Every
 * perturbation removes or delays *cached* hardware state, which the
 * models re-derive from the kernel's tables; a transient protection
 * fault is indistinguishable from a stale-entry deny and is repaired
 * by ProtectionModel::refreshAfterFault. The differential oracle
 * (oracle.hh) turns this into a checked invariant: injection may
 * change cycle costs, never allow/deny outcomes.
 */

#ifndef SASOS_FAULT_FAULT_HH
#define SASOS_FAULT_FAULT_HH

#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace sasos::snap
{
class SnapWriter;
class SnapReader;
} // namespace sasos::snap

namespace sasos::fault
{

/** Injection schedule knobs (wired through SystemConfig/Options). */
struct FaultConfig
{
    /** Master switch (`faults=`); a disabled engine costs nothing. */
    bool enabled = false;
    /** Schedule seed (`fault_seed=`); same seed, same campaign. */
    u64 seed = 1;
    /** Per-reference injection probability (`fault_rate=`). */
    double rate = 0.01;
    /**
     * Minimum references between two transient protection faults.
     * A transient fault consumes one of a reference's bounded retry
     * attempts; spacing them out guarantees a single reference can
     * never see two and livelock the retry loop.
     */
    u64 transientGap = 64;
};

/** What the schedule asks the model to do before one reference. */
struct Perturbation
{
    /** Evict one random protection entry (PLB / page-group cache /
     * rights-carrying TLB entry). */
    bool evictProtection = false;
    /** Evict one random translation entry. */
    bool evictTranslation = false;
    /** Evict one random data-cache line (writeback if dirty). */
    bool evictData = false;
    /** Capacity pressure: flash-purge the protection structure. */
    bool flushProtection = false;
    /** Stall the reference as if its fill were delayed. */
    bool delayFill = false;
    /** Raise a transient protection fault; the kernel must retry the
     * reference to its clean-run outcome. */
    bool transientFault = false;

    bool
    any() const
    {
        return evictProtection || evictTranslation || evictData ||
               flushProtection || delayFill || transientFault;
    }
};

/** Seeded, reproducible perturbation schedule plus its statistics. */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &config, stats::Group *parent);

    const FaultConfig &config() const { return config_; }

    /**
     * Advance the schedule by one reference and return what (if
     * anything) to inject before it. Called once per model access,
     * including kernel-driven retries, in both the per-call and the
     * batched issue paths, so the schedule is identical whichever
     * path issues the references.
     */
    Perturbation tick();

    /** The schedule's Rng, shared with structure-eviction choices so
     * one seed governs the whole campaign. */
    Rng &rng() { return rng_; }

    /** @name Snapshot hooks (schedule position: rng + tick counters) */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar ticks;
    stats::Scalar injected;
    stats::Scalar evictions;
    stats::Scalar flushes;
    stats::Scalar delays;
    stats::Scalar transients;
    /// @}

  private:
    FaultConfig config_;
    Rng rng_;
    u64 tick_ = 0;
    /** First tick at which the next transient fault may fire. */
    u64 nextTransientOk_ = 0;
};

} // namespace sasos::fault

#endif // SASOS_FAULT_FAULT_HH
