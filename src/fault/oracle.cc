#include "fault/oracle.hh"

#include <sstream>

#include "core/system.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"
#include "vm/address.hh"

namespace sasos::fault
{

namespace
{

/** Rights values the scenario draws grants and churn from. */
constexpr vm::Access kPalette[] = {
    vm::Access::None,       vm::Access::Read, vm::Access::ReadWrite,
    vm::Access::ReadExecute, vm::Access::All,
};
constexpr u64 kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

/** One mid-stream rights manipulation, applied after reference
 * `afterRef` completes. Kinds: 0 setPageRights, 1 setSegmentRights,
 * 2 restrictPage(Read), 3 unrestrictPage. */
struct ChurnOp
{
    u64 afterRef = 0;
    int kind = 0;
    u32 domainIdx = 0;
    u32 segIdx = 0;
    u64 pageIdx = 0;
    vm::Access rights = vm::Access::None;
};

/** The seed-derived scenario, fixed before any system runs. Every
 * decision the campaign makes is recorded here (never taken from a
 * running system), so all eight runs see identical operation streams. */
struct Scenario
{
    /** grants[domainIdx][segIdx]; None means not attached. */
    std::vector<std::vector<vm::Access>> grants;
    std::vector<ChurnOp> churn;
};

/** Per-system handles, identical across runs by construction. */
struct Layout
{
    std::vector<os::DomainId> domains;
    std::vector<vm::SegmentId> segs;
    /** First vpn of each segment. */
    std::vector<u64> firstPage;
};

Scenario
buildScenario(const CampaignConfig &config)
{
    Scenario scenario;
    Rng rng(config.scenarioSeed);
    scenario.grants.resize(config.domains);
    for (u32 d = 0; d < config.domains; ++d) {
        scenario.grants[d].resize(config.segments);
        for (u32 s = 0; s < config.segments; ++s) {
            // Mostly real grants, some None so deny/exception paths
            // run too.
            scenario.grants[d][s] =
                rng.bernoulli(0.15)
                    ? vm::Access::None
                    : kPalette[1 + rng.nextBelow(kPaletteSize - 1)];
        }
    }
    // Every segment gets at least one attached domain, so churn's
    // setSegmentRights always has a legal target.
    for (u32 s = 0; s < config.segments; ++s) {
        bool attached = false;
        for (u32 d = 0; d < config.domains; ++d)
            attached |= scenario.grants[d][s] != vm::Access::None;
        if (!attached)
            scenario.grants[0][s] = vm::Access::All;
    }
    if (config.rightsChurnEvery > 0) {
        for (u64 at = config.rightsChurnEvery; at < config.references;
             at += config.rightsChurnEvery) {
            ChurnOp op;
            op.afterRef = at;
            op.kind = static_cast<int>(rng.nextBelow(4));
            op.domainIdx = static_cast<u32>(rng.nextBelow(config.domains));
            op.segIdx = static_cast<u32>(rng.nextBelow(config.segments));
            op.pageIdx = rng.nextBelow(config.pagesPerSegment);
            op.rights = kPalette[rng.nextBelow(kPaletteSize)];
            // setSegmentRights on an unattached segment would be an
            // implicit attach, bypassing the kernel's bookkeeping;
            // degrade to a page override instead. The guard reads only
            // the scenario, so every run degrades identically.
            if (op.kind == 1 &&
                scenario.grants[op.domainIdx][op.segIdx] ==
                    vm::Access::None) {
                op.kind = 0;
            }
            scenario.churn.push_back(op);
        }
    }
    return scenario;
}

/** Create domains and segments and apply the grant matrix. */
Layout
setupSystem(core::System &sys, const CampaignConfig &config,
            const Scenario &scenario)
{
    Layout layout;
    for (u32 d = 0; d < config.domains; ++d) {
        layout.domains.push_back(
            sys.kernel().createDomain("dom" + std::to_string(d)));
    }
    for (u32 s = 0; s < config.segments; ++s) {
        const vm::SegmentId seg = sys.kernel().createSegment(
            "seg" + std::to_string(s), config.pagesPerSegment);
        layout.segs.push_back(seg);
        const vm::Segment *segment = sys.state().segments.find(seg);
        SASOS_ASSERT(segment != nullptr, "campaign segment vanished");
        layout.firstPage.push_back(segment->firstPage.number());
    }
    for (u32 d = 0; d < config.domains; ++d) {
        for (u32 s = 0; s < config.segments; ++s) {
            if (scenario.grants[d][s] != vm::Access::None) {
                sys.kernel().attach(layout.domains[d], layout.segs[s],
                                    scenario.grants[d][s]);
            }
        }
    }
    sys.kernel().switchTo(layout.domains[0]);
    return layout;
}

/** Synthesize the reference stream into an on-disk trace. */
void
generateTrace(const CampaignConfig &config, const Layout &layout,
              const std::string &path)
{
    trace::TraceWriter writer(path);
    // Distinct stream so trace shape is independent of the grant rolls.
    Rng rng(config.scenarioSeed ^ 0x9e3779b97f4a7c15ull);
    u16 current = 0;
    u64 refs = 0;
    while (refs < config.references) {
        if (rng.bernoulli(config.switchFraction)) {
            current = static_cast<u16>(rng.nextBelow(config.domains));
            writer.append(
                trace::TraceRecord{trace::TraceOp::Switch, current, 0});
            continue;
        }
        const u64 seg = rng.nextBelow(config.segments);
        const u64 page = rng.nextBelow(config.pagesPerSegment);
        const u64 offset = rng.nextBelow(vm::kPageBytes / 8) * 8;
        const vm::Vpn vpn(layout.firstPage[seg] + page);
        const u64 addr = vm::baseOf(vpn).raw() + offset;
        const double p = rng.nextReal();
        trace::TraceOp op = trace::TraceOp::Load;
        if (p < config.storeFraction)
            op = trace::TraceOp::Store;
        else if (p < config.storeFraction + config.ifetchFraction)
            op = trace::TraceOp::IFetch;
        writer.append(trace::TraceRecord{op, current, addr});
        ++refs;
    }
    writer.close();
}

void
applyChurn(core::System &sys, const Layout &layout, const ChurnOp &op)
{
    const vm::Vpn vpn(layout.firstPage[op.segIdx] + op.pageIdx);
    switch (op.kind) {
      case 0:
        sys.kernel().setPageRights(layout.domains[op.domainIdx], vpn,
                                   op.rights);
        break;
      case 1:
        sys.kernel().setSegmentRights(layout.domains[op.domainIdx],
                                      layout.segs[op.segIdx], op.rights);
        break;
      case 2:
        sys.kernel().restrictPage(vpn, vm::Access::Read);
        break;
      case 3:
        sys.kernel().unrestrictPage(vpn);
        break;
    }
}

RunOutcome
runOne(const CampaignConfig &config, const Scenario &scenario,
       core::ModelKind kind, bool injected, const std::string &trace_path,
       const Layout &expected)
{
    core::SystemConfig sc = core::SystemConfig::forModel(kind);
    sc.faults = config.faults;
    sc.faults.enabled = injected;
    core::System sys(sc);
    const Layout layout = setupSystem(sys, config, scenario);
    SASOS_ASSERT(layout.firstPage == expected.firstPage &&
                     layout.domains == expected.domains,
                 "campaign layout diverged between systems");

    std::map<u16, os::DomainId> domain_map;
    for (u32 d = 0; d < config.domains; ++d)
        domain_map[static_cast<u16>(d)] = layout.domains[d];

    RunOutcome outcome;
    outcome.model = core::toString(kind);
    outcome.injected = injected;
    outcome.decisions.reserve(config.references);

    std::size_t next_churn = 0;
    u64 ref_index = 0;
    const trace::ReplayObserver observer =
        [&](const trace::TraceRecord &, bool ok) {
            outcome.decisions.push_back(ok ? 1 : 0);
            ++ref_index;
            while (next_churn < scenario.churn.size() &&
                   scenario.churn[next_churn].afterRef == ref_index) {
                applyChurn(sys, layout, scenario.churn[next_churn]);
                ++next_churn;
            }
        };

    trace::TraceReader reader(trace_path);
    const trace::ReplayResult replayed =
        trace::replay(sys, reader, domain_map, observer);

    outcome.completed = replayed.references - replayed.failedReferences;
    outcome.failed = replayed.failedReferences;
    outcome.simCycles = sys.cycles().count();
    outcome.protectionFaults = sys.kernel().protectionFaults.value();
    outcome.translationFaults = sys.kernel().translationFaults.value();
    outcome.staleFaults = sys.kernel().staleFaults.value();
    outcome.faultRetries = sys.kernel().faultRetries.value();
    if (sys.injector() != nullptr) {
        outcome.injectedEvents = sys.injector()->injected.value();
        outcome.transients = sys.injector()->transients.value();
    }

    // Final architectural state: canonical rights of every domain on
    // every campaign page, plus the hardware-never-exceeds-canonical
    // safety invariant.
    std::ostringstream snapshot;
    for (u32 d = 0; d < config.domains; ++d) {
        for (u32 s = 0; s < config.segments; ++s) {
            for (u64 page = 0; page < config.pagesPerSegment; ++page) {
                const vm::Vpn vpn(layout.firstPage[s] + page);
                const vm::Access canonical =
                    sys.kernel().canonicalRights(layout.domains[d], vpn);
                snapshot << static_cast<char>(
                    '0' + static_cast<u8>(canonical));
                const vm::Access hw =
                    sys.model().effectiveRights(layout.domains[d], vpn);
                if (!vm::includes(canonical, hw))
                    outcome.hwWithinCanonical = false;
            }
        }
    }
    outcome.rightsSnapshot = snapshot.str();
    return outcome;
}

std::string
runName(const RunOutcome &run)
{
    return run.model + (run.injected ? "+faults" : "+clean");
}

} // namespace

const RunOutcome *
CampaignResult::find(const std::string &model, bool injected) const
{
    for (const RunOutcome &run : runs) {
        if (run.model == model && run.injected == injected)
            return &run;
    }
    return nullptr;
}

CampaignResult
runCampaign(const CampaignConfig &config, const std::string &trace_path)
{
    const Scenario scenario = buildScenario(config);

    // Probe system: fixes the segment layout (deterministic given the
    // same creation sequence) so the trace can be generated before the
    // measured runs; each run asserts it reproduced the layout.
    Layout layout;
    {
        core::System probe(
            core::SystemConfig::forModel(core::ModelKind::Plb));
        layout = setupSystem(probe, config, scenario);
    }
    generateTrace(config, layout, trace_path);

    CampaignResult result;
    result.references = config.references;
    const core::ModelKind kinds[] = {core::ModelKind::Plb,
                                     core::ModelKind::PageGroup,
                                     core::ModelKind::Conventional,
                                     core::ModelKind::Pkey};
    for (core::ModelKind kind : kinds) {
        for (bool injected : {false, true}) {
            result.runs.push_back(runOne(config, scenario, kind, injected,
                                         trace_path, layout));
        }
    }

    // The differential checks. Cycles are deliberately not compared.
    const RunOutcome &baseline = result.runs.front();
    for (const RunOutcome &run : result.runs) {
        if (run.decisions.size() != config.references) {
            result.violations.push_back(
                runName(run) + ": replayed " +
                std::to_string(run.decisions.size()) + " references, " +
                "expected " + std::to_string(config.references));
        }
        if (!run.hwWithinCanonical) {
            result.violations.push_back(
                runName(run) +
                ": hardware rights exceed canonical rights");
        }
        if (run.decisions != baseline.decisions) {
            std::size_t at = 0;
            const std::size_t limit =
                std::min(run.decisions.size(), baseline.decisions.size());
            while (at < limit && run.decisions[at] == baseline.decisions[at])
                ++at;
            result.violations.push_back(
                runName(run) + ": allow/deny diverges from " +
                runName(baseline) + " at reference " + std::to_string(at));
        }
        if (run.rightsSnapshot != baseline.rightsSnapshot) {
            result.violations.push_back(
                runName(run) + ": final canonical rights diverge from " +
                runName(baseline));
        }
    }
    result.passed = result.violations.empty();
    return result;
}

} // namespace sasos::fault
