#include "obs/export.hh"

#include "obs/json.hh"

namespace sasos::obs
{

namespace
{

void
writeStatJson(JsonWriter &json, const stats::Stat &stat)
{
    if (const auto *scalar = dynamic_cast<const stats::Scalar *>(&stat)) {
        json.member(stat.name(), scalar->value());
        return;
    }
    if (const auto *formula = dynamic_cast<const stats::Formula *>(&stat)) {
        json.member(stat.name(), formula->value());
        return;
    }
    if (const auto *histogram =
            dynamic_cast<const stats::Histogram *>(&stat)) {
        json.key(stat.name());
        json.beginObject();
        json.member("samples", histogram->samples());
        json.member("min", histogram->min());
        json.member("max", histogram->max());
        json.member("mean", histogram->mean());
        json.key("buckets");
        json.beginArray();
        for (std::size_t i = 0; i < histogram->bucketCount(); ++i) {
            if (histogram->bucket(i) == 0)
                continue;
            json.beginObject();
            json.member("lo", i * histogram->bucketWidth());
            json.member("hi", (i + 1) * histogram->bucketWidth());
            json.member("count", histogram->bucket(i));
            json.endObject();
        }
        json.endArray();
        if (histogram->overflow())
            json.member("overflow", histogram->overflow());
        json.endObject();
        return;
    }
    // An unknown Stat subclass still shows up, as its dump text would.
    json.member(stat.name(), "?");
}

void
writeGroupJson(JsonWriter &json, const stats::Group &group)
{
    for (const stats::Stat *stat : group.statsList())
        writeStatJson(json, *stat);
    for (const stats::Group *child : group.childGroups()) {
        json.key(child->name());
        json.beginObject();
        writeGroupJson(json, *child);
        json.endObject();
    }
}

void
writeCyclesJson(JsonWriter &json, const CycleAccount &account)
{
    json.member("total", account.total().count());
    for (unsigned i = 0;
         i < static_cast<unsigned>(CostCategory::NumCategories); ++i) {
        const auto category = static_cast<CostCategory>(i);
        const Cycles cycles = account.byCategory(category);
        if (cycles.count() != 0)
            json.member(toString(category), cycles.count());
    }
}

void
writeGroupCsv(std::ostream &os, const stats::Group &group,
              const std::string &prefix)
{
    const std::string here =
        group.name().empty() ? prefix : prefix + group.name() + ".";
    for (const stats::Stat *stat : group.statsList()) {
        if (const auto *scalar = dynamic_cast<const stats::Scalar *>(stat)) {
            os << here << stat->name() << "," << scalar->value() << "\n";
        } else if (const auto *formula =
                       dynamic_cast<const stats::Formula *>(stat)) {
            os << here << stat->name() << "," << formula->value() << "\n";
        } else if (const auto *histogram =
                       dynamic_cast<const stats::Histogram *>(stat)) {
            os << here << stat->name() << ".samples,"
               << histogram->samples() << "\n";
            os << here << stat->name() << ".min," << histogram->min()
               << "\n";
            os << here << stat->name() << ".max," << histogram->max()
               << "\n";
            os << here << stat->name() << ".mean," << histogram->mean()
               << "\n";
        }
    }
    for (const stats::Group *child : group.childGroups())
        writeGroupCsv(os, *child, here);
}

} // namespace

void
writeStatsJson(std::ostream &os, const stats::Group &root,
               const CycleAccount *account)
{
    JsonWriter json(os);
    json.beginObject();
    json.key("stats");
    json.beginObject();
    json.key(root.name().empty() ? "stats" : root.name());
    json.beginObject();
    writeGroupJson(json, root);
    json.endObject();
    json.endObject();
    if (account != nullptr) {
        json.key("cycles");
        json.beginObject();
        writeCyclesJson(json, *account);
        json.endObject();
    }
    json.endObject();
}

void
writeStatsCsv(std::ostream &os, const stats::Group &root,
              const CycleAccount *account)
{
    os << "stat,value\n";
    writeGroupCsv(os, root, "");
    if (account != nullptr) {
        os << "cycles.total," << account->total().count() << "\n";
        for (unsigned i = 0;
             i < static_cast<unsigned>(CostCategory::NumCategories); ++i) {
            const auto category = static_cast<CostCategory>(i);
            const Cycles cycles = account->byCategory(category);
            if (cycles.count() != 0) {
                os << "cycles." << toString(category) << ","
                   << cycles.count() << "\n";
            }
        }
    }
}

} // namespace sasos::obs
