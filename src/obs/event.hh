/**
 * @file
 * The memory-path event vocabulary.
 *
 * One Event is emitted per interesting step of a reference's walk
 * through the machine: the access itself (a begin/end span), each
 * hardware structure's hit/miss/fill/evict, protection and
 * translation faults, the kernel's resolve-and-retry span, domain
 * switches and SMP shootdowns. Events carry the simulated cycle at
 * emission, so a trace decomposes exactly the costs the paper's
 * Table 1 argues about.
 */

#ifndef SASOS_OBS_EVENT_HH
#define SASOS_OBS_EVENT_HH

#include "sim/types.hh"

namespace sasos::obs
{

/** What happened on the memory path. */
enum class EventKind : u8
{
    /** One reference entering / leaving the machine (B/E span). */
    AccessBegin,
    AccessEnd,
    /** Protection lookaside buffer. */
    PlbHit,
    PlbMiss,
    PlbFill,
    PlbEvict,
    /** Translation (or combined) TLB. */
    TlbHit,
    TlbMiss,
    TlbFill,
    TlbEvict,
    /** Page-group (PID) cache. */
    PgCacheHit,
    PgCacheMiss,
    PgCacheFill,
    PgCacheEvict,
    /** First-level data cache. */
    DCacheHit,
    DCacheMiss,
    DCacheEvict,
    /** A whole protection structure flushed (injection, purge). */
    ProtectionFlush,
    /** Faults raised by the hardware. */
    ProtectionFault,
    TranslationFault,
    /** The kernel's fault resolution for one reference (B/E span). */
    KernelResolveBegin,
    KernelResolveEnd,
    /** A fault was repaired and the reference retries. */
    FaultRetry,
    /** The processor switched protection domains. */
    DomainSwitch,
    /** A broadcast maintenance operation interrupted remote CPUs. */
    Shootdown,
    /** A remote core took the IPI and applied the maintenance. */
    ShootdownAck,
    /** The last remote core acked; the issuer resumes. */
    ShootdownComplete,
    NumKinds,
};

/** Display name; begin/end pairs share one name ("access"). */
const char *toString(EventKind kind);

/** Chrome trace-event phase: 'B', 'E' or 'i' (instant). */
char phaseOf(EventKind kind);

/** One traced occurrence. 32 bytes; rings hold these by value. */
struct Event
{
    /** Simulated cycle (CycleAccount total) at emission. */
    u64 cycle = 0;
    /** Virtual address or structure-specific payload. */
    u64 addr = 0;
    /** Secondary payload (domain, rights, size shift, CPU count...). */
    u64 arg = 0;
    /** Logical thread (sweep cell) the event belongs to. */
    u32 tid = 0;
    /** Emission order within `tid`; normalized to 0..n-1 on merge. */
    u32 seq = 0;
    EventKind kind = EventKind::AccessBegin;
};

} // namespace sasos::obs

#endif // SASOS_OBS_EVENT_HH
