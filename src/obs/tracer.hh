/**
 * @file
 * Per-thread, lock-free ring-buffer event tracer for the memory path.
 *
 * Emission is a single predicted branch when tracing is disabled (the
 * SASOS_OBS_EVENT macro evaluates none of its arguments), and when
 * enabled appends into a thread-local ring: no locks, no allocation
 * and no formatting on the hot path. Rings are registered once per
 * OS thread; a full ring overwrites its oldest event and counts the
 * drop, so tracing never stalls the simulation.
 *
 * Events carry a *logical* thread id (sweep cell index, set via
 * setThreadId) rather than the OS thread, and a per-emission sequence
 * number, so stopTracing() can merge all rings into one stream
 * ordered by (cycle, tid, seq) -- bit-identical whatever the worker
 * count that ran the cells.
 *
 * start/stop must not race with emission: enable tracing before
 * issuing references and stop it after the workers have drained,
 * which is how ScopedTrace and the sweep driver use it.
 */

#ifndef SASOS_OBS_TRACER_HH
#define SASOS_OBS_TRACER_HH

#include <atomic>
#include <string>
#include <vector>

#include "obs/event.hh"

namespace sasos
{
class Options;
}

namespace sasos::obs
{

/** Tracer knobs (the trace_buf= option). */
struct TracerConfig
{
    /** Ring capacity, in events, per emitting thread. */
    u64 bufferEvents = u64{1} << 20;
};

namespace detail
{
extern std::atomic<bool> enabledFlag;
} // namespace detail

/** True while a trace session is collecting events. */
inline bool
enabled()
{
    return detail::enabledFlag.load(std::memory_order_relaxed);
}

/**
 * The emission hot-path hook. Compiles to one predicted-untaken
 * branch when tracing is off; `cycle`, `addr` and `arg` are not
 * evaluated unless it is on.
 */
#define SASOS_OBS_EVENT(kind, cycle, addr, arg)                           \
    do {                                                                  \
        if (::sasos::obs::enabled()) [[unlikely]] {                       \
            ::sasos::obs::emit((kind), (cycle), (addr), (arg));           \
        }                                                                 \
    } while (0)

/** Append one event to the calling thread's ring (the slow path;
 * callers normally go through SASOS_OBS_EVENT). */
void emit(EventKind kind, u64 cycle, u64 addr = 0, u64 arg = 0);

/** Set the logical thread id stamped on this thread's subsequent
 * events (e.g. the sweep cell index). Defaults to 0. */
void setThreadId(u32 tid);

/** Begin collecting; resets all rings and the drop counter. */
void startTracing(const TracerConfig &config = {});

/**
 * Stop collecting and merge every thread's ring into one stream,
 * ordered by (cycle, tid, seq); seq is renumbered 0..n-1 within each
 * tid so the merge is reproducible across worker counts.
 */
std::vector<Event> stopTracing();

/** Events overwritten because a ring was full (since startTracing). */
u64 droppedEvents();

/**
 * Options-driven session: `trace=1` starts tracing on construction;
 * destruction stops it and writes the Perfetto JSON to `trace_out=`
 * (default sasos_trace.json). `trace_buf=` sizes the per-thread
 * rings. A default-constructed / trace=0 scope is inert.
 */
class ScopedTrace
{
  public:
    ScopedTrace() = default;
    explicit ScopedTrace(const Options &options);
    ~ScopedTrace();

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

    bool active() const { return active_; }
    const std::string &path() const { return path_; }

  private:
    bool active_ = false;
    std::string path_;
};

} // namespace sasos::obs

#endif // SASOS_OBS_TRACER_HH
