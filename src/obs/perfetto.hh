/**
 * @file
 * Chrome/Perfetto `trace-event` JSON export of a merged event stream.
 *
 * The emitted document follows the Trace Event Format (JSON Array
 * variant wrapped in an object) and loads directly in ui.perfetto.dev
 * or chrome://tracing: access and kernel-resolve events become
 * duration (B/E) spans, everything else thread-scoped instants. The
 * simulated cycle is used as the timestamp, so span widths read as
 * simulated cost.
 */

#ifndef SASOS_OBS_PERFETTO_HH
#define SASOS_OBS_PERFETTO_HH

#include <ostream>
#include <vector>

#include "obs/event.hh"

namespace sasos::obs
{

/**
 * Write `events` (as produced by stopTracing: sorted, seq-normalized)
 * as trace-event JSON. `dropped` is recorded in otherData so a
 * truncated ring is visible in the artifact.
 */
void writePerfettoJson(std::ostream &os, const std::vector<Event> &events,
                       u64 dropped = 0);

} // namespace sasos::obs

#endif // SASOS_OBS_PERFETTO_HH
