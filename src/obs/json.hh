/**
 * @file
 * A minimal streaming JSON writer.
 *
 * One shared emitter for every machine-readable artifact (Perfetto
 * traces, stats exports, BENCH_*.json), replacing the hand-rolled
 * `os << "{ \"key\": ..."` blocks that each bench used to carry. The
 * writer tracks nesting and comma placement; callers just alternate
 * key()/value() calls. Output is deterministic: keys are emitted in
 * call order and doubles print with enough digits to round-trip.
 */

#ifndef SASOS_OBS_JSON_HH
#define SASOS_OBS_JSON_HH

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hh"

namespace sasos::obs
{

/** Escape for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view text);

/** Streaming writer with automatic commas and 2-space indentation. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true)
        : os_(os), pretty_(pretty)
    {
    }

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    /** @name Containers */
    /// @{
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    /// @}

    /** Emit the key of the next member (inside an object). */
    void key(std::string_view name);

    /** @name Values (array elements or the value after a key) */
    /// @{
    void value(std::string_view text);
    void value(const char *text) { value(std::string_view(text)); }
    void value(bool boolean);
    void value(u64 number);
    void value(int number) { value(static_cast<u64>(number)); }
    void value(unsigned number) { value(static_cast<u64>(number)); }
    void value(double number);
    /// @}

    /** key() + value() in one call. */
    template <typename T>
    void
    member(std::string_view name, T &&v)
    {
        key(name);
        value(std::forward<T>(v));
    }

  private:
    /** Commas/newlines before a new element; then mark one present. */
    void element();
    void indent();

    struct Level
    {
        char close;
        bool hasElements = false;
    };

    std::ostream &os_;
    bool pretty_;
    bool keyPending_ = false;
    std::vector<Level> stack_;
};

} // namespace sasos::obs

#endif // SASOS_OBS_JSON_HH
