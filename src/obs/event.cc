#include "obs/event.hh"

namespace sasos::obs
{

const char *
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::AccessBegin:
      case EventKind::AccessEnd:
        return "access";
      case EventKind::PlbHit:
        return "plbHit";
      case EventKind::PlbMiss:
        return "plbMiss";
      case EventKind::PlbFill:
        return "plbFill";
      case EventKind::PlbEvict:
        return "plbEvict";
      case EventKind::TlbHit:
        return "tlbHit";
      case EventKind::TlbMiss:
        return "tlbMiss";
      case EventKind::TlbFill:
        return "tlbFill";
      case EventKind::TlbEvict:
        return "tlbEvict";
      case EventKind::PgCacheHit:
        return "pgCacheHit";
      case EventKind::PgCacheMiss:
        return "pgCacheMiss";
      case EventKind::PgCacheFill:
        return "pgCacheFill";
      case EventKind::PgCacheEvict:
        return "pgCacheEvict";
      case EventKind::DCacheHit:
        return "dcacheHit";
      case EventKind::DCacheMiss:
        return "dcacheMiss";
      case EventKind::DCacheEvict:
        return "dcacheEvict";
      case EventKind::ProtectionFlush:
        return "protectionFlush";
      case EventKind::ProtectionFault:
        return "protectionFault";
      case EventKind::TranslationFault:
        return "translationFault";
      case EventKind::KernelResolveBegin:
      case EventKind::KernelResolveEnd:
        return "kernelResolve";
      case EventKind::FaultRetry:
        return "faultRetry";
      case EventKind::DomainSwitch:
        return "domainSwitch";
      case EventKind::Shootdown:
        return "shootdown";
      case EventKind::ShootdownAck:
        return "shootdownAck";
      case EventKind::ShootdownComplete:
        return "shootdownComplete";
      case EventKind::NumKinds:
        break;
    }
    return "?";
}

char
phaseOf(EventKind kind)
{
    switch (kind) {
      case EventKind::AccessBegin:
      case EventKind::KernelResolveBegin:
        return 'B';
      case EventKind::AccessEnd:
      case EventKind::KernelResolveEnd:
        return 'E';
      default:
        return 'i';
    }
}

} // namespace sasos::obs
