/**
 * @file
 * Unified machine-readable stats export over the stats::Group tree.
 *
 * One JSON (nested, mirroring the group hierarchy) and one CSV
 * (flat dotted paths) emitter for *any* component's statistics,
 * replacing the per-bench ad-hoc dump code. Scalars export their
 * value, formulas their computed double, histograms an object with
 * samples/min/max/mean and the nonzero buckets. An optional
 * CycleAccount adds the per-category simulated-cycle breakdown.
 */

#ifndef SASOS_OBS_EXPORT_HH
#define SASOS_OBS_EXPORT_HH

#include <ostream>

#include "sim/cycle_account.hh"
#include "sim/stats.hh"

namespace sasos::obs
{

/**
 * Write `{"stats": {...}, "cycles": {...}}`. The stats object nests
 * exactly like the group tree; the cycles object (omitted when
 * `account` is null) has one member per nonzero category plus the
 * total. Deterministic: member order is stat registration order.
 */
void writeStatsJson(std::ostream &os, const stats::Group &root,
                    const CycleAccount *account = nullptr);

/**
 * Write `stat,value` lines, one per scalar/formula and one per
 * histogram aggregate (path.samples, path.min, ...), with a header
 * row. Cycle categories export as cycles.<category>.
 */
void writeStatsCsv(std::ostream &os, const stats::Group &root,
                   const CycleAccount *account = nullptr);

} // namespace sasos::obs

#endif // SASOS_OBS_EXPORT_HH
