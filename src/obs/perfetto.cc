#include "obs/perfetto.hh"

#include <cstdio>

#include "obs/json.hh"

namespace sasos::obs
{

void
writePerfettoJson(std::ostream &os, const std::vector<Event> &events,
                  u64 dropped)
{
    JsonWriter json(os, /*pretty=*/false);
    json.beginObject();
    json.member("displayTimeUnit", "ns");
    json.key("otherData");
    json.beginObject();
    json.member("tool", "sasos");
    json.member("clock", "simulated cycles");
    json.member("droppedEvents", dropped);
    json.endObject();
    json.key("traceEvents");
    json.beginArray();
    for (const Event &event : events) {
        const char phase = phaseOf(event.kind);
        json.beginObject();
        json.member("name", toString(event.kind));
        json.member("cat", "mem");
        json.member("ph", std::string_view(&phase, 1));
        json.member("ts", event.cycle);
        json.member("pid", 0u);
        json.member("tid", event.tid);
        if (phase == 'i')
            json.member("s", "t");
        // 'E' events need no args; everything else carries the
        // address and payload for inspection in the UI.
        if (phase != 'E') {
            char addr[24];
            std::snprintf(addr, sizeof(addr), "0x%llx",
                          static_cast<unsigned long long>(event.addr));
            json.key("args");
            json.beginObject();
            json.member("addr", addr);
            json.member("arg", event.arg);
            json.endObject();
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace sasos::obs
