#include "obs/tracer.hh"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/perfetto.hh"
#include "sim/logging.hh"
#include "sim/options.hh"

namespace sasos::obs
{

namespace detail
{
std::atomic<bool> enabledFlag{false};
} // namespace detail

namespace
{

/** One thread's event storage: filled linearly, then a circular
 * overwrite of the oldest slot. Written only by its owning thread. */
struct Ring
{
    std::vector<Event> events;
    u64 capacity = 0;
    /** Total events pushed; head % capacity is the oldest slot once
     * the ring has wrapped. */
    u64 pushed = 0;
    u64 dropped = 0;

    void
    push(const Event &event)
    {
        if (events.size() < capacity) {
            events.push_back(event);
        } else {
            events[pushed % capacity] = event;
            ++dropped;
        }
        ++pushed;
    }

    /** Copy out oldest-to-newest. */
    void
    extract(std::vector<Event> &out) const
    {
        if (pushed <= capacity) {
            out.insert(out.end(), events.begin(), events.end());
            return;
        }
        const u64 oldest = pushed % capacity;
        out.insert(out.end(), events.begin() + static_cast<long>(oldest),
                   events.end());
        out.insert(out.end(), events.begin(),
                   events.begin() + static_cast<long>(oldest));
    }

    void
    reset(u64 new_capacity)
    {
        events.clear();
        events.reserve(new_capacity);
        capacity = new_capacity;
        pushed = 0;
        dropped = 0;
    }
};

/** All rings ever registered; rings are owned here and outlive their
 * threads so stopTracing can harvest pool workers' events. */
struct Registry
{
    std::mutex mutex;
    std::vector<std::unique_ptr<Ring>> rings;
    u64 capacity = TracerConfig{}.bufferEvents;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

thread_local Ring *tlsRing = nullptr;
thread_local u32 tlsTid = 0;
thread_local u32 tlsSeq = 0;

Ring *
registerThisThread()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.rings.push_back(std::make_unique<Ring>());
    reg.rings.back()->reset(reg.capacity);
    tlsRing = reg.rings.back().get();
    return tlsRing;
}

} // namespace

void
emit(EventKind kind, u64 cycle, u64 addr, u64 arg)
{
    Ring *ring = tlsRing;
    if (ring == nullptr)
        ring = registerThisThread();
    Event event;
    event.cycle = cycle;
    event.addr = addr;
    event.arg = arg;
    event.tid = tlsTid;
    event.seq = tlsSeq++;
    event.kind = kind;
    ring->push(event);
}

void
setThreadId(u32 tid)
{
    tlsTid = tid;
}

void
startTracing(const TracerConfig &config)
{
    SASOS_ASSERT(config.bufferEvents > 0, "trace buffer must hold events");
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.capacity = config.bufferEvents;
    for (auto &ring : reg.rings)
        ring->reset(config.bufferEvents);
    detail::enabledFlag.store(true, std::memory_order_relaxed);
}

std::vector<Event>
stopTracing()
{
    detail::enabledFlag.store(false, std::memory_order_relaxed);
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<Event> merged;
    for (const auto &ring : reg.rings) {
        ring->extract(merged);
        // Drain on stop: a later stopTracing (or one with no
        // intervening start) must not re-report stale events.
        ring->reset(ring->capacity);
    }
    // (cycle, tid, seq) is a total order: all of one tid's events come
    // from one ring (per-thread seq strictly increases), so ties are
    // impossible and the merge is identical whatever threads= was.
    std::sort(merged.begin(), merged.end(),
              [](const Event &a, const Event &b) {
                  if (a.cycle != b.cycle)
                      return a.cycle < b.cycle;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.seq < b.seq;
              });
    // Renumber seq within each tid: raw values depend on how worker
    // threads were reused, which must not leak into the artifact.
    std::unordered_map<u32, u32> next;
    for (Event &event : merged)
        event.seq = next[event.tid]++;
    return merged;
}

u64
droppedEvents()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    u64 total = 0;
    for (const auto &ring : reg.rings)
        total += ring->dropped;
    return total;
}

ScopedTrace::ScopedTrace(const Options &options)
{
    if (!options.getBool("trace", false))
        return;
    path_ = options.getString("trace_out", "sasos_trace.json");
    TracerConfig config;
    config.bufferEvents =
        options.getU64("trace_buf", TracerConfig{}.bufferEvents);
    startTracing(config);
    active_ = true;
}

ScopedTrace::~ScopedTrace()
{
    if (!active_)
        return;
    const u64 dropped = droppedEvents();
    const std::vector<Event> events = stopTracing();
    std::ofstream os(path_);
    if (!os) {
        warn("cannot write trace file '", path_, "'");
        return;
    }
    writePerfettoJson(os, events, dropped);
    inform("wrote ", path_, " (", events.size(), " events, ", dropped,
           " dropped); open it at ui.perfetto.dev");
}

} // namespace sasos::obs
