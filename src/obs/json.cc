#include "obs/json.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace sasos::obs
{

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buffer;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    os_ << "\n";
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::element()
{
    if (stack_.empty())
        return;
    if (keyPending_) {
        keyPending_ = false;
        return;
    }
    if (stack_.back().hasElements)
        os_ << ",";
    indent();
    stack_.back().hasElements = true;
}

void
JsonWriter::beginObject()
{
    element();
    os_ << "{";
    stack_.push_back({'}'});
}

void
JsonWriter::endObject()
{
    SASOS_ASSERT(!stack_.empty() && stack_.back().close == '}',
                 "unbalanced endObject");
    const bool had = stack_.back().hasElements;
    stack_.pop_back();
    if (had)
        indent();
    os_ << "}";
    if (stack_.empty() && pretty_)
        os_ << "\n";
}

void
JsonWriter::beginArray()
{
    element();
    os_ << "[";
    stack_.push_back({']'});
}

void
JsonWriter::endArray()
{
    SASOS_ASSERT(!stack_.empty() && stack_.back().close == ']',
                 "unbalanced endArray");
    const bool had = stack_.back().hasElements;
    stack_.pop_back();
    if (had)
        indent();
    os_ << "]";
}

void
JsonWriter::key(std::string_view name)
{
    SASOS_ASSERT(!stack_.empty() && stack_.back().close == '}',
                 "key() outside an object");
    element();
    os_ << "\"" << jsonEscape(name) << "\":" << (pretty_ ? " " : "");
    keyPending_ = true;
}

void
JsonWriter::value(std::string_view text)
{
    element();
    os_ << "\"" << jsonEscape(text) << "\"";
}

void
JsonWriter::value(bool boolean)
{
    element();
    os_ << (boolean ? "true" : "false");
}

void
JsonWriter::value(u64 number)
{
    element();
    os_ << number;
}

void
JsonWriter::value(double number)
{
    element();
    if (!std::isfinite(number)) {
        // JSON has no NaN/inf; null keeps the document loadable.
        os_ << "null";
        return;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", number);
    // Trim to the shortest form that round-trips.
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, number);
        double parsed = 0.0;
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == number) {
            os_ << shorter;
            return;
        }
    }
    os_ << buffer;
}

} // namespace sasos::obs
