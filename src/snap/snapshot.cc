#include "snap/snapshot.hh"

#include <fstream>

#include "core/mc/mc_system.hh"
#include "core/system.hh"
#include "sim/logging.hh"
#include "workload/address_stream.hh"

namespace sasos::snap
{

Snapshot
Snapshot::fromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SASOS_FATAL("cannot open snapshot '", path, "'");
    Snapshot image;
    image.bytes.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
    if (in.bad())
        SASOS_FATAL("error reading snapshot '", path, "'");
    return image;
}

void
Snapshot::toFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        SASOS_FATAL("cannot create snapshot '", path, "'");
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out)
        SASOS_FATAL("error writing snapshot '", path, "'");
}

void
Snapshotter::add(const core::System &system)
{
    system.save(writer_);
}

void
Snapshotter::add(const core::mc::McSystem &system)
{
    system.save(writer_);
}

void
Snapshotter::add(const Rng &rng)
{
    rng.save(writer_);
}

void
Snapshotter::add(const wl::AddressStream &stream)
{
    writer_.putTag("stream");
    stream.save(writer_);
}

Snapshot
Snapshotter::finish() const
{
    return Snapshot{writer_.seal()};
}

Restorer::Restorer(const Snapshot &image) : reader_(image.bytes) {}

void
Restorer::restore(core::System &system)
{
    system.load(reader_);
}

void
Restorer::restore(core::mc::McSystem &system)
{
    system.load(reader_);
}

void
Restorer::restore(Rng &rng)
{
    rng.load(reader_);
}

void
Restorer::restore(wl::AddressStream &stream)
{
    reader_.expectTag("stream");
    stream.load(reader_);
}

void
Restorer::finish()
{
    reader_.finish();
}

SnapshotOptions
SnapshotOptions::fromOptions(const Options &options)
{
    SnapshotOptions snapshot;
    snapshot.out = options.getString("snapshot_out", "");
    snapshot.restore = options.getString("restore", "");
    snapshot.every = options.getU64("snapshot_every", 0);
    return snapshot;
}

} // namespace sasos::snap
