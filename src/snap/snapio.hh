/**
 * @file
 * Binary snapshot encoding: a versioned, checksummed envelope around a
 * stream of explicitly-encoded fields.
 *
 * The format is deliberately dumb. Every field is written in a fixed
 * little-endian width by hand -- never by memcpy of a struct -- so the
 * byte stream contains no padding, no host endianness and no libc
 * container internals, and two runs that reach the same simulator
 * state produce bit-identical images. Section boundaries carry string
 * tags so a reader that drifts out of phase with the writer fails on
 * the next tag instead of silently misinterpreting payload.
 *
 * SnapReader treats the image as untrusted input: the envelope
 * (magic, version, payload length, FNV-1a checksum) is validated
 * before any payload byte is interpreted, every read is bounds
 * checked, counts are sanity checked against the bytes remaining
 * before any allocation, and every violation is a SASOS_FATAL with a
 * message naming what was wrong -- truncation, corruption or hostile
 * length fields end the process (or reach the installed fatal
 * handler), never undefined behaviour.
 */

#ifndef SASOS_SNAP_SNAPIO_HH
#define SASOS_SNAP_SNAPIO_HH

#include <bit>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sasos::snap
{

/** First eight bytes of every snapshot image. */
constexpr char kMagic[8] = {'S', 'A', 'S', 'O', 'S', 'N', 'A', 'P'};

/** Current format version; bumped on any incompatible change.
 * v2: frame refcounts in the allocator image, CoW page set in the
 * kernel image, shared frames allowed in the page table.
 * v3: protection-key model (key tables, key-permission register file)
 * and the kprRefill/keyAssign cost constants in config signatures. */
constexpr u32 kFormatVersion = 3;

/** Envelope size: magic[8] version[4] reserved[4] length[8] fnv[8]. */
constexpr std::size_t kHeaderBytes = 32;

/** Refuse images larger than this (hostile length-field backstop). */
constexpr u64 kMaxImageBytes = u64{1} << 30;

/** Marker byte preceding every section tag. */
constexpr u8 kTagMarker = 0xA5;

/** FNV-1a 64-bit hash of a byte range. */
inline u64
fnv1a(const u8 *data, std::size_t size)
{
    u64 hash = 14695981039346656037ull;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

/**
 * Non-fatal envelope validation, for images that arrive over an
 * untrusted transport (the sweep farm's worker pipes) and must be
 * rejected *without* ending the receiving process: a coordinator
 * preflights every checkpoint image before accepting it as a resume
 * point and again before handing it to another worker. Returns an
 * empty string when the envelope is well-formed, else a description
 * of the first violation. Mirrors the SnapReader constructor's
 * checks exactly; payload sections are still validated by the
 * restore-side cross-checks.
 */
inline std::string
preflightEnvelope(const std::vector<u8> &image)
{
    const auto readLe32 = [](const u8 *in) {
        u32 v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<u32>(in[i]) << (8 * i);
        return v;
    };
    const auto readLe64 = [](const u8 *in) {
        u64 v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<u64>(in[i]) << (8 * i);
        return v;
    };
    if (image.size() > kMaxImageBytes)
        return "image larger than the maximum";
    if (image.size() < kHeaderBytes)
        return "image smaller than the header";
    if (std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0)
        return "bad magic";
    if (readLe32(image.data() + 8) != kFormatVersion)
        return "unsupported format version";
    if (readLe32(image.data() + 12) != 0)
        return "nonzero reserved header field";
    if (readLe64(image.data() + 16) != image.size() - kHeaderBytes)
        return "length field does not match the payload";
    if (readLe64(image.data() + 24) !=
        fnv1a(image.data() + kHeaderBytes, image.size() - kHeaderBytes))
        return "checksum mismatch";
    return {};
}

/** Appends explicitly-encoded fields to a payload buffer; seal()
 * wraps it in the checksummed envelope. */
class SnapWriter
{
  public:
    void
    put8(u8 v)
    {
        payload_.push_back(v);
    }

    void
    put16(u16 v)
    {
        put8(static_cast<u8>(v));
        put8(static_cast<u8>(v >> 8));
    }

    void
    put32(u32 v)
    {
        put16(static_cast<u16>(v));
        put16(static_cast<u16>(v >> 16));
    }

    void
    put64(u64 v)
    {
        put32(static_cast<u32>(v));
        put32(static_cast<u32>(v >> 32));
    }

    void
    putBool(bool v)
    {
        put8(v ? 1 : 0);
    }

    void
    putDouble(double v)
    {
        put64(std::bit_cast<u64>(v));
    }

    void
    putString(std::string_view s)
    {
        SASOS_ASSERT(s.size() <= 0xFFFFFFFFu, "string too long");
        put32(static_cast<u32>(s.size()));
        payload_.insert(payload_.end(), s.begin(), s.end());
    }

    /** Section boundary: marker byte + name, checked by expectTag. */
    void
    putTag(std::string_view name)
    {
        put8(kTagMarker);
        putString(name);
    }

    std::size_t
    bytes() const
    {
        return payload_.size();
    }

    /** Wrap the payload in the envelope and return the full image. */
    std::vector<u8>
    seal() const
    {
        std::vector<u8> image(kHeaderBytes + payload_.size());
        std::memcpy(image.data(), kMagic, sizeof(kMagic));
        const u32 version = kFormatVersion;
        const u32 reserved = 0;
        const u64 length = payload_.size();
        const u64 checksum = fnv1a(payload_.data(), payload_.size());
        writeLe32(image.data() + 8, version);
        writeLe32(image.data() + 12, reserved);
        writeLe64(image.data() + 16, length);
        writeLe64(image.data() + 24, checksum);
        if (!payload_.empty())
            std::memcpy(image.data() + kHeaderBytes, payload_.data(),
                        payload_.size());
        return image;
    }

  private:
    static void
    writeLe32(u8 *out, u32 v)
    {
        for (int i = 0; i < 4; ++i)
            out[i] = static_cast<u8>(v >> (8 * i));
    }

    static void
    writeLe64(u8 *out, u64 v)
    {
        for (int i = 0; i < 8; ++i)
            out[i] = static_cast<u8>(v >> (8 * i));
    }

    std::vector<u8> payload_;
};

/** Sequential, bounds-checked reader over an untrusted image. The
 * constructor validates the whole envelope; every malformed input is
 * a SASOS_FATAL, never undefined behaviour. */
class SnapReader
{
  public:
    explicit SnapReader(std::vector<u8> image) : image_(std::move(image))
    {
        if (image_.size() > kMaxImageBytes)
            SASOS_FATAL("snapshot larger than ", kMaxImageBytes, " bytes");
        if (image_.size() < kHeaderBytes)
            SASOS_FATAL("snapshot truncated: ", image_.size(),
                        " bytes is smaller than the ", kHeaderBytes,
                        "-byte header");
        if (std::memcmp(image_.data(), kMagic, sizeof(kMagic)) != 0)
            SASOS_FATAL("not a snapshot: bad magic");
        const u32 version = readLe32(image_.data() + 8);
        if (version != kFormatVersion)
            SASOS_FATAL("unsupported snapshot version ", version,
                        " (this build reads version ", kFormatVersion,
                        ")");
        if (readLe32(image_.data() + 12) != 0)
            SASOS_FATAL("corrupt snapshot: nonzero reserved header field");
        const u64 length = readLe64(image_.data() + 16);
        if (length != image_.size() - kHeaderBytes)
            SASOS_FATAL("corrupt snapshot: header claims ", length,
                        " payload bytes, file carries ",
                        image_.size() - kHeaderBytes);
        const u64 checksum = readLe64(image_.data() + 24);
        const u64 actual =
            fnv1a(image_.data() + kHeaderBytes, image_.size() - kHeaderBytes);
        if (checksum != actual)
            SASOS_FATAL("corrupt snapshot: checksum mismatch");
        pos_ = kHeaderBytes;
    }

    u8
    get8()
    {
        need(1);
        return image_[pos_++];
    }

    u16
    get16()
    {
        const u16 lo = get8();
        const u16 hi = get8();
        return static_cast<u16>(lo | (hi << 8));
    }

    u32
    get32()
    {
        const u32 lo = get16();
        const u32 hi = get16();
        return lo | (hi << 16);
    }

    u64
    get64()
    {
        const u64 lo = get32();
        const u64 hi = get32();
        return lo | (hi << 32);
    }

    bool
    getBool()
    {
        const u8 v = get8();
        if (v > 1)
            SASOS_FATAL("corrupt snapshot: boolean field holds ",
                        static_cast<unsigned>(v));
        return v != 0;
    }

    double
    getDouble()
    {
        return std::bit_cast<double>(get64());
    }

    std::string
    getString()
    {
        const u32 size = get32();
        need(size);
        std::string s(reinterpret_cast<const char *>(image_.data() + pos_),
                      size);
        pos_ += size;
        return s;
    }

    /** Read a section tag and fail unless it is `name` -- the
     * reader's phase check against the writer. */
    void
    expectTag(std::string_view name)
    {
        if (get8() != kTagMarker)
            SASOS_FATAL("corrupt snapshot: expected section '", name,
                        "'");
        const std::string tag = getString();
        if (tag != name)
            SASOS_FATAL("corrupt snapshot: expected section '", name,
                        "', found '", tag, "'");
    }

    /**
     * Read an element count and reject it unless `count *
     * min_element_bytes` could still fit in the remaining payload --
     * so a hostile count cannot drive a huge allocation.
     */
    u64
    getCount(u64 min_element_bytes = 1)
    {
        const u64 count = get64();
        SASOS_ASSERT(min_element_bytes > 0, "zero element size");
        if (count > remaining() / min_element_bytes)
            SASOS_FATAL("corrupt snapshot: count ", count,
                        " exceeds the ", remaining(), " bytes remaining");
        return count;
    }

    std::size_t
    remaining() const
    {
        return image_.size() - pos_;
    }

    /** Final check: every payload byte must have been consumed. */
    void
    finish() const
    {
        if (pos_ != image_.size())
            SASOS_FATAL("corrupt snapshot: ", image_.size() - pos_,
                        " trailing payload bytes");
    }

  private:
    static u32
    readLe32(const u8 *in)
    {
        u32 v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<u32>(in[i]) << (8 * i);
        return v;
    }

    static u64
    readLe64(const u8 *in)
    {
        u64 v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<u64>(in[i]) << (8 * i);
        return v;
    }

    void
    need(std::size_t n)
    {
        if (n > remaining())
            SASOS_FATAL("snapshot truncated: need ", n, " bytes, ",
                        remaining(), " left");
    }

    std::vector<u8> image_;
    std::size_t pos_ = kHeaderBytes;
};

} // namespace sasos::snap

#endif // SASOS_SNAP_SNAPIO_HH
