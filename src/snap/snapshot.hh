/**
 * @file
 * Whole-simulator snapshot/restore.
 *
 * A Snapshotter serializes complete simulator state -- a System or
 * McSystem (canonical VM state, kernel, every hardware structure and
 * its replacement state, statistics, the cycle account, the fault
 * schedule position) plus any driver-owned Rngs and address streams
 * -- into one sealed, checksummed image. A Restorer overlays such an
 * image onto freshly constructed objects of the *same* configuration.
 *
 * The correctness bar is resume equivalence: run N references,
 * snapshot, restore in a fresh process, continue -- and every
 * statistic, cycle and traced event must be bit-identical to the
 * uninterrupted run. tests/snap_test.cc and bench_snap enforce this
 * for all three protection models and the multi-core engine.
 *
 * Images are untrusted input: truncations, bit flips, wrong versions
 * and hostile length fields are rejected with clean fatals by the
 * SnapReader layer (snapio.hh) and by per-section cross-checks in
 * every load() hook, never undefined behaviour.
 */

#ifndef SASOS_SNAP_SNAPSHOT_HH
#define SASOS_SNAP_SNAPSHOT_HH

#include <string>
#include <vector>

#include "sim/options.hh"
#include "sim/random.hh"
#include "snap/snapio.hh"

namespace sasos::core
{
class System;
namespace mc
{
class McSystem;
}
} // namespace sasos::core

namespace sasos::wl
{
class AddressStream;
}

namespace sasos::snap
{

/** One sealed snapshot image. */
struct Snapshot
{
    std::vector<u8> bytes;

    /** Read an image file (validated lazily, by the Restorer). */
    static Snapshot fromFile(const std::string &path);

    void toFile(const std::string &path) const;
};

/** Serializes simulator objects, in call order, into one image. */
class Snapshotter
{
  public:
    Snapshotter() = default;

    /** @name Components (restore in the same order) */
    /// @{
    void add(const core::System &system);
    void add(const core::mc::McSystem &system);
    void add(const Rng &rng);
    void add(const wl::AddressStream &stream);
    /// @}

    /** Seal the image. The Snapshotter is spent afterwards. */
    Snapshot finish() const;

  private:
    SnapWriter writer_;
};

/** Overlays an image onto same-configured objects, in save order. */
class Restorer
{
  public:
    /** Validates the envelope; malformed images are clean fatals. */
    explicit Restorer(const Snapshot &image);

    /** @name Components (same order as the Snapshotter's add calls) */
    /// @{
    void restore(core::System &system);
    void restore(core::mc::McSystem &system);
    void restore(Rng &rng);
    void restore(wl::AddressStream &stream);
    /// @}

    /** Final check: the image must be fully consumed. */
    void finish();

  private:
    SnapReader reader_;
};

/**
 * Snapshot options shared by the benches (`snapshot_out=`,
 * `restore=`, `snapshot_every=`): write an image after the run, start
 * from an image, checkpoint periodically (references for a System
 * run, scheduling slots for an McSystem run; 0 = off).
 */
struct SnapshotOptions
{
    std::string out;
    std::string restore;
    u64 every = 0;

    static SnapshotOptions fromOptions(const Options &options);
};

} // namespace sasos::snap

#endif // SASOS_SNAP_SNAPSHOT_HH
