/**
 * @file
 * Page access rights and memory reference kinds.
 *
 * Rights are the 3-bit read/write/execute field of the paper's
 * Figure 1. A protection domain's effective rights to a page are a
 * value of Access; a memory reference requires the right implied by
 * its AccessType.
 */

#ifndef SASOS_VM_RIGHTS_HH
#define SASOS_VM_RIGHTS_HH

#include <string>

#include "sim/types.hh"

namespace sasos::vm
{

/** Access rights bitmask (the 3-bit Rights field of Figure 1). */
enum class Access : u8
{
    None = 0,
    Read = 1,
    Write = 2,
    Execute = 4,
    ReadWrite = Read | Write,
    ReadExecute = Read | Execute,
    All = Read | Write | Execute,
};

constexpr Access
operator|(Access a, Access b)
{
    return static_cast<Access>(static_cast<u8>(a) | static_cast<u8>(b));
}

constexpr Access
operator&(Access a, Access b)
{
    return static_cast<Access>(static_cast<u8>(a) & static_cast<u8>(b));
}

constexpr Access
operator~(Access a)
{
    return static_cast<Access>(~static_cast<u8>(a) & static_cast<u8>(7));
}

/** True if `rights` includes every bit of `needed`. */
constexpr bool
includes(Access rights, Access needed)
{
    return (rights & needed) == needed;
}

/** The kind of a memory reference. */
enum class AccessType : u8
{
    Load,
    Store,
    IFetch,
};

/** The right a reference of this type requires. */
constexpr Access
requiredRight(AccessType type)
{
    switch (type) {
      case AccessType::Load:
        return Access::Read;
      case AccessType::Store:
        return Access::Write;
      case AccessType::IFetch:
        return Access::Execute;
    }
    return Access::None;
}

/** Short human-readable form, e.g. "rw-". */
inline std::string
toString(Access rights)
{
    std::string s = "---";
    if (includes(rights, Access::Read))
        s[0] = 'r';
    if (includes(rights, Access::Write))
        s[1] = 'w';
    if (includes(rights, Access::Execute))
        s[2] = 'x';
    return s;
}

inline const char *
toString(AccessType type)
{
    switch (type) {
      case AccessType::Load:
        return "load";
      case AccessType::Store:
        return "store";
      case AccessType::IFetch:
        return "ifetch";
    }
    return "?";
}

} // namespace sasos::vm

#endif // SASOS_VM_RIGHTS_HH
