/**
 * @file
 * 64-bit virtual and physical address types.
 *
 * The single address space is the full 64-bit virtual space of the
 * paper (Section 1); physical addresses default to 36 bits, the value
 * the paper uses for its cache-tag sizing argument. Virtual and
 * physical addresses, and page numbers of each, are distinct strong
 * types so the compiler rejects e.g. indexing a TLB with a physical
 * page number.
 */

#ifndef SASOS_VM_ADDRESS_HH
#define SASOS_VM_ADDRESS_HH

#include <compare>
#include <functional>

#include "sim/types.hh"

namespace sasos::vm
{

/** Bits of virtual address, per the paper's wide-address context. */
constexpr int kVaBits = 64;
/** Bits of physical address, the paper's example value. */
constexpr int kPaBits = 36;
/** Default translation page: 4 KB, the paper's Figure 1 assumption. */
constexpr int kPageShift = 12;
constexpr u64 kPageBytes = u64{1} << kPageShift;

/** A virtual address in the single global address space. */
class VAddr
{
  public:
    constexpr VAddr() = default;
    constexpr explicit VAddr(u64 raw) : raw_(raw) {}

    constexpr u64 raw() const { return raw_; }
    constexpr auto operator<=>(const VAddr &) const = default;

    constexpr VAddr
    operator+(u64 delta) const
    {
        return VAddr(raw_ + delta);
    }

  private:
    u64 raw_ = 0;
};

/** A physical (real memory) address. */
class PAddr
{
  public:
    constexpr PAddr() = default;
    constexpr explicit PAddr(u64 raw) : raw_(raw) {}

    constexpr u64 raw() const { return raw_; }
    constexpr auto operator<=>(const PAddr &) const = default;

  private:
    u64 raw_ = 0;
};

/** A virtual page number. */
class Vpn
{
  public:
    constexpr Vpn() = default;
    constexpr explicit Vpn(u64 number) : number_(number) {}

    constexpr u64 number() const { return number_; }
    constexpr auto operator<=>(const Vpn &) const = default;

    constexpr Vpn
    operator+(u64 delta) const
    {
        return Vpn(number_ + delta);
    }

  private:
    u64 number_ = 0;
};

/** A physical frame number. */
class Pfn
{
  public:
    constexpr Pfn() = default;
    constexpr explicit Pfn(u64 number) : number_(number) {}

    constexpr u64 number() const { return number_; }
    constexpr auto operator<=>(const Pfn &) const = default;

  private:
    u64 number_ = 0;
};

/** Virtual page containing an address. */
constexpr Vpn
pageOf(VAddr va, int page_shift = kPageShift)
{
    return Vpn(va.raw() >> page_shift);
}

/** First address of a virtual page. */
constexpr VAddr
baseOf(Vpn vpn, int page_shift = kPageShift)
{
    return VAddr(vpn.number() << page_shift);
}

/** Byte offset within the page. */
constexpr u64
offsetOf(VAddr va, int page_shift = kPageShift)
{
    return va.raw() & ((u64{1} << page_shift) - 1);
}

/** Physical address of a frame base. */
constexpr PAddr
frameBase(Pfn pfn, int page_shift = kPageShift)
{
    return PAddr(pfn.number() << page_shift);
}

/** Translate an address given its page's frame. */
constexpr PAddr
translate(VAddr va, Pfn pfn, int page_shift = kPageShift)
{
    return PAddr(frameBase(pfn, page_shift).raw() |
                 offsetOf(va, page_shift));
}

} // namespace sasos::vm

namespace std
{

template <>
struct hash<sasos::vm::Vpn>
{
    size_t
    operator()(const sasos::vm::Vpn &vpn) const noexcept
    {
        return std::hash<sasos::u64>{}(vpn.number());
    }
};

template <>
struct hash<sasos::vm::Pfn>
{
    size_t
    operator()(const sasos::vm::Pfn &pfn) const noexcept
    {
        return std::hash<sasos::u64>{}(pfn.number());
    }
};

template <>
struct hash<sasos::vm::VAddr>
{
    size_t
    operator()(const sasos::vm::VAddr &va) const noexcept
    {
        return std::hash<sasos::u64>{}(va.raw());
    }
};

} // namespace std

#endif // SASOS_VM_ADDRESS_HH
