/**
 * @file
 * Physical frame allocation.
 */

#ifndef SASOS_VM_PHYS_MEM_HH
#define SASOS_VM_PHYS_MEM_HH

#include <optional>
#include <vector>

#include "vm/address.hh"

namespace sasos::snap
{
class SnapWriter;
class SnapReader;
} // namespace sasos::snap

namespace sasos::vm
{

/**
 * A free-list allocator over a fixed pool of physical frames.
 *
 * Frames are recycled (unlike virtual addresses) and reference
 * counted: allocate() hands out a frame with one reference, ref()
 * adds a sharer (copy-on-write fork), and unref() drops one,
 * returning the frame to the pool when the last reference goes.
 * free() is the exclusive-owner form: it asserts the caller held the
 * only reference. Double-free and foreign-free are simulator bugs and
 * panic.
 */
class FrameAllocator
{
  public:
    explicit FrameAllocator(u64 frame_count);

    /** Allocate a frame with one reference; nullopt when memory is
     * exhausted. */
    std::optional<Pfn> allocate();

    /** Return a frame to the pool; asserts it has exactly one
     * reference (use unref() for possibly-shared frames). */
    void free(Pfn pfn);

    /** Add one reference to an allocated frame (CoW sharing). */
    void ref(Pfn pfn);

    /** Drop one reference; frees the frame when the count hits 0. */
    void unref(Pfn pfn);

    /** References held on a frame (0 when unallocated). */
    u32 refCount(Pfn pfn) const;

    bool isAllocated(Pfn pfn) const;

    u64 capacity() const { return allocated_.size(); }
    u64 inUse() const { return inUse_; }
    u64 available() const { return capacity() - inUse_; }

    /** @name Snapshot hooks (free-list order decides future frame
     * assignment, so it is serialized verbatim and cross-checked
     * against the allocation bitmap on load; refcounts ride along
     * for the allocated frames) */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

  private:
    std::vector<bool> allocated_;
    std::vector<u32> refCounts_;
    std::vector<u64> freeList_;
    u64 inUse_ = 0;
};

} // namespace sasos::vm

#endif // SASOS_VM_PHYS_MEM_HH
