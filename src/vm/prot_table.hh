/**
 * @file
 * Per-domain protection tables: the software side of the domain-page
 * model.
 *
 * Each protection domain has a sparse table of its access rights to
 * the global address space, organized as segment-level grants (set at
 * attach time) plus per-page overrides (set by rights manipulation,
 * e.g. the Table 1 applications). A PLB miss handler reads this
 * structure; the kernel writes it.
 */

#ifndef SASOS_VM_PROT_TABLE_HH
#define SASOS_VM_PROT_TABLE_HH

#include <unordered_map>
#include <vector>

#include "vm/rights.hh"
#include "vm/segment.hh"

namespace sasos::snap
{
class SnapWriter;
class SnapReader;
} // namespace sasos::snap

namespace sasos::vm
{

/** One domain's sparse view of its rights to the global space. */
class ProtectionTable
{
  public:
    ProtectionTable() = default;

    /** Grant segment-level rights (segment attach). */
    void attachSegment(SegmentId id, Access rights);

    /**
     * Revoke a segment grant and drop all page overrides inside the
     * segment. @return number of entries removed (for cost models).
     */
    u64 detachSegment(const Segment &seg);

    bool isAttached(SegmentId id) const;

    /** Rights granted at attach time; None if not attached. */
    Access segmentRights(SegmentId id) const;

    /** Replace the segment-level grant (all pages without overrides). */
    void setSegmentRights(SegmentId id, Access rights);

    /** Set a per-page override (takes precedence over the grant). */
    void setPageRights(Vpn vpn, Access rights);

    /** Drop a per-page override, reverting to the segment grant. */
    void clearPageRights(Vpn vpn);

    /** True if the page currently has an override. */
    bool hasPageOverride(Vpn vpn) const;

    /**
     * Effective rights of this domain to a page: the page override if
     * present, else the grant for the containing attached segment,
     * else None.
     */
    Access effectiveRights(Vpn vpn, const SegmentTable &segments) const;

    std::size_t attachedSegments() const { return segments_.size(); }
    std::size_t pageOverrides() const { return pages_.size(); }

    /** Ids of all attached segments (unordered). */
    std::vector<SegmentId> attachedSegmentIds() const;

    /**
     * Approximate space the table occupies, for the page-table space
     * experiment (C7): one word per segment grant, one per override.
     */
    u64
    spaceBytes(u64 entry_bytes = 16) const
    {
        return (segments_.size() + pages_.size()) * entry_bytes;
    }

    /** @name Snapshot hooks */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

  private:
    std::unordered_map<SegmentId, Access> segments_;
    std::unordered_map<Vpn, Access> pages_;
};

} // namespace sasos::vm

#endif // SASOS_VM_PROT_TABLE_HH
