/**
 * @file
 * Space model for conventional per-domain linear page tables.
 *
 * Models the VAX/SPARC-style organization the paper criticizes
 * (Section 3.1): each protection domain keeps its own linear table of
 * translations. Two costs follow for a single address space system:
 *
 *  1. sparsity -- a domain references small, widely scattered pieces
 *     of the 64-bit space, and a linear table must span from the
 *     lowest to the highest mapped page;
 *  2. duplication -- translations for shared pages are replicated in
 *     every sharing domain's table and must be kept coherent.
 *
 * The model computes table space for the flat (single-level span) and
 * two-level (only touched leaf table pages allocated) variants, for
 * comparison against the global-table + protection-table organization
 * (bench_page_tables, experiment C7).
 */

#ifndef SASOS_VM_LINEAR_PAGE_TABLE_HH
#define SASOS_VM_LINEAR_PAGE_TABLE_HH

#include <set>

#include "vm/address.hh"

namespace sasos::vm
{

/** Space accounting for one domain's linear page table. */
class LinearPageTableModel
{
  public:
    /**
     * @param pte_bytes   size of one page table entry.
     * @param page_shift  page size used for leaf table pages in the
     *                    two-level variant.
     */
    explicit LinearPageTableModel(u64 pte_bytes = 8,
                                  int page_shift = kPageShift);

    /** Record that this domain maps a range of pages. */
    void addRange(Vpn first, u64 pages);

    /** Distinct pages this domain maps. */
    u64 mappedPages() const { return mapped_.size(); }

    /**
     * Bytes for a single flat table spanning min..max mapped page.
     * Zero if nothing is mapped.
     */
    u64 flatBytes() const;

    /**
     * Bytes for a two-level table: one directory entry per leaf page
     * plus only the leaf pages that contain at least one mapping.
     */
    u64 twoLevelBytes() const;

    /** Bytes that would suffice for a dense (perfectly packed) table. */
    u64 denseBytes() const { return mappedPages() * pteBytes_; }

  private:
    u64 pteBytes_;
    int pageShift_;
    std::set<u64> mapped_; // mapped VPNs
};

} // namespace sasos::vm

#endif // SASOS_VM_LINEAR_PAGE_TABLE_HH
