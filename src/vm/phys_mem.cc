#include "vm/phys_mem.hh"

#include "sim/logging.hh"

namespace sasos::vm
{

FrameAllocator::FrameAllocator(u64 frame_count) : allocated_(frame_count)
{
    SASOS_ASSERT(frame_count > 0, "no physical memory");
    freeList_.reserve(frame_count);
    // Hand out low frame numbers first: push high numbers first so the
    // vector's back is frame 0.
    for (u64 i = frame_count; i > 0; --i)
        freeList_.push_back(i - 1);
}

std::optional<Pfn>
FrameAllocator::allocate()
{
    if (freeList_.empty())
        return std::nullopt;
    const u64 frame = freeList_.back();
    freeList_.pop_back();
    allocated_[frame] = true;
    ++inUse_;
    return Pfn(frame);
}

void
FrameAllocator::free(Pfn pfn)
{
    const u64 frame = pfn.number();
    SASOS_ASSERT(frame < allocated_.size(), "freeing foreign frame ", frame);
    SASOS_ASSERT(allocated_[frame], "double free of frame ", frame);
    allocated_[frame] = false;
    freeList_.push_back(frame);
    --inUse_;
}

bool
FrameAllocator::isAllocated(Pfn pfn) const
{
    return pfn.number() < allocated_.size() && allocated_[pfn.number()];
}

} // namespace sasos::vm
