#include "vm/phys_mem.hh"

#include "snap/snapio.hh"

#include "sim/logging.hh"

namespace sasos::vm
{

FrameAllocator::FrameAllocator(u64 frame_count)
    : allocated_(frame_count), refCounts_(frame_count, 0)
{
    SASOS_ASSERT(frame_count > 0, "no physical memory");
    freeList_.reserve(frame_count);
    // Hand out low frame numbers first: push high numbers first so the
    // vector's back is frame 0.
    for (u64 i = frame_count; i > 0; --i)
        freeList_.push_back(i - 1);
}

std::optional<Pfn>
FrameAllocator::allocate()
{
    if (freeList_.empty())
        return std::nullopt;
    const u64 frame = freeList_.back();
    freeList_.pop_back();
    allocated_[frame] = true;
    refCounts_[frame] = 1;
    ++inUse_;
    return Pfn(frame);
}

void
FrameAllocator::free(Pfn pfn)
{
    const u64 frame = pfn.number();
    SASOS_ASSERT(frame < allocated_.size(), "freeing foreign frame ", frame);
    SASOS_ASSERT(allocated_[frame], "double free of frame ", frame);
    SASOS_ASSERT(refCounts_[frame] == 1, "freeing shared frame ", frame,
                 " with ", refCounts_[frame], " references");
    unref(pfn);
}

void
FrameAllocator::ref(Pfn pfn)
{
    const u64 frame = pfn.number();
    SASOS_ASSERT(frame < allocated_.size(), "ref of foreign frame ", frame);
    SASOS_ASSERT(allocated_[frame], "ref of unallocated frame ", frame);
    ++refCounts_[frame];
}

void
FrameAllocator::unref(Pfn pfn)
{
    const u64 frame = pfn.number();
    SASOS_ASSERT(frame < allocated_.size(), "unref of foreign frame ",
                 frame);
    SASOS_ASSERT(allocated_[frame], "unref of unallocated frame ", frame);
    SASOS_ASSERT(refCounts_[frame] > 0, "refcount underflow on frame ",
                 frame);
    if (--refCounts_[frame] > 0)
        return;
    allocated_[frame] = false;
    freeList_.push_back(frame);
    --inUse_;
}

u32
FrameAllocator::refCount(Pfn pfn) const
{
    const u64 frame = pfn.number();
    return frame < refCounts_.size() ? refCounts_[frame] : 0;
}

bool
FrameAllocator::isAllocated(Pfn pfn) const
{
    return pfn.number() < allocated_.size() && allocated_[pfn.number()];
}

void
FrameAllocator::save(snap::SnapWriter &w) const
{
    w.putTag("frames");
    w.put64(allocated_.size());
    u8 bits = 0;
    for (std::size_t i = 0; i < allocated_.size(); ++i) {
        if (allocated_[i])
            bits |= static_cast<u8>(1u << (i % 8));
        if (i % 8 == 7 || i + 1 == allocated_.size()) {
            w.put8(bits);
            bits = 0;
        }
    }
    w.put64(inUse_);
    w.put64(freeList_.size());
    for (u64 frame : freeList_)
        w.put64(frame);
    // Refcounts of the allocated frames, in frame order (the bitmap
    // above says which frames those are).
    for (std::size_t i = 0; i < allocated_.size(); ++i) {
        if (allocated_[i])
            w.put32(refCounts_[i]);
    }
}

void
FrameAllocator::load(snap::SnapReader &r)
{
    r.expectTag("frames");
    const u64 capacity = r.get64();
    if (capacity != allocated_.size())
        SASOS_FATAL("corrupt snapshot: ", capacity,
                    " physical frames, this configuration has ",
                    allocated_.size());
    u64 marked = 0;
    u8 bits = 0;
    for (std::size_t i = 0; i < allocated_.size(); ++i) {
        if (i % 8 == 0)
            bits = r.get8();
        allocated_[i] = (bits >> (i % 8)) & 1;
        marked += allocated_[i] ? 1 : 0;
    }
    inUse_ = r.get64();
    if (inUse_ != marked)
        SASOS_FATAL("corrupt snapshot: frame allocator claims ", inUse_,
                    " frames in use but marks ", marked);
    const u64 free_count = r.getCount(8);
    if (free_count != capacity - inUse_)
        SASOS_FATAL("corrupt snapshot: free list carries ", free_count,
                    " frames, expected ", capacity - inUse_);
    freeList_.clear();
    freeList_.reserve(free_count);
    std::vector<bool> seen(capacity, false);
    for (u64 i = 0; i < free_count; ++i) {
        const u64 frame = r.get64();
        if (frame >= capacity)
            SASOS_FATAL("corrupt snapshot: free frame ", frame,
                        " beyond capacity ", capacity);
        if (allocated_[frame])
            SASOS_FATAL("corrupt snapshot: frame ", frame,
                        " both allocated and free");
        if (seen[frame])
            SASOS_FATAL("corrupt snapshot: frame ", frame,
                        " on the free list twice");
        seen[frame] = true;
        freeList_.push_back(frame);
    }
    for (std::size_t i = 0; i < allocated_.size(); ++i) {
        if (!allocated_[i]) {
            refCounts_[i] = 0;
            continue;
        }
        const u32 refs = r.get32();
        if (refs == 0)
            SASOS_FATAL("corrupt snapshot: allocated frame ", i,
                        " with zero references");
        refCounts_[i] = refs;
    }
}

} // namespace sasos::vm
