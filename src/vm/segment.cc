#include "vm/segment.hh"

#include <bit>

#include "sim/logging.hh"

namespace sasos::vm
{

bool
Segment::isPowerOfTwoAligned() const
{
    if (!std::has_single_bit(pages))
        return false;
    return firstPage.number() % pages == 0;
}

AddressSpaceAllocator::AddressSpaceAllocator(Vpn first_page)
    : nextPage_(first_page.number())
{
}

Vpn
AddressSpaceAllocator::allocate(u64 pages, bool pow2_align)
{
    SASOS_ASSERT(pages > 0, "empty segment");
    u64 base = nextPage_;
    if (pow2_align) {
        const u64 align = std::bit_ceil(pages);
        base = (base + align - 1) & ~(align - 1);
    }
    nextPage_ = base + pages;
    allocatedPages_ += pages;
    return Vpn(base);
}

SegmentId
SegmentTable::create(std::string name, u64 pages, bool pow2_align)
{
    if (pages == 0)
        SASOS_FATAL("segment '", name, "' must have at least one page");
    Segment seg;
    seg.id = nextId_++;
    seg.firstPage = allocator_.allocate(pages, pow2_align);
    seg.pages = pages;
    seg.name = std::move(name);
    byBase_[seg.firstPage.number()] = seg.id;
    const SegmentId id = seg.id;
    segments_.emplace(id, std::move(seg));
    return id;
}

void
SegmentTable::destroy(SegmentId id)
{
    auto it = segments_.find(id);
    if (it == segments_.end())
        SASOS_FATAL("destroying unknown segment ", id);
    byBase_.erase(it->second.firstPage.number());
    segments_.erase(it);
}

const Segment *
SegmentTable::find(SegmentId id) const
{
    auto it = segments_.find(id);
    return it == segments_.end() ? nullptr : &it->second;
}

const Segment *
SegmentTable::findByPage(Vpn vpn) const
{
    auto it = byBase_.upper_bound(vpn.number());
    if (it == byBase_.begin())
        return nullptr;
    --it;
    const Segment *seg = find(it->second);
    SASOS_ASSERT(seg != nullptr, "byBase_ out of sync");
    return seg->containsPage(vpn) ? seg : nullptr;
}

std::vector<SegmentId>
SegmentTable::liveIds() const
{
    std::vector<SegmentId> ids;
    ids.reserve(segments_.size());
    for (const auto &[base, id] : byBase_)
        ids.push_back(id);
    return ids;
}

} // namespace sasos::vm
