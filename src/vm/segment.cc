#include "vm/segment.hh"

#include "snap/snapio.hh"

#include <bit>

#include "sim/logging.hh"

namespace sasos::vm
{

bool
Segment::isPowerOfTwoAligned() const
{
    if (!std::has_single_bit(pages))
        return false;
    return firstPage.number() % pages == 0;
}

AddressSpaceAllocator::AddressSpaceAllocator(Vpn first_page)
    : nextPage_(first_page.number())
{
}

Vpn
AddressSpaceAllocator::allocate(u64 pages, bool pow2_align)
{
    SASOS_ASSERT(pages > 0, "empty segment");
    u64 base = nextPage_;
    if (pow2_align) {
        const u64 align = std::bit_ceil(pages);
        base = (base + align - 1) & ~(align - 1);
    }
    nextPage_ = base + pages;
    allocatedPages_ += pages;
    return Vpn(base);
}

SegmentId
SegmentTable::create(std::string name, u64 pages, bool pow2_align)
{
    if (pages == 0)
        SASOS_FATAL("segment '", name, "' must have at least one page");
    Segment seg;
    seg.id = nextId_++;
    seg.firstPage = allocator_.allocate(pages, pow2_align);
    seg.pages = pages;
    seg.name = std::move(name);
    byBase_[seg.firstPage.number()] = seg.id;
    const SegmentId id = seg.id;
    segments_.emplace(id, std::move(seg));
    return id;
}

void
SegmentTable::destroy(SegmentId id)
{
    auto it = segments_.find(id);
    if (it == segments_.end())
        SASOS_FATAL("destroying unknown segment ", id);
    byBase_.erase(it->second.firstPage.number());
    segments_.erase(it);
}

const Segment *
SegmentTable::find(SegmentId id) const
{
    auto it = segments_.find(id);
    return it == segments_.end() ? nullptr : &it->second;
}

const Segment *
SegmentTable::findByPage(Vpn vpn) const
{
    auto it = byBase_.upper_bound(vpn.number());
    if (it == byBase_.begin())
        return nullptr;
    --it;
    const Segment *seg = find(it->second);
    SASOS_ASSERT(seg != nullptr, "byBase_ out of sync");
    return seg->containsPage(vpn) ? seg : nullptr;
}

std::vector<SegmentId>
SegmentTable::liveIds() const
{
    std::vector<SegmentId> ids;
    ids.reserve(segments_.size());
    for (const auto &[base, id] : byBase_)
        ids.push_back(id);
    return ids;
}

void
AddressSpaceAllocator::save(snap::SnapWriter &w) const
{
    w.putTag("asalloc");
    w.put64(nextPage_);
    w.put64(allocatedPages_);
}

void
AddressSpaceAllocator::load(snap::SnapReader &r)
{
    r.expectTag("asalloc");
    nextPage_ = r.get64();
    allocatedPages_ = r.get64();
}

void
SegmentTable::save(snap::SnapWriter &w) const
{
    w.putTag("segments");
    allocator_.save(w);
    w.put32(nextId_);
    std::vector<const Segment *> sorted;
    sorted.reserve(segments_.size());
    for (const auto &[id, seg] : segments_)
        sorted.push_back(&seg);
    std::sort(sorted.begin(), sorted.end(),
              [](const Segment *a, const Segment *b) {
                  return a->id < b->id;
              });
    w.put64(sorted.size());
    for (const Segment *seg : sorted) {
        w.put32(seg->id);
        w.put64(seg->firstPage.number());
        w.put64(seg->pages);
        w.putString(seg->name);
    }
}

void
SegmentTable::load(snap::SnapReader &r)
{
    r.expectTag("segments");
    allocator_.load(r);
    nextId_ = r.get32();
    segments_.clear();
    byBase_.clear();
    const u64 count = r.getCount(24);
    for (u64 i = 0; i < count; ++i) {
        Segment seg;
        seg.id = r.get32();
        seg.firstPage = Vpn(r.get64());
        seg.pages = r.get64();
        seg.name = r.getString();
        if (seg.id == kInvalidSegment)
            SASOS_FATAL("corrupt snapshot: segment with invalid id 0");
        if (seg.pages == 0 ||
            seg.pages > ~u64{0} - seg.firstPage.number())
            SASOS_FATAL("corrupt snapshot: segment ", seg.id,
                        " spans an impossible page range");
        if (!byBase_.emplace(seg.firstPage.number(), seg.id).second)
            SASOS_FATAL("corrupt snapshot: two segments based at page ",
                        seg.firstPage.number());
        if (!segments_.emplace(seg.id, std::move(seg)).second)
            SASOS_FATAL("corrupt snapshot: duplicate segment id");
    }
    // Bases are now sorted; neighboring ranges must not overlap.
    const Segment *prev = nullptr;
    for (const auto &[base, id] : byBase_) {
        const Segment &seg = segments_.at(id);
        if (prev != nullptr && seg.firstPage <= prev->lastPage())
            SASOS_FATAL("corrupt snapshot: segments ", prev->id,
                        " and ", seg.id, " overlap");
        prev = &seg;
    }
}

} // namespace sasos::vm
