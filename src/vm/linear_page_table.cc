#include "vm/linear_page_table.hh"

#include <unordered_set>

#include "sim/logging.hh"

namespace sasos::vm
{

LinearPageTableModel::LinearPageTableModel(u64 pte_bytes, int page_shift)
    : pteBytes_(pte_bytes), pageShift_(page_shift)
{
    SASOS_ASSERT(pte_bytes > 0, "zero PTE size");
}

void
LinearPageTableModel::addRange(Vpn first, u64 pages)
{
    for (u64 i = 0; i < pages; ++i)
        mapped_.insert(first.number() + i);
}

u64
LinearPageTableModel::flatBytes() const
{
    if (mapped_.empty())
        return 0;
    const u64 span = *mapped_.rbegin() - *mapped_.begin() + 1;
    return span * pteBytes_;
}

u64
LinearPageTableModel::twoLevelBytes() const
{
    if (mapped_.empty())
        return 0;
    const u64 page_bytes = u64{1} << pageShift_;
    const u64 ptes_per_leaf = page_bytes / pteBytes_;
    std::unordered_set<u64> leaves;
    for (u64 vpn : mapped_)
        leaves.insert(vpn / ptes_per_leaf);
    // Directory spans the leaf index range (itself linear); one word
    // per possible leaf between the extremes.
    const u64 min_leaf = *mapped_.begin() / ptes_per_leaf;
    const u64 max_leaf = *mapped_.rbegin() / ptes_per_leaf;
    const u64 directory_bytes = (max_leaf - min_leaf + 1) * pteBytes_;
    return leaves.size() * page_bytes + directory_bytes;
}

} // namespace sasos::vm
