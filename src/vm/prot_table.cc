#include "vm/prot_table.hh"

#include "sim/logging.hh"

namespace sasos::vm
{

void
ProtectionTable::attachSegment(SegmentId id, Access rights)
{
    SASOS_ASSERT(id != kInvalidSegment, "attaching invalid segment");
    segments_[id] = rights;
}

u64
ProtectionTable::detachSegment(const Segment &seg)
{
    u64 removed = segments_.erase(seg.id);
    // Sparse scan: overrides are few, so erase by probing the map
    // rather than iterating the segment's full page range when the
    // override count is smaller.
    if (pages_.size() < seg.pages) {
        for (auto it = pages_.begin(); it != pages_.end();) {
            if (seg.containsPage(it->first)) {
                it = pages_.erase(it);
                ++removed;
            } else {
                ++it;
            }
        }
    } else {
        for (u64 i = 0; i < seg.pages; ++i)
            removed += pages_.erase(Vpn(seg.firstPage.number() + i));
    }
    return removed;
}

bool
ProtectionTable::isAttached(SegmentId id) const
{
    return segments_.count(id) != 0;
}

Access
ProtectionTable::segmentRights(SegmentId id) const
{
    auto it = segments_.find(id);
    return it == segments_.end() ? Access::None : it->second;
}

void
ProtectionTable::setSegmentRights(SegmentId id, Access rights)
{
    auto it = segments_.find(id);
    SASOS_ASSERT(it != segments_.end(),
                 "setting rights on unattached segment ", id);
    it->second = rights;
}

void
ProtectionTable::setPageRights(Vpn vpn, Access rights)
{
    pages_[vpn] = rights;
}

void
ProtectionTable::clearPageRights(Vpn vpn)
{
    pages_.erase(vpn);
}

bool
ProtectionTable::hasPageOverride(Vpn vpn) const
{
    return pages_.count(vpn) != 0;
}

std::vector<SegmentId>
ProtectionTable::attachedSegmentIds() const
{
    std::vector<SegmentId> ids;
    ids.reserve(segments_.size());
    for (const auto &[id, rights] : segments_)
        ids.push_back(id);
    return ids;
}

Access
ProtectionTable::effectiveRights(Vpn vpn, const SegmentTable &segments) const
{
    auto it = pages_.find(vpn);
    if (it != pages_.end())
        return it->second;
    const Segment *seg = segments.findByPage(vpn);
    if (seg == nullptr)
        return Access::None;
    auto sit = segments_.find(seg->id);
    return sit == segments_.end() ? Access::None : sit->second;
}

} // namespace sasos::vm
