#include "vm/prot_table.hh"

#include "snap/snapio.hh"

#include "sim/logging.hh"

namespace sasos::vm
{

void
ProtectionTable::attachSegment(SegmentId id, Access rights)
{
    SASOS_ASSERT(id != kInvalidSegment, "attaching invalid segment");
    segments_[id] = rights;
}

u64
ProtectionTable::detachSegment(const Segment &seg)
{
    u64 removed = segments_.erase(seg.id);
    // Sparse scan: overrides are few, so erase by probing the map
    // rather than iterating the segment's full page range when the
    // override count is smaller.
    if (pages_.size() < seg.pages) {
        for (auto it = pages_.begin(); it != pages_.end();) {
            if (seg.containsPage(it->first)) {
                it = pages_.erase(it);
                ++removed;
            } else {
                ++it;
            }
        }
    } else {
        for (u64 i = 0; i < seg.pages; ++i)
            removed += pages_.erase(Vpn(seg.firstPage.number() + i));
    }
    return removed;
}

bool
ProtectionTable::isAttached(SegmentId id) const
{
    return segments_.count(id) != 0;
}

Access
ProtectionTable::segmentRights(SegmentId id) const
{
    auto it = segments_.find(id);
    return it == segments_.end() ? Access::None : it->second;
}

void
ProtectionTable::setSegmentRights(SegmentId id, Access rights)
{
    auto it = segments_.find(id);
    SASOS_ASSERT(it != segments_.end(),
                 "setting rights on unattached segment ", id);
    it->second = rights;
}

void
ProtectionTable::setPageRights(Vpn vpn, Access rights)
{
    pages_[vpn] = rights;
}

void
ProtectionTable::clearPageRights(Vpn vpn)
{
    pages_.erase(vpn);
}

bool
ProtectionTable::hasPageOverride(Vpn vpn) const
{
    return pages_.count(vpn) != 0;
}

std::vector<SegmentId>
ProtectionTable::attachedSegmentIds() const
{
    std::vector<SegmentId> ids;
    ids.reserve(segments_.size());
    for (const auto &[id, rights] : segments_)
        ids.push_back(id);
    return ids;
}

Access
ProtectionTable::effectiveRights(Vpn vpn, const SegmentTable &segments) const
{
    auto it = pages_.find(vpn);
    if (it != pages_.end())
        return it->second;
    const Segment *seg = segments.findByPage(vpn);
    if (seg == nullptr)
        return Access::None;
    auto sit = segments_.find(seg->id);
    return sit == segments_.end() ? Access::None : sit->second;
}

namespace
{

Access
readRights(snap::SnapReader &r)
{
    const u8 rights = r.get8();
    if (rights > static_cast<u8>(Access::All))
        SASOS_FATAL("corrupt snapshot: invalid rights byte ",
                    static_cast<unsigned>(rights));
    return static_cast<Access>(rights);
}

} // namespace

void
ProtectionTable::save(snap::SnapWriter &w) const
{
    w.putTag("prot");
    std::vector<std::pair<SegmentId, Access>> segs(segments_.begin(),
                                                   segments_.end());
    std::sort(segs.begin(), segs.end());
    w.put64(segs.size());
    for (const auto &[id, rights] : segs) {
        w.put32(id);
        w.put8(static_cast<u8>(rights));
    }
    std::vector<std::pair<Vpn, Access>> pages(pages_.begin(),
                                              pages_.end());
    std::sort(pages.begin(), pages.end(),
              [](const auto &a, const auto &b) {
                  return a.first.number() < b.first.number();
              });
    w.put64(pages.size());
    for (const auto &[vpn, rights] : pages) {
        w.put64(vpn.number());
        w.put8(static_cast<u8>(rights));
    }
}

void
ProtectionTable::load(snap::SnapReader &r)
{
    r.expectTag("prot");
    segments_.clear();
    pages_.clear();
    const u64 seg_count = r.getCount(5);
    for (u64 i = 0; i < seg_count; ++i) {
        const SegmentId id = r.get32();
        const Access rights = readRights(r);
        if (!segments_.emplace(id, rights).second)
            SASOS_FATAL("corrupt snapshot: duplicate segment grant ",
                        id);
    }
    const u64 page_count = r.getCount(9);
    for (u64 i = 0; i < page_count; ++i) {
        const Vpn vpn(r.get64());
        const Access rights = readRights(r);
        if (!pages_.emplace(vpn, rights).second)
            SASOS_FATAL("corrupt snapshot: duplicate page override ",
                        vpn.number());
    }
}

} // namespace sasos::vm
