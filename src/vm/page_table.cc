#include "vm/page_table.hh"

#include "sim/logging.hh"

namespace sasos::vm
{

void
GlobalPageTable::map(Vpn vpn, Pfn pfn)
{
    auto [it, inserted] = entries_.emplace(vpn, Translation{pfn});
    SASOS_ASSERT(inserted, "homonym: page ", vpn.number(),
                 " already mapped");
    auto [rit, rinserted] = reverse_.emplace(pfn, vpn);
    SASOS_ASSERT(rinserted, "synonym: frame ", pfn.number(),
                 " already backs page ", rit->second.number());
}

Pfn
GlobalPageTable::unmap(Vpn vpn)
{
    auto it = entries_.find(vpn);
    SASOS_ASSERT(it != entries_.end(), "unmapping unmapped page ",
                 vpn.number());
    lastTranslation_ = nullptr; // the memo may point at the dead node
    const Pfn pfn = it->second.pfn;
    entries_.erase(it);
    reverse_.erase(pfn);
    return pfn;
}

Translation *
GlobalPageTable::cachedFind(Vpn vpn)
{
    if (lastTranslation_ != nullptr && lastVpn_ == vpn)
        return lastTranslation_;
    auto it = entries_.find(vpn);
    if (it == entries_.end())
        return nullptr;
    lastVpn_ = vpn;
    lastTranslation_ = &it->second;
    return lastTranslation_;
}

const Translation *
GlobalPageTable::lookup(Vpn vpn) const
{
    return const_cast<GlobalPageTable *>(this)->cachedFind(vpn);
}

std::optional<Vpn>
GlobalPageTable::pageOfFrame(Pfn pfn) const
{
    auto it = reverse_.find(pfn);
    if (it == reverse_.end())
        return std::nullopt;
    return it->second;
}

void
GlobalPageTable::markDirty(Vpn vpn)
{
    Translation *translation = cachedFind(vpn);
    SASOS_ASSERT(translation != nullptr, "dirtying unmapped page ",
                 vpn.number());
    translation->dirty = true;
    translation->referenced = true;
}

void
GlobalPageTable::markReferenced(Vpn vpn)
{
    Translation *translation = cachedFind(vpn);
    SASOS_ASSERT(translation != nullptr, "referencing unmapped page ",
                 vpn.number());
    translation->referenced = true;
}

void
GlobalPageTable::clearUsage(Vpn vpn)
{
    Translation *translation = cachedFind(vpn);
    SASOS_ASSERT(translation != nullptr, "clearing unmapped page ",
                 vpn.number());
    translation->dirty = false;
    translation->referenced = false;
}

} // namespace sasos::vm
