#include "vm/page_table.hh"

#include <algorithm>
#include <vector>

#include "snap/snapio.hh"

#include "sim/logging.hh"

namespace sasos::vm
{

void
GlobalPageTable::map(Vpn vpn, Pfn pfn)
{
    auto [it, inserted] = entries_.emplace(vpn, Translation{pfn});
    SASOS_ASSERT(inserted, "homonym: page ", vpn.number(),
                 " already mapped");
    auto [rit, rinserted] = reverse_.emplace(pfn, std::vector<Vpn>{vpn});
    SASOS_ASSERT(rinserted, "synonym: frame ", pfn.number(),
                 " already backs page ", rit->second.front().number());
}

void
GlobalPageTable::mapShared(Vpn vpn, Pfn pfn)
{
    auto rit = reverse_.find(pfn);
    SASOS_ASSERT(rit != reverse_.end(), "sharing unmapped frame ",
                 pfn.number());
    auto [it, inserted] = entries_.emplace(vpn, Translation{pfn});
    SASOS_ASSERT(inserted, "homonym: page ", vpn.number(),
                 " already mapped");
    std::vector<Vpn> &mappers = rit->second;
    mappers.insert(std::upper_bound(mappers.begin(), mappers.end(), vpn),
                   vpn);
}

Pfn
GlobalPageTable::unmap(Vpn vpn)
{
    auto it = entries_.find(vpn);
    SASOS_ASSERT(it != entries_.end(), "unmapping unmapped page ",
                 vpn.number());
    lastTranslation_ = nullptr; // the memo may point at the dead node
    const Pfn pfn = it->second.pfn;
    entries_.erase(it);
    auto rit = reverse_.find(pfn);
    SASOS_ASSERT(rit != reverse_.end(), "reverse map lost frame ",
                 pfn.number());
    std::vector<Vpn> &mappers = rit->second;
    auto mit = std::find(mappers.begin(), mappers.end(), vpn);
    SASOS_ASSERT(mit != mappers.end(), "reverse map lost page ",
                 vpn.number());
    mappers.erase(mit);
    if (mappers.empty())
        reverse_.erase(rit);
    return pfn;
}

Translation *
GlobalPageTable::cachedFind(Vpn vpn)
{
    if (lastTranslation_ != nullptr && lastVpn_ == vpn)
        return lastTranslation_;
    auto it = entries_.find(vpn);
    if (it == entries_.end())
        return nullptr;
    lastVpn_ = vpn;
    lastTranslation_ = &it->second;
    return lastTranslation_;
}

const Translation *
GlobalPageTable::lookup(Vpn vpn) const
{
    return const_cast<GlobalPageTable *>(this)->cachedFind(vpn);
}

std::optional<Vpn>
GlobalPageTable::pageOfFrame(Pfn pfn) const
{
    auto it = reverse_.find(pfn);
    if (it == reverse_.end())
        return std::nullopt;
    return it->second.front();
}

u32
GlobalPageTable::frameMappers(Pfn pfn) const
{
    auto it = reverse_.find(pfn);
    return it == reverse_.end() ? 0 : static_cast<u32>(it->second.size());
}

void
GlobalPageTable::markDirty(Vpn vpn)
{
    Translation *translation = cachedFind(vpn);
    SASOS_ASSERT(translation != nullptr, "dirtying unmapped page ",
                 vpn.number());
    translation->dirty = true;
    translation->referenced = true;
}

void
GlobalPageTable::markReferenced(Vpn vpn)
{
    Translation *translation = cachedFind(vpn);
    SASOS_ASSERT(translation != nullptr, "referencing unmapped page ",
                 vpn.number());
    translation->referenced = true;
}

void
GlobalPageTable::clearUsage(Vpn vpn)
{
    Translation *translation = cachedFind(vpn);
    SASOS_ASSERT(translation != nullptr, "clearing unmapped page ",
                 vpn.number());
    translation->dirty = false;
    translation->referenced = false;
}

void
GlobalPageTable::save(snap::SnapWriter &w) const
{
    w.putTag("pagetable");
    std::vector<std::pair<Vpn, Translation>> sorted(entries_.begin(),
                                                    entries_.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.first.number() < b.first.number();
              });
    w.put64(sorted.size());
    for (const auto &[vpn, translation] : sorted) {
        w.put64(vpn.number());
        w.put64(translation.pfn.number());
        w.putBool(translation.dirty);
        w.putBool(translation.referenced);
    }
}

void
GlobalPageTable::load(snap::SnapReader &r)
{
    r.expectTag("pagetable");
    entries_.clear();
    reverse_.clear();
    lastTranslation_ = nullptr;
    const u64 count = r.getCount(18);
    for (u64 i = 0; i < count; ++i) {
        const Vpn vpn(r.get64());
        Translation translation;
        translation.pfn = Pfn(r.get64());
        translation.dirty = r.getBool();
        translation.referenced = r.getBool();
        if (!entries_.emplace(vpn, translation).second)
            SASOS_FATAL("corrupt snapshot: page ", vpn.number(),
                        " mapped twice (homonym)");
        // Shared (CoW) frames legitimately back several pages; the
        // owner cross-checks mapper counts against frame refcounts.
        reverse_[translation.pfn].push_back(vpn);
    }
    for (auto &[pfn, mappers] : reverse_)
        std::sort(mappers.begin(), mappers.end());
}

} // namespace sasos::vm
