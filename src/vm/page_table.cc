#include "vm/page_table.hh"

#include "sim/logging.hh"

namespace sasos::vm
{

void
GlobalPageTable::map(Vpn vpn, Pfn pfn)
{
    auto [it, inserted] = entries_.emplace(vpn, Translation{pfn});
    SASOS_ASSERT(inserted, "homonym: page ", vpn.number(),
                 " already mapped");
    auto [rit, rinserted] = reverse_.emplace(pfn, vpn);
    SASOS_ASSERT(rinserted, "synonym: frame ", pfn.number(),
                 " already backs page ", rit->second.number());
}

Pfn
GlobalPageTable::unmap(Vpn vpn)
{
    auto it = entries_.find(vpn);
    SASOS_ASSERT(it != entries_.end(), "unmapping unmapped page ",
                 vpn.number());
    const Pfn pfn = it->second.pfn;
    entries_.erase(it);
    reverse_.erase(pfn);
    return pfn;
}

const Translation *
GlobalPageTable::lookup(Vpn vpn) const
{
    auto it = entries_.find(vpn);
    return it == entries_.end() ? nullptr : &it->second;
}

std::optional<Vpn>
GlobalPageTable::pageOfFrame(Pfn pfn) const
{
    auto it = reverse_.find(pfn);
    if (it == reverse_.end())
        return std::nullopt;
    return it->second;
}

void
GlobalPageTable::markDirty(Vpn vpn)
{
    auto it = entries_.find(vpn);
    SASOS_ASSERT(it != entries_.end(), "dirtying unmapped page ",
                 vpn.number());
    it->second.dirty = true;
    it->second.referenced = true;
}

void
GlobalPageTable::markReferenced(Vpn vpn)
{
    auto it = entries_.find(vpn);
    SASOS_ASSERT(it != entries_.end(), "referencing unmapped page ",
                 vpn.number());
    it->second.referenced = true;
}

void
GlobalPageTable::clearUsage(Vpn vpn)
{
    auto it = entries_.find(vpn);
    SASOS_ASSERT(it != entries_.end(), "clearing unmapped page ",
                 vpn.number());
    it->second.dirty = false;
    it->second.referenced = false;
}

} // namespace sasos::vm
