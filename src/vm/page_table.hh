/**
 * @file
 * The single global page table of a single address space system.
 *
 * One translation per virtual page, shared by all protection domains
 * (paper Section 3.1: "a single table of translations that is shared
 * by all domains"). The table enforces the two invariants that make
 * virtually indexed, virtually tagged caches safe (Section 2.2):
 *
 *  - no homonyms: a VPN has at most one translation, ever;
 *  - no synonyms: a PFN backs at most one VPN at a time.
 *
 * Copy-on-write fork relaxes the synonym rule in a controlled way:
 * mapShared() lets one frame back several VPNs, but the kernel keeps
 * every such page write-protected (the CoW mask) until the first
 * store resolves the page to a private frame -- read-only synonyms
 * never create the cache-coherence hazard the rule exists for.
 *
 * Protection lives elsewhere (per-domain ProtectionTable); this table
 * carries only VPN -> PFN plus the dirty and referenced bits, exactly
 * the contents the paper assigns to the PLB system's TLB.
 */

#ifndef SASOS_VM_PAGE_TABLE_HH
#define SASOS_VM_PAGE_TABLE_HH

#include <optional>
#include <unordered_map>

#include "vm/address.hh"

namespace sasos::snap
{
class SnapWriter;
class SnapReader;
} // namespace sasos::snap

namespace sasos::vm
{

/** Translation entry: frame plus usage bits. */
struct Translation
{
    Pfn pfn;
    bool dirty = false;
    bool referenced = false;
};

/** Global hashed (inverted-style) page table. */
class GlobalPageTable
{
  public:
    GlobalPageTable() = default;

    /**
     * Install the unique translation for a page.
     * Panics if the VPN is already mapped (homonym) or the PFN already
     * backs another page (synonym) -- both are impossible states in a
     * single address space system and indicate a kernel bug.
     */
    void map(Vpn vpn, Pfn pfn);

    /**
     * Map a page onto a frame that already backs at least one other
     * page (copy-on-write sharing). The homonym rule still holds; the
     * caller owns the matching frame refcount and the write
     * protection that keeps the shared frame VIVT-safe.
     */
    void mapShared(Vpn vpn, Pfn pfn);

    /** Remove a translation; returns the frame it used. */
    Pfn unmap(Vpn vpn);

    /** Lookup; null if the page is not mapped. */
    const Translation *lookup(Vpn vpn) const;

    bool isMapped(Vpn vpn) const { return lookup(vpn) != nullptr; }

    /** The lowest-numbered page a frame currently backs, if any
     * (reverse map; a CoW-shared frame backs several). */
    std::optional<Vpn> pageOfFrame(Pfn pfn) const;

    /** How many pages a frame currently backs (0 = frame unmapped,
     * >1 = CoW-shared). */
    u32 frameMappers(Pfn pfn) const;

    /** Set the dirty bit (store to the page). */
    void markDirty(Vpn vpn);

    /** Set the referenced bit (any access). */
    void markReferenced(Vpn vpn);

    /** Clear usage bits, e.g. for clock-style page replacement. */
    void clearUsage(Vpn vpn);

    std::size_t size() const { return entries_.size(); }

    /** @name Snapshot hooks
     * Entries go out sorted by VPN (byte-stable images); load()
     * re-validates the homonym/synonym invariants as clean fatals,
     * rebuilds the reverse map and drops the MRU memo. */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

    /** Visit every mapped page: fn(vpn, translation). */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &[vpn, translation] : entries_)
            fn(vpn, translation);
    }

  private:
    /** Memoized find: the reference stream touches the same page in
     * runs, so a one-entry MRU cache short-circuits most of the hash
     * lookups on the simulator's per-reference hot path. Node-based
     * map references are stable across inserts; unmap() drops the
     * memo before erasing. */
    Translation *cachedFind(Vpn vpn);

    std::unordered_map<Vpn, Translation> entries_;
    /** Frame -> mapping pages. Almost always one entry; CoW sharing
     * appends. Kept sorted so pageOfFrame() is deterministic. */
    std::unordered_map<Pfn, std::vector<Vpn>> reverse_;
    Vpn lastVpn_{};
    Translation *lastTranslation_ = nullptr;
};

} // namespace sasos::vm

#endif // SASOS_VM_PAGE_TABLE_HH
