/**
 * @file
 * Virtual segments: the Opal unit of allocation and sharing.
 *
 * A virtual segment is a contiguous, fixed range of the global virtual
 * address space, assigned at creation and disjoint from every other
 * segment forever (addresses are never re-interpreted; see paper
 * Section 4.1.1). Segments represent code, heaps, stacks, mapped files
 * and RPC channels. Their boundaries are unknown to the hardware;
 * protection hardware sees only pages (or page-groups).
 */

#ifndef SASOS_VM_SEGMENT_HH
#define SASOS_VM_SEGMENT_HH

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "vm/address.hh"

namespace sasos::snap
{
class SnapWriter;
class SnapReader;
} // namespace sasos::snap

namespace sasos::vm
{

/** Identifies a virtual segment. 0 is never a valid id. */
using SegmentId = u32;
constexpr SegmentId kInvalidSegment = 0;

/** A contiguous, immutable range of the global address space. */
struct Segment
{
    SegmentId id = kInvalidSegment;
    /** First virtual page of the segment. */
    Vpn firstPage;
    /** Length in translation pages (> 0). */
    u64 pages = 0;
    /** Debugging label. */
    std::string name;

    Vpn lastPage() const { return Vpn(firstPage.number() + pages - 1); }
    VAddr base() const { return baseOf(firstPage); }
    u64 bytes() const { return pages * kPageBytes; }

    bool
    containsPage(Vpn vpn) const
    {
        return vpn >= firstPage && vpn <= lastPage();
    }

    bool
    contains(VAddr va) const
    {
        return containsPage(pageOf(va));
    }

    /**
     * True if the segment occupies a naturally aligned power-of-two
     * page range, i.e. one super-page protection entry can cover it
     * (paper Section 4.3).
     */
    bool isPowerOfTwoAligned() const;
};

/**
 * Carves disjoint segments out of the single 64-bit address space.
 *
 * A bump allocator: virtual addresses are plentiful (the paper:
 * consumed at 100 MB/s, 64 bits last five thousand years), so freed
 * ranges are never reused. That gives the system the "addresses are
 * unique forever" property Opal relies on.
 */
class AddressSpaceAllocator
{
  public:
    /** @param first_page lowest allocatable page (page 0 is reserved
     *                    so that address 0 stays unmapped). */
    explicit AddressSpaceAllocator(Vpn first_page = Vpn(0x100));

    /**
     * Reserve a range of pages.
     * @param pages          length of the range.
     * @param pow2_align     align the base so a single power-of-two
     *                       protection entry can cover the range.
     */
    Vpn allocate(u64 pages, bool pow2_align = false);

    /** Total pages handed out so far. */
    u64 allocatedPages() const { return allocatedPages_; }

    /** @name Snapshot hooks (the bump pointer is simulator state:
     * post-restore allocations must not reuse retired ranges) */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

  private:
    u64 nextPage_;
    u64 allocatedPages_ = 0;
};

/**
 * The global registry of virtual segments.
 *
 * Lookup is by id or by page; segments never overlap, which this
 * table enforces by construction (all bases come from the allocator).
 */
class SegmentTable
{
  public:
    SegmentTable() = default;

    /** Create a segment of `pages` pages; returns its id. */
    SegmentId create(std::string name, u64 pages, bool pow2_align = false);

    /**
     * Remove a segment. The address range is retired, never reused.
     * It is a user error (fatal) to destroy an unknown segment.
     */
    void destroy(SegmentId id);

    /** Find by id; null if unknown/destroyed. */
    const Segment *find(SegmentId id) const;

    /** Find the segment containing a page; null if none. */
    const Segment *findByPage(Vpn vpn) const;

    /** Number of live segments. */
    std::size_t size() const { return segments_.size(); }

    /** Every live segment id, in creation order. */
    std::vector<SegmentId> liveIds() const;

    /** @name Snapshot hooks */
    /// @{
    void save(snap::SnapWriter &w) const;
    void load(snap::SnapReader &r);
    /// @}

  private:
    AddressSpaceAllocator allocator_;
    SegmentId nextId_ = 1;
    std::unordered_map<SegmentId, Segment> segments_;
    /** firstPage.number() -> id, for findByPage. */
    std::map<u64, SegmentId> byBase_;
};

} // namespace sasos::vm

#endif // SASOS_VM_SEGMENT_HH
