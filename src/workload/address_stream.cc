#include "workload/address_stream.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"
#include "snap/snapio.hh"

namespace sasos::wl
{

SequentialStream::SequentialStream(vm::VAddr base, u64 bytes, u64 stride)
    : base_(base), bytes_(bytes), stride_(stride)
{
    SASOS_ASSERT(bytes > 0 && stride > 0, "degenerate sequential stream");
}

vm::VAddr
SequentialStream::next(Rng &)
{
    const vm::VAddr va = base_ + offset_;
    offset_ += stride_;
    if (offset_ >= bytes_)
        offset_ = 0;
    return va;
}

UniformStream::UniformStream(vm::VAddr base, u64 bytes, u64 alignment)
    : base_(base), slots_(bytes / alignment), alignment_(alignment)
{
    SASOS_ASSERT(slots_ > 0, "degenerate uniform stream");
}

vm::VAddr
UniformStream::next(Rng &rng)
{
    return base_ + rng.nextBelow(slots_) * alignment_;
}

ZipfPageStream::ZipfPageStream(vm::VAddr base, u64 pages, double theta,
                               u64 seed)
    : base_(base), zipf_(pages, theta), pageOrder_(pages)
{
    std::iota(pageOrder_.begin(), pageOrder_.end(), u64{0});
    Rng shuffler(seed);
    shuffler.shuffle(pageOrder_);
}

vm::VAddr
ZipfPageStream::next(Rng &rng)
{
    const u64 page = pageOrder_[zipf_(rng)];
    const u64 offset = rng.nextBelow(vm::kPageBytes / 8) * 8;
    return base_ + page * vm::kPageBytes + offset;
}

WorkingSetStream::WorkingSetStream(vm::VAddr base, u64 pages, u64 ws_pages,
                                   u64 phase_refs)
    : base_(base), pages_(pages), wsPages_(std::min(ws_pages, pages)),
      phaseRefs_(phase_refs)
{
    SASOS_ASSERT(pages > 0 && ws_pages > 0 && phase_refs > 0,
                 "degenerate working-set stream");
}

void
WorkingSetStream::redraw(Rng &rng)
{
    workingSet_.clear();
    for (u64 i = 0; i < wsPages_; ++i)
        workingSet_.push_back(rng.nextBelow(pages_));
    refsLeft_ = phaseRefs_;
}

vm::VAddr
WorkingSetStream::next(Rng &rng)
{
    if (refsLeft_ == 0)
        redraw(rng);
    --refsLeft_;
    const u64 page = workingSet_[rng.nextBelow(workingSet_.size())];
    const u64 offset = rng.nextBelow(vm::kPageBytes / 8) * 8;
    return base_ + page * vm::kPageBytes + offset;
}

void
SequentialStream::save(snap::SnapWriter &w) const
{
    w.putTag("seqstream");
    w.put64(offset_);
}

void
SequentialStream::load(snap::SnapReader &r)
{
    r.expectTag("seqstream");
    const u64 offset = r.get64();
    if (offset >= bytes_)
        SASOS_FATAL("corrupt snapshot: stream offset ", offset,
                    " beyond range of ", bytes_, " bytes");
    offset_ = offset;
}

void
WorkingSetStream::save(snap::SnapWriter &w) const
{
    w.putTag("wsstream");
    w.put64(refsLeft_);
    w.put64(workingSet_.size());
    for (u64 page : workingSet_)
        w.put64(page);
}

void
WorkingSetStream::load(snap::SnapReader &r)
{
    r.expectTag("wsstream");
    refsLeft_ = r.get64();
    workingSet_.clear();
    const u32 count = r.getCount(8);
    if (count != 0 && count != std::min(wsPages_, pages_))
        SASOS_FATAL("corrupt snapshot: working set of ", count,
                    " pages; expected ", std::min(wsPages_, pages_));
    workingSet_.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        const u64 page = r.get64();
        if (page >= pages_)
            SASOS_FATAL("corrupt snapshot: working-set page ", page,
                        " beyond range of ", pages_, " pages");
        workingSet_.push_back(page);
    }
}

} // namespace sasos::wl
