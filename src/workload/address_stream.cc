#include "workload/address_stream.hh"

#include <numeric>

#include "sim/logging.hh"

namespace sasos::wl
{

SequentialStream::SequentialStream(vm::VAddr base, u64 bytes, u64 stride)
    : base_(base), bytes_(bytes), stride_(stride)
{
    SASOS_ASSERT(bytes > 0 && stride > 0, "degenerate sequential stream");
}

vm::VAddr
SequentialStream::next(Rng &)
{
    const vm::VAddr va = base_ + offset_;
    offset_ += stride_;
    if (offset_ >= bytes_)
        offset_ = 0;
    return va;
}

UniformStream::UniformStream(vm::VAddr base, u64 bytes, u64 alignment)
    : base_(base), slots_(bytes / alignment), alignment_(alignment)
{
    SASOS_ASSERT(slots_ > 0, "degenerate uniform stream");
}

vm::VAddr
UniformStream::next(Rng &rng)
{
    return base_ + rng.nextBelow(slots_) * alignment_;
}

ZipfPageStream::ZipfPageStream(vm::VAddr base, u64 pages, double theta,
                               u64 seed)
    : base_(base), zipf_(pages, theta), pageOrder_(pages)
{
    std::iota(pageOrder_.begin(), pageOrder_.end(), u64{0});
    Rng shuffler(seed);
    shuffler.shuffle(pageOrder_);
}

vm::VAddr
ZipfPageStream::next(Rng &rng)
{
    const u64 page = pageOrder_[zipf_(rng)];
    const u64 offset = rng.nextBelow(vm::kPageBytes / 8) * 8;
    return base_ + page * vm::kPageBytes + offset;
}

WorkingSetStream::WorkingSetStream(vm::VAddr base, u64 pages, u64 ws_pages,
                                   u64 phase_refs)
    : base_(base), pages_(pages), wsPages_(std::min(ws_pages, pages)),
      phaseRefs_(phase_refs)
{
    SASOS_ASSERT(pages > 0 && ws_pages > 0 && phase_refs > 0,
                 "degenerate working-set stream");
}

void
WorkingSetStream::redraw(Rng &rng)
{
    workingSet_.clear();
    for (u64 i = 0; i < wsPages_; ++i)
        workingSet_.push_back(rng.nextBelow(pages_));
    refsLeft_ = phaseRefs_;
}

vm::VAddr
WorkingSetStream::next(Rng &rng)
{
    if (refsLeft_ == 0)
        redraw(rng);
    --refsLeft_;
    const u64 page = workingSet_[rng.nextBelow(workingSet_.size())];
    const u64 offset = rng.nextBelow(vm::kPageBytes / 8) * 8;
    return base_ + page * vm::kPageBytes + offset;
}

} // namespace sasos::wl
