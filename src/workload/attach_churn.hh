/**
 * @file
 * Segment attach/detach churn (Table 1, rows "Attach Segment" /
 * "Detach Segment").
 *
 * Models the file-open/close and library-load pattern the paper
 * expects to dominate once sharing is cheap: a domain repeatedly
 * attaches a segment (a newly accessed file or library), touches some
 * of its pages, and detaches it. Attach should be cheap in both
 * models; detach is O(1) in the page-group model but a PLB scan in
 * the domain-page model.
 */

#ifndef SASOS_WORKLOAD_ATTACH_CHURN_HH
#define SASOS_WORKLOAD_ATTACH_CHURN_HH

#include "core/system.hh"
#include "sim/random.hh"

namespace sasos::wl
{

/** Attach/detach churn parameters. */
struct AttachChurnConfig
{
    /** Attach/use/detach episodes. */
    u64 episodes = 200;
    /** Pool of segments cycled through. */
    u64 segmentCount = 16;
    u64 segmentPages = 64;
    /** Pages touched per episode while attached. */
    u64 pagesTouched = 16;
    u64 seed = 1;
};

/** Attach/detach churn results. */
struct AttachChurnResult
{
    u64 episodes = 0;
    CycleAccount cycles;
    u64 plbPurgeScans = 0; // domain-page model scan volume

    double
    cyclesPerEpisode() const
    {
        return episodes
                   ? static_cast<double>(cycles.total().count()) / episodes
                   : 0.0;
    }
};

/** The churn driver. */
class AttachChurnWorkload
{
  public:
    explicit AttachChurnWorkload(const AttachChurnConfig &config)
        : config_(config)
    {
    }

    AttachChurnResult run(core::System &sys);

  private:
    AttachChurnConfig config_;
};

} // namespace sasos::wl

#endif // SASOS_WORKLOAD_ATTACH_CHURN_HH
