#include "workload/gc.hh"

#include <set>

#include "sim/logging.hh"

namespace sasos::wl
{

namespace
{

/**
 * The collector as a segment server: a mutator trap on an unscanned
 * to-space page garbage collects that page and opens it read-write
 * (Table 1, "Access unscanned to-space").
 */
class GcServer : public os::SegmentServer
{
  public:
    GcServer(os::DomainId mutator, u64 *scan_faults)
        : mutator_(mutator), scanFaults_(scan_faults)
    {
    }

    void
    beginCollection(vm::SegmentId to_space, std::set<vm::Vpn> unscanned)
    {
        toSpace_ = to_space;
        unscanned_ = std::move(unscanned);
    }

    bool
    onProtectionFault(os::Kernel &kernel, os::DomainId domain,
                      vm::VAddr va, vm::AccessType type) override
    {
        (void)type;
        if (domain != mutator_)
            return false;
        const vm::Vpn vpn = vm::pageOf(va);
        auto it = unscanned_.find(vpn);
        if (it == unscanned_.end())
            return false;
        // Scan the page: copy its reachable objects out of from-space
        // (one page copy of collector work), then grant the mutator
        // read-write access.
        kernel.charge(CostCategory::Io, kernel.costs().pageCopy);
        kernel.setPageRights(mutator_, vpn, vm::Access::ReadWrite);
        unscanned_.erase(it);
        ++*scanFaults_;
        return true;
    }

    bool scanned(vm::Vpn vpn) const { return unscanned_.count(vpn) == 0; }
    std::size_t unscannedCount() const { return unscanned_.size(); }

  private:
    os::DomainId mutator_;
    u64 *scanFaults_;
    vm::SegmentId toSpace_ = vm::kInvalidSegment;
    std::set<vm::Vpn> unscanned_;
};

} // namespace

GcResult
GcWorkload::run(core::System &sys)
{
    auto &kernel = sys.kernel();
    Rng rng(config_.seed);
    GcResult result;

    const os::DomainId mutator = kernel.createDomain("mutator");
    const os::DomainId collector = kernel.createDomain("collector");
    GcServer server(mutator, &result.scanFaults);

    // Initial to-space: fully scanned (empty heap), mutator has RW.
    vm::SegmentId to_space = kernel.createSegment("to-space-0",
                                                  config_.spacePages);
    kernel.attach(mutator, to_space, vm::Access::ReadWrite);
    kernel.attach(collector, to_space, vm::Access::ReadWrite);
    kernel.setSegmentServer(to_space, &server);
    vm::VAddr to_base = sys.state().segments.find(to_space)->base();

    kernel.switchTo(mutator);

    const CycleAccount before = sys.account();
    u64 alloc_ptr = 0; // bump pointer, in pages

    for (u64 gc = 0; gc < config_.collections; ++gc) {
        // --- Mutator epoch: allocate and reference the heap.
        for (u64 alloc = 0; alloc < config_.allocsPerCollection; ++alloc) {
            // Allocate: store into the next to-space slot.
            const u64 page = alloc_ptr % config_.spacePages;
            sys.store(to_base + page * vm::kPageBytes +
                      (alloc % (vm::kPageBytes / 8)) * 8);
            ++alloc_ptr;
            ++result.mutatorRefs;
            // Reference existing data, old and new.
            for (u64 r = 0; r < config_.refsPerAlloc; ++r) {
                const u64 target =
                    rng.bernoulli(config_.oldDataFraction)
                        ? rng.nextBelow(config_.spacePages)
                        : page;
                sys.load(to_base + target * vm::kPageBytes +
                         rng.nextBelow(vm::kPageBytes / 8) * 8);
                ++result.mutatorRefs;
            }
        }

        // --- Flip (Table 1 "Flip Spaces"): the old to-space becomes
        // from-space; a fresh to-space appears; the collector can
        // access both; the mutator loses from-space entirely and gets
        // to-space pages lazily as they are scanned.
        const u64 flip_start = sys.account().total().count();
        const vm::SegmentId from_space = to_space;
        to_space = kernel.createSegment(
            "to-space-" + std::to_string(gc + 1), config_.spacePages);
        kernel.setSegmentServer(to_space, &server);
        to_base = sys.state().segments.find(to_space)->base();

        kernel.attach(collector, to_space, vm::Access::ReadWrite);
        // Mutator: no access to the new space until pages are scanned;
        // attach with rights None so faults route to the server.
        kernel.attach(mutator, to_space, vm::Access::None);
        kernel.detach(mutator, from_space);

        std::set<vm::Vpn> unscanned;
        const vm::Vpn first = sys.state().segments.find(to_space)->firstPage;
        for (u64 p = 0; p < config_.spacePages; ++p)
            unscanned.insert(first + p);
        server.beginCollection(to_space, std::move(unscanned));
        ++result.flips;
        result.flipCycles +=
            sys.account().total().count() - flip_start;

        // The collector evacuates the roots, then retires from-space.
        kernel.switchTo(collector);
        kernel.charge(CostCategory::Io,
                      kernel.costs().pageCopy * 4); // root set copy
        kernel.detach(collector, from_space);
        kernel.destroySegment(from_space);
        kernel.switchTo(mutator);
        alloc_ptr = 0;
    }

    result.cycles = sys.account().since(before);
    return result;
}

} // namespace sasos::wl
