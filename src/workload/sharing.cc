#include "workload/sharing.hh"

#include <memory>
#include <vector>

#include "workload/address_stream.hh"

namespace sasos::wl
{

SharingResult
SharingWorkload::run(core::System &sys)
{
    auto &kernel = sys.kernel();
    Rng rng(config_.seed);

    std::vector<os::DomainId> domains;
    for (u64 d = 0; d < config_.domains; ++d)
        domains.push_back(
            kernel.createDomain("share-" + std::to_string(d)));

    std::vector<vm::SegmentId> shared;
    std::vector<vm::VAddr> shared_bases;
    for (u64 s = 0; s < config_.sharedSegments; ++s) {
        const vm::SegmentId seg = kernel.createSegment(
            "shared-" + std::to_string(s), config_.sharedPages);
        shared.push_back(seg);
        shared_bases.push_back(sys.state().segments.find(seg)->base());
        for (os::DomainId d : domains)
            kernel.attach(d, seg, vm::Access::ReadWrite);
    }

    std::vector<vm::VAddr> private_bases;
    for (u64 d = 0; d < config_.domains; ++d) {
        const vm::SegmentId seg = kernel.createSegment(
            "private-" + std::to_string(d), config_.privatePages);
        kernel.attach(domains[d], seg, vm::Access::ReadWrite);
        private_bases.push_back(sys.state().segments.find(seg)->base());
    }

    // Shared references are Zipf within each segment -- the same hot
    // pages are touched by every domain, which is what drives entry
    // replication; private references have working-set locality.
    std::vector<std::unique_ptr<ZipfPageStream>> shared_streams;
    for (u64 s = 0; s < config_.sharedSegments; ++s) {
        shared_streams.push_back(std::make_unique<ZipfPageStream>(
            shared_bases[s], config_.sharedPages, 0.8,
            config_.seed + 17 + s));
    }
    std::vector<std::unique_ptr<WorkingSetStream>> private_streams;
    for (u64 d = 0; d < config_.domains; ++d) {
        private_streams.push_back(std::make_unique<WorkingSetStream>(
            private_bases[d], config_.privatePages,
            std::min<u64>(8, config_.privatePages), 512));
    }

    const CycleAccount before = sys.account();

    SharingResult result;
    for (u64 quantum = 0; quantum < config_.quanta; ++quantum) {
        const u64 d = quantum % config_.domains;
        kernel.switchTo(domains[d]);
        for (u64 r = 0; r < config_.refsPerQuantum; ++r) {
            const bool to_shared = rng.bernoulli(config_.sharedFraction);
            vm::VAddr va;
            if (to_shared) {
                const std::size_t s = static_cast<std::size_t>(
                    rng.nextBelow(config_.sharedSegments));
                va = shared_streams[s]->next(rng);
            } else {
                va = private_streams[d]->next(rng);
            }
            if (rng.bernoulli(config_.storeFraction))
                sys.store(va);
            else
                sys.load(va);
            ++result.references;
        }
        if (config_.protChangePeriod != 0 &&
            (quantum + 1) % config_.protChangePeriod == 0) {
            // Toggle one domain's rights on one shared page: the
            // "active sharing with frequent protection changes"
            // regime of Section 4.1.2.
            const std::size_t s = static_cast<std::size_t>(
                rng.nextBelow(config_.sharedSegments));
            const u64 page = rng.nextBelow(config_.sharedPages);
            const vm::Vpn vpn =
                vm::pageOf(shared_bases[s]) + page;
            const os::DomainId target =
                domains[rng.nextBelow(config_.domains)];
            const bool restrict_now = rng.bernoulli(0.5);
            kernel.setPageRights(target, vpn,
                                 restrict_now ? vm::Access::Read
                                              : vm::Access::ReadWrite);
        }
    }

    result.cycles = sys.account().since(before);
    if (auto *plb_system = sys.plbSystem()) {
        result.plbMisses = plb_system->protMisses();
        result.tlbMisses = plb_system->translationTlb().misses.value();
        result.occupancyEntries = plb_system->protOccupancy();
    } else if (auto *pg = sys.pageGroupSystem()) {
        result.tlbMisses = pg->tlb().misses.value();
        result.occupancyEntries = pg->tlb().occupancy();
    } else if (auto *conv = sys.conventionalSystem()) {
        result.tlbMisses = conv->tlb().misses.value();
        result.occupancyEntries = conv->tlb().occupancy();
    } else if (auto *pkey = sys.pkeySystem()) {
        result.tlbMisses = pkey->tlb().misses.value();
        result.occupancyEntries = pkey->tlb().occupancy();
    }
    result.protOpCycles =
        sys.account().byCategory(CostCategory::KernelWork).count();
    return result;
}

} // namespace sasos::wl
