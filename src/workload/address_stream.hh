/**
 * @file
 * Synthetic reference stream generators.
 *
 * The paper's evaluation arguments depend on locality, sharing degree
 * and fault frequency rather than on specific binaries, so workloads
 * synthesize their reference streams from these generators. All
 * randomness comes from the caller's seeded Rng, making every run
 * exactly reproducible.
 */

#ifndef SASOS_WORKLOAD_ADDRESS_STREAM_HH
#define SASOS_WORKLOAD_ADDRESS_STREAM_HH

#include <memory>

#include "sim/random.hh"
#include "vm/address.hh"

namespace sasos::snap
{
class SnapWriter;
class SnapReader;
} // namespace sasos::snap

namespace sasos::wl
{

/** A source of virtual addresses. */
class AddressStream
{
  public:
    virtual ~AddressStream() = default;

    virtual vm::VAddr next(Rng &rng) = 0;

    /** @name Snapshot hooks
     * Mid-stream position, for streams that have one. Stateless
     * streams (uniform, Zipf) inherit the no-ops: their next() is a
     * pure function of the caller's Rng, which snapshots separately.
     */
    /// @{
    virtual void save(snap::SnapWriter &w) const { (void)w; }
    virtual void load(snap::SnapReader &r) { (void)r; }
    /// @}
};

/** Walks a range with a fixed stride, wrapping around. */
class SequentialStream : public AddressStream
{
  public:
    SequentialStream(vm::VAddr base, u64 bytes, u64 stride = 8);

    vm::VAddr next(Rng &rng) override;

    void save(snap::SnapWriter &w) const override;
    void load(snap::SnapReader &r) override;

  private:
    vm::VAddr base_;
    u64 bytes_;
    u64 stride_;
    u64 offset_ = 0;
};

/** Uniform random word addresses in a range. */
class UniformStream : public AddressStream
{
  public:
    UniformStream(vm::VAddr base, u64 bytes, u64 alignment = 8);

    vm::VAddr next(Rng &rng) override;

  private:
    vm::VAddr base_;
    u64 slots_;
    u64 alignment_;
};

/** Zipf-distributed page popularity with uniform offsets inside the
 * page; rank order is a deterministic shuffle of the pages so hot
 * pages are scattered across the range. */
class ZipfPageStream : public AddressStream
{
  public:
    ZipfPageStream(vm::VAddr base, u64 pages, double theta, u64 seed);

    vm::VAddr next(Rng &rng) override;

  private:
    vm::VAddr base_;
    ZipfDistribution zipf_;
    std::vector<u64> pageOrder_;
};

/**
 * Phased working-set model: references stay uniform within a working
 * set of `ws_pages` pages for `phase_refs` references, then the set
 * re-draws -- the classic program-phase behaviour that gives TLBs and
 * PLBs their locality.
 */
class WorkingSetStream : public AddressStream
{
  public:
    WorkingSetStream(vm::VAddr base, u64 pages, u64 ws_pages,
                     u64 phase_refs);

    vm::VAddr next(Rng &rng) override;

    void save(snap::SnapWriter &w) const override;
    void load(snap::SnapReader &r) override;

  private:
    void redraw(Rng &rng);

    vm::VAddr base_;
    u64 pages_;
    u64 wsPages_;
    u64 phaseRefs_;
    u64 refsLeft_ = 0;
    std::vector<u64> workingSet_;
};

} // namespace sasos::wl

#endif // SASOS_WORKLOAD_ADDRESS_STREAM_HH
