#include "workload/dvm.hh"

#include <map>
#include <set>
#include <vector>

#include "workload/address_stream.hh"

namespace sasos::wl
{

namespace
{

/** The coherence manager, as a segment server. */
class DsmServer : public os::SegmentServer
{
  public:
    DsmServer(std::vector<os::DomainId> nodes, DvmResult *result)
        : nodes_(std::move(nodes)), result_(result)
    {
    }

    bool
    onProtectionFault(os::Kernel &kernel, os::DomainId domain,
                      vm::VAddr va, vm::AccessType type) override
    {
        const vm::Vpn vpn = vm::pageOf(va);
        PageDir &dir = directory_[vpn];
        if (type == vm::AccessType::Store) {
            // Get Writable: fetch an exclusive copy and invalidate
            // every other replica.
            ++result_->writeFaults;
            kernel.charge(CostCategory::Io,
                          kernel.costs().networkRoundTrip);
            for (os::DomainId replica : dir.copyset) {
                if (replica == domain)
                    continue;
                ++result_->invalidations;
                // Invalidate on the remote node: one rights update.
                kernel.setPageRights(replica, vpn, vm::Access::None);
            }
            dir.copyset.clear();
            dir.copyset.insert(domain);
            dir.owner = domain;
            kernel.setPageRights(domain, vpn, vm::Access::ReadWrite);
        } else {
            // Get Readable: fetch a shared copy; the owner drops to
            // read-only so future writes fault.
            ++result_->readFaults;
            kernel.charge(CostCategory::Io,
                          kernel.costs().networkRoundTrip);
            if (dir.owner != 0 && dir.owner != domain &&
                dir.copyset.count(dir.owner)) {
                kernel.setPageRights(dir.owner, vpn, vm::Access::Read);
            }
            dir.copyset.insert(domain);
            kernel.setPageRights(domain, vpn, vm::Access::Read);
        }
        return true;
    }

  private:
    struct PageDir
    {
        os::DomainId owner = 0;
        std::set<os::DomainId> copyset;
    };

    std::vector<os::DomainId> nodes_;
    DvmResult *result_;
    std::map<vm::Vpn, PageDir> directory_;
};

} // namespace

DvmResult
DvmWorkload::run(core::System &sys)
{
    auto &kernel = sys.kernel();
    Rng rng(config_.seed);
    DvmResult result;

    std::vector<os::DomainId> nodes;
    for (u64 n = 0; n < config_.nodes; ++n)
        nodes.push_back(kernel.createDomain("node-" + std::to_string(n)));

    const vm::SegmentId shared =
        kernel.createSegment("dsm-shared", config_.sharedPages);
    // Every node can name the segment but starts with no access: all
    // copies are initially invalid.
    for (os::DomainId node : nodes)
        kernel.attach(node, shared, vm::Access::None);

    DsmServer server(nodes, &result);
    kernel.setSegmentServer(shared, &server);

    const vm::VAddr base = sys.state().segments.find(shared)->base();
    ZipfPageStream stream(base, config_.sharedPages, config_.theta,
                          config_.seed + 99);

    const CycleAccount before = sys.account();

    for (u64 quantum = 0; quantum < config_.quanta; ++quantum) {
        kernel.switchTo(nodes[quantum % config_.nodes]);
        for (u64 r = 0; r < config_.refsPerQuantum; ++r) {
            const vm::VAddr va = stream.next(rng);
            if (rng.bernoulli(config_.storeFraction))
                sys.store(va);
            else
                sys.load(va);
            ++result.references;
        }
    }

    result.cycles = sys.account().since(before);
    return result;
}

DvmResult
DvmWorkload::run(core::SmpSystem &sys)
{
    auto &kernel = sys.kernel();
    SASOS_ASSERT(sys.cpuCount() >= config_.nodes,
                 "SMP DVM needs one CPU per node (have ",
                 sys.cpuCount(), ", need ", config_.nodes, ")");
    Rng rng(config_.seed);
    DvmResult result;

    std::vector<os::DomainId> nodes;
    for (u64 n = 0; n < config_.nodes; ++n)
        nodes.push_back(kernel.createDomain("node-" + std::to_string(n)));

    const vm::SegmentId shared =
        kernel.createSegment("dsm-shared", config_.sharedPages);
    for (os::DomainId node : nodes)
        kernel.attach(node, shared, vm::Access::None);

    DsmServer server(nodes, &result);
    kernel.setSegmentServer(shared, &server);

    const vm::VAddr base = sys.state().segments.find(shared)->base();
    ZipfPageStream stream(base, config_.sharedPages, config_.theta,
                          config_.seed + 99);

    const CycleAccount before = sys.account();

    for (u64 quantum = 0; quantum < config_.quanta; ++quantum) {
        const unsigned cpu =
            static_cast<unsigned>(quantum % config_.nodes);
        sys.runOn(cpu, nodes[cpu]);
        for (u64 r = 0; r < config_.refsPerQuantum; ++r) {
            const vm::VAddr va = stream.next(rng);
            if (rng.bernoulli(config_.storeFraction))
                sys.store(va);
            else
                sys.load(va);
            ++result.references;
        }
    }

    result.cycles = sys.account().since(before);
    return result;
}

} // namespace sasos::wl
