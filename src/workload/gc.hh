/**
 * @file
 * Concurrent copying garbage collection (Table 1, "Concurrent
 * Garbage Collection", after Appel, Ellis & Li).
 *
 * The mutator allocates in to-space; on a flip the spaces swap, the
 * collector gains read-write access to both spaces and the mutator
 * loses access to the unscanned to-space and all of from-space. When
 * the mutator touches an unscanned to-space page it traps; the
 * collector scans that page (copying reachable objects out of
 * from-space) and the page becomes read-write for the mutator.
 *
 * Per-model costs exercised:
 *  - Flip: detach from-space / attach to-space with per-domain rights
 *    (PLB: scan to drop entries; page-group: O(1) group id swaps);
 *  - Scan fault: one per page touched (both models: trap + upcall +
 *    one rights update).
 */

#ifndef SASOS_WORKLOAD_GC_HH
#define SASOS_WORKLOAD_GC_HH

#include "core/system.hh"
#include "os/segment_server.hh"
#include "sim/random.hh"

namespace sasos::wl
{

/** GC workload parameters. */
struct GcConfig
{
    /** Pages per semi-space. */
    u64 spacePages = 64;
    /** Full collections (flips) to run. */
    u64 collections = 8;
    /** Mutator references between allocations. */
    u64 refsPerAlloc = 32;
    /** Allocations between flips. */
    u64 allocsPerCollection = 256;
    /** Fraction of mutator references into old (to-be-scanned) data. */
    double oldDataFraction = 0.5;
    u64 seed = 1;
};

/** GC results. */
struct GcResult
{
    u64 flips = 0;
    u64 scanFaults = 0;
    u64 mutatorRefs = 0;
    CycleAccount cycles;
    /** Cycles charged while flipping (the Table 1 "Flip Spaces" row). */
    u64 flipCycles = 0;
};

/** The Appel-Ellis-Li driver. */
class GcWorkload
{
  public:
    explicit GcWorkload(const GcConfig &config) : config_(config) {}

    GcResult run(core::System &sys);

  private:
    GcConfig config_;
};

} // namespace sasos::wl

#endif // SASOS_WORKLOAD_GC_HH
