/**
 * @file
 * Cross-domain RPC ping-pong.
 *
 * The paper motivates single address space systems with the rising
 * relative cost of protection domain switches in server-structured
 * systems (Section 2.1, Section 4.1.4). This workload is the
 * microbenchmark behind that argument: a client and a server domain
 * share an argument segment (an RPC channel segment in Opal terms)
 * and bounce control back and forth; each call writes arguments,
 * switches, reads them, computes against the server's private state,
 * writes a result and switches back.
 *
 * The number the models disagree on is what a switch costs: a PD-ID
 * register write (PLB) vs a page-group cache purge + reload
 * (page-group) vs an ASID write or a full TLB purge (conventional).
 */

#ifndef SASOS_WORKLOAD_RPC_HH
#define SASOS_WORKLOAD_RPC_HH

#include "core/system.hh"
#include "sim/random.hh"

namespace sasos::wl
{

/** RPC ping-pong parameters. */
struct RpcConfig
{
    u64 calls = 1000;
    /** Argument + result bytes copied through the channel per call. */
    u64 argBytes = 256;
    /** Pages of private state each side touches per call. */
    u64 statePagesTouched = 4;
    /** Pages of private state each side owns. */
    u64 statePages = 64;
    /** Pages of the shared channel segment. */
    u64 channelPages = 4;
    u64 seed = 1;
};

/** Results of an RPC run. */
struct RpcResult
{
    u64 calls = 0;
    CycleAccount cycles;
    u64 domainSwitches = 0;

    double
    cyclesPerCall() const
    {
        return calls ? static_cast<double>(cycles.total().count()) / calls
                     : 0.0;
    }
};

/** Client/server RPC ping-pong through a shared channel segment. */
class RpcWorkload
{
  public:
    explicit RpcWorkload(const RpcConfig &config) : config_(config) {}

    /** Build domains/segments and run the calls. */
    RpcResult run(core::System &sys);

  private:
    RpcConfig config_;
};

} // namespace sasos::wl

#endif // SASOS_WORKLOAD_RPC_HH
