/**
 * @file
 * Sharing-degree sweep (experiment C4).
 *
 * D domains share S segments and each owns a private segment; the
 * scheduler round-robins between domains, each running a quantum of
 * references. The paper's claims under test:
 *
 *  - ASID-tagged conventional TLBs and the PLB replicate one entry
 *    per sharing domain, so their miss rates rise with D while the
 *    page-group TLB keeps a single entry per page;
 *  - "a PLB system will take fewer faults where there is active
 *    sharing and frequent protection changes ... the page-group
 *    implementation will incur fewer TLB misses where sharing is
 *    static" -- the protChangePeriod knob moves the workload between
 *    those regimes.
 */

#ifndef SASOS_WORKLOAD_SHARING_HH
#define SASOS_WORKLOAD_SHARING_HH

#include "core/system.hh"
#include "sim/random.hh"

namespace sasos::wl
{

/** Sharing sweep parameters. */
struct SharingConfig
{
    u64 domains = 4;
    u64 sharedSegments = 4;
    u64 sharedPages = 32;
    u64 privatePages = 32;
    /** Scheduler quanta to run. */
    u64 quanta = 200;
    /** References per quantum. */
    u64 refsPerQuantum = 200;
    /** Fraction of references that hit shared segments. */
    double sharedFraction = 0.7;
    double storeFraction = 0.3;
    /**
     * Every N quanta, one domain's rights on one shared page are
     * toggled (a protection change); 0 disables changes (static
     * sharing).
     */
    u64 protChangePeriod = 0;
    u64 seed = 1;
};

/** Sharing sweep results. */
struct SharingResult
{
    u64 references = 0;
    CycleAccount cycles;
    u64 tlbMisses = 0;     // translation-structure misses
    u64 plbMisses = 0;     // PLB misses (0 on other models)
    u64 protOpCycles = 0;  // kernel work charged
    u64 occupancyEntries = 0;

    double
    missRate() const
    {
        return references ? static_cast<double>(tlbMisses + plbMisses) /
                                references
                          : 0.0;
    }

    double
    cyclesPerRef() const
    {
        return references
                   ? static_cast<double>(cycles.total().count()) / references
                   : 0.0;
    }
};

/** The sharing driver. */
class SharingWorkload
{
  public:
    explicit SharingWorkload(const SharingConfig &config) : config_(config)
    {
    }

    SharingResult run(core::System &sys);

  private:
    SharingConfig config_;
};

} // namespace sasos::wl

#endif // SASOS_WORKLOAD_SHARING_HH
