/**
 * @file
 * Transactional virtual memory (Table 1, "Transactional VM", after
 * the IBM 801's database storage and Camelot).
 *
 * Each transaction runs in its own protection domain and initially
 * has no access to the shared database segment. Touching a page
 * traps; the lock manager grants a read or write lock and the
 * matching page rights. Commit releases the locks and returns the
 * pages to the inaccessible state for that domain.
 *
 * Per-model pressure points (Section 4.1.2):
 *  - rights are inherently per-(domain, page): the PLB updates one
 *    entry per lock; the page-group model must carve lock pages into
 *    per-vector groups (splits) and, when transactions share read
 *    locks while others hold write locks elsewhere, group churn and
 *    PID-cache pressure follow;
 *  - conflicting lock requests abort the younger transaction.
 */

#ifndef SASOS_WORKLOAD_TXVM_HH
#define SASOS_WORKLOAD_TXVM_HH

#include "core/system.hh"
#include "os/segment_server.hh"
#include "sim/random.hh"

namespace sasos::wl
{

/** Transactional VM parameters. */
struct TxvmConfig
{
    /** Concurrent transaction domains. */
    u64 transactions = 4;
    u64 dbPages = 64;
    /** Committed transactions to run (across all domains). */
    u64 commits = 100;
    /** Pages touched per transaction. */
    u64 pagesPerTx = 8;
    double writeFraction = 0.3;
    /** Zipf skew of page popularity (contention). */
    double theta = 0.5;
    u64 seed = 1;
};

/** Transactional VM results. */
struct TxvmResult
{
    u64 commits = 0;
    u64 aborts = 0;
    u64 lockReadGrants = 0;
    u64 lockWriteGrants = 0;
    u64 references = 0;
    CycleAccount cycles;
};

/** The transaction driver. */
class TxvmWorkload
{
  public:
    explicit TxvmWorkload(const TxvmConfig &config) : config_(config) {}

    TxvmResult run(core::System &sys);

  private:
    TxvmConfig config_;
};

} // namespace sasos::wl

#endif // SASOS_WORKLOAD_TXVM_HH
