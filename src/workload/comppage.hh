/**
 * @file
 * Compression paging (Table 1, "Compression Paging", after Appel &
 * Li's virtual memory primitives).
 *
 * The application's data set exceeds physical memory; the user-level
 * pager compresses victims on the way out and decompresses on the way
 * in. Each page-out excludes all applications from the page (PLB:
 * scan-update; page-group: move to the pager's group), then unmaps
 * it; each page-in maps, transfers, and restores accessibility.
 */

#ifndef SASOS_WORKLOAD_COMPPAGE_HH
#define SASOS_WORKLOAD_COMPPAGE_HH

#include "core/system.hh"
#include "sim/random.hh"

namespace sasos::wl
{

/** Compression paging parameters. */
struct CompPageConfig
{
    /** Application data set, in pages. */
    u64 dataPages = 256;
    /** Physical frames available (must be < dataPages to page). */
    u64 frames = 128;
    u64 references = 20000;
    double storeFraction = 0.3;
    /** Zipf skew: higher keeps the hot set resident. */
    double theta = 0.7;
    u64 seed = 1;
};

/** Compression paging results. */
struct CompPageResult
{
    u64 references = 0;
    u64 pageIns = 0;
    u64 pageOuts = 0;
    CycleAccount cycles;

    double
    faultRate() const
    {
        return references ? static_cast<double>(pageIns) / references : 0.0;
    }
};

/** The paging driver. Note: configure the System with
 * config.frames = CompPageConfig::frames. */
class CompPageWorkload
{
  public:
    explicit CompPageWorkload(const CompPageConfig &config)
        : config_(config)
    {
    }

    CompPageResult run(core::System &sys);

  private:
    CompPageConfig config_;
};

} // namespace sasos::wl

#endif // SASOS_WORKLOAD_COMPPAGE_HH
