#include "workload/comppage.hh"

#include "workload/address_stream.hh"

namespace sasos::wl
{

CompPageResult
CompPageWorkload::run(core::System &sys)
{
    auto &kernel = sys.kernel();
    Rng rng(config_.seed);
    CompPageResult result;

    os::Pager &pager = sys.makePager(os::PagerConfig{true});

    const os::DomainId app = kernel.createDomain("comp-app");
    const vm::SegmentId data = kernel.createSegment("comp-data",
                                                    config_.dataPages);
    kernel.attach(app, data, vm::Access::ReadWrite);
    kernel.switchTo(app);

    const vm::VAddr base = sys.state().segments.find(data)->base();
    ZipfPageStream stream(base, config_.dataPages, config_.theta,
                          config_.seed + 3);

    const u64 ins_before = pager.pageIns.value();
    const u64 outs_before = pager.pageOuts.value();
    const CycleAccount before = sys.account();

    for (u64 r = 0; r < config_.references; ++r) {
        const vm::VAddr va = stream.next(rng);
        if (rng.bernoulli(config_.storeFraction))
            sys.store(va);
        else
            sys.load(va);
        ++result.references;
    }

    result.cycles = sys.account().since(before);
    result.pageIns = pager.pageIns.value() - ins_before;
    result.pageOuts = pager.pageOuts.value() - outs_before;
    return result;
}

} // namespace sasos::wl
