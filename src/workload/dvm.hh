/**
 * @file
 * Distributed virtual memory (Table 1, "Distributed VM", after Li's
 * IVY and Carter et al.'s Munin).
 *
 * N nodes share a segment under a single-writer/multiple-reader
 * ownership protocol. Each node is modeled as a protection domain on
 * the simulated machine (the protection costs are what the paper
 * compares; remote transfers are charged as network round trips):
 *
 *  - Get Readable: a read fault fetches a copy from the owner and
 *    maps the page read-only on this node;
 *  - Get Writable: a write fault fetches an exclusive copy,
 *    invalidates every other replica, maps read-write;
 *  - Invalidate: a remote write makes the local copy inaccessible --
 *    one rights update on this node.
 */

#ifndef SASOS_WORKLOAD_DVM_HH
#define SASOS_WORKLOAD_DVM_HH

#include "core/smp.hh"
#include "core/system.hh"
#include "os/segment_server.hh"
#include "sim/random.hh"

namespace sasos::wl
{

/** Distributed VM parameters. */
struct DvmConfig
{
    u64 nodes = 4;
    u64 sharedPages = 32;
    /** Scheduler quanta (node activations). */
    u64 quanta = 200;
    u64 refsPerQuantum = 100;
    double storeFraction = 0.2;
    /** Zipf skew of page popularity (sharing intensity). */
    double theta = 0.6;
    u64 seed = 1;
};

/** Distributed VM results. */
struct DvmResult
{
    u64 references = 0;
    u64 readFaults = 0;   // Get Readable episodes
    u64 writeFaults = 0;  // Get Writable episodes
    u64 invalidations = 0;
    CycleAccount cycles;
};

/** The DSM driver. */
class DvmWorkload
{
  public:
    explicit DvmWorkload(const DvmConfig &config) : config_(config) {}

    DvmResult run(core::System &sys);

    /**
     * The multiprocessor variant: node i is pinned to CPU i (the
     * natural DSM deployment), so coherence rights changes become
     * cross-CPU shootdowns.
     */
    DvmResult run(core::SmpSystem &sys);

  private:
    DvmConfig config_;
};

} // namespace sasos::wl

#endif // SASOS_WORKLOAD_DVM_HH
