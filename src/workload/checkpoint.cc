#include "workload/checkpoint.hh"

#include <set>

#include "workload/address_stream.hh"

namespace sasos::wl
{

namespace
{

/** Copy-on-write checkpointer, as a segment server. */
class CheckpointServer : public os::SegmentServer
{
  public:
    CheckpointServer(os::DomainId app, CheckpointResult *result)
        : app_(app), result_(result)
    {
    }

    void
    beginCheckpoint(vm::Vpn first, u64 pages)
    {
        pending_.clear();
        for (u64 p = 0; p < pages; ++p)
            pending_.insert(vm::Vpn(first.number() + p));
    }

    bool inProgress() const { return !pending_.empty(); }

    bool
    onProtectionFault(os::Kernel &kernel, os::DomainId domain,
                      vm::VAddr va, vm::AccessType type) override
    {
        if (domain != app_ || type != vm::AccessType::Store)
            return false;
        const vm::Vpn vpn = vm::pageOf(va);
        auto it = pending_.find(vpn);
        if (it == pending_.end())
            return false;
        // Table 1 "Checkpoint Page": write the old contents to disk,
        // then reopen the page read-write for the application.
        kernel.charge(CostCategory::Io, kernel.costs().diskAccess);
        kernel.setPageRights(app_, vpn, vm::Access::ReadWrite);
        pending_.erase(it);
        ++result_->copyOnWriteFaults;
        return true;
    }

    /** Background sweep: checkpoint up to `batch` untouched pages. */
    u64
    sweep(os::Kernel &kernel, u64 batch)
    {
        u64 done = 0;
        while (done < batch && !pending_.empty()) {
            const vm::Vpn vpn = *pending_.begin();
            pending_.erase(pending_.begin());
            kernel.charge(CostCategory::Io, kernel.costs().diskAccess);
            kernel.setPageRights(app_, vpn, vm::Access::ReadWrite);
            ++done;
            ++result_->sweptPages;
        }
        return done;
    }

  private:
    os::DomainId app_;
    CheckpointResult *result_;
    std::set<vm::Vpn> pending_;
};

} // namespace

CheckpointResult
CheckpointWorkload::run(core::System &sys)
{
    auto &kernel = sys.kernel();
    Rng rng(config_.seed);
    CheckpointResult result;

    const os::DomainId app = kernel.createDomain("app");
    const os::DomainId checkpointer = kernel.createDomain("checkpointer");
    (void)checkpointer;

    const vm::SegmentId data = kernel.createSegment("ckpt-data",
                                                    config_.dataPages);
    kernel.attach(app, data, vm::Access::ReadWrite);

    CheckpointServer server(app, &result);
    kernel.setSegmentServer(data, &server);

    const vm::Segment *seg = sys.state().segments.find(data);
    const vm::VAddr base = seg->base();
    const vm::Vpn first = seg->firstPage;

    WorkingSetStream stream(base, config_.dataPages,
                            std::min<u64>(16, config_.dataPages), 512);

    kernel.switchTo(app);
    // Warm the heap.
    sys.touchRange(base, config_.dataPages * vm::kPageBytes);

    const CycleAccount before = sys.account();

    auto run_refs = [&](u64 count) {
        for (u64 r = 0; r < count; ++r) {
            const vm::VAddr va = stream.next(rng);
            if (rng.bernoulli(config_.storeFraction))
                sys.store(va);
            else
                sys.load(va);
            ++result.references;
        }
    };

    for (u64 ckpt = 0; ckpt < config_.checkpoints; ++ckpt) {
        run_refs(config_.refsBetween);

        // --- Restrict Access (Table 1): the application loses write
        // access to the whole segment at once. Page overrides from
        // the previous checkpoint are cleared first so the grant
        // governs again.
        const u64 restrict_start = sys.account().total().count();
        for (u64 p = 0; p < config_.dataPages; ++p) {
            const vm::Vpn vpn(first.number() + p);
            if (sys.state().domain(app).prot.hasPageOverride(vpn))
                kernel.clearPageRights(app, vpn);
        }
        kernel.setSegmentRights(app, data, vm::Access::Read);
        server.beginCheckpoint(first, config_.dataPages);
        result.restrictCycles +=
            sys.account().total().count() - restrict_start;
        ++result.checkpoints;

        // --- Application runs against the read-only segment; the
        // background sweeper interleaves.
        while (server.inProgress()) {
            run_refs(config_.refsPerSweepStep);
            server.sweep(kernel, 8);
        }
        // Checkpoint complete: restore the segment grant (the page
        // overrides are already read-write).
        kernel.setSegmentRights(app, data, vm::Access::ReadWrite);
    }

    result.cycles = sys.account().since(before);
    return result;
}

} // namespace sasos::wl
