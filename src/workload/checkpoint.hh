/**
 * @file
 * Concurrent checkpointing (Table 1, "Concurrent Checkpoint", after
 * Li, Naughton & Plank).
 *
 * A checkpoint makes the application's writable segment read-only and
 * then lets the application keep running: pages it tries to write are
 * checkpointed on demand (copy-on-write to stable storage) and opened
 * back up read-write; a background checkpointer sweeps the remaining
 * pages. The restrict step is a segment-wide rights change (a PLB
 * scan vs a page-group rights flip); each checkpointed page is one
 * rights update.
 */

#ifndef SASOS_WORKLOAD_CHECKPOINT_HH
#define SASOS_WORKLOAD_CHECKPOINT_HH

#include "core/system.hh"
#include "os/segment_server.hh"
#include "sim/random.hh"

namespace sasos::wl
{

/** Checkpoint parameters. */
struct CheckpointConfig
{
    u64 dataPages = 64;
    /** Checkpoints to take. */
    u64 checkpoints = 4;
    /** Application references between checkpoints. */
    u64 refsBetween = 4000;
    /** Application references per background sweep step. */
    u64 refsPerSweepStep = 200;
    double storeFraction = 0.5;
    u64 seed = 1;
};

/** Checkpoint results. */
struct CheckpointResult
{
    u64 checkpoints = 0;
    u64 copyOnWriteFaults = 0;
    u64 sweptPages = 0;
    u64 references = 0;
    CycleAccount cycles;
    /** Cycles in the restrict step alone (Table 1 "Restrict Access"). */
    u64 restrictCycles = 0;
};

/** The checkpoint driver. */
class CheckpointWorkload
{
  public:
    explicit CheckpointWorkload(const CheckpointConfig &config)
        : config_(config)
    {
    }

    CheckpointResult run(core::System &sys);

  private:
    CheckpointConfig config_;
};

} // namespace sasos::wl

#endif // SASOS_WORKLOAD_CHECKPOINT_HH
