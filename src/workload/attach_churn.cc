#include "workload/attach_churn.hh"

#include <vector>

namespace sasos::wl
{

AttachChurnResult
AttachChurnWorkload::run(core::System &sys)
{
    auto &kernel = sys.kernel();
    Rng rng(config_.seed);

    const os::DomainId app = kernel.createDomain("churn-app");
    kernel.switchTo(app);

    // The segment pool exists up front (files on disk); the churn is
    // in the attach/use/detach cycle, not creation.
    std::vector<vm::SegmentId> pool;
    std::vector<vm::VAddr> bases;
    for (u64 i = 0; i < config_.segmentCount; ++i) {
        const vm::SegmentId seg = kernel.createSegment(
            "pool-" + std::to_string(i), config_.segmentPages);
        pool.push_back(seg);
        bases.push_back(sys.state().segments.find(seg)->base());
    }

    const CycleAccount before = sys.account();

    for (u64 episode = 0; episode < config_.episodes; ++episode) {
        const std::size_t pick =
            static_cast<std::size_t>(rng.nextBelow(pool.size()));
        kernel.attach(app, pool[pick], vm::Access::ReadWrite);
        for (u64 t = 0; t < config_.pagesTouched; ++t) {
            const u64 page = rng.nextBelow(config_.segmentPages);
            sys.load(bases[pick] + page * vm::kPageBytes);
        }
        kernel.detach(app, pool[pick]);
    }

    AttachChurnResult result;
    result.episodes = config_.episodes;
    result.cycles = sys.account().since(before);
    if (auto *plb_system = sys.plbSystem())
        result.plbPurgeScans = plb_system->protPurgeScans();
    return result;
}

} // namespace sasos::wl
