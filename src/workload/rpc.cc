#include "workload/rpc.hh"

#include "workload/address_stream.hh"

namespace sasos::wl
{

RpcResult
RpcWorkload::run(core::System &sys)
{
    auto &kernel = sys.kernel();
    Rng rng(config_.seed);

    const os::DomainId client = kernel.createDomain("rpc-client");
    const os::DomainId server = kernel.createDomain("rpc-server");

    const vm::SegmentId channel =
        kernel.createSegment("rpc-channel", config_.channelPages);
    const vm::SegmentId client_state =
        kernel.createSegment("client-state", config_.statePages);
    const vm::SegmentId server_state =
        kernel.createSegment("server-state", config_.statePages);

    kernel.attach(client, channel, vm::Access::ReadWrite);
    kernel.attach(server, channel, vm::Access::ReadWrite);
    kernel.attach(client, client_state, vm::Access::ReadWrite);
    kernel.attach(server, server_state, vm::Access::ReadWrite);

    const vm::VAddr channel_base =
        sys.state().segments.find(channel)->base();
    const vm::VAddr client_base =
        sys.state().segments.find(client_state)->base();
    const vm::VAddr server_base =
        sys.state().segments.find(server_state)->base();

    WorkingSetStream client_refs(client_base,
                                 config_.statePages,
                                 config_.statePagesTouched, 256);
    WorkingSetStream server_refs(server_base,
                                 config_.statePages,
                                 config_.statePagesTouched, 256);

    // Warm both sides once so the measured loop isn't cold-start.
    kernel.switchTo(client);
    sys.touchRange(client_base, config_.statePages * vm::kPageBytes);
    kernel.switchTo(server);
    sys.touchRange(server_base, config_.statePages * vm::kPageBytes);

    const CycleAccount before = sys.account();
    const u64 switches_before = kernel.domainSwitches.value();

    for (u64 call = 0; call < config_.calls; ++call) {
        // Client marshals arguments into the channel.
        kernel.switchTo(client);
        for (u64 b = 0; b < config_.argBytes; b += 8)
            sys.store(channel_base + b);
        for (u64 i = 0; i < config_.statePagesTouched; ++i)
            sys.load(client_refs.next(rng));

        // Server picks them up, works, writes the result.
        kernel.switchTo(server);
        for (u64 b = 0; b < config_.argBytes; b += 8)
            sys.load(channel_base + b);
        for (u64 i = 0; i < config_.statePagesTouched; ++i)
            sys.store(server_refs.next(rng));
        for (u64 b = 0; b < config_.argBytes; b += 8)
            sys.store(channel_base + b);

        // Client consumes the result.
        kernel.switchTo(client);
        for (u64 b = 0; b < config_.argBytes; b += 8)
            sys.load(channel_base + b);
    }

    RpcResult result;
    result.calls = config_.calls;
    result.cycles = sys.account().since(before);
    result.domainSwitches = kernel.domainSwitches.value() - switches_before;
    return result;
}

} // namespace sasos::wl
