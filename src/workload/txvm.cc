#include "workload/txvm.hh"

#include <map>
#include <set>
#include <vector>

#include "workload/address_stream.hh"

namespace sasos::wl
{

namespace
{

/** Page lock table + rights management, as a segment server. */
class LockServer : public os::SegmentServer
{
  public:
    explicit LockServer(TxvmResult *result) : result_(result) {}

    bool
    onProtectionFault(os::Kernel &kernel, os::DomainId domain,
                      vm::VAddr va, vm::AccessType type) override
    {
        const vm::Vpn vpn = vm::pageOf(va);
        Lock &lock = locks_[vpn];
        if (type == vm::AccessType::Store) {
            // Write lock: exclusive.
            if (!lock.holders.empty() &&
                !(lock.holders.size() == 1 && lock.holders.count(domain))) {
                conflicted_ = domain;
                return false; // deliver: the driver aborts
            }
            lock.writer = domain;
            lock.holders.insert(domain);
            held_[domain].insert(vpn);
            ++result_->lockWriteGrants;
            kernel.setPageRights(domain, vpn, vm::Access::ReadWrite);
        } else {
            // Read lock: shared, blocked by a foreign write lock.
            if (lock.writer != 0 && lock.writer != domain) {
                conflicted_ = domain;
                return false;
            }
            lock.holders.insert(domain);
            held_[domain].insert(vpn);
            ++result_->lockReadGrants;
            kernel.setPageRights(domain, vpn, vm::Access::Read);
        }
        return true;
    }

    /** Commit (or abort): release locks, pages become inaccessible
     * again for the domain (Table 1, "Commit"). */
    void
    releaseAll(os::Kernel &kernel, os::DomainId domain)
    {
        auto it = held_.find(domain);
        if (it == held_.end())
            return;
        for (vm::Vpn vpn : it->second) {
            Lock &lock = locks_[vpn];
            lock.holders.erase(domain);
            if (lock.writer == domain)
                lock.writer = 0;
            if (lock.holders.empty())
                locks_.erase(vpn);
            kernel.setPageRights(domain, vpn, vm::Access::None);
        }
        held_.erase(it);
    }

    bool
    tookConflict(os::DomainId domain)
    {
        if (conflicted_ == domain) {
            conflicted_ = 0;
            return true;
        }
        return false;
    }

  private:
    struct Lock
    {
        os::DomainId writer = 0;
        std::set<os::DomainId> holders;
    };

    TxvmResult *result_;
    std::map<vm::Vpn, Lock> locks_;
    std::map<os::DomainId, std::set<vm::Vpn>> held_;
    os::DomainId conflicted_ = 0;
};

} // namespace

TxvmResult
TxvmWorkload::run(core::System &sys)
{
    auto &kernel = sys.kernel();
    Rng rng(config_.seed);
    TxvmResult result;

    std::vector<os::DomainId> txs;
    for (u64 t = 0; t < config_.transactions; ++t)
        txs.push_back(kernel.createDomain("tx-" + std::to_string(t)));

    const vm::SegmentId db = kernel.createSegment("database",
                                                  config_.dbPages);
    // Transactions can name the database but start with no access:
    // every first touch of a page traps to the lock manager.
    for (os::DomainId tx : txs)
        kernel.attach(tx, db, vm::Access::None);

    LockServer server(&result);
    kernel.setSegmentServer(db, &server);

    const vm::VAddr base = sys.state().segments.find(db)->base();
    ZipfPageStream stream(base, config_.dbPages, config_.theta,
                          config_.seed + 7);

    const CycleAccount before = sys.account();

    u64 committed = 0;
    u64 turn = 0;
    while (committed < config_.commits) {
        const os::DomainId tx = txs[turn % txs.size()];
        ++turn;
        kernel.switchTo(tx);
        bool aborted = false;
        for (u64 touch = 0; touch < config_.pagesPerTx && !aborted;
             ++touch) {
            const vm::VAddr va = stream.next(rng);
            const bool is_store = rng.bernoulli(config_.writeFraction);
            const bool ok = is_store ? sys.store(va) : sys.load(va);
            ++result.references;
            if (!ok && server.tookConflict(tx)) {
                // Lock conflict: abort, releasing everything.
                server.releaseAll(kernel, tx);
                ++result.aborts;
                aborted = true;
            }
        }
        if (!aborted) {
            server.releaseAll(kernel, tx);
            ++result.commits;
            ++committed;
        }
    }

    result.cycles = sys.account().since(before);
    return result;
}

} // namespace sasos::wl
