/**
 * @file
 * Experiment C3: domain-switch cost (Section 4.1.4).
 *
 * Paper predictions:
 *  - PLB: one PD-ID register write; neither the PLB nor the TLB is
 *    purged, so no cold-start misses after the switch;
 *  - page-group: the page-group cache is purged and reloaded (lazily
 *    via faults, or eagerly);
 *  - conventional with ASIDs: a register write, but shared pages
 *    replicate entries; without ASIDs: a full TLB purge and a
 *    cold-start on every switch.
 */

#include "bench_common.hh"

#include "workload/rpc.hh"

using namespace sasos;

namespace
{

/** Cycles charged between fully warm quanta of two domains. */
struct SwitchCost
{
    double switchCycles = 0;   // DomainSwitch category per switch
    double refillCycles = 0;   // cold-start refills per switch
};

SwitchCost
measureSwitchCost(const core::SystemConfig &config, u64 ws_pages,
                  u64 rounds)
{
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    // Each domain works on its own segments plus one shared one.
    std::vector<vm::VAddr> a_pages, b_pages;
    const vm::SegmentId sa = kernel.createSegment("a-data", ws_pages);
    const vm::SegmentId sb = kernel.createSegment("b-data", ws_pages);
    const vm::SegmentId sh = kernel.createSegment("shared", ws_pages);
    kernel.attach(a, sa, vm::Access::ReadWrite);
    kernel.attach(b, sb, vm::Access::ReadWrite);
    kernel.attach(a, sh, vm::Access::ReadWrite);
    kernel.attach(b, sh, vm::Access::ReadWrite);
    const vm::VAddr base_a = sys.state().segments.find(sa)->base();
    const vm::VAddr base_b = sys.state().segments.find(sb)->base();
    const vm::VAddr base_s = sys.state().segments.find(sh)->base();

    auto quantum = [&](os::DomainId d, vm::VAddr own) {
        kernel.switchTo(d);
        for (u64 p = 0; p < ws_pages; ++p) {
            sys.load(own + p * vm::kPageBytes);
            sys.load(base_s + p * vm::kPageBytes);
        }
    };

    // Warm both domains.
    quantum(a, base_a);
    quantum(b, base_b);
    quantum(a, base_a);
    quantum(b, base_b);

    const CycleAccount before = sys.account();
    for (u64 round = 0; round < rounds; ++round) {
        quantum(a, base_a);
        quantum(b, base_b);
    }
    const CycleAccount delta = sys.account().since(before);
    SwitchCost cost;
    const double switches = static_cast<double>(2 * rounds);
    cost.switchCycles =
        static_cast<double>(
            delta.byCategory(CostCategory::DomainSwitch).count()) /
        switches;
    cost.refillCycles =
        static_cast<double>(
            delta.byCategory(CostCategory::Refill).count()) /
        switches;
    return cost;
}

void
printSwitchTable(const Options &options)
{
    bench::printHeader(
        "C3: domain switch cost vs working set (Section 4.1.4)",
        "Two domains alternate quanta over private + shared working "
        "sets; cost charged per switch once everything is warm. "
        "Cold-start refills after the switch are the hidden price of "
        "purging.");

    std::vector<bench::ModelUnderTest> models =
        bench::extendedModels(options);
    {
        core::SystemConfig eager = core::SystemConfig::fromOptions(
            options, core::SystemConfig::pageGroupSystem());
        eager.eagerPgReload = true;
        models.push_back({"pg-eager", eager});
    }

    for (u64 ws : {4, 16, 64}) {
        TextTable table({"system (ws=" + std::to_string(ws) + " pages)",
                         "switch cycles", "refill cycles/switch",
                         "effective total"});
        for (const auto &model : models) {
            const SwitchCost cost =
                measureSwitchCost(model.config, ws, 20);
            table.addRow({model.label,
                          TextTable::num(cost.switchCycles, 1),
                          TextTable::num(cost.refillCycles, 1),
                          TextTable::num(
                              cost.switchCycles + cost.refillCycles, 1)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "shape check: the plb stays flat (super-page entries, "
                 "nothing purged); conv-purge grows with the working "
                 "set; page-group pays per active group; conv-asid "
                 "stays flat until per-domain replication exceeds the "
                 "TLB capacity (Section 3.1's effective-size loss).\n";
}

void
printRpcComparison(const Options &options)
{
    bench::printHeader(
        "RPC ping-pong end to end",
        "The motivating scenario: server-structured systems switch "
        "domains on every call (Section 2.1).");

    wl::RpcConfig rpc;
    rpc.calls = options.getU64("calls", 500);

    TextTable table({"system", "cycles/call", "switch", "refill",
                     "vs plb"});
    double plb_per_call = 0.0;
    std::vector<bench::ModelUnderTest> models =
        bench::extendedModels(options);
    for (const auto &model : models) {
        core::System sys(model.config);
        const wl::RpcResult result = wl::RpcWorkload(rpc).run(sys);
        const double per_call = result.cyclesPerCall();
        if (plb_per_call == 0.0)
            plb_per_call = per_call;
        table.addRow(
            {model.label, TextTable::num(per_call, 1),
             TextTable::num(
                 static_cast<double>(
                     result.cycles.byCategory(CostCategory::DomainSwitch)
                         .count()) /
                     result.calls,
                 1),
             TextTable::num(
                 static_cast<double>(
                     result.cycles.byCategory(CostCategory::Refill)
                         .count()) /
                     result.calls,
                 1),
             bench::normalized(per_call, plb_per_call)});
    }
    table.print(std::cout);
}

void
BM_RpcCall(benchmark::State &state, core::ModelKind kind, bool purge)
{
    core::SystemConfig config = core::SystemConfig::forModel(kind);
    config.purgeTlbOnSwitch = purge;
    wl::RpcConfig rpc;
    rpc.calls = 200;
    u64 sim_cycles = 0;
    u64 calls = 0;
    for (auto _ : state) {
        core::System sys(config);
        const wl::RpcResult result = wl::RpcWorkload(rpc).run(sys);
        sim_cycles += result.cycles.total().count();
        calls += result.calls;
    }
    state.counters["simCyclesPerCall"] =
        calls ? static_cast<double>(sim_cycles) /
                    static_cast<double>(calls)
              : 0.0;
}

} // namespace

BENCHMARK_CAPTURE(BM_RpcCall, plb, core::ModelKind::Plb, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RpcCall, pagegroup, core::ModelKind::PageGroup, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RpcCall, conv_asid, core::ModelKind::Conventional,
                  false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RpcCall, conv_purge, core::ModelKind::Conventional,
                  true)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printSwitchTable(options);
        printRpcComparison(options);
        return 0;
    });
}
