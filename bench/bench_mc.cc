/**
 * @file
 * Experiment C12: concurrent shootdowns under contention (Section
 * 4.1.3's claim that remote maintenance is "a small number of
 * instructions on each processor", measured while every core keeps
 * issuing its own reference stream).
 *
 * Where bench_smp_shootdown measures one kernel operation against
 * idle remote CPUs, this bench runs the full multi-core engine: N
 * cores with private protection hardware interleave deterministically
 * over one shared kernel while attach/revoke churn fires shootdowns
 * asynchronously. Reported per model and core count: shootdown
 * latency (IPI issue to last ack), the stale-rights window (remote
 * references issued before the ack), and the stale grants the window
 * permitted. A short schedule-explorer run rechecks the safety
 * invariants across interleavings before the numbers are written.
 */

#include "bench_common.hh"

#include <fstream>

#include "core/mc/explorer.hh"
#include "core/mc/mc_system.hh"
#include "obs/json.hh"

using namespace sasos;

namespace
{

struct McRow
{
    std::string label;
    unsigned cores = 1;
    u64 refs = 0;
    core::mc::McResult result;
};

core::mc::McConfig
rowConfig(const Options &options, const core::SystemConfig &model,
          unsigned cores)
{
    core::mc::McConfig config = core::mc::McConfig::fromOptions(options);
    config.system = model;
    config.workload.seed = config.system.seed;
    config.cores = cores;
    return config;
}

McRow
runRow(const Options &options, const bench::ModelUnderTest &model,
       unsigned cores)
{
    McRow row;
    row.label = model.label;
    row.cores = cores;
    core::mc::McSystem system(
        rowConfig(options, model.config, cores));
    row.result = system.run();
    row.refs = row.result.completed + row.result.failed;
    return row;
}

void
printCoresTable(const Options &options, std::vector<McRow> &rows)
{
    bench::printHeader(
        "C12: shootdown latency and stale window vs core count",
        "Every core issues its own reference stream; 5% of steps are "
        "kernel protection ops, each an asynchronous shootdown. "
        "Latency runs from IPI issue to the last remote ack; the "
        "stale window counts remote references issued before acking.");

    TextTable table({"model", "cores", "shootdowns", "latency mean",
                     "latency max", "stale refs/shootdown",
                     "stale grants", "cycles/ref"});
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        for (const auto &model : bench::standardModels(options)) {
            rows.push_back(runRow(options, model, cores));
            const McRow &row = rows.back();
            table.addRow(
                {row.label, TextTable::num(u64{cores}),
                 TextTable::num(row.result.shootdowns),
                 TextTable::num(row.result.shootdownLatencyMean, 1),
                 TextTable::num(row.result.shootdownLatencyMax),
                 TextTable::num(row.result.staleRefsPerShootdownMean, 2),
                 TextTable::num(row.result.staleGrants),
                 TextTable::num(row.refs ? static_cast<double>(
                                               row.result.cycles) /
                                               static_cast<double>(
                                                   row.refs)
                                         : 0.0,
                                1)});
        }
    }
    table.print(std::cout);
    std::cout << "shape check: latency grows with core count (more acks "
                 "to collect, each delayed by the remote's step clock); "
                 "the per-ack maintenance keeps the single-processor "
                 "model ordering; one core has no shootdowns at all.\n";
}

void
printWindowTable(const Options &options, std::vector<McRow> &rows)
{
    bench::printHeader(
        "C12b: stale-rights window vs IPI delay (4 cores)",
        "The window during which a remote core may still use revoked "
        "rights is set by how long it defers the IPI. Stale grants "
        "are the revoked-rights accesses the window let through; "
        "outside the window there must be none.");

    TextTable table({"model", "ipi delay (steps)", "stale window refs",
                     "stale refs/shootdown", "stale grants",
                     "latency mean"});
    for (u64 delay : {u64{0}, u64{2}, u64{6}, u64{12}}) {
        for (const auto &model : bench::standardModels(options)) {
            Options row_options = options;
            row_options.set("mc_ipi_delay", std::to_string(delay));
            McRow row = runRow(row_options, model, 4);
            row.label = model.label;
            table.addRow(
                {row.label, TextTable::num(delay),
                 TextTable::num(row.result.staleWindowRefs),
                 TextTable::num(row.result.staleRefsPerShootdownMean, 2),
                 TextTable::num(row.result.staleGrants),
                 TextTable::num(row.result.shootdownLatencyMean, 1)});
            rows.push_back(std::move(row));
        }
    }
    table.print(std::cout);
    std::cout << "shape check: delay 0 acks before the remote issues "
                 "anything (empty window, no stale grants); the window "
                 "and the stale grants it permits grow with the delay.\n";
}

core::mc::ExplorerResult
runExplorer(const Options &options)
{
    core::mc::ExplorerConfig explorer;
    explorer.base = core::mc::McConfig::fromOptions(options);
    explorer.base.workload.seed = explorer.base.system.seed;
    explorer.seeds = options.getU64("seeds", 16);
    explorer.threads = options.threads();

    bench::printHeader(
        "C12c: schedule explorer verdict",
        "The same workload replayed under independent interleavings; "
        "every run checks that no access is granted from rights "
        "revoked before that core's ack, and that each core's "
        "hardware grants a subset of canonical rights at every "
        "quiescence point.");
    const core::mc::ExplorerResult result = core::mc::explore(explorer);
    std::cout << "schedules explored: " << result.runs.size()
              << ", shootdowns: " << result.totalShootdowns
              << ", stale grants (windowed, allowed): "
              << result.totalStaleGrants
              << ", invariant violations: " << result.totalViolations
              << " -> " << (result.passed() ? "PASS" : "FAIL") << "\n";
    if (!result.passed())
        std::cout << "first violation: " << result.firstViolation << "\n";
    return result;
}

void
writeMcJson(const std::string &path, const std::vector<McRow> &rows,
            const core::mc::ExplorerResult &explorer)
{
    std::ofstream os(path);
    if (!os)
        SASOS_FATAL("cannot open json file '", path, "'");
    obs::JsonWriter json(os);
    json.beginObject();
    json.member("bench", "mc");
    json.key("rows");
    json.beginArray();
    for (const McRow &row : rows) {
        json.beginObject();
        json.member("model", row.label);
        json.member("cores", u64{row.cores});
        json.member("references", row.refs);
        json.member("failed", row.result.failed);
        json.member("kernelOps", row.result.kernelOps);
        json.member("shootdowns", row.result.shootdowns);
        json.member("acks", row.result.acks);
        json.member("shootdownLatencyMean",
                    row.result.shootdownLatencyMean);
        json.member("shootdownLatencyMax", row.result.shootdownLatencyMax);
        json.member("staleRefsPerShootdownMean",
                    row.result.staleRefsPerShootdownMean);
        json.member("staleWindowRefs", row.result.staleWindowRefs);
        json.member("staleGrants", row.result.staleGrants);
        json.member("invariantViolations",
                    row.result.invariantViolations +
                        row.result.hwViolations);
        json.member("cycles", row.result.cycles);
        json.endObject();
    }
    json.endArray();
    json.key("explorer");
    json.beginObject();
    json.member("schedules", u64{explorer.runs.size()});
    json.member("shootdowns", explorer.totalShootdowns);
    json.member("staleGrants", explorer.totalStaleGrants);
    json.member("violations", explorer.totalViolations);
    json.member("passed", explorer.passed());
    json.endObject();
    json.endObject();
    os << "\n";
    inform("wrote ", path);
}

void
BM_McRun(benchmark::State &state, core::ModelKind kind)
{
    const unsigned cores = static_cast<unsigned>(state.range(0));
    u64 cycles = 0;
    u64 refs = 0;
    for (auto _ : state) {
        core::mc::McConfig config;
        config.system = core::SystemConfig::forModel(kind);
        config.cores = cores;
        config.workload.stepsPerCore = 500;
        config.workload.churnProb = 0.05;
        config.workload.seed = config.system.seed;
        core::mc::McSystem system(config);
        const core::mc::McResult result = system.run();
        cycles += result.cycles;
        refs += result.completed + result.failed;
    }
    state.counters["simCyclesPerRef"] =
        refs ? static_cast<double>(cycles) / static_cast<double>(refs)
             : 0.0;
    state.counters["cores"] = cores;
}

} // namespace

BENCHMARK_CAPTURE(BM_McRun, plb, core::ModelKind::Plb)->Arg(1)->Arg(4);
BENCHMARK_CAPTURE(BM_McRun, pagegroup, core::ModelKind::PageGroup)
    ->Arg(1)
    ->Arg(4);
BENCHMARK_CAPTURE(BM_McRun, conventional, core::ModelKind::Conventional)
    ->Arg(1)
    ->Arg(4);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        std::vector<McRow> rows;
        printCoresTable(options, rows);
        printWindowTable(options, rows);
        const core::mc::ExplorerResult explorer = runExplorer(options);
        writeMcJson(options.getString("json", "BENCH_mc.json"), rows,
                    explorer);
        return explorer.passed() ? 0 : 1;
    });
}
