/**
 * @file
 * The hot-path microbench: per-model accessBatch throughput in
 * isolation -- one System, one stream, no pool -- next to the
 * per-call access() path over the same references.
 *
 * Two things come out of each (model x stream) row:
 *
 *  - host throughput (refs/sec) and simulated cycles/ref for the
 *    batched path, the number the sweep engine's wall-clock stands
 *    on, with the per-call path alongside for the A/B speedup;
 *  - a bit-identity verdict: the batched run's full stats dump and
 *    cycle account must equal the per-call run's, reference for
 *    reference. A MISMATCH fails the bench (nonzero exit), so this
 *    doubles as the direct batched-vs-per-call oracle.
 *
 * Emits BENCH_hotpath.json:
 *
 *   { "bench": "hotpath", "reps": R,
 *     "rows": [ { "model", "workload", "references", "simCycles",
 *                 "simCyclesPerRef", "batchedRefsPerSec",
 *                 "perCallRefsPerSec", "speedup", "identical" } ],
 *     "totals": { "references", "batchedRefsPerSec",
 *                 "perCallRefsPerSec", "speedup" } }
 *
 * Keys: refs= (default 200000), pages=, seed=, reps= (best-of, wall
 * clock only; default 3), json=.
 */

#include "bench_common.hh"
#include "farm/campaign.hh"

#include <chrono>

using namespace sasos;

namespace
{

struct HotpathRow
{
    std::string model;
    std::string workload;
    u64 references = 0;
    u64 simCycles = 0;
    double batchedSeconds = 0.0;
    double perCallSeconds = 0.0;
    bool identical = true;
};

vm::VAddr
setupSystem(core::System &sys, u64 pages)
{
    const os::DomainId app = sys.kernel().createDomain("app");
    const vm::SegmentId seg = sys.kernel().createSegment("heap", pages);
    sys.kernel().attach(app, seg, vm::Access::ReadWrite);
    sys.kernel().switchTo(app);
    return sys.state().segments.find(seg)->base();
}

std::string
statsOf(core::System &sys)
{
    std::ostringstream dump;
    sys.dumpStats(dump);
    return dump.str();
}

/** One (model x stream) A/B: identical references through the batched
 * System::run and through a per-call access() loop, best-of-`reps`
 * wall clock each, one bit-identity comparison. */
HotpathRow
measure(const bench::ModelUnderTest &model, const std::string &workload,
        const farm::StreamFactory &factory, u64 refs, u64 pages, u64 seed,
        u64 reps)
{
    HotpathRow row;
    row.model = model.label;
    row.workload = workload;
    row.references = refs;

    std::string batched_stats;
    std::string per_call_stats;
    for (u64 rep = 0; rep < reps; ++rep) {
        // Fresh system per rep: every rep times the same cold-start
        // reference sequence, so reps differ only in host noise.
        core::System sys(model.config);
        const vm::VAddr base = setupSystem(sys, pages);
        Rng rng(seed);
        auto stream = factory(base, pages, seed);
        const auto start = std::chrono::steady_clock::now();
        sys.run(*stream, refs, rng);
        const auto stop = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(stop - start).count();
        if (rep == 0 || secs < row.batchedSeconds)
            row.batchedSeconds = secs;
        if (rep == 0) {
            row.simCycles = sys.cycles().count();
            batched_stats = statsOf(sys);
        }
    }
    for (u64 rep = 0; rep < reps; ++rep) {
        core::System sys(model.config);
        const vm::VAddr base = setupSystem(sys, pages);
        Rng rng(seed);
        auto stream = factory(base, pages, seed);
        const auto start = std::chrono::steady_clock::now();
        for (u64 i = 0; i < refs; ++i)
            sys.load(stream->next(rng));
        const auto stop = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(stop - start).count();
        if (rep == 0 || secs < row.perCallSeconds)
            row.perCallSeconds = secs;
        if (rep == 0)
            per_call_stats = statsOf(sys);
    }
    row.identical = batched_stats == per_call_stats;
    return row;
}

int
runHotpath(const Options &options)
{
    const u64 refs = options.getU64("refs", 200'000);
    const u64 pages = options.getU64("pages", 256);
    const u64 seed = options.getU64("seed", 7);
    const u64 reps = options.getU64("reps", 3);
    const std::string json_path =
        options.getString("json", "BENCH_hotpath.json");

    bench::printHeader(
        "Hot path: batched accessBatch vs per-call access",
        "Same references through System::run (SoA probe arrays, "
        "same-page run coalescing, batch-accumulated stats) and "
        "through an access() call per reference. Simulated results "
        "must be bit-identical; the speedup is pure host time.");

    std::vector<HotpathRow> rows;
    bool identical = true;
    for (const auto &model : bench::standardModels(options)) {
        for (const auto &[name, factory] : farm::standardStreams()) {
            rows.push_back(measure(model, name, factory, refs, pages,
                                   seed, reps));
            if (!rows.back().identical) {
                identical = false;
                std::cout << "MISMATCH: " << model.label << "/" << name
                          << " batched stats differ from per-call\n";
            }
        }
    }

    TextTable table({"model", "workload", "cycles/ref", "batched Mrefs/s",
                     "per-call Mrefs/s", "speedup"});
    std::string last_model;
    double batched_secs = 0.0;
    double per_call_secs = 0.0;
    u64 total_refs = 0;
    for (const HotpathRow &row : rows) {
        const double batched =
            bench::refsPerSecond(row.references, row.batchedSeconds);
        const double per_call =
            bench::refsPerSecond(row.references, row.perCallSeconds);
        table.addRow(
            {row.model == last_model ? "" : row.model, row.workload,
             TextTable::num(
                 bench::cyclesPerRef(row.simCycles, row.references), 2),
             TextTable::num(batched / 1e6, 2),
             TextTable::num(per_call / 1e6, 2),
             bench::normalized(batched, per_call)});
        last_model = row.model;
        batched_secs += row.batchedSeconds;
        per_call_secs += row.perCallSeconds;
        total_refs += row.references;
    }
    table.print(std::cout);

    const double batched_total =
        bench::refsPerSecond(total_refs, batched_secs);
    const double per_call_total =
        bench::refsPerSecond(total_refs, per_call_secs);
    std::cout << "\nrows=" << rows.size() << " refs/row=" << refs
              << " reps=" << reps << " batched="
              << TextTable::num(batched_total / 1e6, 2)
              << " Mrefs/s per-call="
              << TextTable::num(per_call_total / 1e6, 2)
              << " Mrefs/s speedup="
              << bench::normalized(batched_total, per_call_total)
              << " results "
              << (identical ? "bit-identical" : "MISMATCH") << "\n";

    std::ofstream os(json_path);
    obs::JsonWriter json(os);
    json.beginObject();
    json.member("bench", "hotpath");
    json.member("reps", reps);
    json.key("rows");
    json.beginArray();
    for (const HotpathRow &row : rows) {
        json.beginObject();
        json.member("model", row.model);
        json.member("workload", row.workload);
        json.member("references", row.references);
        json.member("simCycles", row.simCycles);
        json.member("simCyclesPerRef",
                    bench::cyclesPerRef(row.simCycles, row.references));
        json.member("batchedRefsPerSec",
                    bench::refsPerSecond(row.references,
                                         row.batchedSeconds));
        json.member("perCallRefsPerSec",
                    bench::refsPerSecond(row.references,
                                         row.perCallSeconds));
        json.member("speedup",
                    row.batchedSeconds > 0.0
                        ? row.perCallSeconds / row.batchedSeconds
                        : 0.0);
        json.member("identical", row.identical);
        json.endObject();
    }
    json.endArray();
    json.key("totals");
    json.beginObject();
    json.member("references", total_refs);
    json.member("batchedRefsPerSec", batched_total);
    json.member("perCallRefsPerSec", per_call_total);
    json.member("speedup",
                batched_secs > 0.0 ? per_call_secs / batched_secs : 0.0);
    json.endObject();
    json.endObject();
    os << "\n";
    std::cout << "wrote " << json_path << "\n";

    return identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, runHotpath);
}
