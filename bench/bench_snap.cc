/**
 * @file
 * The snapshot subsystem's bench: the resume-equivalence oracle and
 * the warm-start sweep speedup.
 *
 * Phase 1 (oracle) runs every machine -- the three protection models,
 * a fault-injected variant and the four-core multi-core engine --
 * uninterrupted and split (run, snapshot through a file round trip,
 * restore onto freshly constructed objects, continue), and demands
 * bit-identical statistics, cycle accounts and event traces. Any
 * divergence is reported and exits nonzero.
 *
 * Phase 2 (warm start) prices the subsystem's payoff on the Table-1
 * sweep shape: K seed points per model share one warmed prefix image
 * instead of each replaying the warm-up, so the cold cost
 * K * (W + R) collapses to W + K * R. Cold and warm sweeps must stay
 * bit-identical; the speedup lands in BENCH_snap.json.
 *
 * Keys: refs= (continuation refs/cell), warm_refs= (prefix),
 * seeds=, pages=, threads=, json=, snapshot_every= (oracle
 * checkpoint cadence; default one mid-run checkpoint),
 * snapshot_out= (write the warmed single-core prefix image here),
 * restore= (preflight: restore this image into a fresh default
 * machine and continue -- corrupt or mismatched images die with a
 * clean fatal, which is the EXPERIMENTS.md rejection demo).
 */

#include "bench_common.hh"
#include "farm/campaign.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <sstream>
#include <tuple>
#include <vector>

#include "core/mc/mc_system.hh"
#include "obs/json.hh"

using namespace sasos;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/** Events compared content-wise: the merge-local seq is renumbered
 * per stopTracing() call, so a split run's two trace sessions are
 * stitched and re-ordered by (cycle, tid) before comparison. */
using EventEssence = std::tuple<u64, u32, u64, u64, obs::EventKind>;

std::vector<EventEssence>
essenceOf(const std::vector<obs::Event> &events)
{
    std::vector<EventEssence> out;
    out.reserve(events.size());
    for (const obs::Event &event : events)
        out.emplace_back(event.cycle, event.tid, event.addr, event.arg,
                         event.kind);
    return out;
}

void
normalize(std::vector<EventEssence> &events)
{
    std::stable_sort(events.begin(), events.end(),
                     [](const EventEssence &a, const EventEssence &b) {
                         return std::tie(std::get<0>(a), std::get<1>(a)) <
                                std::tie(std::get<0>(b), std::get<1>(b));
                     });
}

constexpr u64 kOraclePages = 64;
constexpr u64 kOracleSeed = 42;

vm::VAddr
setupHeap(core::System &sys)
{
    const os::DomainId app = sys.kernel().createDomain("app");
    const vm::SegmentId seg =
        sys.kernel().createSegment("heap", kOraclePages);
    sys.kernel().attach(app, seg, vm::Access::ReadWrite);
    sys.kernel().switchTo(app);
    return sys.state().segments.find(seg)->base();
}

std::unique_ptr<wl::AddressStream>
oracleStream(vm::VAddr base)
{
    return std::make_unique<wl::WorkingSetStream>(base, kOraclePages, 8,
                                                  512);
}

std::string
dumpOf(core::System &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

std::string
dumpOf(core::mc::McSystem &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

std::string
scratchImagePath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** One oracle verdict, for the table and the json artifact. */
struct OracleRow
{
    std::string machine;
    bool identical = false;
    u64 events = 0;
    u64 imageBytes = 0;
    double saveMs = 0.0;
    double restoreMs = 0.0;
    std::string diagnosis;
};

/**
 * The single-core oracle: `total` references straight through vs.
 * checkpoint/restore hops every `every` references, each hop a full
 * file round trip onto fresh objects.
 */
OracleRow
singleCoreOracle(const std::string &label,
                 const core::SystemConfig &config, u64 total, u64 every)
{
    OracleRow row;
    row.machine = label;

    obs::setThreadId(1);
    obs::startTracing();
    core::System straight(config);
    const vm::VAddr base = setupHeap(straight);
    Rng straightRng(kOracleSeed);
    auto straightStream = oracleStream(base);
    straight.run(*straightStream, total, straightRng);
    std::vector<EventEssence> straightEvents =
        essenceOf(obs::stopTracing());
    const std::string straightStats = dumpOf(straight);

    const std::string path = scratchImagePath("bench_snap_oracle.snap");
    obs::setThreadId(1);
    obs::startTracing();
    auto sys = std::make_unique<core::System>(config);
    setupHeap(*sys);
    auto rng = std::make_unique<Rng>(kOracleSeed);
    auto stream = oracleStream(base);
    std::vector<EventEssence> splitEvents;
    u64 left = total;
    while (left > 0) {
        const u64 chunk = std::min(every, left);
        sys->run(*stream, chunk, *rng);
        left -= chunk;
        if (left == 0)
            break;

        auto mark = Clock::now();
        snap::Snapshotter snapper;
        snapper.add(*sys);
        snapper.add(*rng);
        snapper.add(*stream);
        const snap::Snapshot image = snapper.finish();
        image.toFile(path);
        row.saveMs += msSince(mark);
        row.imageBytes = image.bytes.size();
        const std::vector<EventEssence> part =
            essenceOf(obs::stopTracing());
        splitEvents.insert(splitEvents.end(), part.begin(), part.end());

        obs::setThreadId(1);
        obs::startTracing();
        sys = std::make_unique<core::System>(config);
        setupHeap(*sys);
        rng = std::make_unique<Rng>(left); // overwritten by the restore
        stream = oracleStream(base);
        mark = Clock::now();
        snap::Restorer restorer(snap::Snapshot::fromFile(path));
        restorer.restore(*sys);
        restorer.restore(*rng);
        restorer.restore(*stream);
        restorer.finish();
        row.restoreMs += msSince(mark);
    }
    const std::vector<EventEssence> part = essenceOf(obs::stopTracing());
    splitEvents.insert(splitEvents.end(), part.begin(), part.end());
    std::filesystem::remove(path);

    normalize(straightEvents);
    normalize(splitEvents);
    row.events = straightEvents.size();
    row.identical = true;
    if (dumpOf(*sys) != straightStats) {
        row.identical = false;
        row.diagnosis = "stats dump diverged";
    } else if (sys->cycles().count() != straight.cycles().count()) {
        row.identical = false;
        row.diagnosis = "cycle account diverged";
    } else if (splitEvents != straightEvents) {
        row.identical = false;
        row.diagnosis = "event trace diverged";
    }
    return row;
}

core::mc::McConfig
mcOracleConfig(const Options &options)
{
    core::mc::McConfig config;
    config.system = core::SystemConfig::fromOptions(
        options, core::SystemConfig::plbSystem());
    config.cores = 4;
    config.scheduleSeed = 3;
    config.workload.stepsPerCore = 1200;
    config.workload.churnProb = 0.05;
    config.workload.seed = 11;
    config.recordOutcomes = true;
    return config;
}

/** The multi-core oracle: full run vs. run-half / file round trip /
 * restore / finish, compared on the result tally, stats and trace. */
OracleRow
mcOracle(const Options &options)
{
    OracleRow row;
    row.machine = "mc-plb-4core";
    const core::mc::McConfig config = mcOracleConfig(options);

    obs::startTracing();
    core::mc::McSystem straight(config);
    const core::mc::McResult full = straight.run();
    std::vector<EventEssence> straightEvents =
        essenceOf(obs::stopTracing());
    const std::string straightStats = dumpOf(straight);

    const std::string path = scratchImagePath("bench_snap_mc.snap");
    obs::startTracing();
    core::mc::McSystem first(config);
    first.run(config.workload.stepsPerCore * config.cores /
              (config.quantum * 2));
    std::vector<EventEssence> splitEvents;
    {
        const std::vector<EventEssence> part =
            essenceOf(obs::stopTracing());
        splitEvents.insert(splitEvents.end(), part.begin(), part.end());
    }
    auto mark = Clock::now();
    snap::Snapshotter snapper;
    snapper.add(first);
    const snap::Snapshot image = snapper.finish();
    image.toFile(path);
    row.saveMs = msSince(mark);
    row.imageBytes = image.bytes.size();

    obs::startTracing();
    core::mc::McSystem resumed(config);
    mark = Clock::now();
    snap::Restorer restorer(snap::Snapshot::fromFile(path));
    restorer.restore(resumed);
    restorer.finish();
    row.restoreMs = msSince(mark);
    const core::mc::McResult continued = resumed.run();
    {
        const std::vector<EventEssence> part =
            essenceOf(obs::stopTracing());
        splitEvents.insert(splitEvents.end(), part.begin(), part.end());
    }
    std::filesystem::remove(path);

    normalize(straightEvents);
    normalize(splitEvents);
    row.events = straightEvents.size();
    row.identical = true;
    if (dumpOf(resumed) != straightStats) {
        row.identical = false;
        row.diagnosis = "stats dump diverged";
    } else if (continued.cycles != full.cycles ||
               continued.completed != full.completed ||
               continued.failed != full.failed ||
               continued.shootdowns != full.shootdowns ||
               continued.quiescentOutcomes != full.quiescentOutcomes) {
        row.identical = false;
        row.diagnosis = "run tally diverged";
    } else if (splitEvents != straightEvents) {
        row.identical = false;
        row.diagnosis = "event trace diverged";
    }
    return row;
}

/** Phase 2: the Table-1 sweep shape, cold vs. warm-started. */
struct WarmOutcome
{
    farm::WarmReport report;
    bool identical = true;
    u64 refs = 0;
    u64 seeds = 0;
};

std::vector<farm::SweepCell>
warmSweepCells(const Options &options)
{
    const u64 seeds = options.getU64("seeds", 6);
    const u64 refs = options.getU64("refs", 50'000);
    const u64 warm_refs = options.getU64("warm_refs", 200'000);
    const u64 pages = options.getU64("pages", 256);
    std::vector<farm::SweepCell> cells;
    for (const auto &model : bench::standardModels(options)) {
        for (u64 seed = 1; seed <= seeds; ++seed) {
            farm::SweepCell cell;
            cell.model = model.label;
            cell.workload = "table1-zipf";
            cell.seed = seed;
            cell.config = model.config;
            cell.pages = pages;
            cell.references = refs;
            cell.warmRefs = warm_refs;
            cell.warmSeed = 12345;
            cell.makeStream = [](vm::VAddr base, u64 pages_, u64 seed_) {
                return std::make_unique<wl::ZipfPageStream>(base, pages_,
                                                            0.8, seed_);
            };
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

WarmOutcome
runWarmSweep(const Options &options)
{
    WarmOutcome outcome;
    outcome.refs = options.getU64("refs", 50'000);
    outcome.seeds = options.getU64("seeds", 6);
    outcome.report.warmRefs = options.getU64("warm_refs", 200'000);
    const unsigned threads = options.threads();
    const std::vector<farm::SweepCell> cells = warmSweepCells(options);
    farm::SweepRunner runner(threads);

    auto mark = Clock::now();
    std::vector<farm::CellResult> cold = runner.run(cells);
    outcome.report.coldWallSeconds =
        std::chrono::duration<double>(Clock::now() - mark).count();

    // One warmed prefix image per model; every seed forks from it.
    std::vector<farm::SweepCell> warm_cells = cells;
    mark = Clock::now();
    std::map<std::string, std::shared_ptr<const snap::Snapshot>> images;
    for (auto &cell : warm_cells) {
        auto &image = images[cell.model];
        if (!image)
            image = farm::SweepRunner::buildWarmImage(cell);
        cell.warmImage = image;
    }
    outcome.report.images = images.size();
    outcome.report.buildWallSeconds =
        std::chrono::duration<double>(Clock::now() - mark).count();

    const std::string out = options.getString("snapshot_out", "");
    if (!out.empty()) {
        // Prefer the plb image: restore= builds a plb machine by
        // default, so the image the bench writes is the image the
        // bench can read back unmodified.
        auto it = images.find("plb");
        if (it == images.end())
            it = images.begin();
        it->second->toFile(out);
        std::cout << "wrote warmed " << it->first << " prefix image to "
                  << out << "\n";
    }

    mark = Clock::now();
    std::vector<farm::CellResult> warm = runner.run(warm_cells);
    outcome.report.warmWallSeconds =
        std::chrono::duration<double>(Clock::now() - mark).count();

    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (warm[i].statsDump != cold[i].statsDump ||
            warm[i].simCycles != cold[i].simCycles) {
            outcome.identical = false;
            std::cout << "MISMATCH: " << cells[i].model << "/seed="
                      << cells[i].seed
                      << " differs between cold replay and warm "
                         "restore\n";
        }
    }
    return outcome;
}

/** restore= preflight: overlay a user-supplied image onto a fresh
 * default machine and continue. Corrupt, truncated or mismatched
 * images die here with a clean fatal -- by design. */
void
maybeRestorePreflight(const Options &options)
{
    const std::string path = options.getString("restore", "");
    if (path.empty())
        return;
    core::System sys(core::SystemConfig::fromOptions(
        options, core::SystemConfig::plbSystem()));
    snap::Restorer restorer(snap::Snapshot::fromFile(path));
    restorer.restore(sys);
    restorer.finish();
    const u64 restored = sys.references.value();
    // Continue over the image's own heap -- the first segment the
    // snapshotted run created -- rather than anything made here.
    const std::vector<vm::SegmentId> live = sys.state().segments.liveIds();
    SASOS_ASSERT(!live.empty(), "restored image has no segments");
    const vm::Segment *heap = sys.state().segments.find(live.front());
    wl::ZipfPageStream stream(heap->base(), heap->pages, 0.8, kOracleSeed);
    Rng rng(kOracleSeed);
    sys.run(stream, 10'000, rng);
    std::cout << "restored " << path << " (" << restored
              << " references deep) and continued 10000 more; total "
              << sys.cycles().count() << " cycles\n";
}

void
writeSnapJson(const std::string &path, const std::vector<OracleRow> &rows,
              const WarmOutcome &warm, bool ok)
{
    std::ofstream os(path);
    obs::JsonWriter json(os);
    json.beginObject();
    json.member("bench", "snap");
    json.member("ok", ok);
    json.key("resume");
    json.beginArray();
    for (const OracleRow &row : rows) {
        json.beginObject();
        json.member("machine", row.machine);
        json.member("identical", row.identical);
        json.member("events", row.events);
        json.member("imageBytes", row.imageBytes);
        json.member("saveMs", row.saveMs);
        json.member("restoreMs", row.restoreMs);
        json.endObject();
    }
    json.endArray();
    json.key("warmStart");
    json.beginObject();
    json.member("warmRefs", warm.report.warmRefs);
    json.member("refsPerCell", warm.refs);
    json.member("seedsPerModel", warm.seeds);
    json.member("images", warm.report.images);
    json.member("identical", warm.identical);
    json.member("coldWallSeconds", warm.report.coldWallSeconds);
    json.member("buildWallSeconds", warm.report.buildWallSeconds);
    json.member("warmWallSeconds", warm.report.warmWallSeconds);
    json.member("speedup", warm.report.speedup());
    json.endObject();
    json.endObject();
    os << "\n";
}

int
runSnapBench(const Options &options)
{
    maybeRestorePreflight(options);

    bench::printHeader(
        "Resume-equivalence oracle",
        "Run, snapshot through a file round trip, restore onto fresh "
        "objects, continue: statistics, cycle account and event trace "
        "must be bit-identical to the uninterrupted run.");

    const u64 oracle_refs = options.getU64("oracle_refs", 40'000);
    const u64 every =
        options.getU64("snapshot_every", oracle_refs / 2);

    std::vector<OracleRow> rows;
    for (const auto &model : bench::standardModels(options)) {
        rows.push_back(singleCoreOracle(model.label, model.config,
                                        oracle_refs, every));
    }
    {
        core::SystemConfig faulty = core::SystemConfig::fromOptions(
            options, core::SystemConfig::plbSystem());
        faulty.faults.enabled = true;
        faulty.faults.seed = 7;
        faulty.faults.rate = 0.02;
        rows.push_back(
            singleCoreOracle("plb+faults", faulty, oracle_refs, every));
    }
    rows.push_back(mcOracle(options));

    TextTable table({"machine", "resume", "events", "image KB",
                     "save ms", "restore ms"});
    bool all_identical = true;
    for (const OracleRow &row : rows) {
        all_identical = all_identical && row.identical;
        table.addRow(
            {row.machine,
             row.identical ? "bit-identical" : "DIVERGED: " + row.diagnosis,
             TextTable::num(row.events),
             TextTable::num(static_cast<double>(row.imageBytes) / 1024.0,
                            1),
             TextTable::num(row.saveMs, 2),
             TextTable::num(row.restoreMs, 2)});
    }
    table.print(std::cout);

    bench::printHeader(
        "Warm-start sweep: Table-1 shape, K seeds per model",
        "Cold replays the warm-up prefix in every cell (K * (W + R) "
        "references per model); warm builds one prefix image and "
        "forks every seed from it (W + K * R). Results must stay "
        "bit-identical.");

    const WarmOutcome warm = runWarmSweep(options);
    std::cout << "cold="
              << TextTable::num(warm.report.coldWallSeconds, 2)
              << "s warm="
              << TextTable::num(warm.report.buildWallSeconds +
                                    warm.report.warmWallSeconds,
                                2)
              << "s (build "
              << TextTable::num(warm.report.buildWallSeconds, 2)
              << "s) speedup="
              << TextTable::ratio(warm.report.speedup(), 2) << " results "
              << (warm.identical ? "bit-identical" : "MISMATCH") << "\n";

    const bool ok = all_identical && warm.identical;
    const std::string json_path =
        options.getString("json", "BENCH_snap.json");
    writeSnapJson(json_path, rows, warm, ok);
    std::cout << "wrote " << json_path << "\n";
    return ok ? 0 : 1;
}

/** Host cost of sealing one warmed single-core image. */
void
BM_SnapshotSave(benchmark::State &state)
{
    core::System sys(core::SystemConfig::plbSystem());
    const vm::VAddr base = setupHeap(sys);
    Rng rng(kOracleSeed);
    wl::ZipfPageStream stream(base, kOraclePages, 0.8, kOracleSeed);
    sys.run(stream, 100'000, rng);
    u64 bytes = 0;
    for (auto _ : state) {
        snap::Snapshotter snapper;
        snapper.add(sys);
        snapper.add(rng);
        const snap::Snapshot image = snapper.finish();
        bytes = image.bytes.size();
        benchmark::DoNotOptimize(image.bytes.data());
    }
    state.counters["imageBytes"] = static_cast<double>(bytes);
}

/** Host cost of validating + overlaying that image. */
void
BM_SnapshotRestore(benchmark::State &state)
{
    core::System sys(core::SystemConfig::plbSystem());
    const vm::VAddr base = setupHeap(sys);
    Rng rng(kOracleSeed);
    wl::ZipfPageStream stream(base, kOraclePages, 0.8, kOracleSeed);
    sys.run(stream, 100'000, rng);
    snap::Snapshotter snapper;
    snapper.add(sys);
    snapper.add(rng);
    const snap::Snapshot image = snapper.finish();

    core::System target(core::SystemConfig::plbSystem());
    setupHeap(target);
    Rng targetRng(1);
    for (auto _ : state) {
        snap::Restorer restorer(image);
        restorer.restore(target);
        restorer.restore(targetRng);
        restorer.finish();
    }
    state.counters["imageBytes"] =
        static_cast<double>(image.bytes.size());
}

} // namespace

BENCHMARK(BM_SnapshotSave)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotRestore)->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, runSnapBench);
}
