/**
 * @file
 * Experiment C4: entry replication and the sharing regimes of
 * Sections 3.1 and 4.1.2.
 *
 * Paper predictions:
 *  - the ASID-tagged TLB and the PLB replicate one entry per sharing
 *    domain, so occupancy and miss rate grow with the number of
 *    sharers; the page-group TLB keeps one entry per page;
 *  - "A PLB system will take fewer faults in situations where there
 *    is active sharing and frequent protection changes ... the
 *    page-group implementation will incur fewer TLB misses in
 *    situations where sharing is static or protection changes are
 *    infrequent."
 */

#include "bench_common.hh"

#include <algorithm>

#include "workload/sharing.hh"

using namespace sasos;

namespace
{

void
printReplicationSweep(const Options &options)
{
    bench::printHeader(
        "C4a: protection-entry replication vs sharing degree",
        "D domains share the same hot pages; page-grain PLB (no "
        "super-pages) to isolate the replication effect.");

    TextTable table({"domains", "plb entries", "plb miss rate",
                     "pg-tlb entries", "pg-tlb miss rate",
                     "conv-tlb entries", "conv miss rate",
                     "pkey-tlb entries", "pkey miss rate"});
    for (u64 domains : {1, 2, 4, 8, 16}) {
        wl::SharingConfig sharing;
        sharing.domains = domains;
        sharing.sharedSegments = 2;
        sharing.sharedPages = 16;
        sharing.privatePages = 4;
        sharing.quanta = 20 * domains;
        sharing.refsPerQuantum = 100;
        sharing.sharedFraction = 0.9;

        std::vector<std::string> row{TextTable::num(domains)};
        for (const auto &model : bench::standardModels(options)) {
            core::SystemConfig config = model.config;
            if (config.model == core::ModelKind::Plb) {
                config.superPagePlb = false;
                config.plb.sizeShifts = {vm::kPageShift};
            }
            core::System sys(config);
            const wl::SharingResult result =
                wl::SharingWorkload(sharing).run(sys);
            row.push_back(TextTable::num(result.occupancyEntries));
            row.push_back(
                TextTable::num(result.missRate() * 100.0, 2) + "%");
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "shape check: plb and conventional occupancy grow with "
                 "D; page-group stays near the page count.\n";
}

void
printRegimeCrossover(const Options &options)
{
    bench::printHeader(
        "C4b: static sharing vs frequent protection changes",
        "The Section 4.1.2 trade: protection-change cost (PLB wins) "
        "vs steady-state miss rate (page-group wins). The knob is how "
        "often one domain's rights on one shared page are toggled.");

    TextTable table({"prot changes", "plb cycles/ref",
                     "page-group cycles/ref", "pkey cycles/ref",
                     "winner"});
    struct Regime
    {
        const char *label;
        u64 period; // quanta between changes; 0 = never
    };
    for (const Regime &regime :
         {Regime{"never (static)", 0}, Regime{"every 16 quanta", 16},
          Regime{"every 4 quanta", 4}, Regime{"every quantum", 1}}) {
        wl::SharingConfig sharing;
        sharing.domains = 8;
        sharing.sharedSegments = 2;
        sharing.sharedPages = 16;
        sharing.privatePages = 4;
        sharing.quanta = 160;
        sharing.refsPerQuantum = 50;
        sharing.sharedFraction = 0.9;
        sharing.protChangePeriod = regime.period;

        double cycles[3] = {0, 0, 0};
        int index = 0;
        for (const auto &model : bench::standardModels(options)) {
            if (model.label == "conventional")
                continue;
            core::SystemConfig config = model.config;
            if (config.model == core::ModelKind::Plb) {
                config.superPagePlb = false;
                config.plb.sizeShifts = {vm::kPageShift};
                // Same entry count as the page-group TLB (Section 4's
                // comparison ground rule).
                config.plb.ways = config.tlb.ways;
            }
            core::System sys(config);
            const wl::SharingResult result =
                wl::SharingWorkload(sharing).run(sys);
            cycles[index++] = result.cyclesPerRef();
        }
        const char *labels[3] = {"plb", "page-group", "pkey"};
        const int best = static_cast<int>(
            std::min_element(cycles, cycles + 3) - cycles);
        table.addRow({regime.label, TextTable::num(cycles[0], 2),
                      TextTable::num(cycles[1], 2),
                      TextTable::num(cycles[2], 2), labels[best]});
    }
    table.print(std::cout);
}

void
BM_SharingRun(benchmark::State &state, core::ModelKind kind, u64 domains)
{
    wl::SharingConfig sharing;
    sharing.domains = domains;
    sharing.quanta = 40;
    sharing.refsPerQuantum = 50;
    u64 sim_cycles = 0;
    u64 refs = 0;
    for (auto _ : state) {
        core::System sys(core::SystemConfig::forModel(kind));
        const wl::SharingResult result =
            wl::SharingWorkload(sharing).run(sys);
        sim_cycles += result.cycles.total().count();
        refs += result.references;
    }
    state.counters["simCyclesPerRef"] =
        refs ? static_cast<double>(sim_cycles) / static_cast<double>(refs)
             : 0.0;
}

} // namespace

BENCHMARK_CAPTURE(BM_SharingRun, plb_d8, core::ModelKind::Plb, 8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SharingRun, pagegroup_d8, core::ModelKind::PageGroup,
                  8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SharingRun, conventional_d8,
                  core::ModelKind::Conventional, 8)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printReplicationSweep(options);
        printRegimeCrossover(options);
        return 0;
    });
}
