/**
 * @file
 * Experiment C10: multiprocessor shootdown cost (Section 4.1.3's
 * "done with a small number of instructions on each processor").
 *
 * Every protection or translation change must reach every CPU's
 * private structures: an inter-processor interrupt per remote CPU
 * plus that CPU's own maintenance. What each CPU then *does* differs
 * by model -- a PLB scan, a page-group TLB entry move, or an ASID
 * replica purge -- so the per-CPU work replays the whole
 * single-processor comparison at every shootdown.
 */

#include "bench_common.hh"

#include "core/smp.hh"
#include "workload/dvm.hh"

using namespace sasos;

namespace
{

/** Cycles for one kernel operation on an N-CPU machine with every
 * CPU's structures warm for the page. */
u64
measureOp(const core::SystemConfig &config, unsigned cpus,
          const std::function<void(core::SmpSystem &, vm::Vpn)> &op)
{
    core::SmpSystem sys(config, cpus);
    std::vector<os::DomainId> nodes;
    for (unsigned n = 0; n < cpus; ++n)
        nodes.push_back(
            sys.kernel().createDomain("n" + std::to_string(n)));
    const vm::SegmentId seg = sys.kernel().createSegment("s", 4);
    for (os::DomainId node : nodes)
        sys.kernel().attach(node, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    for (unsigned cpu = 0; cpu < cpus; ++cpu) {
        sys.runOn(cpu, nodes[cpu]);
        sys.store(base);
    }
    sys.runOn(0, nodes[0]);
    const u64 before = sys.cycles().count();
    op(sys, vm::pageOf(base));
    return sys.cycles().count() - before;
}

void
printShootdownTable(const Options &options)
{
    bench::printHeader(
        "C10: shootdown cost vs processor count",
        "A page-wide restriction (the paging exclusion) issued from "
        "CPU 0 with every CPU warm. IPI cost per remote CPU plus each "
        "CPU's own structure maintenance.");

    TextTable table({"cpus", "plb", "page-group", "conventional", "pkey"});
    for (unsigned cpus : {1u, 2u, 4u, 8u}) {
        std::vector<std::string> row{TextTable::num(u64{cpus})};
        for (const auto &model : bench::standardModels(options)) {
            const u64 cycles = measureOp(
                model.config, cpus,
                [](core::SmpSystem &sys, vm::Vpn vpn) {
                    sys.kernel().restrictPage(vpn, vm::Access::None);
                });
            row.push_back(TextTable::num(cycles));
        }
        table.addRow(row);
    }
    table.print(std::cout);
}

void
printUnmapShootdownTable(const Options &options)
{
    bench::printHeader(
        "C10b: unmap (TLB + cache shootdown) vs processor count",
        "Unmapping a dirty page every CPU has cached: TLB purge and a "
        "full page flush on each processor.");

    TextTable table({"cpus", "plb", "page-group", "conventional", "pkey"});
    for (unsigned cpus : {1u, 2u, 4u, 8u}) {
        std::vector<std::string> row{TextTable::num(u64{cpus})};
        for (const auto &model : bench::standardModels(options)) {
            const u64 cycles = measureOp(
                model.config, cpus,
                [](core::SmpSystem &sys, vm::Vpn vpn) {
                    sys.kernel().unmapPage(vpn);
                });
            row.push_back(TextTable::num(cycles));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "shape check: cost grows ~linearly with processors on "
                 "every model (IPIs + per-CPU flush dominate); the "
                 "per-CPU protection work keeps the single-processor "
                 "ordering.\n";
}

void
printSmpDvmTable(const Options &options)
{
    bench::printHeader(
        "C10c: distributed VM with one node per processor",
        "The DSM workload in its natural deployment: every coherence "
        "rights change is a cross-CPU shootdown. Protocol cycles "
        "exclude network time.");

    TextTable table({"nodes=cpus", "system", "protocol cycles",
                     "ipis sent", "vs uniprocessor run"});
    for (u64 nodes : {2, 4, 8}) {
        wl::DvmConfig dvm;
        dvm.nodes = nodes;
        dvm.quanta = 20 * nodes;
        dvm.refsPerQuantum = 40;
        for (const auto &model : bench::standardModels(options)) {
            // Uniprocessor baseline (all nodes timeshare one CPU).
            core::System uni(model.config);
            const u64 uni_cycles = wl::DvmWorkload(dvm)
                                       .run(uni)
                                       .cycles.totalExcludingIo()
                                       .count();
            // One CPU per node.
            core::SmpSystem smp(model.config,
                                static_cast<unsigned>(nodes));
            const wl::DvmResult result = wl::DvmWorkload(dvm).run(smp);
            const u64 smp_cycles =
                result.cycles.totalExcludingIo().count();
            table.addRow(
                {TextTable::num(nodes), model.label,
                 TextTable::num(smp_cycles),
                 TextTable::num(smp.broadcast().ipisSent.value()),
                 bench::normalized(static_cast<double>(smp_cycles),
                                   static_cast<double>(uni_cycles))});
        }
    }
    table.print(std::cout);
    std::cout << "shape check: shootdown IPIs grow with node count; "
                 "the SMP run costs more protocol cycles than "
                 "timesharing one CPU by exactly the shootdown tax.\n";
}

void
BM_SmpRestrict(benchmark::State &state, core::ModelKind kind)
{
    const unsigned cpus = static_cast<unsigned>(state.range(0));
    core::SmpSystem sys(core::SystemConfig::forModel(kind), cpus);
    std::vector<os::DomainId> nodes;
    for (unsigned n = 0; n < cpus; ++n)
        nodes.push_back(
            sys.kernel().createDomain("n" + std::to_string(n)));
    const vm::SegmentId seg = sys.kernel().createSegment("s", 4);
    for (os::DomainId node : nodes)
        sys.kernel().attach(node, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    for (unsigned cpu = 0; cpu < cpus; ++cpu) {
        sys.runOn(cpu, nodes[cpu]);
        sys.store(base);
    }
    sys.runOn(0, nodes[0]);
    const u64 before = sys.cycles().count();
    u64 ops = 0;
    for (auto _ : state) {
        sys.kernel().restrictPage(vm::pageOf(base), vm::Access::None);
        sys.kernel().unrestrictPage(vm::pageOf(base));
        ops += 2;
    }
    state.counters["simCyclesPerOp"] =
        ops ? static_cast<double>(sys.cycles().count() - before) /
                  static_cast<double>(ops)
            : 0.0;
    state.counters["cpus"] = cpus;
}

} // namespace

BENCHMARK_CAPTURE(BM_SmpRestrict, plb, core::ModelKind::Plb)
    ->Arg(1)
    ->Arg(4);
BENCHMARK_CAPTURE(BM_SmpRestrict, pagegroup, core::ModelKind::PageGroup)
    ->Arg(1)
    ->Arg(4);
BENCHMARK_CAPTURE(BM_SmpRestrict, conventional,
                  core::ModelKind::Conventional)
    ->Arg(1)
    ->Arg(4);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printShootdownTable(options);
        printUnmapShootdownTable(options);
        printSmpDvmTable(options);
        return 0;
    });
}
