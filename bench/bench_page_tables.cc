/**
 * @file
 * Experiment C7: page-table space (Section 3.1).
 *
 * "Linear page tables cannot represent such sparse sets of mappings
 * compactly. Second, translation mappings for shared pages must be
 * duplicated in the page tables for each domain."
 *
 * Compares, for D domains sharing S segments scattered across the
 * 64-bit space:
 *  - per-domain flat linear tables (VAX-style);
 *  - per-domain two-level tables (only touched leaves allocated);
 *  - the single address space organization: one global hashed
 *    translation table + per-domain protection tables.
 */

#include "bench_common.hh"

#include "vm/linear_page_table.hh"
#include "vm/page_table.hh"

using namespace sasos;

namespace
{

struct SpaceResult
{
    u64 flatBytes = 0;
    u64 twoLevelBytes = 0;
    u64 globalBytes = 0;
    u64 protBytes = 0;
};

SpaceResult
measureSpace(u64 domains, u64 shared_segments, u64 private_segments,
             u64 pages_per_segment, u64 scatter)
{
    // Scatter segments across the address space like a sparse SASOS
    // layout: each segment starts `scatter` pages after the previous.
    SpaceResult result;
    constexpr u64 kPteBytes = 8;
    constexpr u64 kHashEntryBytes = 16; // vpn + pfn + chain
    constexpr u64 kProtEntryBytes = 16; // segment id + rights

    std::vector<u64> segment_bases;
    u64 next = 0x100;
    const u64 total_segments =
        shared_segments + domains * private_segments;
    for (u64 s = 0; s < total_segments; ++s) {
        segment_bases.push_back(next);
        next += pages_per_segment + scatter;
    }

    u64 total_mapped = 0;
    for (u64 d = 0; d < domains; ++d) {
        vm::LinearPageTableModel linear(kPteBytes);
        // Shared segments: every domain maps all of them (duplicated
        // translations in the per-domain tables).
        for (u64 s = 0; s < shared_segments; ++s)
            linear.addRange(vm::Vpn(segment_bases[s]), pages_per_segment);
        // Private segments.
        for (u64 p = 0; p < private_segments; ++p) {
            const u64 index = shared_segments + d * private_segments + p;
            linear.addRange(vm::Vpn(segment_bases[index]),
                            pages_per_segment);
        }
        result.flatBytes += linear.flatBytes();
        result.twoLevelBytes += linear.twoLevelBytes();
        total_mapped = std::max(total_mapped, linear.mappedPages());
    }

    // Global organization: each distinct page is translated once.
    const u64 distinct_pages =
        (shared_segments + domains * private_segments) * pages_per_segment;
    result.globalBytes = distinct_pages * kHashEntryBytes;
    // Per-domain protection: one segment-grant record per attachment.
    result.protBytes =
        domains * (shared_segments + private_segments) * kProtEntryBytes;
    return result;
}

void
printSpaceTable(const Options &options)
{
    (void)options;
    bench::printHeader(
        "C7: page-table space vs sharing degree (Section 3.1)",
        "8 shared + 2 private segments of 256 pages per domain, "
        "scattered 1M pages apart (sparse 64-bit layout). Linear "
        "tables duplicate shared mappings per domain; the global "
        "table stores each translation once.");

    TextTable table({"domains", "per-domain flat", "per-domain 2-level",
                     "global + protection", "2-level / global"});
    for (u64 domains : {1, 2, 4, 8, 16, 32}) {
        const SpaceResult space =
            measureSpace(domains, 8, 2, 256, u64{1} << 20);
        const u64 global_total = space.globalBytes + space.protBytes;
        table.addRow(
            {TextTable::num(domains), TextTable::num(space.flatBytes),
             TextTable::num(space.twoLevelBytes),
             TextTable::num(global_total),
             TextTable::ratio(static_cast<double>(space.twoLevelBytes) /
                                  static_cast<double>(global_total),
                              1)});
    }
    table.print(std::cout);
    std::cout << "shape check: per-domain organizations grow linearly "
                 "with sharing domains; the global organization grows "
                 "only by one protection record per attachment.\n";
}

void
printSparsityTable(const Options &options)
{
    (void)options;
    bench::printHeader(
        "C7b: sparsity penalty of linear tables",
        "One domain mapping 16 segments of 64 pages; the scatter "
        "between segments is swept. Flat tables pay for the span.");

    TextTable table({"scatter (pages)", "flat bytes", "2-level bytes",
                     "dense bytes"});
    for (u64 scatter : {0, 1 << 10, 1 << 16, 1 << 22}) {
        vm::LinearPageTableModel linear(8);
        u64 next = 0x100;
        for (int s = 0; s < 16; ++s) {
            linear.addRange(vm::Vpn(next), 64);
            next += 64 + scatter;
        }
        table.addRow({TextTable::num(scatter),
                      TextTable::num(linear.flatBytes()),
                      TextTable::num(linear.twoLevelBytes()),
                      TextTable::num(linear.denseBytes())});
    }
    table.print(std::cout);
}

void
BM_GlobalPageTableLookup(benchmark::State &state)
{
    vm::GlobalPageTable table;
    const u64 pages = static_cast<u64>(state.range(0));
    for (u64 p = 0; p < pages; ++p)
        table.map(vm::Vpn(p * 1000), vm::Pfn(p));
    Rng rng(23);
    u64 found = 0;
    for (auto _ : state)
        found += table.lookup(vm::Vpn(rng.nextBelow(pages) * 1000)) !=
                 nullptr;
    benchmark::DoNotOptimize(found);
    state.counters["pages"] = static_cast<double>(pages);
}

} // namespace

BENCHMARK(BM_GlobalPageTableLookup)->Arg(1 << 10)->Arg(1 << 16);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printSpaceTable(options);
        printSparsityTable(options);
        return 0;
    });
}
