/**
 * @file
 * Experiment T1.a: Table 1 rows "Attach Segment" / "Detach Segment".
 *
 * Paper predictions:
 *  - attach is cheap everywhere (page-group: add a group id; PLB:
 *    nothing, rights fault in lazily);
 *  - detach is O(1) on the page-group model but a full PLB scan on
 *    the domain-page model ("inspect each entry and eliminate those
 *    for the segment-domain pair").
 *
 * The first table isolates a single attach -> touch -> detach episode
 * and decomposes where the cycles go; the second runs the churn
 * workload (file open/close pattern) end to end.
 */

#include "bench_common.hh"

#include "workload/attach_churn.hh"

using namespace sasos;

namespace
{

struct EpisodeCost
{
    u64 attachCycles = 0;
    u64 touchCycles = 0;
    u64 detachCycles = 0;
    u64 detachScans = 0;
};

EpisodeCost
measureEpisode(const core::SystemConfig &config, u64 seg_pages,
               u64 touches, u64 warm_pages)
{
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId d = kernel.createDomain("app");
    // Warm state: the domain already uses other segments, so the PLB
    // holds entries the detach scan must wade through.
    const vm::SegmentId warm = kernel.createSegment("warm", warm_pages);
    kernel.attach(d, warm, vm::Access::ReadWrite);
    kernel.switchTo(d);
    const vm::VAddr warm_base = sys.state().segments.find(warm)->base();
    sys.touchRange(warm_base, warm_pages * vm::kPageBytes);

    const vm::SegmentId seg = kernel.createSegment("file", seg_pages);
    const vm::VAddr base = sys.state().segments.find(seg)->base();

    EpisodeCost cost;
    u64 mark = sys.cycles().count();
    kernel.attach(d, seg, vm::Access::ReadWrite);
    cost.attachCycles = sys.cycles().count() - mark;

    mark = sys.cycles().count();
    for (u64 t = 0; t < touches; ++t)
        sys.load(base + (t % seg_pages) * vm::kPageBytes);
    cost.touchCycles = sys.cycles().count() - mark;

    u64 scans_before = 0;
    if (auto *plb = sys.plbSystem())
        scans_before = plb->plb().purgeScans.value();
    mark = sys.cycles().count();
    kernel.detach(d, seg);
    cost.detachCycles = sys.cycles().count() - mark;
    if (auto *plb = sys.plbSystem())
        cost.detachScans = plb->plb().purgeScans.value() - scans_before;
    return cost;
}

void
printEpisodeTable(const Options &options)
{
    bench::printHeader(
        "Table 1: Attach / Detach Segment (single episode)",
        "Attach then touch 16 pages then detach, with 64 warm pages "
        "already cached. Cycles per step (kernel trap included).");

    TextTable table({"system", "attach", "touch 16 pages", "detach",
                     "detach PLB entries scanned"});
    for (const auto &model : bench::extendedModels(options)) {
        const EpisodeCost cost = measureEpisode(model.config, 16, 16, 64);
        table.addRow({model.label, TextTable::num(cost.attachCycles),
                      TextTable::num(cost.touchCycles),
                      TextTable::num(cost.detachCycles),
                      cost.detachScans ? TextTable::num(cost.detachScans)
                                       : std::string("-")});
    }
    table.print(std::cout);
}

void
printChurnTable(const Options &options)
{
    bench::printHeader(
        "Attach/detach churn (file open/close pattern)",
        "200 episodes over a 16-segment pool, 16 page touches each.");

    wl::AttachChurnConfig churn;
    churn.episodes = options.getU64("episodes", 200);
    churn.segmentPages = options.getU64("segmentPages", 64);
    churn.pagesTouched = options.getU64("pagesTouched", 16);

    TextTable table({"system", "cycles/episode", "kernel-work cycles",
                     "refill cycles", "vs plb"});
    double plb_baseline = 0.0;
    for (const auto &model : bench::extendedModels(options)) {
        core::System sys(model.config);
        const wl::AttachChurnResult result =
            wl::AttachChurnWorkload(churn).run(sys);
        if (plb_baseline == 0.0)
            plb_baseline = result.cyclesPerEpisode();
        table.addRow(
            {model.label, TextTable::num(result.cyclesPerEpisode(), 1),
             TextTable::num(
                 result.cycles.byCategory(CostCategory::KernelWork)
                     .count()),
             TextTable::num(
                 result.cycles.byCategory(CostCategory::Refill).count()),
             bench::normalized(result.cyclesPerEpisode(), plb_baseline)});
    }
    table.print(std::cout);
}

void
BM_AttachDetachChurn(benchmark::State &state, core::ModelKind kind)
{
    wl::AttachChurnConfig churn;
    churn.episodes = 50;
    u64 sim_cycles = 0;
    u64 episodes = 0;
    for (auto _ : state) {
        core::System sys(core::SystemConfig::forModel(kind));
        const wl::AttachChurnResult result =
            wl::AttachChurnWorkload(churn).run(sys);
        sim_cycles += result.cycles.total().count();
        episodes += result.episodes;
    }
    state.counters["simCyclesPerEpisode"] =
        episodes ? static_cast<double>(sim_cycles) /
                       static_cast<double>(episodes)
                 : 0.0;
}

} // namespace

BENCHMARK_CAPTURE(BM_AttachDetachChurn, plb, core::ModelKind::Plb)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AttachDetachChurn, pagegroup,
                  core::ModelKind::PageGroup)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AttachDetachChurn, conventional,
                  core::ModelKind::Conventional)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printEpisodeTable(options);
        printChurnTable(options);
        return 0;
    });
}
