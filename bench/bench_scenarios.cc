/**
 * @file
 * The application-scenario bench + differential oracle gate.
 *
 * Builds the three seeded scenarios (CoW fork tree, portal RPC
 * chains, web-server-shaped mix), replays each on all three
 * protection architectures clean and fault-injected, and prints a
 * Table-1-style comparison: simulated cycles per reference, domain
 * switches, protection/translation faults and the CoW fork counters,
 * normalized against the PLB system. Every scenario runs under the
 * scenario differential oracle; the bench refuses to write
 * BENCH_scenarios.json and exits nonzero if any of the six runs of
 * any scenario diverges in allow/deny decisions or final canonical
 * rights, so the JSON doubles as a proof artifact.
 *
 * Keys: seed= (default 1), fault_rate= (default 0.02), fault_seed=,
 * gap=, json=, plus the usual machine overrides.
 */

#include "bench_common.hh"

#include <fstream>

#include "obs/json.hh"
#include "scenario/oracle.hh"

using namespace sasos;

namespace
{

void
writeScenariosJson(const std::string &path,
                   const std::vector<scn::ScenarioVerdict> &verdicts)
{
    std::ofstream os(path);
    obs::JsonWriter json(os);
    json.beginObject();
    json.member("bench", "scenarios");
    json.member("oraclePassed", true);
    json.key("scenarios");
    json.beginArray();
    for (const scn::ScenarioVerdict &verdict : verdicts) {
        json.beginObject();
        json.member("scenario", verdict.scenario);
        json.member("references", verdict.references);
        json.key("runs");
        json.beginArray();
        for (const scn::ScenarioRun &run : verdict.runs) {
            const scn::ScenarioRun *clean =
                verdict.find(run.model, false);
            json.beginObject();
            json.member("model", run.model);
            json.member("injected", run.injected);
            json.member("allowed", run.stats.allowed);
            json.member("denied", run.stats.denied);
            json.member("simCycles", run.simCycles);
            json.member("domainSwitches", run.domainSwitches);
            json.member("protectionFaults", run.protectionFaults);
            json.member("translationFaults", run.translationFaults);
            json.member("staleFaults", run.staleFaults);
            json.member("faultRetries", run.faultRetries);
            json.member("forks", run.forks);
            json.member("cowFaults", run.cowFaults);
            json.member("cowCopies", run.cowCopies);
            json.member("cowReuses", run.cowReuses);
            json.member("injectedEvents", run.injectedEvents);
            json.member("transients", run.transients);
            json.member(
                "overhead",
                run.injected && clean != nullptr && clean->simCycles > 0
                    ? static_cast<double>(run.simCycles) /
                              static_cast<double>(clean->simCycles) -
                          1.0
                    : 0.0);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
}

int
runScenarios(const Options &options)
{
    const std::string json_path =
        options.getString("json", "BENCH_scenarios.json");
    const u64 seed = options.getU64("seed", 1);

    fault::FaultConfig faults;
    faults.seed = options.getU64("fault_seed", 7);
    faults.rate = options.getDouble("fault_rate", 0.02);
    faults.transientGap = options.getU64("gap", 64);

    bench::printHeader(
        "Application scenarios under the differential oracle",
        "CoW fork tree, portal RPC chains and a web-server mix, each "
        "replayed on all four architectures clean and fault-injected. "
        "Architectures may differ in cycles only: allow/deny decisions "
        "and final canonical rights must be bit-identical across all "
        "eight runs of a scenario.");

    std::vector<scn::ScenarioVerdict> verdicts =
        scn::runStandardOracle(seed, faults);

    bool all_passed = true;
    TextTable table({"scenario", "model", "refs", "denied", "cyc/ref",
                     "vs plb", "switches", "forks", "cowFaults",
                     "cowCopies", "faulty overhead", "oracle"});
    for (const scn::ScenarioVerdict &verdict : verdicts) {
        all_passed = all_passed && verdict.passed;
        const scn::ScenarioRun *plb = verdict.find("plb", false);
        for (const scn::ScenarioRun &run : verdict.runs) {
            if (run.injected)
                continue;
            const scn::ScenarioRun *injected =
                verdict.find(run.model, true);
            const double refs = static_cast<double>(verdict.references);
            const double cpr =
                refs > 0 ? static_cast<double>(run.simCycles) / refs : 0;
            table.addRow(
                {verdict.scenario, run.model,
                 TextTable::num(run.stats.refs),
                 TextTable::num(run.stats.denied), TextTable::num(cpr, 2),
                 bench::normalized(
                     static_cast<double>(run.simCycles),
                     plb != nullptr
                         ? static_cast<double>(plb->simCycles)
                         : 0.0),
                 TextTable::num(run.domainSwitches),
                 TextTable::num(run.forks), TextTable::num(run.cowFaults),
                 TextTable::num(run.cowCopies),
                 TextTable::ratio(
                     injected != nullptr && run.simCycles > 0
                         ? static_cast<double>(injected->simCycles) /
                               static_cast<double>(run.simCycles)
                         : 1.0,
                     3),
                 verdict.passed ? "pass" : "FAIL"});
        }
        for (const std::string &violation : verdict.violations)
            std::cout << "ORACLE VIOLATION: " << violation << "\n";
    }
    table.print(std::cout);

    if (!all_passed) {
        std::cout << "\nscenario oracle FAILED; not writing " << json_path
                  << "\n";
        return 1;
    }
    writeScenariosJson(json_path, verdicts);
    std::cout << "\nscenario oracle passed; wrote " << json_path << "\n";
    return 0;
}

/** Host + simulated cost of one full scenario replay per iteration. */
void
BM_Scenario(benchmark::State &state, const char *which,
            core::ModelKind kind)
{
    scn::Script script;
    if (std::string(which) == "fork") {
        script = scn::buildForkScript(scn::ForkConfig{});
    } else if (std::string(which) == "portal") {
        script = scn::buildPortalScript(scn::PortalConfig{});
    } else {
        scn::ServerMixConfig mix;
        mix.waves = 2;
        script = scn::buildServerMixScript(mix);
    }
    u64 cycles = 0;
    u64 refs = 0;
    for (auto _ : state) {
        core::System sys(core::SystemConfig::forModel(kind));
        scn::runScript(sys, script);
        cycles += sys.cycles().count();
        refs += script.refs;
    }
    state.counters["simCyclesPerRef"] =
        refs > 0 ? static_cast<double>(cycles) / static_cast<double>(refs)
                 : 0.0;
    state.counters["refsPerSec"] = benchmark::Counter(
        static_cast<double>(refs), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK_CAPTURE(BM_Scenario, fork_plb, "fork", core::ModelKind::Plb);
BENCHMARK_CAPTURE(BM_Scenario, fork_pagegroup, "fork",
                  core::ModelKind::PageGroup);
BENCHMARK_CAPTURE(BM_Scenario, fork_conventional, "fork",
                  core::ModelKind::Conventional);
BENCHMARK_CAPTURE(BM_Scenario, fork_pkey, "fork", core::ModelKind::Pkey);
BENCHMARK_CAPTURE(BM_Scenario, portal_plb, "portal", core::ModelKind::Plb);
BENCHMARK_CAPTURE(BM_Scenario, servermix_plb, "mix", core::ModelKind::Plb);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, runScenarios);
}
