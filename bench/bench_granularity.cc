/**
 * @file
 * Experiment C5: protection granularity decoupled from translation
 * granularity (Section 4.3).
 *
 *  - Super-pages: one PLB entry maps a whole aligned segment, so
 *    segment-heavy working sets need far fewer entries and miss less
 *    (also "alleviating the duplication problem for shared
 *    segments").
 *  - Sub-pages: 128-byte protection blocks (the 801's lock granule)
 *    eliminate the false sharing that page-grain locks suffer; this
 *    is exercised directly against the PLB structure with a
 *    synthetic lock map.
 */

#include "bench_common.hh"

#include <map>
#include <set>

using namespace sasos;

namespace
{

/** PLB occupancy/misses for a multi-segment working set, with and
 * without super-page entries. */
void
printSuperPageTable(const Options &options)
{
    bench::printHeader(
        "C5a: super-page PLB entries (one entry per segment)",
        "\"For these segments, a single PLB entry could map the "
        "entire region, regardless of the number of physical pages it "
        "spans.\"");

    TextTable table({"segments x pages", "plb mode", "entries used",
                     "plb misses", "refill cycles"});
    for (u64 segs : {4, 16}) {
        for (bool super : {false, true}) {
            core::SystemConfig config = core::SystemConfig::fromOptions(
                options, core::SystemConfig::plbSystem());
            config.superPagePlb = super;
            if (!super)
                config.plb.sizeShifts = {vm::kPageShift};
            core::System sys(config);
            auto &kernel = sys.kernel();
            const os::DomainId d = kernel.createDomain("app");
            const u64 pages = 32;
            std::vector<vm::VAddr> bases;
            for (u64 s = 0; s < segs; ++s) {
                const vm::SegmentId seg = kernel.createSegment(
                    "s" + std::to_string(s), pages, true);
                kernel.attach(d, seg, vm::Access::ReadWrite);
                bases.push_back(sys.state().segments.find(seg)->base());
            }
            kernel.switchTo(d);
            Rng rng(11);
            for (int r = 0; r < 4000; ++r) {
                const std::size_t s =
                    static_cast<std::size_t>(rng.nextBelow(segs));
                sys.load(bases[s] +
                         rng.nextBelow(pages * vm::kPageBytes));
            }
            auto &plb = sys.plbSystem()->plb();
            table.addRow(
                {TextTable::num(segs) + " x " + TextTable::num(pages),
                 super ? "super-page" : "page-grain",
                 TextTable::num(plb.occupancy()),
                 TextTable::num(plb.misses.value()),
                 TextTable::num(
                     sys.account().byCategory(CostCategory::Refill)
                         .count())});
        }
    }
    table.print(std::cout);
}

/**
 * Sub-page protection: model a lock table over a database page where
 * each 128-byte record is locked by a different transaction. With
 * page-grain protection the records falsely share one protection
 * unit; with 128-byte blocks each lock is exact.
 */
void
printSubPageTable(const Options &options)
{
    (void)options;
    bench::printHeader(
        "C5b: sub-page protection blocks (801-style 128-byte locks)",
        "Two domains hold write locks on different records of the "
        "same page. Page-grain protection cannot express this (every "
        "rights value over- or under-grants); 128-byte blocks can.");

    TextTable table({"granularity", "dom1 own record", "dom1 other's "
                     "record", "exact?"});

    // Page-grain: one entry per (domain, page); granting write on the
    // page lets a domain write the other's record too.
    {
        stats::Group root("bench");
        hw::PlbConfig config;
        config.sizeShifts = {vm::kPageShift};
        hw::Plb plb(config, &root);
        const vm::VAddr page(0x100000);
        plb.insert(1, page, vm::kPageShift, vm::Access::ReadWrite);
        plb.insert(2, page, vm::kPageShift, vm::Access::ReadWrite);
        const auto own = plb.lookup(1, page + 0 * 128);
        const auto other = plb.lookup(1, page + 1 * 128);
        const bool own_w =
            own && vm::includes(own->rights, vm::Access::Write);
        const bool other_w =
            other && vm::includes(other->rights, vm::Access::Write);
        table.addRow({"page (4096 B)", own_w ? "write ok" : "denied",
                      other_w ? "WRITE LEAKS (false sharing)"
                              : "denied",
                      "no"});
    }

    // Sub-page: 128-byte blocks; each domain writes only its record.
    {
        stats::Group root("bench");
        hw::PlbConfig config;
        config.sizeShifts = {7, vm::kPageShift};
        hw::Plb plb(config, &root);
        const vm::VAddr page(0x100000);
        plb.insert(1, page + 0 * 128, 7, vm::Access::ReadWrite);
        plb.insert(2, page + 1 * 128, 7, vm::Access::ReadWrite);
        const auto own = plb.lookup(1, page + 0 * 128);
        const auto other = plb.lookup(1, page + 1 * 128);
        const bool own_w =
            own && vm::includes(own->rights, vm::Access::Write);
        const bool other_w =
            other && vm::includes(other->rights, vm::Access::Write);
        table.addRow({"sub-page (128 B)", own_w ? "write ok" : "denied",
                      other_w ? "WRITE LEAKS" : "denied (exact)",
                      "yes"});
    }
    table.print(std::cout);
}

/** Entry-count accounting: locks per PLB capacity at each granule. */
void
printLockDensityTable(const Options &options)
{
    (void)options;
    bench::printHeader(
        "C5c: lock granularity vs PLB occupancy",
        "A transaction locking N 128-byte records needs one sub-page "
        "entry per record but touches fewer protection units when "
        "records cluster; page-grain needs one entry per touched "
        "page but cannot isolate records.");

    TextTable table({"records locked", "records/page", "sub-page entries",
                     "page entries", "falsely shared pages"});
    Rng rng(13);
    for (u64 records : {8, 32, 128}) {
        for (u64 per_page : {1, 8, 32}) {
            // Place `records` locks, `per_page` of them per page.
            std::set<u64> pages;
            u64 shared_pages = 0;
            std::map<u64, u64> per_page_count;
            for (u64 r = 0; r < records; ++r) {
                const u64 page = r / per_page;
                ++per_page_count[page];
                pages.insert(page);
            }
            for (const auto &[page, count] : per_page_count) {
                if (count > 1)
                    ++shared_pages;
            }
            table.addRow({TextTable::num(records),
                          TextTable::num(per_page),
                          TextTable::num(records),
                          TextTable::num(pages.size()),
                          TextTable::num(shared_pages)});
        }
    }
    table.print(std::cout);
    std::cout << "falsely shared pages are where page-grain locking "
                 "serializes independent transactions (the 801's "
                 "motivation for 128-byte lock bits).\n";
}

void
BM_MultiSizeLookup(benchmark::State &state, int size_classes)
{
    stats::Group root("bench");
    hw::PlbConfig config;
    config.sizeShifts = {vm::kPageShift};
    for (int c = 1; c < size_classes; ++c)
        config.sizeShifts.push_back(vm::kPageShift + 2 * c);
    hw::Plb plb(config, &root);
    for (u64 i = 0; i < 64; ++i) {
        plb.insert(1, vm::VAddr(i * vm::kPageBytes), vm::kPageShift,
                   vm::Access::ReadWrite);
    }
    Rng rng(17);
    u64 found = 0;
    for (auto _ : state) {
        found += plb.lookup(1, vm::VAddr(rng.nextBelow(64) *
                                         vm::kPageBytes))
                     .has_value();
    }
    benchmark::DoNotOptimize(found);
    state.counters["sizeClasses"] = size_classes;
}

} // namespace

BENCHMARK_CAPTURE(BM_MultiSizeLookup, one, 1);
BENCHMARK_CAPTURE(BM_MultiSizeLookup, four, 4);
BENCHMARK_CAPTURE(BM_MultiSizeLookup, eight, 8);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printSuperPageTable(options);
        printSubPageTable(options);
        printLockDensityTable(options);
        return 0;
    });
}
