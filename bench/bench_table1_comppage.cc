/**
 * @file
 * Experiment T1.f: Table 1 "Compression Paging" (after Appel & Li).
 *
 * Rows reproduced:
 *  - "Page-out": exclude applications (PLB scan-update vs move to
 *    the pager-private group), compress, write, unmap;
 *  - "Page-in": map, read, decompress, restore client access.
 */

#include "bench_common.hh"

#include "workload/comppage.hh"

using namespace sasos;

namespace
{

void
printCompPageTable(const Options &options)
{
    bench::printHeader(
        "Table 1: Compression Paging",
        "Data set 2x physical memory; Zipf-skewed references; the "
        "user-level pager compresses victims.");

    wl::CompPageConfig cp;
    cp.dataPages = options.getU64("dataPages", 256);
    cp.frames = options.getU64("framesOpt", 128);
    cp.references = options.getU64("references", 20000);
    cp.theta = options.getDouble("theta", 0.7);

    TextTable table({"system", "page-ins", "page-outs",
                     "fault rate", "protection cycles (excl io)",
                     "vs plb"});
    double plb_cycles = 0.0;
    for (const auto &model : bench::standardModels(options)) {
        core::SystemConfig config = model.config;
        config.frames = cp.frames;
        core::System sys(config);
        const wl::CompPageResult result =
            wl::CompPageWorkload(cp).run(sys);
        const double protection = static_cast<double>(
            result.cycles.totalExcludingIo().count());
        if (plb_cycles == 0.0)
            plb_cycles = protection;
        table.addRow({model.label, TextTable::num(result.pageIns),
                      TextTable::num(result.pageOuts),
                      TextTable::num(result.faultRate() * 100.0, 2) + "%",
                      TextTable::num(static_cast<u64>(protection)),
                      bench::normalized(protection, plb_cycles)});
    }
    table.print(std::cout);
}

void
printPerOperationBreakdown(const Options &options)
{
    bench::printHeader(
        "Single page-out / page-in decomposition",
        "Cycle cost of one paging operation by category (one warm "
        "page, no compression of the comparison by other activity).");

    TextTable table({"system", "op", "kernel work", "flush", "trap+upcall",
                     "total (excl disk)"});
    for (const auto &model : bench::standardModels(options)) {
        core::System sys(model.config);
        auto &kernel = sys.kernel();
        os::Pager &pager = sys.makePager(os::PagerConfig{true});
        const os::DomainId d = kernel.createDomain("app");
        const vm::SegmentId seg = kernel.createSegment("s", 8);
        kernel.attach(d, seg, vm::Access::ReadWrite);
        kernel.attach(pager.domainId(), seg, vm::Access::ReadWrite);
        kernel.switchTo(d);
        const vm::VAddr base = sys.state().segments.find(seg)->base();
        sys.touchRange(base, 8 * vm::kPageBytes);

        for (const char *op : {"page-out", "page-in"}) {
            const CycleAccount before = sys.account();
            if (op[5] == 'o')
                pager.pageOut(vm::pageOf(base));
            else
                pager.pageIn(vm::pageOf(base));
            const CycleAccount delta = sys.account().since(before);
            table.addRow(
                {model.label, op,
                 TextTable::num(
                     delta.byCategory(CostCategory::KernelWork).count()),
                 TextTable::num(
                     delta.byCategory(CostCategory::Flush).count()),
                 TextTable::num(
                     delta.byCategory(CostCategory::Trap).count() +
                     delta.byCategory(CostCategory::Upcall).count()),
                 TextTable::num(delta.totalExcludingIo().count())});
        }
    }
    table.print(std::cout);
}

void
BM_CompPageRun(benchmark::State &state, core::ModelKind kind)
{
    wl::CompPageConfig cp;
    cp.dataPages = 128;
    cp.frames = 64;
    cp.references = 4000;
    u64 sim_cycles = 0;
    u64 paging_ops = 0;
    for (auto _ : state) {
        core::SystemConfig config = core::SystemConfig::forModel(kind);
        config.frames = cp.frames;
        core::System sys(config);
        const wl::CompPageResult result =
            wl::CompPageWorkload(cp).run(sys);
        sim_cycles += result.cycles.totalExcludingIo().count();
        paging_ops += result.pageIns + result.pageOuts;
    }
    state.counters["simCyclesPerPagingOp"] =
        paging_ops ? static_cast<double>(sim_cycles) /
                         static_cast<double>(paging_ops)
                   : 0.0;
}

} // namespace

BENCHMARK_CAPTURE(BM_CompPageRun, plb, core::ModelKind::Plb)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CompPageRun, pagegroup, core::ModelKind::PageGroup)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CompPageRun, conventional,
                  core::ModelKind::Conventional)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printCompPageTable(options);
        printPerOperationBreakdown(options);
        return 0;
    });
}
