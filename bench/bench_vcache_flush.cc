/**
 * @file
 * Experiment C9: virtually indexed caches without flushing
 * (Section 2.2).
 *
 * "Thus, by alleviating these problems [synonyms and homonyms], a
 * single address space system removes several impediments to the use
 * of a virtually indexed cache ... the virtually indexed cache can be
 * supported without flushing on process switches and without the
 * need for additional address space identifier bits."
 *
 * Compared machines:
 *  - plb / SASOS: VIVT cache, nothing flushed or tagged on a switch;
 *  - multiple-AS + VIVT: the cache must be flushed (and the untagged
 *    TLB purged) on every process switch -- the i860's requirement;
 *  - multiple-AS + VIPT: no flushes, but every access needs the
 *    physically tagged compare (and ASID-replicated TLB entries).
 *
 * Also quantifies the cross-domain cache reuse a single address space
 * enables: one domain hits on lines another domain brought in.
 */

#include "bench_common.hh"

#include "workload/rpc.hh"
#include "workload/sharing.hh"

using namespace sasos;

namespace
{

std::vector<bench::ModelUnderTest>
vcacheModels(const Options &options)
{
    return {
        {"sasos-vivt (plb)", core::SystemConfig::fromOptions(
                                 options, core::SystemConfig::plbSystem())},
        {"multi-as vivt+flush",
         core::SystemConfig::fromOptions(
             options, core::SystemConfig::flushingVcacheSystem())},
        {"multi-as vipt+asid",
         core::SystemConfig::fromOptions(
             options, core::SystemConfig::conventionalSystem())},
    };
}

void
printSwitchCostTable(const Options &options)
{
    bench::printHeader(
        "C9a: process-switch cost of a virtually indexed cache",
        "RPC ping-pong (two switches per call). The multiple address "
        "space machine discards its whole VIVT cache at each switch; "
        "the single address space machine keeps it.");

    wl::RpcConfig rpc;
    rpc.calls = options.getU64("calls", 400);

    TextTable table({"machine", "cycles/call", "flush cycles/call",
                     "memory-path cycles/call", "vs sasos"});
    double baseline = 0.0;
    for (const auto &model : vcacheModels(options)) {
        core::System sys(model.config);
        const wl::RpcResult result = wl::RpcWorkload(rpc).run(sys);
        const double per_call = result.cyclesPerCall();
        if (baseline == 0.0)
            baseline = per_call;
        table.addRow(
            {model.label, TextTable::num(per_call, 1),
             TextTable::num(
                 static_cast<double>(
                     result.cycles.byCategory(CostCategory::Flush)
                         .count()) /
                     result.calls,
                 1),
             TextTable::num(
                 static_cast<double>(
                     result.cycles.byCategory(CostCategory::Reference)
                         .count()) /
                     result.calls,
                 1),
             bench::normalized(per_call, baseline)});
    }
    table.print(std::cout);
}

void
printCrossDomainReuse(const Options &options)
{
    bench::printHeader(
        "C9b: cross-domain cache reuse of shared data",
        "Producer writes a shared segment; consumer reads it through "
        "the same virtual addresses. In the single address space the "
        "consumer hits the producer's cached lines.");

    TextTable table({"machine", "consumer L1 misses", "consumer cycles"});
    for (const auto &model : vcacheModels(options)) {
        core::System sys(model.config);
        auto &kernel = sys.kernel();
        const os::DomainId producer = kernel.createDomain("producer");
        const os::DomainId consumer = kernel.createDomain("consumer");
        const vm::SegmentId seg = kernel.createSegment("shared", 8);
        kernel.attach(producer, seg, vm::Access::ReadWrite);
        kernel.attach(consumer, seg, vm::Access::Read);
        const vm::VAddr base = sys.state().segments.find(seg)->base();

        kernel.switchTo(producer);
        for (u64 off = 0; off < 8 * vm::kPageBytes; off += 32)
            sys.store(base + off);

        kernel.switchTo(consumer);
        hw::DataCache *l1 = nullptr;
        if (auto *plb = sys.plbSystem())
            l1 = &plb->cache();
        else if (auto *conv = sys.conventionalSystem())
            l1 = &conv->cache();
        const u64 misses_before = l1->misses.value();
        const u64 cycles_before = sys.cycles().count();
        for (u64 off = 0; off < 8 * vm::kPageBytes; off += 32)
            sys.load(base + off);
        table.addRow({model.label,
                      TextTable::num(l1->misses.value() - misses_before),
                      TextTable::num(sys.cycles().count() -
                                     cycles_before)});
    }
    table.print(std::cout);
    std::cout << "shape check: sasos-vivt consumer misses ~0 (lines "
                 "survive the switch and need no ASID); the flushing "
                 "machine re-misses everything.\n";
}

void
printSharingQuantum(const Options &options)
{
    bench::printHeader(
        "C9c: switch-intensive multiprogramming",
        "8 domains, short quanta, mixed shared/private working sets.");

    wl::SharingConfig sharing;
    sharing.domains = 8;
    sharing.quanta = options.getU64("quanta", 160);
    sharing.refsPerQuantum = options.getU64("refsPerQuantum", 50);

    TextTable table({"machine", "cycles/ref", "flush cycles total",
                     "vs sasos"});
    double baseline = 0.0;
    for (const auto &model : vcacheModels(options)) {
        core::System sys(model.config);
        const wl::SharingResult result =
            wl::SharingWorkload(sharing).run(sys);
        const double per_ref = result.cyclesPerRef();
        if (baseline == 0.0)
            baseline = per_ref;
        table.addRow(
            {model.label, TextTable::num(per_ref, 2),
             TextTable::num(
                 result.cycles.byCategory(CostCategory::Flush).count()),
             bench::normalized(per_ref, baseline)});
    }
    table.print(std::cout);
}

void
BM_VcacheRpc(benchmark::State &state, bool flush_on_switch)
{
    core::SystemConfig config =
        flush_on_switch ? core::SystemConfig::flushingVcacheSystem()
                        : core::SystemConfig::plbSystem();
    wl::RpcConfig rpc;
    rpc.calls = 150;
    u64 sim_cycles = 0;
    u64 calls = 0;
    for (auto _ : state) {
        core::System sys(config);
        const wl::RpcResult result = wl::RpcWorkload(rpc).run(sys);
        sim_cycles += result.cycles.total().count();
        calls += result.calls;
    }
    state.counters["simCyclesPerCall"] =
        calls ? static_cast<double>(sim_cycles) /
                    static_cast<double>(calls)
              : 0.0;
}

} // namespace

BENCHMARK_CAPTURE(BM_VcacheRpc, sasos_vivt, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VcacheRpc, multias_flush, true)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printSwitchCostTable(options);
        printCrossDomainReuse(options);
        printSharingQuantum(options);
        return 0;
    });
}
