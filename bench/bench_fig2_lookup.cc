/**
 * @file
 * Experiment F2: the protection-check path of Figure 2 and the
 * implementation concern of Section 4.2.
 *
 * The page-group check is two dependent lookups (TLB -> page-group
 * cache); the PLB is a single lookup probed in parallel with the
 * data cache. This bench makes that concrete two ways:
 *
 *  1. an SRAM latency model (logarithmic in entry count, linear in
 *     comparator width) showing the sequential page-group check
 *     stretching the memory-reference critical path as the
 *     page-group cache grows, while the PLB stays one access deep;
 *  2. a functional check that both paths grant exactly the rights
 *     the kernel intends (the Figure 2 semantics: AID match, group 0,
 *     write-disable bit), plus host-time microbenchmarks of the two
 *     simulated access paths.
 */

#include "bench_common.hh"

#include <cmath>

using namespace sasos;

namespace
{

/**
 * A simple SRAM access-time model, after CACTI-style scaling: decode
 * grows with log2(entries), the match with comparator width. The
 * absolute unit is arbitrary ("RC units"); only the relative shape
 * matters for the Section 4.2 argument.
 */
double
lookupTime(u64 entries, u64 compare_bits)
{
    return 1.0 + 0.35 * std::log2(static_cast<double>(entries)) +
           0.02 * static_cast<double>(compare_bits);
}

void
printCriticalPath()
{
    bench::printHeader(
        "Figure 2 / Section 4.2: protection-check critical path",
        "\"Protection checking in the page-group implementation "
        "requires two steps performed in sequence ... The "
        "sequentiality may result in higher cycle times, especially "
        "if the page-group cache is large.\" The PLB needs one wider "
        "lookup (VPN + PD-ID).");

    hw::sizing::SizingParams params;
    const u64 plb_compare = 52 + 16; // VPN tag + PD-ID
    const u64 tlb_compare = 52;      // VPN tag
    const u64 pid_compare = 16;      // AID vs PID registers

    TextTable table({"pg-cache entries", "page-group path (TLB then "
                     "PID match)", "plb path (single lookup)",
                     "page-group / plb"});
    const double plb_time = lookupTime(128, plb_compare);
    for (u64 entries : {4, 8, 16, 32, 64, 128, 256}) {
        const double pg_time =
            lookupTime(128, tlb_compare) +
            lookupTime(entries, pid_compare);
        table.addRow({TextTable::num(entries),
                      TextTable::num(pg_time, 2),
                      TextTable::num(plb_time, 2),
                      TextTable::ratio(pg_time / plb_time, 2)});
    }
    table.print(std::cout);
    (void)params;
}

void
printCheckSemantics()
{
    bench::printHeader(
        "Figure 2 semantics: AID match, group 0, write-disable",
        "Functional check of the PA-RISC protection logic as modeled.");

    core::System sys(core::SystemConfig::pageGroupSystem());
    auto &kernel = sys.kernel();
    const os::DomainId writer = kernel.createDomain("writer");
    const os::DomainId reader = kernel.createDomain("reader");
    const os::DomainId outsider = kernel.createDomain("outsider");
    const vm::SegmentId seg = kernel.createSegment("data", 4);
    kernel.attach(writer, seg, vm::Access::ReadWrite);
    kernel.attach(reader, seg, vm::Access::Read); // D bit for reader
    const vm::VAddr base = sys.state().segments.find(seg)->base();

    TextTable table({"domain", "load", "store", "mechanism"});
    struct Case
    {
        os::DomainId domain;
        const char *name;
        const char *mechanism;
    };
    for (const Case &c :
         {Case{writer, "writer", "PID match, D=0"},
          Case{reader, "reader", "PID match, D=1 blocks stores"},
          Case{outsider, "outsider", "no PID match -> fault"}}) {
        kernel.switchTo(c.domain);
        const bool load_ok = sys.load(base);
        const bool store_ok = sys.store(base);
        table.addRow({c.name, load_ok ? "allowed" : "denied",
                      store_ok ? "allowed" : "denied", c.mechanism});
    }
    table.print(std::cout);
}

void
BM_SimulatedAccessPath(benchmark::State &state, core::ModelKind kind)
{
    core::SystemConfig config = core::SystemConfig::forModel(kind);
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 64);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    sys.touchRange(base, 64 * vm::kPageBytes); // warm everything
    Rng rng(5);

    const u64 cycles_before = sys.cycles().count();
    u64 refs = 0;
    for (auto _ : state) {
        sys.load(base + rng.nextBelow(64 * vm::kPageBytes));
        ++refs;
    }
    state.counters["simCyclesPerRef"] =
        refs ? static_cast<double>(sys.cycles().count() - cycles_before) /
                   static_cast<double>(refs)
             : 0.0;
}

} // namespace

BENCHMARK_CAPTURE(BM_SimulatedAccessPath, plb, core::ModelKind::Plb);
BENCHMARK_CAPTURE(BM_SimulatedAccessPath, pagegroup,
                  core::ModelKind::PageGroup);
BENCHMARK_CAPTURE(BM_SimulatedAccessPath, conventional,
                  core::ModelKind::Conventional);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &) {
        printCriticalPath();
        printCheckSemantics();
        return 0;
    });
}
