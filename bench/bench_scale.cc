/**
 * @file
 * Experiment C13: the datacenter-scale engine (src/scale/).
 *
 * Three oracles gate the exit code:
 *
 *  1. Organization identity: the clustered PLB (banked by VPN range,
 *     shared L2 directory) must be *decision*-bit-identical to the
 *     flat PLB at every core count -- protection caching is an
 *     accelerator, so the machine's allow/deny decisions at quiescent
 *     points cannot depend on how entries are banked. Checked at
 *     cores in {1, 4, 64, 256}, both with an immediate-ack run
 *     (every reference quiescent: the full decision vector must
 *     match) and inside a deferred-IPI storm (the quiescent
 *     projection must match).
 *  2. Storm invariants: a churn-dominated 64-core shootdown storm
 *     with IPI coalescing must finish with zero stale grants outside
 *     any window and hardware a subset of canonical at quiescence.
 *  3. Population sanity: the 10^6-domain space report must show
 *     per-domain linear tables costing a multiple of the global
 *     table + protection table organization (Section 3.1's argument).
 *
 * Also reported: the stale-rights window versus core count curve and
 * the full linear-vs-global table-space measurement, both written to
 * BENCH_scale.json.
 */

#include "bench_common.hh"

#include <fstream>

#include "core/mc/mc_system.hh"
#include "obs/json.hh"
#include "scale/population.hh"
#include "scale/storm.hh"

using namespace sasos;

namespace
{

struct IdentityRow
{
    unsigned cores = 1;
    bool immediateAck = false;
    core::mc::McResult flat;
    core::mc::McResult clustered;
    bool identical = false;
};

/** Run one config to completion. */
core::mc::McResult
runOne(const core::mc::McConfig &config)
{
    core::mc::McSystem system(config);
    return system.run();
}

/**
 * The engine-level fields that must not depend on the PLB
 * organization: the interleaving (slots), the kernel-op and shootdown
 * traffic, and the quiescent allow/deny projection. Stale-window
 * outcomes may differ (different banks cache different stale
 * entries), which is exactly why only the quiescent vector is
 * canonical.
 */
bool
decisionsIdentical(const core::mc::McResult &a, const core::mc::McResult &b,
                   bool compare_totals)
{
    if (a.slots != b.slots || a.kernelOps != b.kernelOps ||
        a.shootdowns != b.shootdowns || a.acks != b.acks)
        return false;
    if (a.quiescentOutcomes != b.quiescentOutcomes)
        return false;
    if (compare_totals &&
        (a.completed != b.completed || a.failed != b.failed))
        return false;
    return a.invariantViolations == 0 && b.invariantViolations == 0 &&
           a.hwViolations == 0 && b.hwViolations == 0;
}

IdentityRow
runIdentity(u64 seed, unsigned cores, u64 refs, bool immediate_ack,
            unsigned clusters)
{
    IdentityRow row;
    row.cores = cores;
    row.immediateAck = immediate_ack;
    core::mc::McConfig flat = scale::stormConfig(cores, refs, seed);
    core::mc::McConfig clustered =
        scale::clusteredStormConfig(cores, refs, seed, clusters);
    if (immediate_ack) {
        flat.ipiDelaySteps = 0;
        clustered.ipiDelaySteps = 0;
    }
    // The per-reference invariant stays checked inside issueRef();
    // only the O(cores * pages) quiescence sweep is skipped, which is
    // what keeps the 256-core rows inside the CI runtime budget.
    if (cores >= 256) {
        flat.checkInvariants = false;
        clustered.checkInvariants = false;
    }
    row.flat = runOne(flat);
    row.clustered = runOne(clustered);
    // Immediate acks leave every reference quiescent, so the full
    // decision vector (and the completed/failed totals) must match;
    // under deferred IPIs only the quiescent projection is canonical.
    row.identical =
        decisionsIdentical(row.flat, row.clustered, immediate_ack);
    return row;
}

bool
printIdentityTable(const Options &options, std::vector<IdentityRow> &rows)
{
    bench::printHeader(
        "C13: clustered-PLB decision identity vs the flat PLB",
        "Same workload, same schedule, same seeds; the only difference "
        "is the PLB organization (1 flat bank vs 8 VPN-range banks "
        "with an L2 directory). The interleaving and the quiescent "
        "allow/deny vector must be bit-identical at every core count.");

    const u64 seed = options.getU64("seed", 1);
    TextTable table({"cores", "ack", "slots", "shootdowns",
                     "quiescent refs", "verdict"});
    bool all_ok = true;
    for (unsigned cores : {1u, 4u, 64u, 256u}) {
        const u64 refs = cores >= 64 ? (cores >= 256 ? 40 : 80) : 400;
        for (const bool immediate : {true, false}) {
            rows.push_back(
                runIdentity(seed, cores, refs, immediate, 8));
            const IdentityRow &row = rows.back();
            all_ok = all_ok && row.identical;
            table.addRow({TextTable::num(u64{cores}),
                          immediate ? "immediate" : "deferred",
                          TextTable::num(row.flat.slots),
                          TextTable::num(row.flat.shootdowns),
                          TextTable::num(u64{
                              row.flat.quiescentOutcomes.size()}),
                          row.identical ? "IDENTICAL" : "DIVERGED"});
        }
    }
    table.print(std::cout);
    std::cout << "oracle: every row IDENTICAL -> "
              << (all_ok ? "PASS" : "FAIL") << "\n";
    return all_ok;
}

struct CurveRow
{
    unsigned cores = 1;
    core::mc::McResult result;
};

bool
printStormCurve(const Options &options, std::vector<CurveRow> &rows,
                core::mc::McResult &storm64)
{
    bench::printHeader(
        "C13b: stale-rights window vs core count (coalesced storm)",
        "Churn-heavy storm (25% kernel ops, IPI flight 12 steps, "
        "coalesce window 4): every broadcast interrupts every other "
        "core, so the aggregate stale window grows with the machine. "
        "Invariants stay on at every size shown.");

    const u64 seed = options.getU64("seed", 1);
    TextTable table({"cores", "shootdowns", "acks", "coalesced",
                     "stale window refs", "stale refs/shootdown",
                     "stale grants", "latency mean"});
    bool ok = true;
    for (unsigned cores : {4u, 16u, 64u}) {
        core::mc::McConfig config = scale::clusteredStormConfig(
            cores, cores >= 64 ? 80 : 200, seed, 8);
        config.coalesceWindow = 4;
        CurveRow row;
        row.cores = cores;
        row.result = runOne(config);
        ok = ok && row.result.invariantViolations == 0 &&
             row.result.hwViolations == 0;
        if (cores == 64)
            storm64 = row.result;
        table.addRow(
            {TextTable::num(u64{cores}),
             TextTable::num(row.result.shootdowns),
             TextTable::num(row.result.acks),
             TextTable::num(row.result.coalescedAcks),
             TextTable::num(row.result.staleWindowRefs),
             TextTable::num(row.result.staleRefsPerShootdownMean, 2),
             TextTable::num(row.result.staleGrants),
             TextTable::num(row.result.shootdownLatencyMean, 1)});
        rows.push_back(std::move(row));
    }
    table.print(std::cout);
    std::cout << "oracle: zero invariant violations in every storm -> "
              << (ok ? "PASS" : "FAIL") << "\n";
    return ok;
}

bool
printPopulationTable(const Options &options, scale::SpaceReport &full)
{
    bench::printHeader(
        "C13c: page-table space at 10^6 protection domains",
        "Section 3.1 at datacenter scale: one global page table plus "
        "sparse per-domain protection tables, against per-domain "
        "linear tables (flat and two-level). Linear tables replicate "
        "every shared translation per domain and span each domain's "
        "scattered footprint.");

    TextTable table({"domains", "global PT (MB)", "prot tables (MB)",
                     "SAS total (MB)", "linear flat (MB)",
                     "linear 2-level (MB)", "dup flat", "dup 2-level"});
    bool ok = true;
    const u64 mb = u64{1} << 20;
    for (const u64 domains : {u64{10'000}, u64{1'000'000}}) {
        scale::PopulationConfig config;
        config.domains = domains;
        config.seed = options.getU64("seed", 1);
        const scale::Population population(config);
        const scale::SpaceReport report = population.spaceReport();
        if (domains == 1'000'000)
            full = report;
        // The SAS organization must win, and the gap must widen with
        // scale; at a million domains the duplication factor is the
        // paper's argument in one number.
        ok = ok && report.linearTwoLevelBytes > report.sasBytes &&
             report.flatDuplicationFactor() > 1.0;
        table.addRow(
            {TextTable::num(domains),
             TextTable::num(report.globalPageTableBytes / mb),
             TextTable::num(report.protectionTableBytes / mb),
             TextTable::num(report.sasBytes / mb),
             TextTable::num(report.linearFlatBytes / mb),
             TextTable::num(report.linearTwoLevelBytes / mb),
             TextTable::num(report.flatDuplicationFactor(), 1),
             TextTable::num(report.twoLevelDuplicationFactor(), 1)});
    }
    table.print(std::cout);
    std::cout << "oracle: per-domain linear tables cost a multiple of "
                 "the SAS organization -> "
              << (ok ? "PASS" : "FAIL") << "\n";
    return ok;
}

void
writeScaleJson(const std::string &path,
               const std::vector<IdentityRow> &identity,
               const std::vector<CurveRow> &curve,
               const scale::SpaceReport &population, bool passed)
{
    std::ofstream os(path);
    if (!os)
        SASOS_FATAL("cannot open json file '", path, "'");
    obs::JsonWriter json(os);
    json.beginObject();
    json.member("bench", "scale");
    json.member("passed", passed);
    json.key("identity");
    json.beginArray();
    for (const IdentityRow &row : identity) {
        json.beginObject();
        json.member("cores", u64{row.cores});
        json.member("immediateAck", row.immediateAck);
        json.member("slots", row.flat.slots);
        json.member("shootdowns", row.flat.shootdowns);
        json.member("quiescentRefs",
                    u64{row.flat.quiescentOutcomes.size()});
        json.member("identical", row.identical);
        json.endObject();
    }
    json.endArray();
    json.key("staleWindowCurve");
    json.beginArray();
    for (const CurveRow &row : curve) {
        json.beginObject();
        json.member("cores", u64{row.cores});
        json.member("shootdowns", row.result.shootdowns);
        json.member("acks", row.result.acks);
        json.member("coalescedAcks", row.result.coalescedAcks);
        json.member("staleWindowRefs", row.result.staleWindowRefs);
        json.member("staleRefsPerShootdownMean",
                    row.result.staleRefsPerShootdownMean);
        json.member("staleGrants", row.result.staleGrants);
        json.member("shootdownLatencyMean",
                    row.result.shootdownLatencyMean);
        json.member("violations", row.result.invariantViolations +
                                      row.result.hwViolations);
        json.endObject();
    }
    json.endArray();
    json.key("population");
    json.beginObject();
    json.member("domains", population.domains);
    json.member("segments", population.segments);
    json.member("totalMappedPages", population.totalMappedPages);
    json.member("totalAttachments", population.totalAttachments);
    json.member("totalOverrides", population.totalOverrides);
    json.member("globalPageTableBytes", population.globalPageTableBytes);
    json.member("protectionTableBytes", population.protectionTableBytes);
    json.member("sasBytes", population.sasBytes);
    json.member("linearFlatBytes", population.linearFlatBytes);
    json.member("linearTwoLevelBytes", population.linearTwoLevelBytes);
    json.member("flatDuplicationFactor",
                population.flatDuplicationFactor());
    json.member("twoLevelDuplicationFactor",
                population.twoLevelDuplicationFactor());
    json.endObject();
    json.endObject();
    os << "\n";
    inform("wrote ", path);
}

void
BM_ClusteredStorm(benchmark::State &state)
{
    const unsigned cores = static_cast<unsigned>(state.range(0));
    u64 cycles = 0;
    for (auto _ : state) {
        core::mc::McConfig config =
            scale::clusteredStormConfig(cores, 50, 1, 8);
        config.coalesceWindow = 4;
        config.checkInvariants = false;
        core::mc::McSystem system(config);
        cycles += system.run().cycles;
    }
    state.counters["cores"] = cores;
    state.counters["simCycles"] = static_cast<double>(cycles);
}

} // namespace

BENCHMARK(BM_ClusteredStorm)->Arg(16)->Arg(64);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        std::vector<IdentityRow> identity;
        std::vector<CurveRow> curve;
        core::mc::McResult storm64;
        scale::SpaceReport population;
        const bool identity_ok = printIdentityTable(options, identity);
        const bool storm_ok = printStormCurve(options, curve, storm64);
        const bool population_ok =
            printPopulationTable(options, population);
        const bool passed = identity_ok && storm_ok && population_ok;
        writeScaleJson(options.getString("json", "BENCH_scale.json"),
                       identity, curve, population, passed);
        std::cout << "\nC13 verdict: " << (passed ? "PASS" : "FAIL")
                  << "\n";
        return passed ? 0 : 1;
    });
}
